"""Pytest bootstrap.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. in a fully offline environment where ``pip install -e .`` cannot fetch
build dependencies).  When the package *is* installed this is a harmless
no-op because the installed editable path points at the same directory.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
