"""Replication-layer benchmark: ensemble size vs wall clock and CI width.

Runs the Pareto/Poisson comparison as an N-seed ensemble for N ∈ {1, 4, 8}
through the thread executor, recording the wall clock and the 95 % CI
half-width of the AFCT speedup at each N — the cost/precision trade-off the
replication layer exists to navigate.  Replicate jobs are embarrassingly
parallel (one independent stack each), so on multi-core hardware wall clock
grows near-linearly in N/workers; the recorded numbers double as the
regression baseline for that claim.

Because replicate seeds derive from replicate identity, the N=4 ensemble is
a strict prefix of the N=8 ensemble: sharing one result store across the
sweep makes the larger ensembles recompute only their new replicates, which
the benchmark asserts via the executor report's cache counters.
"""

import time

import pytest

from bench_utils import save_result


@pytest.mark.benchmark(group="replication scaling")
def test_bench_replication_fanout_and_ci_width(benchmark, results_dir, tmp_path):
    from repro.exec import plan_replications, run_jobs
    from repro.exec.replication import ensemble_from_store
    from repro.exec.store import ResultStore
    from repro.experiments.spec import ScenarioSpec

    spec = ScenarioSpec.pareto_poisson(
        sim_time_s=2.0, seed=2013, arrival_rate_per_s=40.0
    )
    store = ResultStore(tmp_path / "replication.jsonl")
    seeds_axis = (1, 4, 8)

    def run_all():
        points = {}
        for seeds in seeds_axis:
            jobs = plan_replications(spec, seeds=seeds)
            start = time.perf_counter()
            report = run_jobs(jobs, executor="thread", max_workers=4, store=store)
            wall = time.perf_counter() - start
            ensemble = ensemble_from_store(store)
            speedup = ensemble.speedup_stats()
            points[seeds] = {
                "wall_clock_s": wall,
                "jobs": len(jobs),
                "computed": report.computed,
                "cached": report.cached,
                "speedup_mean": speedup.mean,
                "speedup_ci_half_width": speedup.half_width,
                "speedup_ci": [speedup.ci_lower, speedup.ci_upper],
            }
        return points

    points = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Ensemble-prefix caching: N=4 reuses N=1's replicate 0, N=8 reuses all
    # of N=4 — only the new replicates are ever computed.
    assert points[1]["computed"] == 2 and points[1]["cached"] == 0
    assert points[4]["computed"] == 6 and points[4]["cached"] == 2
    assert points[8]["computed"] == 8 and points[8]["cached"] == 8

    # The candidate wins at every ensemble size, and N>1 carries a real CI.
    for seeds in seeds_axis:
        assert points[seeds]["speedup_mean"] > 1.0
    assert points[1]["speedup_ci_half_width"] == 0.0
    assert points[8]["speedup_ci_half_width"] >= 0.0

    save_result(
        results_dir,
        "replication_scaling",
        {
            "scenario": "pareto-poisson (sim_time=2s, rate=40/s)",
            "executor": "thread x4",
            "points": {str(seeds): points[seeds] for seeds in seeds_axis},
        },
    )
