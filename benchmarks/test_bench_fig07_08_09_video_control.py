"""Figures 7-9: video traces *with* control flows (Section X-A1).

* Figure 7 — average instantaneous throughput over time, SCDA vs RandTCP.
* Figure 8 — content upload time (FCT) CDF.
* Figure 9 — AFCT versus file size (MB).

The three figures share one scenario, so the first benchmark runs the full
SCDA-vs-RandTCP simulation (the expensive part) and caches the comparison;
the remaining two benchmark their figure construction on top of it.
"""

import pytest

from bench_utils import save_result, scenario_video_with_control

_CACHE = {}


def _comparison():
    from repro.experiments.runner import run_comparison

    if "comparison" not in _CACHE:
        _CACHE["comparison"] = run_comparison(scenario_video_with_control())
    return _CACHE["comparison"]


@pytest.mark.benchmark(group="fig07-09 video+control")
def test_bench_fig07_throughput_video_control(benchmark, results_dir):
    """Figure 7: the full simulation plus the throughput time series."""
    from repro.experiments.figures import figure07

    scenario = scenario_video_with_control()

    def generate():
        comparison = _comparison()
        return figure07(comparison=comparison)

    figure = benchmark.pedantic(generate, rounds=1, iterations=1)
    from repro.experiments.shapes import check_comparison_shape

    shape = check_comparison_shape(figure.comparison)
    save_result(
        results_dir,
        "fig07",
        {
            "figure": "fig07",
            "title": figure.title,
            "scenario": scenario.name,
            "sim_time_s": scenario.sim_time_s,
            "summary": figure.summary,
            "shape": {
                "fct_reduction_fraction": shape.fct_reduction_fraction,
                "throughput_gain_fraction": shape.throughput_gain_fraction,
                "cdf_dominance": shape.cdf_dominance,
                "all_passed": shape.all_passed,
            },
        },
    )
    assert set(figure.series) == {"SCDA", "RandTCP"}
    # The paper's claim: SCDA's average instantaneous throughput is higher.
    assert shape.throughput_not_worse
    assert figure.summary["throughput_gain_fraction"] > 0.0


@pytest.mark.benchmark(group="fig07-09 video+control")
def test_bench_fig08_fct_cdf_video_control(benchmark, results_dir):
    """Figure 8: FCT CDF — SCDA's CDF lies above (left of) RandTCP's."""
    from repro.experiments.figures import figure08

    figure = benchmark.pedantic(
        lambda: figure08(comparison=_comparison()), rounds=1, iterations=1
    )
    save_result(results_dir, "fig08", {"figure": "fig08", "summary": figure.summary})
    assert figure.summary["cdf_dominance"] >= 0.7
    assert figure.summary["speedup_afct"] > 1.0


@pytest.mark.benchmark(group="fig07-09 video+control")
def test_bench_fig09_afct_video_control(benchmark, results_dir):
    """Figure 9: AFCT vs file size — SCDA's curve sits below RandTCP's."""
    import numpy as np

    from repro.experiments.figures import figure09

    figure = benchmark.pedantic(
        lambda: figure09(comparison=_comparison()), rounds=1, iterations=1
    )
    save_result(results_dir, "fig09", {"figure": "fig09", "summary": figure.summary})
    scda_x, scda_y = figure.series["SCDA"]
    rand_x, rand_y = figure.series["RandTCP"]
    # Compare the AFCT means across populated bins: SCDA must be lower overall.
    assert np.nanmean(scda_y) < np.nanmean(rand_y)
