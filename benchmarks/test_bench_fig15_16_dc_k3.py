"""Figures 15-16: general datacenter traces with bandwidth factor K = 3.

Same workload as Figures 13-14 but the right half of the tree gets K·X
links (heterogeneous bandwidth), showing SCDA is not restricted to equal
bandwidth datacenter architectures.
"""

import numpy as np
import pytest

from bench_utils import save_result, scenario_datacenter

_CACHE = {}


def _comparison():
    from repro.experiments.runner import run_comparison

    if "comparison" not in _CACHE:
        _CACHE["comparison"] = run_comparison(scenario_datacenter(3.0))
    return _CACHE["comparison"]


@pytest.mark.benchmark(group="fig15-16 datacenter K=3")
def test_bench_fig15_afct_datacenter_k3(benchmark, results_dir):
    """Figure 15: AFCT vs size with K=3 heterogeneous links."""
    from repro.experiments.figures import figure15
    from repro.experiments.shapes import check_comparison_shape

    figure = benchmark.pedantic(
        lambda: figure15(comparison=_comparison()), rounds=1, iterations=1
    )
    shape = check_comparison_shape(figure.comparison)
    save_result(
        results_dir,
        "fig15",
        {"figure": "fig15", "summary": figure.summary, "all_passed": shape.all_passed},
    )
    assert shape.fct_improved
    scda_y = figure.series["SCDA"][1]
    rand_y = figure.series["RandTCP"][1]
    assert np.nanmean(scda_y) < np.nanmean(rand_y)


@pytest.mark.benchmark(group="fig15-16 datacenter K=3")
def test_bench_fig16_fct_cdf_datacenter_k3(benchmark, results_dir):
    """Figure 16: FCT CDF with K=3; more than half of SCDA flows finish sooner."""
    from repro.experiments.figures import figure16
    from repro.metrics.cdf import cdf_at

    figure = benchmark.pedantic(
        lambda: figure16(comparison=_comparison()), rounds=1, iterations=1
    )
    save_result(results_dir, "fig16", {"figure": "fig16", "summary": figure.summary})
    assert figure.summary["cdf_dominance"] >= 0.7
    # Paper: "more than 60 % of SCDA flows achieve upto 50 % smaller transfer time".
    comparison = figure.comparison
    baseline_median = float(np.median(comparison.baseline.fcts()))
    scda_at_half_baseline_median = cdf_at(comparison.candidate.fcts(), 0.5 * baseline_median)
    assert scda_at_half_baseline_median >= 0.5
