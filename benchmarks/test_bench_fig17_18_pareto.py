"""Figures 17-18: Pareto file sizes with Poisson arrivals (Section X-B).

* Figure 17 — average instantaneous throughput over time.
* Figure 18 — FCT CDF.

The paper uses mean size 500 KB (shape 1.6), 200 flows/s, X = 200 Mb/s and
K = 3; the benchmark keeps those size/topology parameters and scales the
arrival rate and duration down so the run stays laptop-sized.
"""

import pytest

from bench_utils import save_result, scenario_pareto_poisson

_CACHE = {}


def _comparison():
    from repro.experiments.runner import run_comparison

    if "comparison" not in _CACHE:
        _CACHE["comparison"] = run_comparison(scenario_pareto_poisson())
    return _CACHE["comparison"]


@pytest.mark.benchmark(group="fig17-18 pareto/poisson")
def test_bench_fig17_throughput_pareto_poisson(benchmark, results_dir):
    """Figure 17: SCDA sustains a higher average instantaneous throughput."""
    from repro.experiments.figures import figure17
    from repro.experiments.shapes import check_comparison_shape

    figure = benchmark.pedantic(
        lambda: figure17(comparison=_comparison()), rounds=1, iterations=1
    )
    shape = check_comparison_shape(figure.comparison)
    save_result(
        results_dir,
        "fig17",
        {"figure": "fig17", "summary": figure.summary, "all_passed": shape.all_passed},
    )
    assert shape.throughput_not_worse
    assert figure.summary["throughput_gain_fraction"] > 0.0
    assert shape.fct_improved


@pytest.mark.benchmark(group="fig17-18 pareto/poisson")
def test_bench_fig18_fct_cdf_pareto_poisson(benchmark, results_dir):
    """Figure 18: the SCDA FCT CDF dominates RandTCP's."""
    from repro.experiments.figures import figure18

    figure = benchmark.pedantic(
        lambda: figure18(comparison=_comparison()), rounds=1, iterations=1
    )
    save_result(results_dir, "fig18", {"figure": "fig18", "summary": figure.summary})
    assert figure.summary["cdf_dominance"] >= 0.7
    assert figure.summary["fct_reduction_fraction"] >= 0.25
