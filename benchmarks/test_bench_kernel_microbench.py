"""Micro-benchmarks of the simulation substrate itself.

These are conventional performance benchmarks (pytest-benchmark statistics
are meaningful here): event throughput of the discrete-event engine, the cost
of the max-min water-filler at several scales and with both solver backends,
and one SCDA control round on the paper-scale tree.  They guard against
performance regressions that would make the figure suite impractically slow.

``test_bench_water_filler_speedup`` additionally records the measured
python→numpy speedups to ``benchmarks/results/kernel_waterfiller.json`` (the
numbers quoted in docs/PERFORMANCE.md) and asserts the vectorized solver's
headline win at 1000 flows.
"""

import time

import pytest

from bench_utils import save_result, scenario_pareto_poisson

MBPS = 1e6

#: Water-filler problem sizes (number of concurrent flows).
WATERFILL_SIZES = (100, 1000, 5000)


def _waterfill_scenario(num_flows, seed=7):
    """Random client→host flows over the paper-scale tree, plus the incidence."""
    from repro.network.flow import Flow
    from repro.network.incidence import IncidenceCache
    from repro.network.routing import Router
    from repro.network.tree import TreeTopologyConfig, build_tree_topology
    from repro.sim.random import RandomStreams

    topology = build_tree_topology(TreeTopologyConfig())
    router = Router(topology)
    hosts = topology.hosts()
    clients = topology.clients()
    rng = RandomStreams(seed).stream("pairs")
    flows = []
    for _ in range(num_flows):
        src = clients[int(rng.integers(0, len(clients)))]
        dst = hosts[int(rng.integers(0, len(hosts)))]
        flows.append(Flow(src, dst, 1e9, router.path(src, dst)))
    cache = IncidenceCache(flows)
    cache.arrays()  # warm the per-epoch structure, as a fabric in steady state
    return flows, cache


@pytest.mark.benchmark(group="kernel micro")
def test_bench_event_engine_throughput(benchmark):
    from repro.sim.engine import Simulator

    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                sim.call_in(0.001, tick)

        sim.call_in(0.001, tick)
        sim.run()
        return count

    count = benchmark(run_events)
    assert count == 20_000


@pytest.mark.benchmark(group="kernel micro")
def test_bench_event_engine_fast_timers(benchmark):
    """Same chained-timer load on the handle-free ``call_in_fast`` path."""
    from repro.sim.engine import Simulator

    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                sim.call_in_fast(0.001, tick)

        sim.call_in_fast(0.001, tick)
        sim.run()
        return count

    count = benchmark(run_events)
    assert count == 20_000


@pytest.mark.benchmark(group="water-filler")
@pytest.mark.parametrize("num_flows", WATERFILL_SIZES)
@pytest.mark.parametrize("solver", ["python", "numpy"])
def test_bench_max_min_water_filling(benchmark, num_flows, solver):
    from repro.network.fluid import max_min_shares

    flows, cache = _waterfill_scenario(num_flows)
    rates = benchmark(lambda: max_min_shares(flows, solver=solver, cache=cache))
    assert len(rates) == len(flows)
    assert all(rate > 0 for rate in rates.values())


def test_bench_water_filler_speedup(results_dir, request):
    """Record python→numpy speedups; the 1000-flow case must be ≥ 5×.

    The hard threshold only applies to real benchmark runs: under
    ``--benchmark-disable`` (the CI smoke run, shared noisy runners) the
    speedups are still recorded but not asserted.
    """
    from repro.network.fluid import max_min_shares

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    payload = {}
    for num_flows in WATERFILL_SIZES:
        flows, cache = _waterfill_scenario(num_flows)
        # Both backends get the warmed incidence cache (the production
        # configuration), so the ratio isolates the solver speedup.
        t_python = best_of(
            lambda: max_min_shares(flows, solver="python", cache=cache)
        )
        t_numpy = best_of(
            lambda: max_min_shares(flows, solver="numpy", cache=cache)
        )
        payload[str(num_flows)] = {
            "python_ms": t_python * 1e3,
            "numpy_ms": t_numpy * 1e3,
            "speedup": t_python / t_numpy,
        }
    save_result(results_dir, "kernel_waterfiller", payload)
    if request.config.getoption("benchmark_disable", default=False):
        pytest.skip("timing assertion skipped under --benchmark-disable")
    assert payload["1000"]["speedup"] >= 5.0, payload


@pytest.mark.benchmark(group="kernel micro")
def test_bench_scda_control_round(benchmark):
    from repro.core.controller import ScdaController, ScdaControllerConfig
    from repro.network.fabric import FabricSimulator
    from repro.network.flow import FlowKind
    from repro.network.transport.scda import ScdaTransport
    from repro.network.tree import TreeTopologyConfig, build_tree_topology
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomStreams

    sim = Simulator()
    topology = build_tree_topology(TreeTopologyConfig())
    controller = ScdaController(sim, topology, ScdaControllerConfig())
    fabric = FabricSimulator(sim, topology, ScdaTransport(controller))
    controller.attach_fabric(fabric)
    rng = RandomStreams(11).stream("pairs")
    hosts, clients = topology.hosts(), topology.clients()
    for _ in range(80):
        src = clients[int(rng.integers(0, len(clients)))]
        dst = hosts[int(rng.integers(0, len(hosts)))]
        fabric.start_flow(src, dst, 1e9, FlowKind.DATA)

    benchmark(lambda: controller.control_round(sim.now, force=True))
    assert controller.rounds_run >= 1


@pytest.mark.benchmark(group="kernel micro")
def test_bench_workload_generation(benchmark):
    from repro.experiments.runner import generate_workload

    scenario = scenario_pareto_poisson()
    workload = benchmark(lambda: generate_workload(scenario))
    assert len(workload) > 0
