"""Micro-benchmarks of the simulation substrate itself.

These are conventional performance benchmarks (pytest-benchmark statistics
are meaningful here): event throughput of the discrete-event engine, the cost
of the max-min water-filler, and one SCDA control round on the paper-scale
tree.  They guard against performance regressions that would make the figure
suite impractically slow.
"""

import pytest

from bench_utils import scenario_pareto_poisson

MBPS = 1e6


@pytest.mark.benchmark(group="kernel micro")
def test_bench_event_engine_throughput(benchmark):
    from repro.sim.engine import Simulator

    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                sim.call_in(0.001, tick)

        sim.call_in(0.001, tick)
        sim.run()
        return count

    count = benchmark(run_events)
    assert count == 20_000


@pytest.mark.benchmark(group="kernel micro")
def test_bench_max_min_water_filling(benchmark):
    from repro.network.flow import Flow
    from repro.network.fluid import max_min_shares
    from repro.network.routing import Router
    from repro.network.tree import TreeTopologyConfig, build_tree_topology
    from repro.sim.random import RandomStreams

    topology = build_tree_topology(TreeTopologyConfig())
    router = Router(topology)
    hosts = topology.hosts()
    clients = topology.clients()
    rng = RandomStreams(7).stream("pairs")
    flows = []
    for i in range(120):
        src = clients[int(rng.integers(0, len(clients)))]
        dst = hosts[int(rng.integers(0, len(hosts)))]
        flows.append(Flow(src, dst, 1e9, router.path(src, dst)))

    rates = benchmark(lambda: max_min_shares(flows))
    assert len(rates) == len(flows)
    assert all(rate > 0 for rate in rates.values())


@pytest.mark.benchmark(group="kernel micro")
def test_bench_scda_control_round(benchmark):
    from repro.core.controller import ScdaController, ScdaControllerConfig
    from repro.network.fabric import FabricSimulator
    from repro.network.flow import FlowKind
    from repro.network.transport.scda import ScdaTransport
    from repro.network.tree import TreeTopologyConfig, build_tree_topology
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomStreams

    sim = Simulator()
    topology = build_tree_topology(TreeTopologyConfig())
    controller = ScdaController(sim, topology, ScdaControllerConfig())
    fabric = FabricSimulator(sim, topology, ScdaTransport(controller))
    controller.attach_fabric(fabric)
    rng = RandomStreams(11).stream("pairs")
    hosts, clients = topology.hosts(), topology.clients()
    for _ in range(80):
        src = clients[int(rng.integers(0, len(clients)))]
        dst = hosts[int(rng.integers(0, len(hosts)))]
        fabric.start_flow(src, dst, 1e9, FlowKind.DATA)

    benchmark(lambda: controller.control_round(sim.now, force=True))
    assert controller.rounds_run >= 1


@pytest.mark.benchmark(group="kernel micro")
def test_bench_workload_generation(benchmark):
    from repro.experiments.runner import generate_workload

    scenario = scenario_pareto_poisson()
    workload = benchmark(lambda: generate_workload(scenario))
    assert len(workload) > 0
