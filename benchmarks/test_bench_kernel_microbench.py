"""Micro-benchmarks of the simulation substrate itself.

These are conventional performance benchmarks (pytest-benchmark statistics
are meaningful here): event throughput of the discrete-event engine, the cost
of the max-min water-filler at several scales and with both solver backends,
and one SCDA control round on the paper-scale tree.  They guard against
performance regressions that would make the figure suite impractically slow.

``test_bench_water_filler_speedup`` additionally records the measured
python→numpy speedups to ``benchmarks/results/kernel_waterfiller.json`` (the
numbers quoted in docs/PERFORMANCE.md) and asserts the vectorized solver's
headline win at 1000 flows.
"""

import time

import pytest

from bench_utils import save_result, scenario_pareto_poisson

MBPS = 1e6

#: Water-filler problem sizes (number of concurrent flows).
WATERFILL_SIZES = (100, 1000, 5000)

#: Large problem sizes exercising the incremental (delta) solver on the
#: k=32 fat tree; only the numpy and incremental backends run at this scale.
LARGE_WATERFILL_SIZES = (20_000, 50_000, 100_000)
_FAT_TREE_K = 32

_fat_tree_cache = {}


def _fat_tree():
    """The k=32 fat tree, built once per benchmark session (8192 hosts)."""
    from repro.network.fattree import build_fat_tree

    topo = _fat_tree_cache.get(_FAT_TREE_K)
    if topo is None:
        topo = _fat_tree_cache[_FAT_TREE_K] = build_fat_tree(k=_FAT_TREE_K)
    return topo


def _rack_local_scenario(num_flows, seed=13):
    """``num_flows`` rack-local host↔host flows on the k=32 fat tree.

    Rack-local traffic is the delta solver's target workload: each rack is
    an isolated connected component (two links per flow, both below one edge
    switch), so a single arrival/departure dirties a few hundred flows out
    of 100k instead of forcing a fabric-wide re-solve.  Paths are assembled
    directly from the host↔edge links, skipping 100k router calls.
    """
    from repro.network.flow import Flow
    from repro.network.incidence import IncidenceCache
    from repro.sim.random import RandomStreams

    topo = _fat_tree()
    link_of = {(l.src.node_id, l.dst.node_id): l for l in topo.links}
    racks = {}
    for host in topo.hosts():
        racks.setdefault(str(host.attrs["rack"]), []).append(host)
    rack_list = sorted(racks.items())
    rng = RandomStreams(seed).stream("pairs")

    def rack_local_flow():
        rack_key, hosts = rack_list[int(rng.integers(0, len(rack_list)))]
        i = int(rng.integers(0, len(hosts)))
        j = int(rng.integers(0, len(hosts) - 1))
        if j >= i:
            j += 1
        src, dst = hosts[i], hosts[j]
        edge_id = f"edge-{rack_key}"
        path = [link_of[(src.node_id, edge_id)], link_of[(edge_id, dst.node_id)]]
        return Flow(src, dst, 1e9, path)

    flows = [rack_local_flow() for _ in range(num_flows)]
    cache = IncidenceCache(flows)
    return flows, cache, rack_local_flow


_rack_scenario_cache = {}


def _warm_rack_scenario(num_flows):
    """A shared, already-solved rack-local scenario at ``num_flows``.

    The first (full) solve of the biggest case costs tens of seconds, so the
    large-F tests share one warmed scenario per size instead of each paying
    it again.  Tests churn the shared state freely — every post-churn state
    is an equally valid steady state to measure from.
    """
    state = _rack_scenario_cache.get(num_flows)
    if state is None:
        from repro.network.fluid import max_min_shares
        from repro.sim.random import RandomStreams

        flows, cache, make_flow = _rack_local_scenario(num_flows)
        rng = RandomStreams(num_flows).stream("churn")
        max_min_shares(flows, solver="incremental", cache=cache)
        state = _rack_scenario_cache[num_flows] = (flows, cache, make_flow, rng)
    return state


def _waterfill_scenario(num_flows, seed=7):
    """Random client→host flows over the paper-scale tree, plus the incidence."""
    from repro.network.flow import Flow
    from repro.network.incidence import IncidenceCache
    from repro.network.routing import Router
    from repro.network.tree import TreeTopologyConfig, build_tree_topology
    from repro.sim.random import RandomStreams

    topology = build_tree_topology(TreeTopologyConfig())
    router = Router(topology)
    hosts = topology.hosts()
    clients = topology.clients()
    rng = RandomStreams(seed).stream("pairs")
    flows = []
    for _ in range(num_flows):
        src = clients[int(rng.integers(0, len(clients)))]
        dst = hosts[int(rng.integers(0, len(hosts)))]
        flows.append(Flow(src, dst, 1e9, router.path(src, dst)))
    cache = IncidenceCache(flows)
    cache.arrays()  # warm the per-epoch structure, as a fabric in steady state
    return flows, cache


@pytest.mark.benchmark(group="kernel micro")
def test_bench_event_engine_throughput(benchmark):
    from repro.sim.engine import Simulator

    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                sim.call_in(0.001, tick)

        sim.call_in(0.001, tick)
        sim.run()
        return count

    count = benchmark(run_events)
    assert count == 20_000


@pytest.mark.benchmark(group="kernel micro")
def test_bench_event_engine_fast_timers(benchmark):
    """Same chained-timer load on the handle-free ``call_in_fast`` path."""
    from repro.sim.engine import Simulator

    def run_events():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                sim.call_in_fast(0.001, tick)

        sim.call_in_fast(0.001, tick)
        sim.run()
        return count

    count = benchmark(run_events)
    assert count == 20_000


@pytest.mark.benchmark(group="water-filler")
@pytest.mark.parametrize("num_flows", WATERFILL_SIZES)
@pytest.mark.parametrize("solver", ["python", "numpy"])
def test_bench_max_min_water_filling(benchmark, num_flows, solver):
    from repro.network.fluid import max_min_shares

    flows, cache = _waterfill_scenario(num_flows)
    rates = benchmark(lambda: max_min_shares(flows, solver=solver, cache=cache))
    assert len(rates) == len(flows)
    assert all(rate > 0 for rate in rates.values())


def test_bench_water_filler_speedup(results_dir, request):
    """Record python→numpy speedups; the 1000-flow case must be ≥ 5×.

    The hard threshold only applies to real benchmark runs: under
    ``--benchmark-disable`` (the CI smoke run, shared noisy runners) the
    speedups are still recorded but not asserted.
    """
    from repro.network.fluid import max_min_shares

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    payload = {}
    for num_flows in WATERFILL_SIZES:
        flows, cache = _waterfill_scenario(num_flows)
        # Both backends get the warmed incidence cache (the production
        # configuration), so the ratio isolates the solver speedup.
        t_python = best_of(
            lambda: max_min_shares(flows, solver="python", cache=cache)
        )
        t_numpy = best_of(
            lambda: max_min_shares(flows, solver="numpy", cache=cache)
        )
        payload[str(num_flows)] = {
            "python_ms": t_python * 1e3,
            "numpy_ms": t_numpy * 1e3,
            "speedup": t_python / t_numpy,
        }
    save_result(results_dir, "kernel_waterfiller", payload)
    if request.config.getoption("benchmark_disable", default=False):
        pytest.skip("timing assertion skipped under --benchmark-disable")
    assert payload["1000"]["speedup"] >= 5.0, payload


def _churn_once(flows, cache, make_flow, rng):
    """One sparse churn event: retire one random flow, admit one new one."""
    victim = int(rng.integers(0, len(flows)))
    cache.remove_flow(flows[victim])
    flows[victim] = make_flow()
    cache.add_flow(flows[victim])


#: Large-F benchmark cases.  The full numpy backend only runs at 20k here:
#: a global re-solve of the 50k/100k rack workloads takes tens of seconds,
#: and ``test_bench_incremental_churn_speedup`` already times it once per
#: size — repeating it three more times per benchmark round adds nothing.
_LARGE_CASES = [
    (20_000, "numpy"),
    (20_000, "incremental"),
    (50_000, "incremental"),
    (100_000, "incremental"),
]


@pytest.mark.benchmark(group="water-filler large")
@pytest.mark.parametrize("num_flows,solver", _LARGE_CASES)
def test_bench_waterfill_fat_tree(benchmark, num_flows, solver, request):
    """Large-F solves on the k=32 fat tree, one churn event per round.

    The setup hook retires/admits one flow between rounds so the incremental
    backend measures a real delta solve (an unchanged problem would be a
    no-op) and the full backend pays the honest post-churn rebuild.
    """
    from repro.network.fluid import max_min_shares

    if num_flows > LARGE_WATERFILL_SIZES[0] and request.config.getoption(
        "benchmark_disable", default=False
    ):
        pytest.skip("only the capped F=20k case runs in the CI smoke")

    flows, cache, make_flow, rng = _warm_rack_scenario(num_flows)

    def setup():
        _churn_once(flows, cache, make_flow, rng)
        return (), {}

    rates = benchmark.pedantic(
        lambda: max_min_shares(flows, solver=solver, cache=cache),
        setup=setup,
        rounds=3,
    )
    assert len(rates) == num_flows


def test_bench_incremental_churn_speedup(results_dir, request):
    """Delta water-filling vs full numpy re-solve under sparse churn.

    For each F the steady state churns one flow per event (≤ 0.005% of the
    population — well inside the ≤ 1% sparse-churn regime), then a single
    solve is timed on each backend against the *same* post-churn state.  The
    incremental and full answers must agree to 1e-9 always; the speedup
    floor is 5× on real runs and a conservative 3× in the CI smoke, where
    only the F=20k case runs (shared runners are noisy, big cases are slow).

    Results merge into ``kernel_waterfiller.json`` next to the python→numpy
    speedups under the ``incremental_churn`` key.
    """
    import json

    from repro.network.fluid import max_min_shares

    smoke = request.config.getoption("benchmark_disable", default=False)
    sizes = LARGE_WATERFILL_SIZES[:1] if smoke else LARGE_WATERFILL_SIZES
    floor = 3.0 if smoke else 5.0

    payload = {}
    for num_flows in sizes:
        flows, cache, make_flow, rng = _warm_rack_scenario(num_flows)

        t_incremental = float("inf")
        rates_incremental = {}
        for _ in range(5):
            _churn_once(flows, cache, make_flow, rng)
            t0 = time.perf_counter()
            rates_incremental = max_min_shares(flows, solver="incremental", cache=cache)
            t_incremental = min(t_incremental, time.perf_counter() - t0)

        # One full numpy re-solve of the identical post-churn state.  A
        # single repeat is enough: the solve runs for hundreds of ms to tens
        # of seconds, far above timer noise, and the speedups have three
        # orders of magnitude of headroom over the asserted floor.
        t0 = time.perf_counter()
        rates_full = max_min_shares(flows, solver="numpy", cache=cache)
        t_full = time.perf_counter() - t0

        assert rates_incremental.keys() == rates_full.keys()
        max_diff = max(
            abs(rates_incremental[fid] - rates_full[fid]) for fid in rates_full
        )
        assert max_diff <= 1e-9, f"F={num_flows}: max rate divergence {max_diff}"

        payload[str(num_flows)] = {
            "numpy_full_ms": t_full * 1e3,
            "incremental_ms": t_incremental * 1e3,
            "speedup_incremental": t_full / t_incremental,
            "max_abs_diff": max_diff,
            "dirty_rows_max": cache.delta.dirty_rows_max,
        }

    merged = {}
    existing = results_dir / "kernel_waterfiller.json"
    if existing.exists():
        merged = json.loads(existing.read_text())
    merged["incremental_churn"] = payload
    save_result(results_dir, "kernel_waterfiller", merged)

    for num_flows in sizes:
        speedup = payload[str(num_flows)]["speedup_incremental"]
        assert speedup >= floor, (
            f"F={num_flows}: incremental speedup {speedup:.1f}x below {floor}x floor"
        )


@pytest.mark.benchmark(group="kernel micro")
def test_bench_scda_control_round(benchmark):
    from repro.core.controller import ScdaController, ScdaControllerConfig
    from repro.network.fabric import FabricSimulator
    from repro.network.flow import FlowKind
    from repro.network.transport.scda import ScdaTransport
    from repro.network.tree import TreeTopologyConfig, build_tree_topology
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomStreams

    sim = Simulator()
    topology = build_tree_topology(TreeTopologyConfig())
    controller = ScdaController(sim, topology, ScdaControllerConfig())
    fabric = FabricSimulator(sim, topology, ScdaTransport(controller))
    controller.attach_fabric(fabric)
    rng = RandomStreams(11).stream("pairs")
    hosts, clients = topology.hosts(), topology.clients()
    for _ in range(80):
        src = clients[int(rng.integers(0, len(clients)))]
        dst = hosts[int(rng.integers(0, len(hosts)))]
        fabric.start_flow(src, dst, 1e9, FlowKind.DATA)

    benchmark(lambda: controller.control_round(sim.now, force=True))
    assert controller.rounds_run >= 1


@pytest.mark.benchmark(group="kernel micro")
def test_bench_workload_generation(benchmark):
    from repro.experiments.runner import generate_workload

    scenario = scenario_pareto_poisson()
    workload = benchmark(lambda: generate_workload(scenario))
    assert len(workload) > 0
