"""Extension experiment: the SCDA-vs-RandTCP gap as a function of offered load.

The paper evaluates single operating points; this sweep varies the
Pareto/Poisson arrival rate and confirms there is no crossover — SCDA's mean
FCT stays below RandTCP's at light, moderate and heavy load — and records how
the speedup evolves.  It also reports the estimated control-plane overhead at
each load so the gain can be weighed against SCDA's message cost.
"""

import pytest

from bench_utils import save_result


@pytest.mark.benchmark(group="load sweep")
def test_bench_offered_load_sweep(benchmark, results_dir):
    from repro.core.overhead import estimate_control_overhead
    from repro.experiments.sweeps import sweep_offered_load
    from repro.network.tree import TreeTopologyConfig, build_tree_topology

    rates = (15.0, 40.0, 80.0)

    def run_sweep():
        # The sweep is planned into jobs and run on the thread backend; any
        # backend (serial/thread/process) produces bit-identical points.
        return sweep_offered_load(
            rates, sim_time=6.0, seed=2013, executor="thread", max_workers=2
        )

    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    topology = build_tree_topology(TreeTopologyConfig())
    overhead = {
        rate: estimate_control_overhead(
            topology, control_interval_s=0.01, request_rate_per_s=rate
        ).overhead_fraction_of_capacity(topology)
        for rate in rates
    }
    save_result(
        results_dir,
        "load_sweep",
        {
            "arrival_rates_per_s": list(rates),
            "executor": "thread x2",
            "speedups": result.speedups(),
            "scda_mean_fct_s": [p.candidate_mean_fct_s for p in result.points],
            "randtcp_mean_fct_s": [p.baseline_mean_fct_s for p in result.points],
            "control_overhead_fraction": overhead,
        },
    )

    # No crossover anywhere in the sweep, and the gap does not collapse at high load.
    assert result.crossover_points() == []
    assert min(result.speedups()) > 1.5
    # The control plane stays negligible even at the highest load.
    assert max(overhead.values()) < 1e-3
