"""Cluster-backend benchmark: throughput on 1 / 2 / 4 localhost workers.

On one machine the cluster backend mostly measures its own HTTP and shard
overhead — real speedup needs real machines — so this benchmark records
jobs/s per worker count plus the dispatch overhead against the in-process
``process`` backend, A/B-tests the columnar result wire against a fleet of
JSON-only (pre-codec) workers, and asserts the properties that must hold
even locally: every worker count and wire format returns bit-identical
canonical results, chunked dispatch reduces HTTP round-trips, and the codec
actually shrinks the bytes crossing the wire.
"""

import json
import os
import time

import pytest

from bench_utils import save_result, scenario_pareto_poisson

AVAILABLE_CPUS = len(os.sched_getaffinity(0))


@pytest.mark.benchmark(group="cluster scaling")
def test_bench_cluster_worker_scaling(benchmark, results_dir, tmp_path):
    from repro.exec import plan_matrix, run_jobs
    from repro.exec.cluster import ClusterExecutor
    from repro.exec.planner import with_arrival_rate
    from repro.service.worker import WorkerServer

    base = scenario_pareto_poisson().with_overrides(sim_time_s=4.0).to_spec()
    scenarios = [with_arrival_rate(base, rate) for rate in (20.0, 40.0, 60.0)]
    jobs = plan_matrix(scenarios, ["scda", "rand-tcp"])

    def run_all():
        timings = {}
        outputs = {}
        chunk_counts = {}
        wire = {}

        start = time.perf_counter()
        report = run_jobs(jobs, executor="process", max_workers=4)
        timings["process-4"] = time.perf_counter() - start
        outputs["process-4"] = {
            key: result.canonical_dict() for key, result in report.results.items()
        }

        for n_workers in (1, 2, 4):
            shard_dir = tmp_path / f"shards-{n_workers}"
            shard_dir.mkdir()
            workers = [
                WorkerServer(port=0, shard_dir=shard_dir).start()
                for _ in range(n_workers)
            ]
            hosts = ",".join(f"{w.host}:{w.port}" for w in workers)
            label = f"cluster-{n_workers}"
            try:
                start = time.perf_counter()
                report = run_jobs(
                    jobs,
                    executor=ClusterExecutor(hosts=hosts),
                    batch_size=2,
                    fallback=False,
                )
                timings[label] = time.perf_counter() - start
                outputs[label] = {
                    key: result.canonical_dict()
                    for key, result in report.results.items()
                }
                chunk_counts[label] = sum(w.stats()["chunks"] for w in workers)
                if n_workers == 2:
                    # The wire A/B's "after" side: the default columnar
                    # exchange, byte-counted on both ends.
                    client_wire = report.summary()["wire"]
                    wire["columnar"] = {
                        "wall_clock_s": timings[label],
                        "wire_bytes_per_result": (
                            client_wire["encoded_bytes"]
                            / max(1.0, client_wire["decoded_results"])
                        ),
                        "worker_wire_bytes": sum(
                            w.stats()["wire_bytes"] for w in workers
                        ),
                        "decoded_results": client_wire["decoded_results"],
                    }
            finally:
                for worker in workers:
                    worker.stop()

        # The "before" side: a fleet of JSON-only (pre-codec) workers.  The
        # columnar client negotiates down transparently; the payload bytes
        # are the plain canonical encoding.
        shard_dir = tmp_path / "shards-json"
        shard_dir.mkdir()
        workers = [
            WorkerServer(port=0, shard_dir=shard_dir, wire="json").start()
            for _ in range(2)
        ]
        hosts = ",".join(f"{w.host}:{w.port}" for w in workers)
        try:
            start = time.perf_counter()
            report = run_jobs(
                jobs,
                executor=ClusterExecutor(hosts=hosts),
                batch_size=2,
                fallback=False,
            )
            wall = time.perf_counter() - start
            outputs["cluster-2-json"] = {
                key: result.canonical_dict()
                for key, result in report.results.items()
            }
            plain_bytes = sum(
                len(json.dumps(result, sort_keys=True, separators=(",", ":")))
                for result in outputs["cluster-2-json"].values()
            )
            wire["json"] = {
                "wall_clock_s": wall,
                "wire_bytes_per_result": plain_bytes / len(jobs),
                "negotiated_down": report.summary()["wire"]["decoded_results"] == 0,
            }
        finally:
            for worker in workers:
                worker.stop()
        wire["bytes_ratio"] = (
            wire["columnar"]["wire_bytes_per_result"]
            / wire["json"]["wire_bytes_per_result"]
        )

        # Batch-size sweep on two workers: the endpoints of the chunking
        # trade-off (one HTTP round-trip per job vs per six jobs).
        batch_sweep = {}
        for batch_size in (1, 6):
            shard_dir = tmp_path / f"shards-b{batch_size}"
            shard_dir.mkdir()
            workers = [
                WorkerServer(port=0, shard_dir=shard_dir).start() for _ in range(2)
            ]
            hosts = ",".join(f"{w.host}:{w.port}" for w in workers)
            try:
                start = time.perf_counter()
                report = run_jobs(
                    jobs,
                    executor=ClusterExecutor(hosts=hosts),
                    batch_size=batch_size,
                    fallback=False,
                )
                batch_sweep[str(batch_size)] = {
                    "wall_clock_s": time.perf_counter() - start,
                    "http_chunks": sum(w.stats()["chunks"] for w in workers),
                }
                outputs[f"cluster-2-b{batch_size}"] = {
                    key: result.canonical_dict()
                    for key, result in report.results.items()
                }
            finally:
                for worker in workers:
                    worker.stop()
        return timings, outputs, chunk_counts, batch_sweep, wire

    timings, outputs, chunk_counts, batch_sweep, wire = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    jobs_per_s = {label: len(jobs) / wall for label, wall in timings.items()}
    save_result(
        results_dir,
        "cluster_scaling",
        {
            "available_cpus": AVAILABLE_CPUS,
            "jobs": len(jobs),
            "wall_clock_s": timings,
            "jobs_per_s": jobs_per_s,
            "http_chunks": chunk_counts,
            "batch_size_sweep": batch_sweep,
            "wire": wire,
            "dispatch_overhead_vs_process": (
                timings["cluster-4"] / timings["process-4"]
            ),
        },
    )

    # The determinism contract holds across the HTTP boundary at any scale,
    # any chunking, and on both wire formats.
    assert (
        outputs["process-4"]
        == outputs["cluster-1"]
        == outputs["cluster-2"]
        == outputs["cluster-4"]
        == outputs["cluster-2-json"]
        == outputs["cluster-2-b1"]
        == outputs["cluster-2-b6"]
    )
    # Chunked dispatch actually amortised round-trips: fewer chunks than jobs.
    assert all(count < len(jobs) for count in chunk_counts.values()), chunk_counts
    # The sweep endpoints bracket it: per-job dispatch pays one round-trip
    # per job, six-job chunks pay strictly fewer.
    assert batch_sweep["1"]["http_chunks"] == len(jobs), batch_sweep
    assert batch_sweep["6"]["http_chunks"] < len(jobs), batch_sweep
    # The columnar exchange really happened, really counted its bytes on
    # both ends, and really shrank the payloads; the JSON-only fleet really
    # negotiated down.
    assert wire["columnar"]["decoded_results"] == len(jobs), wire
    assert wire["json"]["negotiated_down"], wire
    assert wire["bytes_ratio"] < 0.7, wire
