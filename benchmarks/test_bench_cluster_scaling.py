"""Cluster-backend benchmark: throughput on 1 / 2 / 4 localhost workers.

On one machine the cluster backend mostly measures its own HTTP and shard
overhead — real speedup needs real machines — so this benchmark records
jobs/s per worker count plus the dispatch overhead against the in-process
``process`` backend, and asserts the properties that must hold even
locally: every worker count returns bit-identical canonical results, and
chunked dispatch (``batch_size``) reduces the number of HTTP round-trips.
"""

import time

import pytest

from bench_utils import save_result, scenario_pareto_poisson


@pytest.mark.benchmark(group="cluster scaling")
def test_bench_cluster_worker_scaling(benchmark, results_dir, tmp_path):
    from repro.exec import plan_matrix, run_jobs
    from repro.exec.cluster import ClusterExecutor
    from repro.exec.planner import with_arrival_rate
    from repro.service.worker import WorkerServer

    base = scenario_pareto_poisson().with_overrides(sim_time_s=4.0).to_spec()
    scenarios = [with_arrival_rate(base, rate) for rate in (20.0, 40.0, 60.0)]
    jobs = plan_matrix(scenarios, ["scda", "rand-tcp"])

    def run_all():
        timings = {}
        outputs = {}
        chunk_counts = {}

        start = time.perf_counter()
        report = run_jobs(jobs, executor="process", max_workers=4)
        timings["process-4"] = time.perf_counter() - start
        outputs["process-4"] = {
            key: result.canonical_dict() for key, result in report.results.items()
        }

        for n_workers in (1, 2, 4):
            shard_dir = tmp_path / f"shards-{n_workers}"
            shard_dir.mkdir()
            workers = [
                WorkerServer(port=0, shard_dir=shard_dir).start()
                for _ in range(n_workers)
            ]
            hosts = ",".join(f"{w.host}:{w.port}" for w in workers)
            label = f"cluster-{n_workers}"
            try:
                start = time.perf_counter()
                report = run_jobs(
                    jobs,
                    executor=ClusterExecutor(hosts=hosts),
                    batch_size=2,
                    fallback=False,
                )
                timings[label] = time.perf_counter() - start
                outputs[label] = {
                    key: result.canonical_dict()
                    for key, result in report.results.items()
                }
                chunk_counts[label] = sum(w.stats()["chunks"] for w in workers)
            finally:
                for worker in workers:
                    worker.stop()

        # Batch-size sweep on two workers: the endpoints of the chunking
        # trade-off (one HTTP round-trip per job vs per six jobs).
        batch_sweep = {}
        for batch_size in (1, 6):
            shard_dir = tmp_path / f"shards-b{batch_size}"
            shard_dir.mkdir()
            workers = [
                WorkerServer(port=0, shard_dir=shard_dir).start() for _ in range(2)
            ]
            hosts = ",".join(f"{w.host}:{w.port}" for w in workers)
            try:
                start = time.perf_counter()
                report = run_jobs(
                    jobs,
                    executor=ClusterExecutor(hosts=hosts),
                    batch_size=batch_size,
                    fallback=False,
                )
                batch_sweep[str(batch_size)] = {
                    "wall_clock_s": time.perf_counter() - start,
                    "http_chunks": sum(w.stats()["chunks"] for w in workers),
                }
                outputs[f"cluster-2-b{batch_size}"] = {
                    key: result.canonical_dict()
                    for key, result in report.results.items()
                }
            finally:
                for worker in workers:
                    worker.stop()
        return timings, outputs, chunk_counts, batch_sweep

    timings, outputs, chunk_counts, batch_sweep = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    jobs_per_s = {label: len(jobs) / wall for label, wall in timings.items()}
    save_result(
        results_dir,
        "cluster_scaling",
        {
            "jobs": len(jobs),
            "wall_clock_s": timings,
            "jobs_per_s": jobs_per_s,
            "http_chunks": chunk_counts,
            "batch_size_sweep": batch_sweep,
            "dispatch_overhead_vs_process": (
                timings["cluster-4"] / timings["process-4"]
            ),
        },
    )

    # The determinism contract holds across the HTTP boundary at any scale
    # and any chunking.
    assert (
        outputs["process-4"]
        == outputs["cluster-1"]
        == outputs["cluster-2"]
        == outputs["cluster-4"]
        == outputs["cluster-2-b1"]
        == outputs["cluster-2-b6"]
    )
    # Chunked dispatch actually amortised round-trips: fewer chunks than jobs.
    assert all(count < len(jobs) for count in chunk_counts.values()), chunk_counts
    # The sweep endpoints bracket it: per-job dispatch pays one round-trip
    # per job, six-job chunks pay strictly fewer.
    assert batch_sweep["1"]["http_chunks"] == len(jobs), batch_sweep
    assert batch_sweep["6"]["http_chunks"] < len(jobs), batch_sweep
