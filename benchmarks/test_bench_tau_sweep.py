"""Sensitivity of SCDA to the control interval τ.

The RM/RA computation runs every τ; the paper suggests setting τ to the
average (or maximum) RTT of a block server's flows.  This sweep checks that
SCDA's advantage over RandTCP is robust for τ between 5 ms and 100 ms, and
records how the mean FCT degrades as the control loop slows down.
"""

import pytest

from bench_utils import save_result, scenario_pareto_poisson


@pytest.mark.benchmark(group="tau sweep")
def test_bench_control_interval_sweep(benchmark, results_dir):
    from repro.baselines.schemes import RAND_TCP, SCDA_SCHEME
    from repro.exec import ExperimentJob, run_jobs

    base = scenario_pareto_poisson().with_overrides(sim_time_s=6.0)
    taus = (0.005, 0.010, 0.050, 0.100)

    # Planned up front as serialisable jobs (candidate per τ, baseline once),
    # then fanned out on the thread backend — same numbers as a serial loop.
    jobs = {
        tau: ExperimentJob(
            spec=base.with_overrides(control_interval_s=tau), scheme=SCDA_SCHEME
        )
        for tau in taus
    }
    jobs["randtcp"] = ExperimentJob(spec=base, scheme=RAND_TCP)

    def sweep():
        report = run_jobs(list(jobs.values()), executor="thread", max_workers=2)
        return {
            label: report.result_for(job).mean_fct_s() for label, job in jobs.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        results_dir,
        "tau_sweep",
        {"mean_fct_s": {str(k): v for k, v in results.items()}},
    )

    baseline_fct = results["randtcp"]
    for tau in taus:
        # SCDA keeps a clear advantage over RandTCP across the whole sweep.
        assert results[tau] < baseline_fct, f"tau={tau}: {results[tau]} vs {baseline_fct}"
    # A faster control loop should not be (much) worse than a slow one.
    assert results[0.005] <= results[0.100] * 1.25
