"""Sensitivity of SCDA to the control interval τ.

The RM/RA computation runs every τ; the paper suggests setting τ to the
average (or maximum) RTT of a block server's flows.  This sweep checks that
SCDA's advantage over RandTCP is robust for τ between 5 ms and 100 ms, and
records how the mean FCT degrades as the control loop slows down.
"""

import pytest

from bench_utils import save_result, scenario_pareto_poisson


@pytest.mark.benchmark(group="tau sweep")
def test_bench_control_interval_sweep(benchmark, results_dir):
    from repro.baselines.schemes import RAND_TCP, SCDA_SCHEME
    from repro.experiments.runner import generate_workload, run_scheme

    base = scenario_pareto_poisson().with_overrides(sim_time_s=6.0)
    workload = generate_workload(base)
    taus = (0.005, 0.010, 0.050, 0.100)

    def sweep():
        results = {}
        for tau in taus:
            scenario = base.with_overrides(control_interval_s=tau)
            results[tau] = run_scheme(scenario, SCDA_SCHEME, workload).mean_fct_s()
        results["randtcp"] = run_scheme(base, RAND_TCP, workload).mean_fct_s()
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        results_dir,
        "tau_sweep",
        {"mean_fct_s": {str(k): v for k, v in results.items()}},
    )

    baseline_fct = results["randtcp"]
    for tau in taus:
        # SCDA keeps a clear advantage over RandTCP across the whole sweep.
        assert results[tau] < baseline_fct, f"tau={tau}: {results[tau]} vs {baseline_fct}"
    # A faster control loop should not be (much) worse than a slow one.
    assert results[0.005] <= results[0.100] * 1.25
