"""Figures 13-14: general datacenter traces with bandwidth factor K = 1.

* Figure 13 — AFCT versus file size (KB).
* Figure 14 — FCT CDF.
"""

import numpy as np
import pytest

from bench_utils import save_result, scenario_datacenter

_CACHE = {}


def _comparison():
    from repro.experiments.runner import run_comparison

    if "comparison" not in _CACHE:
        _CACHE["comparison"] = run_comparison(scenario_datacenter(1.0))
    return _CACHE["comparison"]


@pytest.mark.benchmark(group="fig13-14 datacenter K=1")
def test_bench_fig13_afct_datacenter_k1(benchmark, results_dir):
    """Figure 13: AFCT vs size; SCDA avoids RandTCP's hotspot-driven spikes."""
    from repro.experiments.figures import figure13
    from repro.experiments.shapes import check_comparison_shape

    figure = benchmark.pedantic(
        lambda: figure13(comparison=_comparison()), rounds=1, iterations=1
    )
    shape = check_comparison_shape(figure.comparison)
    save_result(
        results_dir,
        "fig13",
        {"figure": "fig13", "summary": figure.summary, "all_passed": shape.all_passed},
    )
    assert shape.fct_improved
    scda_y = figure.series["SCDA"][1]
    rand_y = figure.series["RandTCP"][1]
    assert np.nanmean(scda_y) < np.nanmean(rand_y)
    # The size axis of the paper's figure runs to ~7000 KB.
    assert figure.series["SCDA"][0].max() <= 7000.0


@pytest.mark.benchmark(group="fig13-14 datacenter K=1")
def test_bench_fig14_fct_cdf_datacenter_k1(benchmark, results_dir):
    """Figure 14: FCT CDF; most SCDA flows finish much earlier."""
    from repro.experiments.figures import figure14

    figure = benchmark.pedantic(
        lambda: figure14(comparison=_comparison()), rounds=1, iterations=1
    )
    save_result(results_dir, "fig14", {"figure": "fig14", "summary": figure.summary})
    assert figure.summary["cdf_dominance"] >= 0.7
    assert figure.summary["speedup_afct"] > 1.0
