"""End-to-end scenario throughput: simulated seconds per wall-clock second.

Two complementary measurements, both recorded to
``benchmarks/results/scenario_throughput.json``:

* ``test_bench_scenario_throughput`` times full experiment runs on the
  paper's scaled-down figure scenarios (``run_scheme`` already measures the
  event loop alone, excluding workload generation and analysis) and records
  how many simulated seconds each scheme advances per wall second.
* ``test_bench_fat_tree_100k_slice`` drives the headline scale target — 100k
  concurrent flows on the k=32 fat tree — through a churn slice, then puts a
  short sub-window under cProfile and asserts the allocation kernel is no
  longer the dominant cost (< 50% of the profiled time), which is the point
  of the delta water-filler.  The profiled window is kept short because
  profiling itself multiplies the cost of the fabric's per-flow bookkeeping;
  the headline ``sim_seconds_per_wall_second`` figure comes from the
  unprofiled window.  The CI smoke run (``--benchmark-disable``) caps the
  slice at 20k flows.
"""

import cProfile
import pstats
import time

import pytest

from bench_utils import save_result, scenario_pareto_poisson, scenario_video_with_control

_payload = {}


def _record(results_dir, key, value):
    """Merge one section into scenario_throughput.json (tests run in file order)."""
    _payload[key] = value
    save_result(results_dir, "scenario_throughput", _payload)


def test_bench_scenario_throughput(results_dir):
    """Figure-scenario runs: simulated seconds advanced per wall second."""
    from repro.baselines.schemes import RAND_TCP, SCDA_SCHEME
    from repro.experiments.runner import run_scheme

    cases = [
        ("pareto_poisson/SCDA", scenario_pareto_poisson(), SCDA_SCHEME),
        ("pareto_poisson/RandTCP", scenario_pareto_poisson(), RAND_TCP),
        ("video_control/SCDA", scenario_video_with_control(), SCDA_SCHEME),
    ]
    section = {}
    for label, scenario, scheme in cases:
        result = run_scheme(scenario, scheme)
        wall = result.wall_clock_s
        section[label] = {
            "sim_time_s": scenario.total_time_s,
            "wall_clock_s": wall,
            "sim_seconds_per_wall_second": scenario.total_time_s / wall,
            "events_per_wall_second": result.extras["events_processed"] / wall,
            "kernel_recomputes": result.extras["kernel_recomputes"],
            "kernel_solves_incremental": result.extras.get(
                "kernel_solves_incremental", 0.0
            ),
        }
    _record(results_dir, "figure_scenarios", section)
    for label, row in section.items():
        assert row["sim_seconds_per_wall_second"] > 0.0, (label, row)


def test_bench_fat_tree_100k_slice(results_dir, request):
    """100k flows on the k=32 fat tree: a churn slice must not be solver-bound.

    The slice holds F long-lived rack-local flows in steady state while a few
    hundred short flows arrive and complete, which is the sparse-churn regime
    the incremental solver targets.  The initial full solve (the cold start
    every backend pays once) runs before any measurement starts.
    """
    from repro.network.fabric import FabricSimulator
    from repro.network.flow import FlowKind
    from repro.network.transport.ideal import IdealMaxMinTransport
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomStreams
    from test_bench_kernel_microbench import _fat_tree

    smoke = request.config.getoption("benchmark_disable", default=False)
    num_flows = 20_000 if smoke else 100_000
    churn_arrivals = 200
    profiled_arrivals = 25

    topology = _fat_tree()
    sim = Simulator()
    fabric = FabricSimulator(sim, topology, IdealMaxMinTransport())

    link_of = {(l.src.node_id, l.dst.node_id): l for l in topology.links}
    racks = {}
    for host in topology.hosts():
        racks.setdefault(str(host.attrs["rack"]), []).append(host)
    rack_list = sorted(racks.items())
    rng = RandomStreams(num_flows).stream("slice")

    def start_rack_local(size_bytes):
        rack_key, hosts = rack_list[int(rng.integers(0, len(rack_list)))]
        i = int(rng.integers(0, len(hosts)))
        j = int(rng.integers(0, len(hosts) - 1))
        if j >= i:
            j += 1
        src, dst = hosts[i], hosts[j]
        edge_id = f"edge-{rack_key}"
        path = [link_of[(src.node_id, edge_id)], link_of[(edge_id, dst.node_id)]]
        fabric.start_flow(src, dst, size_bytes, FlowKind.DATA, path=path)

    # Steady-state population: long-lived elephants that stay active for the
    # whole slice, admitted under one coalesced recompute (the cold start).
    with fabric.churn():
        for _ in range(num_flows):
            start_rack_local(1e12)
    assert fabric.recomputes == 1
    assert fabric.active_flow_count == num_flows

    # -- unprofiled churn window: the honest throughput number ----------------
    for n in range(churn_arrivals):
        size = float(rng.uniform(1e5, 1e6))
        sim.call_at(0.001 + 0.001 * n, start_rack_local, size)
    window_s = 0.45
    wall_start = time.perf_counter()
    sim.run(until=window_s)
    wall = time.perf_counter() - wall_start

    # -- profiled sub-window: where does the time actually go? ----------------
    for n in range(profiled_arrivals):
        size = float(rng.uniform(1e5, 1e6))
        sim.call_at(window_s + 0.001 * (n + 1), start_rack_local, size)
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run(until=window_s + 0.05)
    profiler.disable()

    stats = pstats.Stats(profiler)
    total_time = stats.total_tt
    solver_time = 0.0
    for (filename, _line, name), entry in stats.stats.items():
        if name == "max_min_shares" and filename.endswith("fluid.py"):
            solver_time = entry[3]  # inclusive (cumulative) time of the solver
    solver_fraction = solver_time / total_time if total_time > 0 else 0.0

    # Drain: every short flow must complete; only the elephants survive.
    sim.run(until=window_s + 0.8)
    assert fabric.active_flow_count == num_flows

    delta = fabric.incidence.delta
    section = {
        "num_flows": num_flows,
        "churn_arrivals": churn_arrivals + profiled_arrivals,
        "window_sim_s": window_s,
        "window_wall_s": wall,
        "sim_seconds_per_wall_second": window_s / wall,
        "solver_fraction_of_profile": solver_fraction,
        "recomputes": fabric.recomputes,
        "recomputes_coalesced": fabric.recomputes_coalesced,
        "solves_incremental": 0.0 if delta is None else float(delta.solves_incremental),
        "solves_full": 0.0 if delta is None else float(delta.solves_full),
        "dirty_rows_max": 0.0 if delta is None else float(delta.dirty_rows_max),
    }
    _record(results_dir, "fat_tree_slice", section)

    if delta is not None:
        assert delta.solves_incremental > 0, section
    assert solver_fraction < 0.5, section


def test_bench_million_session_aggregate(results_dir, request):
    """10^6 CDN video sessions on the k=32 fat tree via aggregate flows.

    The headline of the aggregate-flow subsystem: a million concurrent video
    sessions cost ``sessions / multiplicity`` fluid flow objects, so the
    scenario finishes in seconds of wall clock instead of the better part of
    an hour.  Two measurements:

    * the full million-session population (aggregate representation only),
      recording ``sim_seconds_per_wall_second`` and
      ``sessions_per_flow_object``;
    * a head-to-head at the largest session count both representations can
      afford: the *same* population run once as aggregates and once expanded
      to one discrete flow per session on the same path.  By the
      aggregate/discrete equivalence (tests/network/test_fluid_incremental.py)
      both legs produce identical fluid dynamics and identical simulated
      time, so the wall-clock ratio isolates the representation cost.  The
      full run asserts the aggregate leg is >= 20x faster.

    The CI smoke run (``--benchmark-disable``) scales both measurements down
    and relaxes the head-to-head floor (fixed per-recompute topology costs
    weigh more at small scale).
    """
    import time as _time

    from repro.network.fabric import FabricSimulator
    from repro.network.flow import FlowKind
    from repro.network.transport.ideal import IdealMaxMinTransport
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomStreams
    from test_bench_kernel_microbench import _fat_tree

    smoke = request.config.getoption("benchmark_disable", default=False)
    multiplicity = 500
    headline_sessions = 50_000 if smoke else 1_000_000
    common_sessions = 5_000 if smoke else 40_000
    min_advantage = 3.0 if smoke else 20.0
    session_size_bytes = 4e6  # one ~4 MB video per session

    topology = _fat_tree()
    link_of = {(l.src.node_id, l.dst.node_id): l for l in topology.links}
    racks = {}
    for host in topology.hosts():
        racks.setdefault(str(host.attrs["rack"]), []).append(host)
    rack_list = sorted(racks.items())

    def draw_population(num_objects, seed):
        """Rack-local (src, dst, path) triples, one per aggregate object."""
        rng = RandomStreams(seed).stream("population")
        population = []
        for _ in range(num_objects):
            rack_key, hosts = rack_list[int(rng.integers(0, len(rack_list)))]
            i = int(rng.integers(0, len(hosts)))
            j = int(rng.integers(0, len(hosts) - 1))
            if j >= i:
                j += 1
            src, dst = hosts[i], hosts[j]
            edge_id = f"edge-{rack_key}"
            path = [
                link_of[(src.node_id, edge_id)],
                link_of[(edge_id, dst.node_id)],
            ]
            population.append((src, dst, path))
        return population

    def run_population(population, expand):
        """Admit the population in one churn batch, drain, time the whole run.

        ``expand=False`` starts one flow object of ``multiplicity`` sessions
        per population entry; ``expand=True`` starts ``multiplicity`` discrete
        clones on the same path — the same sessions, represented one per flow.
        """
        sim = Simulator()
        fabric = FabricSimulator(sim, topology, IdealMaxMinTransport())
        wall_start = _time.perf_counter()
        with fabric.churn():
            for src, dst, path in population:
                for _ in range(multiplicity if expand else 1):
                    fabric.start_flow(
                        src,
                        dst,
                        session_size_bytes,
                        FlowKind.VIDEO,
                        path=path,
                        multiplicity=1 if expand else multiplicity,
                    )
        fabric.drain()
        wall = _time.perf_counter() - wall_start
        assert fabric.active_flow_count == 0
        return wall, sim.now

    # -- the million-session headline (aggregate representation only) ---------
    num_objects = headline_sessions // multiplicity
    headline_wall, headline_sim_s = run_population(
        draw_population(num_objects, seed=1), expand=False
    )

    # -- head-to-head at the largest common size ------------------------------
    common = draw_population(common_sessions // multiplicity, seed=2)
    agg_wall, agg_sim_s = run_population(common, expand=False)
    discrete_wall, discrete_sim_s = run_population(common, expand=True)
    advantage = discrete_wall / agg_wall

    section = {
        "headline_sessions": headline_sessions,
        "headline_flow_objects": num_objects,
        "sessions_per_flow_object": headline_sessions / num_objects,
        "headline_wall_s": headline_wall,
        "headline_sim_s": headline_sim_s,
        "sim_seconds_per_wall_second": headline_sim_s / headline_wall,
        "common_sessions": common_sessions,
        "common_sim_s": agg_sim_s,
        "aggregate_wall_s": agg_wall,
        "discrete_wall_s": discrete_wall,
        "aggregate_wall_advantage": advantage,
    }
    _record(results_dir, "million_session_aggregate", section)

    # Identical fluid dynamics: both representations simulate the same span.
    assert agg_sim_s == pytest.approx(discrete_sim_s, rel=1e-6), section
    assert section["sessions_per_flow_object"] == multiplicity
    assert advantage >= min_advantage, section
