"""Shared helpers for the benchmark harness.

Each benchmark regenerates one figure (or ablation) of the paper's evaluation
section on a scaled-down scenario, checks the qualitative shape of the result
(who wins, by roughly what factor) and records the headline numbers to
``benchmarks/results/<name>.json`` so EXPERIMENTS.md can be refreshed from a
benchmark run.

The scenarios are smaller than the paper's (shorter simulated time, scaled
arrival rates) so the whole suite finishes in a few minutes on a laptop.
"""

import json
import sys
from pathlib import Path

# Make the in-repo sources importable even without an installed package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Scaled-down per-figure scenario settings (seconds of workload, seed).
FIGURE_SIM_TIME_S = 12.0
FIGURE_SEED = 2013  # the paper's publication year, for flavour


def save_result(results_dir: Path, name: str, payload: dict) -> None:
    """Persist one benchmark's headline numbers as JSON."""
    results_dir.mkdir(exist_ok=True)
    path = results_dir / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=float))


def scenario_video_with_control():
    from repro.experiments.config import ScenarioConfig

    return ScenarioConfig.video_with_control(sim_time=FIGURE_SIM_TIME_S, seed=FIGURE_SEED)


def scenario_video_without_control():
    from repro.experiments.config import ScenarioConfig

    return ScenarioConfig.video_without_control(sim_time=FIGURE_SIM_TIME_S, seed=FIGURE_SEED)


def scenario_datacenter(k: float):
    from repro.experiments.config import ScenarioConfig

    return ScenarioConfig.datacenter(
        bandwidth_factor=k, sim_time=FIGURE_SIM_TIME_S, seed=FIGURE_SEED
    )


def scenario_pareto_poisson():
    from repro.experiments.config import ScenarioConfig

    return ScenarioConfig.pareto_poisson(
        sim_time=FIGURE_SIM_TIME_S, seed=FIGURE_SEED, arrival_rate_per_s=50.0
    )
