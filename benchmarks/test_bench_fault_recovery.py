"""Fault-recovery benchmark: a scripted outage + churn scenario.

Runs SCDA and RandTCP through the same dynamic world — a leaf uplink that
fails and recovers, plus a block server that departs (triggering
re-replication) and rejoins — and records the disruption/recovery headline
numbers to ``benchmarks/results/fault_recovery.json``.  Asserts the
acceptance criteria of the dynamics layer: the failure actually bit (links
failed, availability dipped) and re-replication completed before the end of
the run.
"""

import pytest

from bench_utils import save_result

SIM_TIME_S = 8.0
SEED = 2013
FAIL_AT_S = 2.0
OUTAGE_S = 2.0


def dynamic_scenario():
    from repro.experiments.spec import ScenarioSpec

    return ScenarioSpec(
        name="fault-recovery",
        seed=SEED,
        sim_time_s=SIM_TIME_S,
        drain_time_s=30.0,
        topology="leafspine",
        topology_params={"num_spines": 2, "num_leaves": 3, "hosts_per_leaf": 3,
                         "num_clients": 6},
        workload="pareto-poisson",
        workload_params={"arrival_rate_per_s": 25.0, "num_clients": 6},
        dynamics=[
            {"kind": "link-failure", "at_s": FAIL_AT_S,
             "select": "switch-uplink", "index": 0},
            {"kind": "link-recovery", "at_s": FAIL_AT_S + OUTAGE_S,
             "select": "switch-uplink", "index": 0},
            {"kind": "block-server-churn", "at_s": 3.0, "index": 1,
             "rejoin_after_s": 3.0},
        ],
    )


@pytest.mark.benchmark(group="fault recovery")
def test_bench_fault_recovery(benchmark, results_dir):
    from repro.experiments.runner import run_scheme

    spec = dynamic_scenario()
    workload = None

    def run_both():
        from repro.experiments.runner import generate_workload

        nonlocal workload
        workload = generate_workload(spec)
        return {
            "scda": run_scheme(spec, "scda", workload),
            "rand-tcp": run_scheme(spec, "rand-tcp", workload),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    payload = {"scenario": spec.name, "sim_time_s": SIM_TIME_S,
               "outage": {"at_s": FAIL_AT_S, "duration_s": OUTAGE_S},
               "schemes": {}}
    for name, result in results.items():
        extras = result.extras
        payload["schemes"][name] = {
            "mean_fct_s": result.mean_fct_s(),
            "completed_flows": result.completed_flows,
            "mean_availability": result.availability.mean_availability(),
            "disrupted_time_s": result.availability.disrupted_time_s(),
            "links_failed": extras["links_failed"],
            "flows_rerouted_on_failure": extras["flows_rerouted_on_failure"],
            "flows_aborted_on_failure": extras["flows_aborted_on_failure"],
            "servers_departed": extras["servers_departed"],
            "servers_rejoined": extras["servers_rejoined"],
            "requests_disrupted": extras["requests_disrupted"],
            "re_replications_planned": extras["re_replications_planned"],
            "re_replications_completed": extras["re_replications_completed"],
        }

        # The world actually changed...
        assert extras["links_failed"] == 2.0
        assert extras["servers_departed"] == 1.0 and extras["servers_rejoined"] == 1.0
        assert result.availability.mean_availability() < 1.0
        # ...and the cluster healed: every planned repair finished in-run.
        assert extras["re_replications_planned"] > 0
        assert extras["re_replications_completed"] == extras["re_replications_planned"]

    save_result(results_dir, "fault_recovery", payload)
