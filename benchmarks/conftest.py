"""Pytest fixtures for the benchmark harness (see ``bench_utils`` for helpers)."""

import sys
from pathlib import Path

import pytest

# Make the in-repo sources and the sibling helper module importable.
_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_SRC), str(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)

from bench_utils import RESULTS_DIR  # noqa: E402


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where every benchmark drops its headline-numbers JSON."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
