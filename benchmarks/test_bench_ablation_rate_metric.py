"""Ablation: full rate metric (eq. 2-4) versus the simplified metric (eq. 5).

The simplified metric replaces the per-flow rate sums with the measured
arrival rate, removing the need for RMs/RAs to report ``S`` upstream.  The
benchmark verifies the cheaper variant stays within a reasonable factor of the
full metric (the paper presents it as an interchangeable alternative).
"""

import pytest

from bench_utils import save_result, scenario_pareto_poisson


@pytest.mark.benchmark(group="ablation rate metric")
def test_bench_full_vs_simplified_rate_metric(benchmark, results_dir):
    from repro.baselines.schemes import RAND_TCP, SCDA_SCHEME, SCDA_SIMPLIFIED
    from repro.experiments.runner import generate_workload, run_scheme

    scenario = scenario_pareto_poisson()
    workload = generate_workload(scenario)

    def run_all():
        return {
            spec.name: run_scheme(scenario, spec, workload)
            for spec in (SCDA_SCHEME, SCDA_SIMPLIFIED, RAND_TCP)
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    mean_fcts = {name: result.mean_fct_s() for name, result in results.items()}
    save_result(results_dir, "ablation_rate_metric", {"mean_fct_s": mean_fcts})

    # Both SCDA variants clearly beat the baseline...
    assert mean_fcts["SCDA"] < mean_fcts["RandTCP"]
    assert mean_fcts["SCDA-simplified"] < mean_fcts["RandTCP"]
    # ...and the simplified metric stays within 2x of the full metric.
    assert mean_fcts["SCDA-simplified"] <= 2.0 * mean_fcts["SCDA"]
