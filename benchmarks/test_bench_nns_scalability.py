"""Metadata-plane scalability: one NNS versus several NNS behind the FES.

The paper's first design feature is removing the single-name-node bottleneck
of GFS/HDFS by hashing requests over multiple NNS through a light-weight FES.
This benchmark measures (a) how evenly the FES spreads a large request
population and (b) the per-NNS metadata load with 1, 2, 4 and 8 name nodes.
"""

import pytest

from bench_utils import save_result, scenario_pareto_poisson


@pytest.mark.benchmark(group="nns scalability")
def test_bench_fes_spreads_load_across_name_nodes(benchmark, results_dir):
    from repro.cluster.front_end import FrontEndServer

    keys = [f"client-{i}" for i in range(20_000)]

    def route_all():
        loads = {}
        for n in (1, 2, 4, 8):
            fes = FrontEndServer([f"nns-{i}" for i in range(n)])
            loads[n] = fes.load_per_name_node(keys)
        return loads

    loads = benchmark(route_all)
    imbalance = {
        n: max(per_nns.values()) / (len(keys) / n) for n, per_nns in loads.items()
    }
    save_result(results_dir, "nns_scalability_hashing", {"imbalance": imbalance})
    # With 8 NNS, the most loaded one should see < 15 % more than its fair share.
    assert imbalance[8] < 1.15
    # And the per-NNS load with 8 NNS is ~1/8 of the single-NNS load.
    assert max(loads[8].values()) < 0.2 * max(loads[1].values())


@pytest.mark.benchmark(group="nns scalability")
def test_bench_cluster_with_multiple_name_nodes(benchmark, results_dir):
    """End-to-end: the same workload served by 1 vs 4 name nodes.

    The NNS count is a first-class scenario axis (``num_name_nodes``), so the
    two runs are two serialisable jobs fanned out on the thread backend; the
    per-NNS load comes back in the results' ``extras``, not by reaching into
    live simulator state.
    """
    from repro.baselines.schemes import SCDA_SCHEME
    from repro.exec import ExperimentJob, run_jobs

    scenario = scenario_pareto_poisson().with_overrides(sim_time_s=6.0).to_spec()
    jobs = {
        n: ExperimentJob(spec=scenario.with_overrides(num_name_nodes=n), scheme=SCDA_SCHEME)
        for n in (1, 4)
    }

    def run_both():
        report = run_jobs(list(jobs.values()), executor="thread", max_workers=2)
        return {
            n: {
                "max": report.result_for(job).extras["nns_write_requests_max"],
                "total": report.result_for(job).extras["nns_write_requests_total"],
            }
            for n, job in jobs.items()
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    save_result(results_dir, "nns_scalability_cluster", {"write_requests": results})

    total_requests = results[1]["total"]
    assert results[4]["total"] == total_requests
    # Spreading over 4 NNS cuts the hottest NNS's load substantially.
    assert results[4]["max"] < 0.6 * results[1]["max"]
