"""Metadata-plane scalability: one NNS versus several NNS behind the FES.

The paper's first design feature is removing the single-name-node bottleneck
of GFS/HDFS by hashing requests over multiple NNS through a light-weight FES.
This benchmark measures (a) how evenly the FES spreads a large request
population and (b) the per-NNS metadata load with 1, 2, 4 and 8 name nodes.
"""

import pytest

from bench_utils import save_result, scenario_pareto_poisson


@pytest.mark.benchmark(group="nns scalability")
def test_bench_fes_spreads_load_across_name_nodes(benchmark, results_dir):
    from repro.cluster.front_end import FrontEndServer

    keys = [f"client-{i}" for i in range(20_000)]

    def route_all():
        loads = {}
        for n in (1, 2, 4, 8):
            fes = FrontEndServer([f"nns-{i}" for i in range(n)])
            loads[n] = fes.load_per_name_node(keys)
        return loads

    loads = benchmark(route_all)
    imbalance = {
        n: max(per_nns.values()) / (len(keys) / n) for n, per_nns in loads.items()
    }
    save_result(results_dir, "nns_scalability_hashing", {"imbalance": imbalance})
    # With 8 NNS, the most loaded one should see < 15 % more than its fair share.
    assert imbalance[8] < 1.15
    # And the per-NNS load with 8 NNS is ~1/8 of the single-NNS load.
    assert max(loads[8].values()) < 0.2 * max(loads[1].values())


@pytest.mark.benchmark(group="nns scalability")
def test_bench_cluster_with_multiple_name_nodes(benchmark, results_dir):
    """End-to-end: the same workload served by 1 vs 4 name nodes."""
    from repro.baselines.schemes import SCDA_SCHEME
    from repro.experiments.runner import build_stack, generate_workload, _issue_request

    scenario = scenario_pareto_poisson().with_overrides(sim_time_s=6.0)
    workload = generate_workload(scenario)

    def run_with(num_nns):
        stack = build_stack(scenario, SCDA_SCHEME)
        # Rebuild the cluster with the requested number of name nodes.
        from repro.cluster.cluster import StorageCluster, StorageClusterConfig

        stack.cluster = StorageCluster(
            stack.sim,
            stack.topology,
            stack.fabric,
            stack.placement,
            config=StorageClusterConfig(num_name_nodes=num_nns),
        )
        clients = stack.topology.clients()
        for request in workload:
            stack.sim.call_at(request.arrival_time_s, _issue_request, stack, request, clients)
        stack.sim.run(until=scenario.total_time_s)
        per_nns_writes = {
            nns_id: nns.write_requests for nns_id, nns in stack.cluster.name_nodes.items()
        }
        return per_nns_writes

    def run_both():
        return {1: run_with(1), 4: run_with(4)}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    save_result(results_dir, "nns_scalability_cluster", {"write_requests": results})

    single_nns_load = max(results[1].values())
    multi_nns_load = max(results[4].values())
    total_requests = sum(results[1].values())
    assert sum(results[4].values()) == total_requests
    # Spreading over 4 NNS cuts the hottest NNS's load substantially.
    assert multi_nns_load < 0.6 * single_nns_load
