"""Ablation: which half of SCDA delivers the gains?

SCDA differs from RandTCP along two axes — informed server selection and
explicit rate control.  This benchmark runs the four combinations on the same
Pareto/Poisson workload:

* RandTCP                (random selection, TCP)
* SCDA-select + TCP      (informed selection, TCP)
* Random + SCDA-rate     (random selection, explicit rates)
* SCDA                   (informed selection, explicit rates)

and checks that the full system is at least as good as either half, which is
the implicit claim behind the paper's design (both mechanisms are needed).
"""

import pytest

from bench_utils import save_result, scenario_pareto_poisson


@pytest.mark.benchmark(group="ablation components")
def test_bench_ablation_selection_vs_rate_control(benchmark, results_dir):
    from repro.baselines.schemes import (
        RAND_TCP,
        RANDOM_SELECT_SCDA,
        SCDA_SCHEME,
        SCDA_SELECT_TCP,
    )
    from repro.experiments.runner import generate_workload, run_scheme

    scenario = scenario_pareto_poisson()
    workload = generate_workload(scenario)
    specs = [RAND_TCP, SCDA_SELECT_TCP, RANDOM_SELECT_SCDA, SCDA_SCHEME]

    def run_all():
        return {spec.name: run_scheme(scenario, spec, workload) for spec in specs}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    mean_fcts = {name: result.mean_fct_s() for name, result in results.items()}
    save_result(
        results_dir,
        "ablation_components",
        {
            "scenario": scenario.name,
            "mean_fct_s": mean_fcts,
            "mean_throughput_kBps": {
                name: result.mean_throughput_kBps() for name, result in results.items()
            },
        },
    )

    # Every scheme finished the same offered workload.
    completed = {name: result.completed_flows for name, result in results.items()}
    assert len(set(completed.values())) == 1, completed

    # The full system beats the baseline and is at least as good as each half.
    assert mean_fcts["SCDA"] < mean_fcts["RandTCP"]
    assert mean_fcts["SCDA"] <= mean_fcts["SCDA-select+TCP"] * 1.05
    assert mean_fcts["SCDA"] <= mean_fcts["Random+SCDA-rate"] * 1.05
    # Each individual mechanism already helps over the baseline.
    assert mean_fcts["SCDA-select+TCP"] <= mean_fcts["RandTCP"] * 1.05
    assert mean_fcts["Random+SCDA-rate"] <= mean_fcts["RandTCP"] * 1.05
