"""Fault-tolerance overhead benchmark: retries disabled vs enabled, no faults.

The retry machinery (attempt bookkeeping, the deterministic backoff state,
the retry heap) sits on the hot path of every job even when nothing fails.
This benchmark runs the same serial job list with retries disabled and with
an aggressive policy enabled, on a fault-free ("happy") path, and records
the relative wall-clock overhead — which must stay negligible, since almost
every real run is the happy path.
"""

import time

import pytest

from bench_utils import save_result, scenario_pareto_poisson


@pytest.mark.benchmark(group="retry overhead")
def test_bench_retry_overhead_on_the_happy_path(benchmark, results_dir):
    from repro.exec import RetryPolicy, run_jobs
    from repro.exec.planner import plan_comparison

    jobs = plan_comparison(
        scenario_pareto_poisson().with_overrides(sim_time_s=6.0).to_spec()
    )
    policy = RetryPolicy(max_attempts=5, timeout_s=None)

    def run_both():
        # Interleave the two configurations and keep each one's best time,
        # so a transient load spike hits both labels instead of biasing one.
        timings = {}
        outputs = {}
        for _ in range(3):
            for label, active in (("retry_disabled", None), ("retry_enabled", policy)):
                start = time.perf_counter()
                report = run_jobs(jobs, executor="serial", policy=active)
                elapsed = time.perf_counter() - start
                timings[label] = min(timings.get(label, elapsed), elapsed)
                outputs[label] = {
                    key: result.canonical_dict() for key, result in report.results.items()
                }
                assert not report.failures
        return timings, outputs

    run_jobs(jobs, executor="serial")  # warm-up: registry bootstrap, numpy caches
    timings, outputs = benchmark.pedantic(run_both, rounds=1, iterations=1)

    overhead = timings["retry_enabled"] / timings["retry_disabled"] - 1.0
    save_result(
        results_dir,
        "retry_overhead",
        {
            "jobs": len(jobs),
            "wall_clock_s": timings,
            "retry_overhead_fraction": overhead,
            "target_overhead_fraction": 0.02,
        },
    )

    # The policy must be invisible on the happy path: identical bytes...
    assert outputs["retry_disabled"] == outputs["retry_enabled"]
    # ...and near-identical wall clock.  The target is <2%; the assertion
    # bound is looser because single-run timings on shared CI machines
    # jitter by more than the effect being measured — the recorded JSON
    # carries the actual number.
    assert overhead < 0.15, f"retry machinery cost {overhead:.1%} on the happy path"
