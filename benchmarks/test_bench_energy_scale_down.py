"""Energy: dormant-server scale-down with passive content (Section VII-C/D).

SCDA steers passive replicas onto nearly idle ("dormant") servers and keeps
active content away from them, so a large fraction of the fleet can stay in a
low-power state.  This benchmark drives a mixed active/passive workload
through the cluster, runs the dormancy manager, and compares fleet energy
with and without scale-down.
"""

import pytest

from bench_utils import save_result


def _run_energy_scenario(enable_scale_down: bool):
    from repro.cluster.cluster import StorageCluster, StorageClusterConfig
    from repro.cluster.content import Content, ContentClass
    from repro.cluster.placement import ScdaPlacement
    from repro.core.controller import ScdaController, ScdaControllerConfig
    from repro.energy.accounting import EnergyAccountant
    from repro.energy.dormant import DormancyConfig, DormancyManager
    from repro.network.fabric import FabricSimulator
    from repro.network.flow import FlowKind
    from repro.network.transport.scda import ScdaTransport
    from repro.network.tree import TreeTopologyConfig, build_tree_topology
    from repro.sim.engine import Simulator
    from repro.sim.random import RandomStreams
    from repro.sim.timers import PeriodicTimer

    MBPS = 1e6
    sim = Simulator()
    topology = build_tree_topology(
        TreeTopologyConfig(base_bandwidth_bps=200 * MBPS, num_agg=2, racks_per_agg=2,
                           hosts_per_rack=4, num_clients=4)
    )
    server_ids = [h.node_id for h in topology.hosts()]
    dormancy = DormancyManager(
        server_ids,
        DormancyConfig(
            scale_down_threshold_bps=100 * MBPS,
            max_dormant_fraction=0.5 if enable_scale_down else 0.0,
        ),
    )
    controller = ScdaController(
        sim,
        topology,
        ScdaControllerConfig(scale_down_threshold_bps=100 * MBPS),
        power_lookup=dormancy.power_of,
        dormant_lookup=dormancy.is_dormant,
    )
    fabric = FabricSimulator(sim, topology, ScdaTransport(controller))
    controller.attach_fabric(fabric)
    cluster = StorageCluster(sim, topology, fabric, ScdaPlacement(controller),
                             config=StorageClusterConfig())
    accountant = EnergyAccountant(sim, dormancy, sample_interval_s=1.0)
    accountant.start()

    def refresh_dormancy(now):
        rates = {m.host_id: m.up_bps for m in controller.tree.host_metrics()}
        utilisation = {}
        for host_id in server_ids:
            host = topology.node(host_id)
            uplink = topology.uplink_of(host)
            active_rate = sum(
                f.current_rate_bps for f in fabric.active_flows if f.uses_link(uplink)
            )
            utilisation[host_id] = active_rate / uplink.capacity_bps
        dormancy.update(rates, utilisation, now)

    PeriodicTimer(sim, 1.0, refresh_dormancy)

    # A mixed workload: interactive chatter plus passive archives.
    streams = RandomStreams(99)
    clients = topology.clients()
    rng = streams.stream("arrivals")
    t = 0.0
    while t < 20.0:
        t += float(rng.exponential(0.4))
        if t >= 20.0:
            break
        client = clients[int(rng.integers(0, len(clients)))]
        if rng.random() < 0.3:
            content = Content.create(256 * 1024.0, declared_class=ContentClass.LWLR)
            kind = FlowKind.DATA
        else:
            content = Content.create(4 * 1024 * 1024.0, declared_class=ContentClass.HWHR)
            kind = FlowKind.DATA
        sim.call_at(t, cluster.write, client, content, kind)

    sim.run(until=40.0)
    accountant.stop()
    return {
        "energy_joules": accountant.total_energy_joules,
        "avg_dormant_servers": accountant.average_dormant_servers(),
        "completed_requests": len(cluster.completed_requests()),
        "requests": len(cluster.requests),
    }


@pytest.mark.benchmark(group="energy scale-down")
def test_bench_energy_scale_down(benchmark, results_dir):
    def run_both():
        return {
            "with_scale_down": _run_energy_scenario(True),
            "without_scale_down": _run_energy_scenario(False),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    save_result(results_dir, "energy_scale_down", results)

    with_sd = results["with_scale_down"]
    without_sd = results["without_scale_down"]
    # The same workload completes either way...
    assert with_sd["completed_requests"] == without_sd["completed_requests"]
    # ...but scale-down puts servers to sleep and saves energy.
    assert with_sd["avg_dormant_servers"] > 0.0
    assert with_sd["energy_joules"] < without_sd["energy_joules"]
