"""Execution-layer benchmark: dispatch overhead across backends and pools.

Sweeps the job count (6 / 16 / 32) over serial, cold process pools
(spawn+import per call) and warm process pools (``pool="keep"``), sweeps the
chunk size on the warm pool, and A/B-tests the columnar result wire against
plain JSON.  Asserts the determinism contract that makes any of the parallel
numbers publishable (every backend/pool/wire returns bit-identical canonical
results) and — on machines with more than one usable core — that the warm
process pool actually beats serial at 16+ jobs.

On a single-core box the parallel backends cannot beat serial on CPU-bound
jobs (there is nothing to run them on); the recorded numbers then measure
pure dispatch overhead, which is exactly what the warm pool and the columnar
wire exist to shrink.  ``available_cpus`` is recorded so readers can tell
which regime a results file came from.
"""

import json
import os
import time

import pytest

from bench_utils import save_result, scenario_pareto_poisson

#: Speedup asserts only make sense with real parallelism available.
AVAILABLE_CPUS = len(os.sched_getaffinity(0))


def _jobs_of(n):
    from repro.exec import plan_matrix
    from repro.exec.planner import with_arrival_rate

    base = scenario_pareto_poisson().with_overrides(sim_time_s=2.0).to_spec()
    rates = [10.0 + 2.0 * i for i in range(n // 2)]
    jobs = plan_matrix([with_arrival_rate(base, rate) for rate in rates],
                       ["scda", "rand-tcp"])
    assert len(jobs) == n
    return jobs


def _canonical(report):
    return {key: result.canonical_dict() for key, result in report.results.items()}


@pytest.mark.benchmark(group="executor scaling")
def test_bench_executor_backends_scale_and_agree(benchmark, results_dir):
    from repro.exec import ProcessExecutor, run_jobs

    def run_all():
        sweep = {}
        outputs = {}
        warm = ProcessExecutor(max_workers=4, pool="keep")
        try:
            # Pre-warm so the sweep's warm numbers measure reuse, not the
            # first call's spawn+import cost (which the cold runs measure).
            # Four jobs so the pool reaches its full four-worker size.
            run_jobs(_jobs_of(4), executor=warm)
            warm_stats_before = warm.stats()

            for n in (6, 16, 32):
                jobs = _jobs_of(n)
                point = {}

                start = time.perf_counter()
                report = run_jobs(jobs, executor="serial")
                point["serial_s"] = time.perf_counter() - start
                outputs[f"serial-{n}"] = _canonical(report)

                start = time.perf_counter()
                report = run_jobs(jobs, executor="process", max_workers=4)
                point["process_cold_s"] = time.perf_counter() - start
                outputs[f"cold-{n}"] = _canonical(report)

                start = time.perf_counter()
                report = run_jobs(jobs, executor=warm)
                point["process_warm_s"] = time.perf_counter() - start
                outputs[f"warm-{n}"] = _canonical(report)

                point["cold_speedup_vs_serial"] = (
                    point["serial_s"] / point["process_cold_s"]
                )
                point["process_speedup_vs_serial"] = (
                    point["serial_s"] / point["process_warm_s"]
                )
                point["warm_pool_saving_s"] = (
                    point["process_cold_s"] - point["process_warm_s"]
                )
                sweep[str(n)] = point

            # Chunk-size sweep on the warm pool: larger chunks amortise
            # per-dispatch IPC at the cost of scheduling granularity.
            batch_sweep = {}
            jobs16 = _jobs_of(16)
            for batch_size in (1, 2, 4):
                start = time.perf_counter()
                report = run_jobs(jobs16, executor=warm, batch_size=batch_size)
                batch_sweep[str(batch_size)] = time.perf_counter() - start
                outputs[f"warm-16-b{batch_size}"] = _canonical(report)

            # Wire A/B on the warm pool: columnar (default) vs plain JSON.
            start = time.perf_counter()
            columnar_report = run_jobs(jobs16, executor=warm)
            columnar_s = time.perf_counter() - start
            outputs["wire-columnar"] = _canonical(columnar_report)
            columnar_wire = columnar_report.summary()["wire"]

            start = time.perf_counter()
            json_report = run_jobs(jobs16, executor=warm, wire="json")
            json_s = time.perf_counter() - start
            outputs["wire-json"] = _canonical(json_report)

            json_bytes = sum(
                len(json.dumps(result, sort_keys=True, separators=(",", ":")))
                for result in outputs["wire-json"].values()
            )
            wire = {
                "columnar_s": columnar_s,
                "json_s": json_s,
                "wire_bytes_per_result": {
                    "json": json_bytes / len(jobs16),
                    "columnar": (
                        columnar_wire["encoded_bytes"]
                        / max(1.0, columnar_wire["decoded_results"])
                    ),
                },
                "decode_s_per_result": (
                    columnar_wire["decode_s"]
                    / max(1.0, columnar_wire["decoded_results"])
                ),
            }
            wire["wire_bytes_per_result"]["ratio"] = (
                wire["wire_bytes_per_result"]["columnar"]
                / wire["wire_bytes_per_result"]["json"]
            )
            warm_stats_after = warm.stats()
        finally:
            warm.close()
        return sweep, batch_sweep, wire, outputs, warm_stats_before, warm_stats_after

    sweep, batch_sweep, wire, outputs, warm_before, warm_after = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    save_result(
        results_dir,
        "executor_scaling",
        {
            "available_cpus": AVAILABLE_CPUS,
            "jobs_sweep": sweep,
            "process_speedup_vs_serial": sweep["32"]["process_speedup_vs_serial"],
            "process_cold_speedup_vs_serial": sweep["32"]["cold_speedup_vs_serial"],
            "warm_batch_sweep_16_jobs_wall_clock_s": batch_sweep,
            "wire": wire,
            "warm_pool_stats": warm_after,
        },
    )

    # The determinism contract: any backend, any pool lifecycle, any
    # chunking, any wire — same bits.
    for n in (6, 16, 32):
        assert outputs[f"serial-{n}"] == outputs[f"cold-{n}"] == outputs[f"warm-{n}"]
    for batch_size in (1, 2, 4):
        assert outputs[f"warm-16-b{batch_size}"] == outputs["serial-16"]
    assert outputs["wire-columnar"] == outputs["wire-json"] == outputs["serial-16"]

    # The warm pool really was warm: the entire sweep ran on the workers
    # spawned by the pre-warm call — zero additional spawns, zero respawns.
    assert warm_after["spawned"] == warm_before["spawned"]
    assert warm_after["respawned"] == 0
    assert warm_after["reused"] > warm_before["reused"]

    # The codec really shrank the wire (lossless, by the asserts above).
    assert wire["wire_bytes_per_result"]["ratio"] < 0.7, wire

    # With real cores available, the warm process pool must beat serial once
    # there is enough work to amortise what dispatch overhead remains.
    if AVAILABLE_CPUS >= 2:
        for n in (16, 32):
            assert sweep[str(n)]["process_speedup_vs_serial"] > 1.0, sweep
