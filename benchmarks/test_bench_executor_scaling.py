"""Execution-layer benchmark: one job matrix on serial / thread / process.

Measures how the wall-clock of a small scheme × load matrix scales with the
executor backend, and asserts the determinism contract that makes the
parallel numbers publishable at all: every backend returns bit-identical
canonical results.
"""

import time

import pytest

from bench_utils import save_result, scenario_pareto_poisson


@pytest.mark.benchmark(group="executor scaling")
def test_bench_executor_backends_scale_and_agree(benchmark, results_dir):
    from repro.exec import plan_matrix, run_jobs
    from repro.exec.planner import with_arrival_rate

    base = scenario_pareto_poisson().with_overrides(sim_time_s=4.0).to_spec()
    scenarios = [with_arrival_rate(base, rate) for rate in (20.0, 40.0, 60.0)]
    jobs = plan_matrix(scenarios, ["scda", "rand-tcp"])

    def run_all():
        timings = {}
        outputs = {}
        for backend, workers in (("serial", 1), ("thread", 4), ("process", 4)):
            start = time.perf_counter()
            report = run_jobs(jobs, executor=backend, max_workers=workers)
            timings[backend] = time.perf_counter() - start
            outputs[backend] = {
                key: result.canonical_dict() for key, result in report.results.items()
            }
        # Chunked dispatch on the process backend: larger chunks amortise
        # per-submission IPC at the cost of scheduling granularity.
        batch_timings = {}
        for batch_size in (1, 2, 3):
            start = time.perf_counter()
            report = run_jobs(
                jobs, executor="process", max_workers=4, batch_size=batch_size
            )
            batch_timings[str(batch_size)] = time.perf_counter() - start
            outputs[f"process-b{batch_size}"] = {
                key: result.canonical_dict() for key, result in report.results.items()
            }
        return timings, outputs, batch_timings

    timings, outputs, batch_timings = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_result(
        results_dir,
        "executor_scaling",
        {
            "jobs": len(jobs),
            "wall_clock_s": timings,
            "process_speedup_vs_serial": timings["serial"] / timings["process"],
            "process_batch_sweep_wall_clock_s": batch_timings,
        },
    )

    # The determinism contract: any backend, any chunking, same bits.
    assert outputs["serial"] == outputs["thread"] == outputs["process"]
    for batch_size in (1, 2, 3):
        assert outputs[f"process-b{batch_size}"] == outputs["serial"]
