"""Execution-layer benchmark: one job matrix on serial / thread / process.

Measures how the wall-clock of a small scheme × load matrix scales with the
executor backend, and asserts the determinism contract that makes the
parallel numbers publishable at all: every backend returns bit-identical
canonical results.
"""

import time

import pytest

from bench_utils import save_result, scenario_pareto_poisson


@pytest.mark.benchmark(group="executor scaling")
def test_bench_executor_backends_scale_and_agree(benchmark, results_dir):
    from repro.exec import plan_matrix, run_jobs
    from repro.exec.planner import with_arrival_rate

    base = scenario_pareto_poisson().with_overrides(sim_time_s=4.0).to_spec()
    scenarios = [with_arrival_rate(base, rate) for rate in (20.0, 40.0, 60.0)]
    jobs = plan_matrix(scenarios, ["scda", "rand-tcp"])

    def run_all():
        timings = {}
        outputs = {}
        for backend, workers in (("serial", 1), ("thread", 4), ("process", 4)):
            start = time.perf_counter()
            report = run_jobs(jobs, executor=backend, max_workers=workers)
            timings[backend] = time.perf_counter() - start
            outputs[backend] = {
                key: result.canonical_dict() for key, result in report.results.items()
            }
        return timings, outputs

    timings, outputs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_result(
        results_dir,
        "executor_scaling",
        {
            "jobs": len(jobs),
            "wall_clock_s": timings,
            "process_speedup_vs_serial": timings["serial"] / timings["process"],
        },
    )

    # The determinism contract: any backend, same bits.
    assert outputs["serial"] == outputs["thread"] == outputs["process"]
