"""Figures 10-12: video traces *without* control flows (Section X-A1).

Same metrics as Figures 7-9 but the workload contains only the video flows,
isolating the behaviour on large transfers.
"""

import numpy as np
import pytest

from bench_utils import save_result, scenario_video_without_control

_CACHE = {}


def _comparison():
    from repro.experiments.runner import run_comparison

    if "comparison" not in _CACHE:
        _CACHE["comparison"] = run_comparison(scenario_video_without_control())
    return _CACHE["comparison"]


@pytest.mark.benchmark(group="fig10-12 video only")
def test_bench_fig10_throughput_video_nocontrol(benchmark, results_dir):
    """Figure 10: average instantaneous throughput (video-only workload)."""
    from repro.experiments.figures import figure10
    from repro.experiments.shapes import check_comparison_shape

    figure = benchmark.pedantic(
        lambda: figure10(comparison=_comparison()), rounds=1, iterations=1
    )
    shape = check_comparison_shape(figure.comparison)
    save_result(
        results_dir,
        "fig10",
        {"figure": "fig10", "summary": figure.summary, "all_passed": shape.all_passed},
    )
    assert shape.throughput_not_worse
    assert shape.fct_improved


@pytest.mark.benchmark(group="fig10-12 video only")
def test_bench_fig11_fct_cdf_video_nocontrol(benchmark, results_dir):
    """Figure 11: FCT CDF for video-only traffic."""
    from repro.experiments.figures import figure11

    figure = benchmark.pedantic(
        lambda: figure11(comparison=_comparison()), rounds=1, iterations=1
    )
    save_result(results_dir, "fig11", {"figure": "fig11", "summary": figure.summary})
    assert figure.summary["cdf_dominance"] >= 0.7
    # Paper: FCT more than 50 % lower for most flows; require a clear gap here.
    assert figure.summary["fct_reduction_fraction"] >= 0.25


@pytest.mark.benchmark(group="fig10-12 video only")
def test_bench_fig12_afct_video_nocontrol(benchmark, results_dir):
    """Figure 12: AFCT vs file size for video-only traffic."""
    from repro.experiments.figures import figure12

    figure = benchmark.pedantic(
        lambda: figure12(comparison=_comparison()), rounds=1, iterations=1
    )
    save_result(results_dir, "fig12", {"figure": "fig12", "summary": figure.summary})
    scda_y = figure.series["SCDA"][1]
    rand_y = figure.series["RandTCP"][1]
    assert np.nanmean(scda_y) < np.nanmean(rand_y)
    # Video uploads are capped at ~30 MB; the size axis must respect that.
    assert figure.series["SCDA"][0].max() <= 31.0
