"""Tests for the aggregate workload generators and multiplicity plumbing."""

import pytest

from repro.registry import WORKLOADS
from repro.workloads.aggregate import (
    DiurnalConfig,
    FlashCrowdConfig,
    MultiTenantConfig,
    generate_diurnal_workload,
    generate_flash_crowd_workload,
    generate_multi_tenant_workload,
)
from repro.workloads.traces import FlowRequest, Workload


class TestRegistration:
    def test_aggregate_workloads_are_registered(self):
        assert {"diurnal", "flash-crowd", "multi-tenant"} <= set(WORKLOADS.names())
        assert WORKLOADS.get("crowd").name == "flash-crowd"
        assert WORKLOADS.get("tenants").name == "multi-tenant"


class TestFlowRequestMultiplicity:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlowRequest(0.0, 100.0, multiplicity=0)
        with pytest.raises(ValueError):
            FlowRequest(0.0, 100.0, multiplicity=-5)

    def test_csv_round_trip_keeps_multiplicity_and_tenant(self, tmp_path):
        workload = Workload(
            [
                FlowRequest(0.5, 1e6, multiplicity=2500, tenant="cdn-a"),
                FlowRequest(1.0, 2e6),
            ],
            name="agg",
        )
        path = tmp_path / "w.csv"
        workload.to_csv(path)
        loaded = Workload.from_csv(path)
        assert loaded[0].multiplicity == 2500
        assert loaded[0].tenant == "cdn-a"
        assert loaded[1].multiplicity == 1
        assert loaded[1].tenant == ""

    def test_old_csv_without_aggregate_columns_loads(self, tmp_path):
        path = tmp_path / "old.csv"
        path.write_text(
            "arrival_time_s,size_bytes,client_index,operation,flow_kind,"
            "content_class,content_ref\n"
            "0.500000000,1000.000,0,write,data,lwhr,\n"
        )
        loaded = Workload.from_csv(path)
        assert loaded[0].multiplicity == 1
        assert loaded[0].tenant == ""

    def test_total_sessions_and_summary(self):
        workload = Workload(
            [FlowRequest(0.0, 1e6, multiplicity=999), FlowRequest(1.0, 1e6)]
        )
        assert workload.total_sessions == 1000
        assert workload.summary()["sessions"] == 1000.0


class TestDiurnal:
    def test_sessions_land_near_the_budget(self):
        cfg = DiurnalConfig(sessions_total=50_000)
        workload = generate_diurnal_workload(cfg, seed=1)
        # Poisson bin draws: the total concentrates around the budget.
        assert 0.9 * cfg.sessions_total < workload.total_sessions < 1.1 * cfg.sessions_total
        assert len(workload) < 200  # a few flow objects, not 50k

    def test_deterministic_in_the_seed(self):
        a = generate_diurnal_workload(seed=4)
        b = generate_diurnal_workload(seed=4)
        c = generate_diurnal_workload(seed=5)
        assert [(r.arrival_time_s, r.multiplicity) for r in a] == [
            (r.arrival_time_s, r.multiplicity) for r in b
        ]
        assert [r.multiplicity for r in a] != [r.multiplicity for r in c]

    def test_peak_bins_carry_more_sessions_than_trough_bins(self):
        cfg = DiurnalConfig(
            sessions_total=200_000, peak_to_trough=8.0, clients_per_bin=1
        )
        workload = generate_diurnal_workload(cfg, seed=2)
        by_bin = {}
        for r in workload:
            by_bin[r.meta["bin"]] = by_bin.get(r.meta["bin"], 0) + r.multiplicity
        # sin peaks at t = day/4 and troughs at t = 3·day/4.
        bins_per_day = int(cfg.day_length_s / cfg.bin_s)
        peak = by_bin.get(bins_per_day // 4, 0)
        trough = by_bin.get(3 * bins_per_day // 4, 0)
        assert peak > 2 * max(1, trough)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            DiurnalConfig(peak_to_trough=0.5)
        with pytest.raises(ValueError):
            DiurnalConfig(sessions_total=0)


class TestFlashCrowd:
    def test_crowd_sessions_split_exactly_across_fanout(self):
        cfg = FlashCrowdConfig(crowd_sessions=10_001, crowd_fanout=50)
        workload = generate_flash_crowd_workload(cfg, seed=3)
        crowd = [r for r in workload if r.tenant == cfg.crowd_tenant]
        assert len(crowd) == 50
        assert sum(r.multiplicity for r in crowd) == 10_001
        assert all(
            cfg.crowd_at_s <= r.arrival_time_s <= cfg.crowd_at_s + cfg.crowd_duration_s
            for r in crowd
        )

    def test_baseline_runs_for_the_whole_duration(self):
        cfg = FlashCrowdConfig()
        workload = generate_flash_crowd_workload(cfg, seed=3)
        baseline = [r for r in workload if r.tenant == cfg.baseline_tenant]
        assert baseline
        assert all(r.multiplicity == cfg.baseline_multiplicity for r in baseline)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FlashCrowdConfig(crowd_at_s=100.0, duration_s=60.0)
        with pytest.raises(ValueError):
            FlashCrowdConfig(crowd_sessions=10, crowd_fanout=50)


class TestMultiTenant:
    def test_session_budgets_are_exact_per_tenant(self):
        cfg = MultiTenantConfig(sessions_per_tenant=(4000, 2000, 1000))
        workload = generate_multi_tenant_workload(cfg, seed=9)
        per_tenant = {}
        for r in workload:
            per_tenant[r.tenant] = per_tenant.get(r.tenant, 0) + r.multiplicity
        assert per_tenant == {"gold": 4000, "silver": 2000, "bronze": 1000}

    def test_adding_a_tenant_does_not_perturb_others(self):
        base = MultiTenantConfig(
            tenants=("a", "b"), sessions_per_tenant=(1000, 500)
        )
        more = MultiTenantConfig(
            tenants=("a", "b", "c"), sessions_per_tenant=(1000, 500, 250)
        )
        wa = generate_multi_tenant_workload(base, seed=6)
        wb = generate_multi_tenant_workload(more, seed=6)

        def tenant_rows(workload, tenant):
            return [
                (r.arrival_time_s, r.size_bytes, r.multiplicity)
                for r in workload
                if r.tenant == tenant
            ]

        assert tenant_rows(wa, "a") == tenant_rows(wb, "a")
        assert tenant_rows(wa, "b") == tenant_rows(wb, "b")

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MultiTenantConfig(tenants=("a", "a"), sessions_per_tenant=(1, 1))
        with pytest.raises(ValueError):
            MultiTenantConfig(tenants=("a",), sessions_per_tenant=(1, 2))
        with pytest.raises(ValueError):
            MultiTenantConfig(tenants=("",), sessions_per_tenant=(1,))
