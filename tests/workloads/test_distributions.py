"""Tests for size distributions and arrival processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.distributions import (
    BoundedParetoSize,
    ConstantSize,
    EmpiricalSize,
    LognormalArrivals,
    LognormalSize,
    MixtureSize,
    OnOffArrivals,
    ParetoSize,
    PoissonArrivals,
    UniformSize,
)

RNG = np.random.default_rng(42)


class TestSizeDistributions:
    def test_constant(self):
        assert ConstantSize(100.0).sample(RNG) == 100.0
        assert ConstantSize(100.0).mean() == 100.0
        with pytest.raises(ValueError):
            ConstantSize(0.0)

    def test_uniform_bounds(self):
        dist = UniformSize(10.0, 20.0)
        draws = dist.sample_many(np.random.default_rng(0), 500)
        assert draws.min() >= 10.0 and draws.max() <= 20.0
        assert dist.mean() == 15.0
        with pytest.raises(ValueError):
            UniformSize(20.0, 10.0)

    def test_pareto_mean_and_minimum(self):
        dist = ParetoSize(mean_bytes=500 * 1024.0, shape=1.6)
        draws = dist.sample_many(np.random.default_rng(1), 200_000)
        assert draws.min() >= dist.scale_bytes * (1 - 1e-9)
        # Heavy tail: the sample mean converges slowly; allow 15 %.
        assert np.mean(draws) == pytest.approx(500 * 1024.0, rel=0.15)
        with pytest.raises(ValueError):
            ParetoSize(mean_bytes=1.0, shape=1.0)

    def test_bounded_pareto_respects_bounds(self):
        dist = BoundedParetoSize(1e3, 1e6, shape=1.2)
        draws = dist.sample_many(np.random.default_rng(2), 10_000)
        assert draws.min() >= 1e3 and draws.max() <= 1e6
        assert 1e3 < dist.mean() < 1e6
        with pytest.raises(ValueError):
            BoundedParetoSize(1e6, 1e3, 1.2)

    def test_lognormal_median_and_cap(self):
        dist = LognormalSize(median_bytes=1e6, sigma=0.8, cap_bytes=5e6)
        draws = dist.sample_many(np.random.default_rng(3), 50_000)
        assert np.median(draws) == pytest.approx(1e6, rel=0.05)
        assert draws.max() <= 5e6
        with pytest.raises(ValueError):
            LognormalSize(median_bytes=1e6, sigma=0.8, cap_bytes=1.0)

    def test_mixture_mean_is_weighted(self):
        dist = MixtureSize([ConstantSize(10.0), ConstantSize(100.0)], weights=[3.0, 1.0])
        assert dist.mean() == pytest.approx(32.5)
        draws = {dist.sample(np.random.default_rng(4)) for _ in range(20)}
        assert draws <= {10.0, 100.0}
        with pytest.raises(ValueError):
            MixtureSize([ConstantSize(1.0)], weights=[1.0, 2.0])

    def test_empirical_resamples_input(self):
        dist = EmpiricalSize([5.0, 10.0, 15.0])
        assert dist.sample(np.random.default_rng(5)) in (5.0, 10.0, 15.0)
        assert dist.mean() == pytest.approx(10.0)
        with pytest.raises(ValueError):
            EmpiricalSize([])

    @given(
        mean=st.floats(min_value=1e3, max_value=1e8),
        shape=st.floats(min_value=1.1, max_value=3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_pareto_draws_are_always_positive(self, mean, shape):
        dist = ParetoSize(mean, shape)
        draws = dist.sample_many(np.random.default_rng(0), 100)
        assert np.all(draws > 0)

    @given(
        low=st.floats(min_value=1e2, max_value=1e5),
        ratio=st.floats(min_value=2.0, max_value=1000.0),
        shape=st.floats(min_value=0.5, max_value=2.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounded_pareto_always_within_bounds(self, low, ratio, shape):
        dist = BoundedParetoSize(low, low * ratio, shape)
        draws = dist.sample_many(np.random.default_rng(1), 200)
        assert np.all(draws >= low * (1 - 1e-9))
        assert np.all(draws <= low * ratio * (1 + 1e-9))


class TestArrivalProcesses:
    def test_poisson_rate_matches(self):
        arrivals = PoissonArrivals(rate_per_s=50.0).arrival_times(np.random.default_rng(0), 200.0)
        assert len(arrivals) == pytest.approx(50.0 * 200.0, rel=0.1)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals.max() < 200.0

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).arrival_times(RNG, 0.0)

    def test_lognormal_mean_interarrival(self):
        arrivals = LognormalArrivals(mean_interarrival_s=0.1, sigma=1.0).arrival_times(
            np.random.default_rng(1), 500.0
        )
        assert np.mean(np.diff(arrivals)) == pytest.approx(0.1, rel=0.15)

    def test_lognormal_is_burstier_than_poisson(self):
        rng = np.random.default_rng(2)
        poisson = PoissonArrivals(10.0).arrival_times(rng, 500.0)
        bursty = LognormalArrivals(0.1, sigma=1.5).arrival_times(rng, 500.0)
        cv_poisson = np.std(np.diff(poisson)) / np.mean(np.diff(poisson))
        cv_bursty = np.std(np.diff(bursty)) / np.mean(np.diff(bursty))
        assert cv_bursty > cv_poisson

    def test_onoff_produces_sorted_times_within_duration(self):
        arrivals = OnOffArrivals(on_rate_per_s=100.0, mean_on_s=1.0, mean_off_s=2.0).arrival_times(
            np.random.default_rng(3), 100.0
        )
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals.max() < 100.0
        with pytest.raises(ValueError):
            OnOffArrivals(0.0, 1.0, 1.0)
