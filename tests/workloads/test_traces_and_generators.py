"""Tests for the workload container and the three trace generators."""

import numpy as np
import pytest

from repro.cluster.content import ContentClass
from repro.network.flow import FlowKind
from repro.workloads.datacenter_traces import DatacenterTraceConfig, generate_datacenter_workload
from repro.workloads.pareto_poisson import ParetoPoissonConfig, generate_pareto_poisson_workload
from repro.workloads.traces import FlowRequest, Operation, Workload
from repro.workloads.video_traces import VideoTraceConfig, generate_video_workload

KB = 1024.0
MB = 1024.0 * 1024.0


class TestWorkloadContainer:
    def _requests(self):
        return [
            FlowRequest(2.0, 100.0, client_index=0),
            FlowRequest(1.0, 200.0, client_index=1, flow_kind=FlowKind.CONTROL),
            FlowRequest(3.0, 300.0, client_index=0, flow_kind=FlowKind.VIDEO),
        ]

    def test_requests_are_sorted_by_arrival(self):
        workload = Workload(self._requests())
        assert [r.arrival_time_s for r in workload] == [1.0, 2.0, 3.0]

    def test_statistics(self):
        workload = Workload(self._requests())
        assert len(workload) == 3
        assert workload.total_bytes == 600.0
        assert workload.duration_s == 3.0
        assert workload.mean_size_bytes() == pytest.approx(200.0)
        summary = workload.summary()
        assert summary["requests"] == 3.0
        assert summary["max_size_bytes"] == 300.0

    def test_counts_by_kind(self):
        counts = Workload(self._requests()).counts_by_kind()
        assert counts == {"data": 1, "control": 1, "video": 1}

    def test_merge_and_filter(self):
        a = Workload(self._requests())
        b = Workload([FlowRequest(0.5, 50.0)])
        merged = a.merge(b)
        assert len(merged) == 4
        assert merged[0].arrival_time_s == 0.5
        only_video = merged.filtered(lambda r: r.flow_kind is FlowKind.VIDEO)
        assert len(only_video) == 1

    def test_csv_round_trip(self, tmp_path):
        workload = Workload(self._requests(), name="test")
        path = tmp_path / "workload.csv"
        workload.to_csv(path)
        loaded = Workload.from_csv(path)
        assert len(loaded) == len(workload)
        assert loaded[0].arrival_time_s == pytest.approx(workload[0].arrival_time_s)
        assert loaded[0].flow_kind == workload[0].flow_kind
        assert loaded[2].size_bytes == pytest.approx(workload[2].size_bytes)

    def test_json_export(self, tmp_path):
        workload = Workload(self._requests())
        path = tmp_path / "workload.json"
        workload.to_json(path)
        assert path.exists() and path.stat().st_size > 0

    def test_invalid_request_raises(self):
        with pytest.raises(ValueError):
            FlowRequest(-1.0, 100.0)
        with pytest.raises(ValueError):
            FlowRequest(1.0, 0.0)

    def test_empty_workload_statistics(self):
        workload = Workload([])
        assert workload.duration_s == 0.0
        assert workload.mean_size_bytes() == 0.0
        assert workload.offered_load_bps() == 0.0


class TestVideoTraces:
    def test_control_flows_are_below_the_5kb_boundary(self):
        cfg = VideoTraceConfig(duration_s=20.0, include_control_flows=True)
        workload = generate_video_workload(cfg, seed=1)
        controls = [r for r in workload if r.flow_kind is FlowKind.CONTROL]
        videos = [r for r in workload if r.flow_kind is FlowKind.VIDEO]
        assert controls and videos
        assert all(r.size_bytes < 5 * KB for r in controls)
        assert all(r.size_bytes >= 5 * KB for r in videos)

    def test_videos_are_capped_at_30mb(self):
        cfg = VideoTraceConfig(duration_s=60.0, video_arrival_rate_per_s=20.0)
        workload = generate_video_workload(cfg, seed=2)
        videos = [r for r in workload if r.flow_kind is FlowKind.VIDEO]
        assert max(r.size_bytes for r in videos) <= cfg.video_cap_bytes

    def test_without_control_flows_only_videos_remain(self):
        cfg = VideoTraceConfig(duration_s=20.0, include_control_flows=False)
        workload = generate_video_workload(cfg, seed=3)
        assert all(r.flow_kind is FlowKind.VIDEO for r in workload)

    def test_deterministic_per_seed(self):
        cfg = VideoTraceConfig(duration_s=10.0)
        a = generate_video_workload(cfg, seed=7)
        b = generate_video_workload(cfg, seed=7)
        assert len(a) == len(b)
        assert [r.size_bytes for r in a] == [r.size_bytes for r in b]
        c = generate_video_workload(cfg, seed=8)
        assert [r.size_bytes for r in a] != [r.size_bytes for r in c]

    def test_arrival_rate_roughly_matches_configuration(self):
        cfg = VideoTraceConfig(duration_s=100.0, video_arrival_rate_per_s=10.0, include_control_flows=False)
        workload = generate_video_workload(cfg, seed=4)
        assert len(workload) == pytest.approx(1000, rel=0.2)

    def test_client_indices_within_bounds(self):
        cfg = VideoTraceConfig(duration_s=10.0, num_clients=4)
        workload = generate_video_workload(cfg, seed=5)
        assert all(0 <= r.client_index < 4 for r in workload)

    def test_read_fraction_produces_reads(self):
        cfg = VideoTraceConfig(duration_s=60.0, read_fraction=0.5)
        workload = generate_video_workload(cfg, seed=6)
        reads = [r for r in workload if r.operation is Operation.READ]
        assert reads
        assert all(r.content_ref for r in reads)

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            VideoTraceConfig(duration_s=0.0)
        with pytest.raises(ValueError):
            VideoTraceConfig(video_min_bytes=1.0)
        with pytest.raises(ValueError):
            VideoTraceConfig(read_fraction=2.0)


class TestDatacenterTraces:
    def test_sizes_span_mice_and_elephants(self):
        cfg = DatacenterTraceConfig(duration_s=100.0, arrival_rate_per_s=50.0)
        workload = generate_datacenter_workload(cfg, seed=1)
        sizes = workload.sizes()
        assert sizes.max() <= cfg.elephant_max_bytes
        assert np.percentile(sizes, 40) < 500 * KB  # plenty of mice
        assert sizes.max() > 1 * MB  # some elephants

    def test_deterministic_per_seed(self):
        cfg = DatacenterTraceConfig(duration_s=20.0)
        a = generate_datacenter_workload(cfg, seed=3)
        b = generate_datacenter_workload(cfg, seed=3)
        assert [r.size_bytes for r in a] == [r.size_bytes for r in b]

    def test_mice_fraction_extremes(self):
        all_mice = generate_datacenter_workload(
            DatacenterTraceConfig(duration_s=30.0, mice_fraction=1.0), seed=4
        )
        assert all_mice.sizes().max() <= DatacenterTraceConfig().elephant_min_bytes

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            DatacenterTraceConfig(mice_fraction=1.5)
        with pytest.raises(ValueError):
            DatacenterTraceConfig(arrival_rate_per_s=0.0)


class TestParetoPoisson:
    def test_paper_parameters_reproduced(self):
        cfg = ParetoPoissonConfig(duration_s=50.0, arrival_rate_per_s=200.0)
        workload = generate_pareto_poisson_workload(cfg, seed=1)
        # ~200 flows/s for 50 s.
        assert len(workload) == pytest.approx(10_000, rel=0.1)
        # Every request is a positive-size write.
        assert workload.sizes().min() > 0

    def test_mean_size_close_to_500kb(self):
        cfg = ParetoPoissonConfig(duration_s=200.0, arrival_rate_per_s=100.0)
        workload = generate_pareto_poisson_workload(cfg, seed=2)
        assert workload.mean_size_bytes() == pytest.approx(500 * KB, rel=0.25)

    def test_cap_limits_the_tail(self):
        cfg = ParetoPoissonConfig(duration_s=30.0, cap_bytes=1 * MB)
        workload = generate_pareto_poisson_workload(cfg, seed=3)
        assert workload.sizes().max() <= 1 * MB

    def test_all_requests_are_writes(self):
        workload = generate_pareto_poisson_workload(ParetoPoissonConfig(duration_s=5.0), seed=4)
        assert all(r.operation is Operation.WRITE for r in workload)

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            ParetoPoissonConfig(pareto_shape=0.9)
        with pytest.raises(ValueError):
            ParetoPoissonConfig(cap_bytes=0.0)
