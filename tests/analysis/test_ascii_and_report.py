"""Tests for ASCII plotting and the benchmark report renderer."""

import json

import numpy as np
import pytest

from repro.analysis.ascii_plot import ascii_cdf_plot, ascii_line_plot, render_figure
from repro.analysis.report import BenchmarkReport, load_benchmark_results
from repro.experiments.figures import FigureData


class TestAsciiPlots:
    def test_line_plot_contains_markers_and_legend(self):
        plot = ascii_line_plot(
            {"SCDA": ([0, 1, 2], [1, 2, 3]), "RandTCP": ([0, 1, 2], [3, 2, 1])},
            width=40,
            height=10,
            x_label="time",
            y_label="rate",
            title="demo",
        )
        assert "demo" in plot
        assert "* SCDA" in plot and "o RandTCP" in plot
        assert "*" in plot and "o" in plot
        assert "time" in plot

    def test_plot_dimensions(self):
        plot = ascii_line_plot({"a": ([0, 1], [0, 1])}, width=30, height=8)
        lines = plot.splitlines()
        # legend + top border + 8 rows + bottom border + 2 label lines
        assert len(lines) == 1 + 1 + 8 + 1 + 2

    def test_non_finite_values_are_dropped(self):
        plot = ascii_line_plot({"a": ([0, 1, 2], [1.0, float("nan"), 3.0])})
        assert "(no data)" not in plot

    def test_empty_series_render_placeholder(self):
        assert "(no data)" in ascii_line_plot({}, title="empty")

    def test_too_small_plot_area_raises(self):
        with pytest.raises(ValueError):
            ascii_line_plot({"a": ([0], [0])}, width=5, height=2)

    def test_cdf_plot_runs_on_samples(self):
        plot = ascii_cdf_plot({"fct": [1.0, 2.0, 3.0, 4.0]}, title="cdf demo")
        assert "cdf demo" in plot
        assert "CDF" in plot

    def test_render_figure_uses_figure_labels(self):
        figure = FigureData("fig99", "synthetic", "File Size (MB)", "AFCT (sec)")
        figure.add_series("SCDA", np.array([1.0, 2.0]), np.array([0.5, 0.7]))
        plot = render_figure(figure)
        assert "fig99" in plot and "File Size (MB)" in plot


def _write_results(tmp_path):
    (tmp_path / "fig07.json").write_text(
        json.dumps(
            {
                "figure": "fig07",
                "summary": {
                    "candidate_mean_fct_s": 0.3,
                    "baseline_mean_fct_s": 1.1,
                    "fct_reduction_fraction": 0.72,
                    "cdf_dominance": 1.0,
                },
                "shape": {"all_passed": True},
            }
        )
    )
    (tmp_path / "ablation_components.json").write_text(
        json.dumps({"mean_fct_s": {"SCDA": 0.3, "RandTCP": 1.1}})
    )
    return tmp_path


class TestBenchmarkReport:
    def test_load_results_reads_every_json(self, tmp_path):
        results = load_benchmark_results(_write_results(tmp_path))
        assert set(results) == {"fig07", "ablation_components"}

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_benchmark_results(tmp_path / "does-not-exist")

    def test_corrupt_json_raises(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        with pytest.raises(ValueError):
            load_benchmark_results(tmp_path)

    def test_markdown_contains_figure_rows_and_ablations(self, tmp_path):
        report = BenchmarkReport.from_directory(_write_results(tmp_path))
        markdown = report.to_markdown()
        assert "| fig07 |" in markdown
        assert "72%" in markdown
        assert "ablation_components" in markdown

    def test_figures_and_ablations_partition(self, tmp_path):
        report = BenchmarkReport.from_directory(_write_results(tmp_path))
        assert report.figures() == ["fig07"]
        assert report.ablations() == ["ablation_components"]
        assert report.all_shapes_passed()

    def test_write_markdown(self, tmp_path):
        report = BenchmarkReport.from_directory(_write_results(tmp_path))
        out = report.write_markdown(tmp_path / "report.md")
        assert out.read_text().startswith("# SCDA reproduction")

    def test_all_shapes_passed_false_without_verdicts(self):
        assert not BenchmarkReport({}).all_shapes_passed()
