"""Tests for the ANALYSES registry and the store-driven analyses.

These build a synthetic result store by hand (fabricated jobs + results, no
simulation), so they pin the analysis layer's behaviour fast and in
isolation from the simulator.
"""

import json

import pytest

from repro.analysis.report import (
    render_store_report_markdown,
    run_analysis,
    store_report,
)
from repro.exec.job import ExperimentJob
from repro.exec.store import ResultStore
from repro.experiments.spec import ScenarioSpec
from repro.metrics.comparison import SchemeResult
from repro.metrics.records import FlowRecord
from repro.metrics.throughput import ThroughputSample, ThroughputSeries
from repro.network.flow import FlowKind
from repro.registry import ANALYSES, RegistryError


def make_result(scheme, fcts, extras=None):
    records = [
        FlowRecord(i, 1e6, 0.0, 0.0, fct, FlowKind.DATA, "a", "b")
        for i, fct in enumerate(fcts)
    ]
    series = ThroughputSeries()
    series.add(ThroughputSample(0.0, 1, 100 * 8 * 1024, 100 * 8 * 1024))
    return SchemeResult(
        scheme=scheme, records=records, throughput=series, extras=dict(extras or {})
    )


@pytest.fixture
def replication_store(tmp_path):
    """Two schemes × two replicates, tagged the way plan_replications tags."""
    store = ResultStore(tmp_path / "rep.jsonl")
    spec = ScenarioSpec.pareto_poisson(sim_time_s=2.0, seed=1)
    for replicate, seed in ((0, 1), (1, 999)):
        for scheme, role, fct in (("scda", "candidate", 1.0 + 0.1 * replicate),
                                  ("rand-tcp", "baseline", 2.0 + 0.2 * replicate)):
            job = ExperimentJob(
                spec=spec, scheme=scheme, seed=seed,
                tags={"ensemble": "ens", "replicate": replicate,
                      "replicates": 2, "role": role},
            )
            display = "SCDA" if scheme == "scda" else "RandTCP"
            store.put(job, make_result(display, [fct], {"links_failed": 1.0}))
    return store


@pytest.fixture
def sweep_store(tmp_path):
    """Two sweep points tagged the way the sweep planners tag."""
    store = ResultStore(tmp_path / "sweep.jsonl")
    base = ScenarioSpec.pareto_poisson(sim_time_s=2.0, seed=1)
    for rate in (10.0, 20.0):
        spec = base.with_overrides(
            workload_params={**base.workload_params, "arrival_rate_per_s": rate}
        )
        for scheme, role, fct in (("scda", "candidate", 1.0),
                                  ("rand-tcp", "baseline", 2.0 * rate / 10.0)):
            job = ExperimentJob(
                spec=spec, scheme=scheme,
                tags={"parameter": rate, "role": role},
            )
            display = "SCDA" if scheme == "scda" else "RandTCP"
            store.put(job, make_result(display, [fct]))
    return store


class TestRegistry:
    def test_builtin_analyses_registered(self):
        assert {"scheme-comparison", "sweep-summary", "fct-cdf",
                "availability"} <= set(ANALYSES.names())

    def test_unknown_analysis_lists_available(self, replication_store):
        with pytest.raises(RegistryError, match="scheme-comparison"):
            run_analysis(replication_store, "tail-latency")

    def test_in_all_registries_under_analyses(self):
        from repro.registry import ALL_REGISTRIES

        assert "analyses" in dict(ALL_REGISTRIES)


class TestSchemeComparison:
    def test_artifact_structure_and_cis(self, replication_store):
        artifact = run_analysis(replication_store, "scheme-comparison")
        assert artifact["analysis"] == "scheme-comparison"
        block = artifact["ensembles"]["ens"]
        scda = block["schemes"]["scda"]
        assert scda["replicates"] == 2
        assert scda["seeds"] == [1, 999]
        assert scda["mean_fct_s"]["mean"] == pytest.approx(1.05)
        comparison = block["comparison"]
        assert comparison["candidate"] == "SCDA"
        assert comparison["replicates"] == 2
        speedup = comparison["summary"]["speedup_afct"]
        assert speedup["mean"] == pytest.approx((2.0 + 2.2 / 1.1) / 2)
        assert speedup["ci_lower"] <= speedup["mean"] <= speedup["ci_upper"]

    def test_artifact_round_trips_through_json(self, replication_store):
        artifact = run_analysis(replication_store, "scheme-comparison")
        assert json.loads(json.dumps(artifact)) == artifact

    def test_bootstrap_method_plumbs_through(self, replication_store):
        artifact = run_analysis(
            replication_store, "scheme-comparison", method="bootstrap"
        )
        stats = artifact["ensembles"]["ens"]["schemes"]["scda"]["mean_fct_s"]
        assert stats["method"] == "bootstrap"

    def test_cached_untagged_replicate_zero_still_forms_an_ensemble(self, tmp_path):
        """A plain run cached replicate 0 without ensemble tags; growing the
        ensemble later must still produce the paired comparison block."""
        store = ResultStore(tmp_path / "grown.jsonl")
        spec = ScenarioSpec.pareto_poisson(sim_time_s=2.0, seed=1)
        # Replicate 0 as a plain comparison would store it: role tag only.
        for scheme, role in (("scda", "candidate"), ("rand-tcp", "baseline")):
            job = ExperimentJob(spec=spec, scheme=scheme, tags={"role": role})
            display = "SCDA" if scheme == "scda" else "RandTCP"
            store.put(job, make_result(display, [1.0]))
        # Replicates 1..2 as plan_replications tags them.
        for replicate, seed in ((1, 55), (2, 66)):
            for scheme, role in (("scda", "candidate"), ("rand-tcp", "baseline")):
                job = ExperimentJob(
                    spec=spec, scheme=scheme, seed=seed,
                    tags={"ensemble": spec.name, "replicate": replicate,
                          "role": role},
                )
                display = "SCDA" if scheme == "scda" else "RandTCP"
                store.put(job, make_result(display, [1.0 + 0.1 * replicate]))
        artifact = run_analysis(store, "scheme-comparison")
        block = artifact["ensembles"]["pareto-poisson"]
        assert block["comparison"]["replicates"] == 3

    def test_scenario_variants_sharing_a_name_are_not_replicates(self, tmp_path):
        """Two edited variants of one scenario (same name, both replicate 0)
        must be skipped, not averaged as if they were replication noise."""
        store = ResultStore(tmp_path / "variants.jsonl")
        for sim_time in (1.0, 2.0):
            spec = ScenarioSpec.pareto_poisson(sim_time_s=sim_time, seed=11)
            for scheme, role in (("scda", "candidate"), ("rand-tcp", "baseline")):
                job = ExperimentJob(spec=spec, scheme=scheme, tags={"role": role})
                display = "SCDA" if scheme == "scda" else "RandTCP"
                store.put(job, make_result(display, [sim_time]))
        artifact = run_analysis(store, "scheme-comparison")
        assert artifact["ensembles"] == {}
        assert artifact["non_replicate_entries_skipped"] == 4

    def test_sweep_store_is_not_mistaken_for_an_ensemble(self, sweep_store):
        """Sweep points vary the operating point, not the seed: the
        ensemble-shaped analyses must skip them (visibly), never aggregate
        spread across arrival rates into a 'replication' CI."""
        artifact = run_analysis(sweep_store, "scheme-comparison")
        assert artifact["ensembles"] == {}
        assert artifact["non_replicate_entries_skipped"] == 4
        cdf = run_analysis(sweep_store, "fct-cdf")
        assert cdf["ensembles"] == {} and cdf["non_replicate_entries_skipped"] == 4
        availability = run_analysis(sweep_store, "availability")
        assert availability["ensembles"] == {}


class TestSweepSummary:
    def test_points_reassembled_in_parameter_order(self, sweep_store):
        artifact = run_analysis(sweep_store, "sweep-summary", parameter_name="rate")
        assert artifact["analysis"] == "sweep-summary"
        assert [p["parameter"] for p in artifact["points"]] == [10.0, 20.0]
        assert artifact["points"][0]["speedup"] == pytest.approx(2.0)
        assert artifact["points"][1]["speedup"] == pytest.approx(4.0)
        assert json.loads(json.dumps(artifact)) == artifact

    def test_untagged_entries_are_counted_not_folded(self, replication_store):
        artifact = run_analysis(replication_store, "sweep-summary")
        assert artifact["points"] == []
        assert artifact["entries_without_parameter"] == 4
        assert artifact["parameter_collisions"] == 0

    def test_sweeps_of_different_scenarios_do_not_mix(self, tmp_path):
        """Two sweeps sharing a store stay separated by ensemble label."""
        store = ResultStore(tmp_path / "shared.jsonl")
        for name, seed, fct in (("scenario-a", 1, 1.0), ("scenario-b", 2, 9.0)):
            spec = ScenarioSpec.pareto_poisson(sim_time_s=2.0, seed=seed).with_overrides(
                name=name
            )
            for scheme, role, value in (("scda", "candidate", fct),
                                        ("rand-tcp", "baseline", 2 * fct)):
                job = ExperimentJob(spec=spec, scheme=scheme,
                                    tags={"parameter": 15.0, "role": role})
                display = "SCDA" if scheme == "scda" else "RandTCP"
                store.put(job, make_result(display, [value]))
        artifact = run_analysis(store, "sweep-summary")
        # Same parameter value in both sweeps: two points, not one mixture.
        assert [(p["ensemble"], p["parameter"]) for p in artifact["points"]] == [
            ("scenario-a", 15.0), ("scenario-b", 15.0)]
        assert artifact["parameter_collisions"] == 0

    def test_colliding_points_are_counted_not_overwritten(self, tmp_path):
        """Two same-scenario sweeps colliding on a value are made visible."""
        store = ResultStore(tmp_path / "collide.jsonl")
        base = ScenarioSpec.pareto_poisson(sim_time_s=2.0, seed=1)
        for control_interval in (0.01, 0.02):  # two specs, same name + parameter tag
            spec = base.with_overrides(control_interval_s=control_interval)
            for scheme, role in (("scda", "candidate"), ("rand-tcp", "baseline")):
                job = ExperimentJob(spec=spec, scheme=scheme,
                                    tags={"parameter": 15.0, "role": role})
                display = "SCDA" if scheme == "scda" else "RandTCP"
                store.put(job, make_result(display, [1.0]))
        artifact = run_analysis(store, "sweep-summary")
        assert len(artifact["points"]) == 1
        assert artifact["parameter_collisions"] == 2


class TestFctCdf:
    def test_pooled_cdf_per_scheme(self, replication_store):
        artifact = run_analysis(replication_store, "fct-cdf")
        curves = artifact["ensembles"]["ens"]
        assert set(curves) == {"scda", "rand-tcp"}
        scda = curves["scda"]
        assert scda["replicates"] == 2
        assert scda["flows"] == 2  # pooled across both replicates
        assert len(scda["x"]) == len(scda["y"]) > 0
        assert scda["y"][-1] == pytest.approx(1.0)
        assert json.loads(json.dumps(artifact)) == artifact


class TestAvailability:
    def test_counters_sum_over_replicates(self, replication_store):
        artifact = run_analysis(replication_store, "availability")
        scda = artifact["ensembles"]["ens"]["scda"]
        assert scda["links_failed"] == 2.0  # 1.0 per replicate
        assert scda["mean_availability"]["mean"] == 1.0
        assert json.loads(json.dumps(artifact)) == artifact


class TestStoreReport:
    def test_composes_all_analyses_and_round_trips(self, replication_store):
        document = store_report(replication_store)
        assert set(document["analyses"]) == set(ANALYSES.names())
        assert document["entries"] == 4
        assert json.loads(json.dumps(document)) == document

    def test_subset_and_params(self, replication_store):
        document = store_report(
            replication_store,
            analyses=["scheme-comparison"],
            params={"scheme-comparison": {"ensemble": "ens"}},
        )
        assert set(document["analyses"]) == {"scheme-comparison"}

    def test_markdown_rendering_mentions_schemes(self, replication_store):
        document = store_report(replication_store)
        markdown = render_store_report_markdown(document)
        assert "Scheme comparison" in markdown
        assert "SCDA" in markdown and "RandTCP" in markdown
        assert "±" in markdown
