"""Tests for the rate-metric step-response analysis."""

import pytest

from repro.analysis.convergence import (
    ConvergenceResult,
    rate_metric_step_response,
    rounds_to_converge,
)
from repro.core.rate_metric import ScdaParams

MBPS = 1e6


class TestStepResponse:
    def test_converges_to_equal_share_after_flow_increase(self):
        result = rate_metric_step_response(
            capacity_bps=100 * MBPS, num_flows_before=1, num_flows_after=4, rounds=60
        )
        assert result.converged
        assert result.rates_bps[-1] == pytest.approx(0.95 * 25 * MBPS, rel=0.05)

    def test_converges_after_flow_decrease(self):
        result = rate_metric_step_response(
            capacity_bps=100 * MBPS, num_flows_before=8, num_flows_after=2, rounds=60
        )
        assert result.converged
        assert result.rates_bps[-1] == pytest.approx(0.95 * 50 * MBPS, rel=0.05)

    def test_convergence_is_fast(self):
        # The paper's pitch is "realtime (milliseconds interval)" adaptation;
        # with τ = 10 ms the allocation should settle within ~10 intervals.
        rounds = rounds_to_converge(100 * MBPS, num_flows_before=1, num_flows_after=5)
        assert rounds is not None
        assert rounds <= 10

    def test_transient_overshoot_is_bounded(self):
        result = rate_metric_step_response(
            capacity_bps=100 * MBPS, num_flows_before=1, num_flows_after=10, rounds=80
        )
        # Right after the step the old advertised rate over-subscribes the link,
        # but the advertised *per-flow* rate must never exceed the old single-flow rate.
        assert result.max_overshoot_fraction <= 10.0
        assert result.queue_bytes[-1] == pytest.approx(0.0, abs=1e3)

    def test_step_to_zero_flows_recovers_full_capacity(self):
        result = rate_metric_step_response(
            capacity_bps=100 * MBPS, num_flows_before=4, num_flows_after=0, rounds=40
        )
        assert result.converged
        assert result.rates_bps[-1] == pytest.approx(0.95 * 100 * MBPS, rel=0.02)

    def test_alpha_scales_the_target(self):
        params = ScdaParams(alpha=0.8)
        result = rate_metric_step_response(
            100 * MBPS, 1, 2, rounds=60, params=params
        )
        assert result.rates_bps[-1] == pytest.approx(0.8 * 50 * MBPS, rel=0.05)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            rate_metric_step_response(100 * MBPS, -1, 2)
        with pytest.raises(ValueError):
            rate_metric_step_response(100 * MBPS, 1, 2, rounds=1)

    def test_result_dataclass_properties(self):
        result = ConvergenceResult(rates_bps=[10.0, 10.0], target_bps=10.0, tolerance=0.05)
        assert result.converged
        assert result.rounds_to_converge == 0
        assert result.max_overshoot_fraction == 0.0

    def test_never_converging_trajectory(self):
        result = ConvergenceResult(rates_bps=[1.0, 100.0, 1.0], target_bps=10.0, tolerance=0.01)
        assert not result.converged
        assert result.rounds_to_converge is None
