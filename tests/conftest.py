"""Shared fixtures for the test suite."""

import pytest

from repro.network.topology import Topology
from repro.network.tree import TreeTopologyConfig, build_tree_topology
from repro.sim.engine import Simulator

MBPS = 1e6


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def small_tree_config() -> TreeTopologyConfig:
    """A small 3-tier tree: 2 aggs x 2 racks x 2 hosts = 8 block servers."""
    return TreeTopologyConfig(
        base_bandwidth_bps=100 * MBPS,
        bandwidth_factor=3.0,
        num_agg=2,
        racks_per_agg=2,
        hosts_per_rack=2,
        num_clients=4,
        internal_delay_s=0.001,
        client_delay_s=0.005,
    )


@pytest.fixture
def small_tree(small_tree_config) -> Topology:
    """The topology built from :func:`small_tree_config`."""
    return build_tree_topology(small_tree_config)


@pytest.fixture
def tiny_line_topology() -> Topology:
    """A minimal client -- switch -- host line used by focused unit tests."""
    topo = Topology("tiny-line")
    switch = topo.add_switch("sw", level=1)
    host = topo.add_host("bs-0", level=0)
    client = topo.add_client("ucl-0")
    topo.add_duplex_link(host, switch, 100 * MBPS, 0.001)
    topo.add_duplex_link(client, switch, 100 * MBPS, 0.001)
    topo.validate()
    return topo
