"""Tests for replication planning and ensemble execution/rebuild."""

import pytest

from repro.exec import (
    ensemble_from_store,
    plan_comparison,
    plan_replications,
    replicate_seed,
    run_replicated_comparison,
    run_replications,
)
from repro.exec.store import ResultStore, ResultStoreError
from repro.experiments.spec import ScenarioSpec
from repro.sim.random import derive_seed


def tiny_spec(seed=3):
    return ScenarioSpec.pareto_poisson(sim_time_s=1.0, seed=seed).with_overrides(
        drain_time_s=10.0
    )


class TestReplicateSeed:
    def test_replicate_zero_is_the_base_seed(self):
        assert replicate_seed(42, 0) == 42

    def test_later_replicates_derive_from_identity(self):
        assert replicate_seed(42, 1) == derive_seed(42, "replicate", "1")
        assert replicate_seed(42, 2) == derive_seed(42, "replicate", "2")
        assert replicate_seed(42, 1) != replicate_seed(42, 2)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            replicate_seed(42, -1)


class TestPlanReplications:
    def test_replicate_major_order_and_tags(self):
        jobs = plan_replications(tiny_spec(seed=7), seeds=3)
        assert len(jobs) == 6
        assert [j.tags["replicate"] for j in jobs] == [0, 0, 1, 1, 2, 2]
        assert [j.tags["role"] for j in jobs[:2]] == ["candidate", "baseline"]
        assert all(j.tags["ensemble"] == "pareto-poisson" for j in jobs)
        assert all(j.tags["replicates"] == 3 for j in jobs)

    def test_seeds_follow_replicate_identity(self):
        jobs = plan_replications(tiny_spec(seed=7), seeds=2)
        assert jobs[0].seed == 7 and jobs[1].seed == 7
        assert jobs[2].seed == derive_seed(7, "replicate", "1")

    def test_replicate_zero_shares_cache_key_with_plain_comparison(self):
        spec = tiny_spec(seed=7)
        replicated = plan_replications(spec, seeds=2)
        plain = plan_comparison(spec)
        # Tags differ, content keys must not: the single-seed run is the
        # ensemble's replicate 0, so the store caches it once.
        assert replicated[0].key == plain[0].key
        assert replicated[1].key == plain[1].key

    def test_custom_ensemble_label_and_many_schemes(self):
        jobs = plan_replications(
            tiny_spec(), schemes=("scda", "rand-tcp", "ideal"), seeds=1,
            ensemble="abc",
        )
        assert [j.tags["role"] for j in jobs] == ["scheme-0", "scheme-1", "scheme-2"]
        assert all(j.tags["ensemble"] == "abc" for j in jobs)

    def test_validation(self):
        with pytest.raises(ValueError, match="seeds"):
            plan_replications(tiny_spec(), seeds=0)
        with pytest.raises(ValueError, match="scheme"):
            plan_replications(tiny_spec(), schemes=())


class TestRunReplications:
    def test_serial_equals_thread_through_the_store(self, tmp_path):
        spec = tiny_spec(seed=5)
        serial_store = ResultStore(tmp_path / "serial.jsonl")
        thread_store = ResultStore(tmp_path / "thread.jsonl")
        serial = run_replicated_comparison(spec, seeds=2, store=serial_store)
        threaded = run_replicated_comparison(
            spec, seeds=2, executor="thread", max_workers=2, store=thread_store
        )
        assert serial_store.results_by_key() == thread_store.results_by_key()
        # And the folded ensembles agree (modulo wall clock, which to_dict
        # keeps; compare canonical payloads per replicate).
        for a, b in zip(serial.candidate.results, threaded.candidate.results):
            assert a.canonical_dict() == b.canonical_dict()

    def test_replicate_zero_is_the_single_seed_run(self):
        from repro.experiments.runner import run_scenario

        spec = tiny_spec(seed=5)
        ensemble = run_replicated_comparison(spec, seeds=1)
        single = run_scenario(spec)
        assert ensemble.n_replicates == 1
        assert (
            ensemble.comparisons()[0].candidate.canonical_dict()
            == single.candidate.canonical_dict()
        )
        assert ensemble.comparisons()[0].summary() == single.summary()

    def test_run_replications_orders_by_scheme(self):
        spec = tiny_spec(seed=5)
        ensembles = run_replications(spec, schemes=("scda", "rand-tcp"), seeds=1)
        assert [e.scheme for e in ensembles] == ["SCDA", "RandTCP"]
        assert ensembles[0].seeds == [5]


class TestEnsembleFromStore:
    def test_round_trips_a_stored_ensemble(self, tmp_path):
        spec = tiny_spec(seed=5)
        store = ResultStore(tmp_path / "store.jsonl")
        ran = run_replicated_comparison(spec, seeds=2, store=store)
        rebuilt = ensemble_from_store(store)
        assert rebuilt.scenario == "pareto-poisson"
        assert rebuilt.candidate.seeds == ran.candidate.seeds
        for a, b in zip(rebuilt.candidate.results, ran.candidate.results):
            assert a.canonical_dict() == b.canonical_dict()

    def test_empty_store_rejected(self, tmp_path):
        with pytest.raises(ResultStoreError, match="no entries"):
            ensemble_from_store(tmp_path / "missing.jsonl")

    def test_unknown_ensemble_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        run_replicated_comparison(tiny_spec(seed=5), seeds=1, store=store)
        with pytest.raises(ResultStoreError, match="unknown ensemble"):
            ensemble_from_store(store, ensemble="nope")
