"""Tests for the chaos executor: injection, crash recovery, degradation.

The process-pool cases spawn real worker processes (and really kill some of
them), so they use short scenarios; they are the in-repo equivalent of the
CI chaos smoke step.
"""

import pytest

from repro.exec.chaos import ChaosConfig, ChaosExecutor
from repro.exec.executors import ProcessExecutor, resolve_executor, run_jobs
from repro.exec.job import ExperimentJob
from repro.exec.planner import plan_comparison
from repro.exec.retry import RetryPolicy
from repro.exec.store import ResultStore
from repro.experiments.spec import ScenarioSpec
from repro.registry import EXECUTORS, RegistryError


def tiny_jobs(sim_time_s=1.0, seed=3):
    return plan_comparison(ScenarioSpec.pareto_poisson(sim_time_s=sim_time_s, seed=seed))


def canonical(report):
    return {key: result.canonical_dict() for key, result in report.results.items()}


def chaos_config(**overrides):
    """A config with explicit rates so each test injects exactly one fault."""
    base = dict(crash_rate=0.0, error_rate=0.0, delay_rate=0.0, corrupt_rate=0.0)
    base.update(overrides)
    return ChaosConfig(**base)


class TestResolution:
    def test_wrapper_syntax_resolves_inner_backend(self):
        backend = resolve_executor("chaos:serial")
        assert isinstance(backend, ChaosExecutor)
        assert backend.name == "chaos:serial"
        assert backend.inner.name == "serial"

    def test_wrapper_passes_max_workers_through(self):
        backend = resolve_executor("chaos:thread", max_workers=3)
        assert backend.inner.max_workers == 3
        assert backend.effective_workers(10) == 3

    def test_chaos_is_listed_in_the_registry(self):
        assert "chaos" in EXECUTORS.names()

    def test_unknown_inner_backend_errors(self):
        with pytest.raises(RegistryError, match="serail"):
            resolve_executor("chaos:serail")

    def test_non_wrapper_executors_reject_the_colon_syntax(self):
        with pytest.raises(RegistryError, match="does not wrap"):
            resolve_executor("serial:thread")

    def test_chaos_cannot_wrap_chaos(self):
        with pytest.raises(RegistryError, match="cannot wrap each other"):
            ChaosExecutor(ChaosExecutor("serial"))


class TestConfig:
    def test_rates_must_be_probabilities_summing_to_at_most_one(self):
        with pytest.raises(ValueError):
            ChaosConfig(crash_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(crash_rate=0.6, error_rate=0.6)
        with pytest.raises(ValueError):
            ChaosConfig(delay_s=-1.0)

    def test_injection_decision_is_deterministic(self):
        config = ChaosConfig(seed=5)
        key = "ab" * 32
        decisions = [config.injection_for(key, 1) for _ in range(3)]
        assert len(set(decisions)) == 1
        assert ChaosConfig(seed=5).injection_for(key, 1) == decisions[0]

    def test_first_attempt_only_spares_retries(self):
        config = chaos_config(error_rate=1.0)  # default first_attempt_only=True
        assert config.injection_for("cd" * 32, 1) == "error"
        assert config.injection_for("cd" * 32, 2) is None

    def test_rate_one_always_injects(self):
        config = chaos_config(crash_rate=1.0, first_attempt_only=False)
        for attempt in (1, 2, 3):
            assert config.injection_for("ef" * 32, attempt) == "crash"

    def test_round_trips_losslessly(self):
        config = ChaosConfig(crash_rate=0.1, error_rate=0.2, delay_rate=0.3,
                             corrupt_rate=0.2, delay_s=1.5, first_attempt_only=False,
                             seed=42)
        assert ChaosConfig.from_dict(config.to_dict()) == config


class TestInProcessInjection:
    def test_injected_crash_on_serial_raises_instead_of_exiting(self):
        # In-process backends must never really os._exit: the "crash"
        # surfaces as a (retryable) ChaosCrashError failure.
        chaos = ChaosExecutor("serial", config=chaos_config(crash_rate=1.0))
        report = run_jobs(tiny_jobs()[:1], executor=chaos, raise_on_error=False)
        assert report.failures[0].exc_type == "ChaosCrashError"

    def test_corrupt_payloads_are_detected_and_retried(self):
        jobs = tiny_jobs()
        plain = run_jobs(jobs, executor="serial")
        chaos = ChaosExecutor("serial", config=chaos_config(corrupt_rate=1.0))
        report = run_jobs(
            jobs, executor=chaos,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.001),
        )
        assert canonical(report) == canonical(plain)
        assert report.retried == len(jobs)

    def test_corrupt_payload_without_retry_is_a_classified_failure(self):
        chaos = ChaosExecutor("serial", config=chaos_config(corrupt_rate=1.0))
        report = run_jobs(tiny_jobs()[:1], executor=chaos, raise_on_error=False)
        assert report.failures[0].exc_type == "CorruptResultError"

    def test_mixed_chaos_on_threads_converges_to_serial_bits(self):
        jobs = tiny_jobs()
        plain = run_jobs(jobs, executor="serial")
        chaos = ChaosExecutor("thread", max_workers=2, config=ChaosConfig(
            crash_rate=0.3, error_rate=0.3, delay_rate=0.0, corrupt_rate=0.4, seed=9))
        report = run_jobs(
            jobs, executor=chaos,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
        )
        assert canonical(report) == canonical(plain)


class TestProcessCrashRecovery:
    def test_killed_workers_are_recovered_and_results_match_serial(self):
        # The tentpole scenario: every job's first attempt genuinely kills
        # its worker process (os._exit inside the worker); the pool must
        # reap, respawn and reschedule — and the recovered run's bytes must
        # equal an undisturbed serial run's.
        jobs = tiny_jobs()
        plain = run_jobs(jobs, executor="serial")
        chaos = ChaosExecutor("process", max_workers=2,
                              config=chaos_config(crash_rate=1.0))
        events = []
        report = run_jobs(
            jobs, executor=chaos,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
            progress=lambda event, job, detail: events.append(event),
        )
        assert canonical(report) == canonical(plain)
        assert not report.failures
        assert events.count("retry") == len(jobs)

    def test_crash_without_retries_is_a_worker_crash_failure(self):
        chaos = ChaosExecutor("process", max_workers=1,
                              config=chaos_config(crash_rate=1.0))
        report = run_jobs(tiny_jobs()[:1], executor=chaos, raise_on_error=False)
        assert report.failures[0].exc_type == "WorkerCrashError"
        assert "died" in report.failures[0].error

    def test_timeout_kills_hung_worker_and_classifies(self):
        # delay_s far beyond the budget simulates a hung job; the pool must
        # kill the worker and classify the failure as JobTimeoutError.
        chaos = ChaosExecutor("process", max_workers=1,
                              config=chaos_config(delay_rate=1.0, delay_s=60.0))
        report = run_jobs(
            tiny_jobs()[:1], executor=chaos,
            policy=RetryPolicy(max_attempts=1, timeout_s=1.0),
            raise_on_error=False,
        )
        failure = report.failures[0]
        assert failure.exc_type == "JobTimeoutError"
        assert failure.elapsed_s >= 1.0

    def test_timed_out_job_recovers_on_retry(self):
        # first_attempt_only: the retry runs without the injected delay, so
        # the job completes within budget and matches the serial bytes.
        jobs = tiny_jobs()[:1]
        plain = run_jobs(jobs, executor="serial")
        chaos = ChaosExecutor("process", max_workers=1,
                              config=chaos_config(delay_rate=1.0, delay_s=60.0))
        report = run_jobs(
            jobs, executor=chaos,
            policy=RetryPolicy(max_attempts=2, timeout_s=1.0, base_delay_s=0.001),
        )
        assert canonical(report) == canonical(plain)
        assert report.retried == 1


class TestGracefulDegradation:
    def test_exhausted_process_pool_falls_back_and_completes(self):
        # Unrecoverable process backend (crashes on every attempt, zero
        # respawn budget): run_jobs must degrade to the fallback chain and
        # still deliver the serial bytes.
        jobs = tiny_jobs()
        plain = run_jobs(jobs, executor="serial")
        crashy = ChaosExecutor(
            ProcessExecutor(max_workers=2, max_respawns=0),
            config=chaos_config(crash_rate=1.0, first_attempt_only=False),
        )
        events = []
        report = run_jobs(
            jobs, executor=crashy,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.001),
            progress=lambda event, job, detail: events.append(event),
        )
        assert canonical(report) == canonical(plain)
        assert len(report.fallbacks) >= 1
        assert report.fallbacks[0]["from"] == "chaos:process"
        assert report.summary()["fallbacks"] == len(report.fallbacks)
        assert events.count("degraded") == len(report.fallbacks)

    def test_fallback_disabled_propagates_the_backend_error(self):
        from repro.exec.retry import ExecutorDegradedError

        crashy = ChaosExecutor(
            ProcessExecutor(max_workers=2, max_respawns=0),
            config=chaos_config(crash_rate=1.0, first_attempt_only=False),
        )
        with pytest.raises(ExecutorDegradedError):
            run_jobs(tiny_jobs(), executor=crashy,
                     policy=RetryPolicy(max_attempts=2, base_delay_s=0.001),
                     fallback=False)

    def test_fallback_chain_is_process_thread_serial(self):
        from repro.exec.executors import SerialExecutor, ThreadExecutor

        process = ProcessExecutor(max_workers=4)
        thread = process.fallback_backend()
        assert isinstance(thread, ThreadExecutor)
        assert thread.max_workers == 4
        serial = thread.fallback_backend()
        assert isinstance(serial, SerialExecutor)
        assert serial.fallback_backend() is None

    def test_chaos_falls_back_to_its_plain_inner(self):
        chaos = ChaosExecutor("thread", max_workers=2)
        inner = chaos.fallback_backend()
        assert inner.name == "thread"
        assert inner.payload_transform is None


class TestCheckpointing:
    def test_chaos_store_matches_serial_store_and_resumes_clean(self, tmp_path):
        # The acceptance criterion: a chaos:process run with injected
        # crashes completes, its store equals the serial store on the
        # canonical comparison surface, and a re-run recomputes nothing.
        jobs = tiny_jobs()
        serial_store = tmp_path / "serial.jsonl"
        chaos_store = tmp_path / "chaos.jsonl"
        run_jobs(jobs, executor="serial", store=str(serial_store))
        chaos = ChaosExecutor("process", max_workers=2,
                              config=chaos_config(crash_rate=1.0))
        first = run_jobs(
            jobs, executor=chaos,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
            store=str(chaos_store), store_fsync=True,
        )
        assert (first.computed, first.cached) == (len(jobs), 0)
        a, b = ResultStore(serial_store), ResultStore(chaos_store)
        assert a.results_by_key() == b.results_by_key()
        assert sorted(a.keys()) == sorted(b.keys())
        # Interrupted-run semantics: resuming against the checkpointed store
        # recomputes zero jobs even under renewed chaos.
        second = run_jobs(
            jobs, executor=chaos,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
            store=str(chaos_store),
        )
        assert (second.computed, second.cached) == (0, len(jobs))

    def test_store_meta_records_backend_and_attempts(self, tmp_path):
        path = tmp_path / "meta.jsonl"
        jobs = tiny_jobs()[:1]
        chaos = ChaosExecutor("serial", config=chaos_config(error_rate=1.0))
        run_jobs(jobs, executor=chaos,
                 policy=RetryPolicy(max_attempts=2, base_delay_s=0.001),
                 store=str(path))
        entry = ResultStore(path).entry(jobs[0].key)
        assert entry["meta"]["executor"] == "chaos:serial"
        assert entry["meta"]["attempts"] == 2


class TestPayloadHygiene:
    def test_dunder_tags_never_reach_the_hydrated_job(self):
        # Runtime envelopes travel as dunder keys; a payload carrying them
        # must hydrate back to the exact job (same content key, clean tags).
        job = tiny_jobs()[0].with_tags(role="candidate")
        payload = job.to_dict()
        payload["tags"]["__attempt__"] = 3
        rebuilt = ExperimentJob.from_dict(payload)
        assert rebuilt.key == job.key
        assert rebuilt.tags == job.tags

    def test_chaos_envelope_is_invisible_to_the_job_key(self):
        from repro.exec.chaos import CHAOS_PAYLOAD_KEY

        job = tiny_jobs()[0]
        chaos = ChaosExecutor("serial", config=chaos_config(error_rate=1.0))
        payload = chaos._transform(job.to_dict(), attempt=1)
        assert CHAOS_PAYLOAD_KEY in payload
        assert ExperimentJob.from_dict(payload).key == job.key

    def test_transform_leaves_uninjected_attempts_untouched(self):
        job = tiny_jobs()[0]
        chaos = ChaosExecutor("serial", config=chaos_config(error_rate=1.0))
        assert chaos._transform(job.to_dict(), attempt=2) == job.to_dict()
