"""Tests for the JSONL result store."""

import json

import pytest

from repro.exec.job import ExperimentJob
from repro.exec.store import ResultStore, ResultStoreError
from repro.experiments.spec import ScenarioSpec
from repro.metrics.comparison import SchemeResult
from repro.metrics.records import FlowRecord
from repro.network.flow import FlowKind


def make_job(seed=5, scheme="scda"):
    return ExperimentJob(
        spec=ScenarioSpec.pareto_poisson(sim_time_s=2.0, seed=seed), scheme=scheme
    )


def make_result(scheme="SCDA", n_records=2):
    records = [
        FlowRecord(
            flow_id=i,
            size_bytes=1000.0 * (i + 1),
            created_at_s=0.1 * i,
            started_at_s=0.1 * i + 0.01,
            finished_at_s=0.1 * i + 0.5,
            kind=FlowKind.DATA,
            src=f"ucl-{i}",
            dst="bs-0",
        )
        for i in range(n_records)
    ]
    return SchemeResult(
        scheme=scheme, records=records, sla_violations=1, wall_clock_s=3.14,
        extras={"events_processed": 42.0},
    )


class TestResultStore:
    def test_missing_file_reads_empty(self, tmp_path):
        store = ResultStore(tmp_path / "none.jsonl")
        assert len(store) == 0
        assert store.get("deadbeef") is None

    def test_put_then_get_round_trips_canonically(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        job, result = make_job(), make_result()
        key = store.put(job, result)
        assert key == job.key
        assert job in store
        loaded = store.get(job)
        # Canonical: everything but the wall clock round-trips.
        assert loaded.canonical_dict() == result.canonical_dict()
        assert loaded.wall_clock_s == 0.0

    def test_wall_clock_is_kept_as_line_meta(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        job = make_job()
        store.put(job, make_result(), meta={"executor": "serial"})
        entry = store.entry(job.key)
        assert entry["meta"]["executor"] == "serial"
        assert entry["meta"]["wall_clock_s"] == pytest.approx(3.14)
        assert "wall_clock_s" not in entry["result"]

    def test_reopened_store_sees_previous_writes(self, tmp_path):
        path = tmp_path / "r.jsonl"
        job = make_job()
        ResultStore(path).put(job, make_result())
        fresh = ResultStore(path)
        assert job in fresh
        assert fresh.get(job).scheme == "SCDA"

    def test_results_by_key_excludes_meta(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        job = make_job()
        store.put(job, make_result(), meta={"executor": "process"})
        by_key = store.results_by_key()
        assert set(by_key) == {job.key}
        assert "meta" not in by_key[job.key]

    def test_identical_reput_appends_and_compact_dedupes(self, tmp_path):
        # A restarted run recomputing a job it already stored appends an
        # identical line (last write wins on load); compact dedupes it.
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        job = make_job()
        store.put(job, make_result(n_records=3))
        store.put(job, make_result(n_records=3))
        assert len(path.read_text().splitlines()) == 2
        reloaded = ResultStore(path)
        assert len(reloaded.get(job).records) == 3
        assert reloaded.compact() == 1
        assert len(path.read_text().splitlines()) == 1
        assert len(ResultStore(path).get(job).records) == 3

    def test_conflicting_reput_raises(self, tmp_path):
        # The same content key computing *different* numbers is exactly the
        # nondeterminism the store exists to rule out: refuse loudly.
        store = ResultStore(tmp_path / "r.jsonl")
        job = make_job()
        store.put(job, make_result(n_records=1))
        with pytest.raises(ResultStoreError, match="nondeterminism"):
            store.put(job, make_result(n_records=3))
        # The conflicting line was never written.
        assert len((tmp_path / "r.jsonl").read_text().splitlines()) == 1

    def test_fsync_append_durability_option(self, tmp_path):
        # fsync=True (constructor default or per-put override) must not
        # change what is written, only when it hits stable storage.
        job, result = make_job(), make_result()
        plain = ResultStore(tmp_path / "plain.jsonl")
        plain.put(job, result)
        durable = ResultStore(tmp_path / "durable.jsonl", fsync=True)
        durable.put(job, result)
        per_call = ResultStore(tmp_path / "per_call.jsonl")
        per_call.put(job, result, fsync=True)
        contents = {
            p.read_text() for p in tmp_path.glob("*.jsonl")
        }
        assert len(contents) == 1  # byte-identical lines on all three paths

    def test_truncated_final_line_is_dropped_and_recomputable(self, tmp_path):
        # The signature of a run killed mid-append: resume must survive it.
        path = tmp_path / "crashed.jsonl"
        job = make_job()
        ResultStore(path).put(job, make_result())
        with path.open("a") as fh:
            fh.write('{"key": "zzz", "job": {"trunc')  # partial append
        with pytest.warns(UserWarning, match="truncated final"):
            store = ResultStore(path)
            assert len(store) == 1
        assert job in store  # the intact entry survives

    def test_corrupt_interior_line_raises_with_location(self, tmp_path):
        from repro.exec.store import ResultStoreError

        path = tmp_path / "bad.jsonl"
        path.write_text('not json\n{"key": "a", "result": {}}\n')
        with pytest.raises(ResultStoreError, match="bad.jsonl:1"):
            len(ResultStore(path))

    def test_store_lines_are_plain_json(self, tmp_path):
        path = tmp_path / "r.jsonl"
        ResultStore(path).put(make_job(), make_result())
        entry = json.loads(path.read_text().splitlines()[0])
        assert set(entry) == {"key", "job", "result", "meta"}


class TestDictPut:
    """``put`` accepting the pre-encoded canonical/to_dict forms directly.

    The dispatch paths already hold the plain dict (decoded off the wire);
    re-hydrating to a SchemeResult only to re-serialise it was pure overhead.
    The contract: a dict put writes the byte-identical line a SchemeResult
    put would have.
    """

    def test_dict_put_writes_the_identical_line(self, tmp_path):
        job, result = make_job(), make_result()
        a = ResultStore(tmp_path / "obj.jsonl")
        a.put(job, result)
        b = ResultStore(tmp_path / "dict.jsonl")
        b.put(job, result.to_dict())
        assert (tmp_path / "obj.jsonl").read_text() == (
            tmp_path / "dict.jsonl"
        ).read_text()

    def test_canonical_dict_put_defaults_wall_clock_to_zero(self, tmp_path):
        job, result = make_job(), make_result()
        store = ResultStore(tmp_path / "r.jsonl")
        store.put(job, result.canonical_dict())  # no wall_clock_s key
        entry = store.entry(job.key)
        assert entry["meta"]["wall_clock_s"] == 0.0
        assert store.get(job).canonical_dict() == result.canonical_dict()

    def test_dict_put_missing_required_keys_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        bad = make_result().canonical_dict()
        del bad["records"]
        with pytest.raises(ResultStoreError, match="records"):
            store.put(make_job(), bad)
        assert len(store) == 0

    def test_dict_put_conflict_detection_unchanged(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        job = store_job = make_job()
        store.put(job, make_result(n_records=1).to_dict())
        with pytest.raises(ResultStoreError, match="nondeterminism"):
            store.put(store_job, make_result(n_records=3).to_dict())
        # Mixed forms conflict-check against each other too.
        store.put(job, make_result(n_records=1))  # identical: appends fine
        with pytest.raises(ResultStoreError, match="nondeterminism"):
            store.put(job, make_result(n_records=2))

    def test_dict_put_wall_clock_lands_in_meta_not_result(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        job = make_job()
        store.put(job, make_result().to_dict(), meta={"executor": "worker"})
        entry = store.entry(job.key)
        assert entry["meta"]["wall_clock_s"] == pytest.approx(3.14)
        assert entry["meta"]["executor"] == "worker"
        assert "wall_clock_s" not in entry["result"]


class TestCrashSafeRewrite:
    def _populated(self, tmp_path):
        path = tmp_path / "r.jsonl"
        store = ResultStore(path)
        store.put(make_job(seed=1), make_result(n_records=1))
        store.put(make_job(seed=2), make_result(n_records=2))
        # A restarted/concurrent run appended a duplicate line for seed=1;
        # simulate the on-disk append directly, then reload to pick it up.
        first_line = path.read_text().splitlines()[0]
        with path.open("a") as fh:
            fh.write(first_line + "\n")
        store.reload()
        return path, store

    def test_failed_replace_leaves_original_jsonl_intact(self, tmp_path, monkeypatch):
        import repro.exec.store as store_module

        path, store = self._populated(tmp_path)
        before = path.read_bytes()

        def boom(src, dst):
            raise OSError("simulated crash mid-compact")

        monkeypatch.setattr(store_module.os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            store.compact()
        # Original store byte-identical, temp file cleaned up, still loadable.
        assert path.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp"))
        assert len(ResultStore(path)) == 2

    def test_failed_write_leaves_original_jsonl_intact(self, tmp_path, monkeypatch):
        from pathlib import Path

        path, store = self._populated(tmp_path)
        before = path.read_bytes()
        real_write_text = Path.write_text

        def boom(self, *args, **kwargs):
            if self.name.endswith(".compact.tmp"):
                real_write_text(self, "partial garbage", encoding="utf-8")
                raise OSError("ENOSPC: simulated")
            return real_write_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "write_text", boom)
        with pytest.raises(OSError, match="ENOSPC"):
            store.compact()
        assert path.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp"))

    def test_successful_compact_still_dedupes(self, tmp_path):
        path, store = self._populated(tmp_path)
        assert store.compact() == 2
        assert len(path.read_text().splitlines()) == 2


class TestQueryApi:
    def _store_with_tags(self, tmp_path):
        store = ResultStore(tmp_path / "q.jsonl")
        for seed, scheme, role in ((1, "scda", "candidate"), (1, "rand-tcp", "baseline"),
                                   (2, "scda", "candidate"), (2, "rand-tcp", "baseline")):
            replicate = seed - 1
            job = ExperimentJob(
                spec=ScenarioSpec.pareto_poisson(sim_time_s=2.0, seed=seed),
                scheme=scheme,
                tags={"ensemble": "ens-a", "replicate": replicate, "role": role},
            )
            store.put(job, make_result(scheme="SCDA" if scheme == "scda" else "RandTCP"))
        return store

    def test_entries_sorted_is_deterministic_and_typed(self, tmp_path):
        store = self._store_with_tags(tmp_path)
        entries = store.entries_sorted()
        assert len(entries) == 4
        assert [e.replicate for e in entries] == [0, 0, 1, 1]
        assert [e.scheme_name for e in entries] == ["rand-tcp", "scda"] * 2
        assert entries[0].ensemble == "ens-a"
        assert entries[0].result.completed_flows == 2

    def test_query_by_scheme_and_tags(self, tmp_path):
        store = self._store_with_tags(tmp_path)
        assert len(store.query(scheme="scda")) == 2
        assert len(store.query(tags={"role": "baseline"})) == 2
        assert len(store.query(scheme="scda", tags={"replicate": 1})) == 1
        assert store.query(scheme="nonexistent") == []

    def test_query_by_spec_fields(self, tmp_path):
        store = self._store_with_tags(tmp_path)
        assert len(store.query(spec_fields={"seed": 1})) == 2
        assert len(store.query(spec_fields={"topology": "tree"})) == 4
        with pytest.raises(ResultStoreError, match="unknown ScenarioSpec field"):
            store.query(spec_fields={"not_a_field": 1})

    def test_query_predicate(self, tmp_path):
        store = self._store_with_tags(tmp_path)
        picked = store.query(predicate=lambda e: e.job.seed == 2)
        assert len(picked) == 2

    def test_group_by_ensemble_and_schemes(self, tmp_path):
        store = self._store_with_tags(tmp_path)
        groups = store.group_by_ensemble()
        assert set(groups) == {"ens-a"}
        assert len(groups["ens-a"]) == 4
        assert store.schemes() == ["rand-tcp", "scda"]

    def test_untagged_entries_group_under_scenario_name(self, tmp_path):
        store = ResultStore(tmp_path / "plain.jsonl")
        store.put(make_job(), make_result())
        groups = store.group_by_ensemble()
        assert set(groups) == {"pareto-poisson"}
        assert groups["pareto-poisson"][0].replicate == 0
        # The stored job round-trips back to a runnable job with the same key.
        entry = groups["pareto-poisson"][0]
        assert entry.job.key == entry.key


class TestMerge:
    def shard(self, tmp_path, name, seeds, scheme="scda"):
        store = ResultStore(tmp_path / name)
        for seed in seeds:
            store.put(make_job(seed=seed, scheme=scheme), make_result())
        return store

    def test_merge_unions_disjoint_shards(self, tmp_path):
        a = self.shard(tmp_path, "a.jsonl", seeds=[1, 2])
        b = self.shard(tmp_path, "b.jsonl", seeds=[3])
        merged = ResultStore(tmp_path / "merged.jsonl")
        added = merged.merge([a.path, b.path])
        assert added == 3
        assert merged.results_by_key() == {**a.results_by_key(), **b.results_by_key()}

    def test_merge_dedups_identical_entries(self, tmp_path):
        a = self.shard(tmp_path, "a.jsonl", seeds=[1, 2])
        b = self.shard(tmp_path, "b.jsonl", seeds=[2, 3])  # seed 2 in both
        merged = ResultStore(tmp_path / "merged.jsonl")
        assert merged.merge([a, b]) == 3
        assert len(merged) == 3

    def test_merge_into_existing_store_skips_known_keys(self, tmp_path):
        merged = self.shard(tmp_path, "merged.jsonl", seeds=[1])
        shard = self.shard(tmp_path, "a.jsonl", seeds=[1, 2])
        assert merged.merge([shard]) == 1  # only seed 2 is new
        assert len(merged) == 2

    def test_conflicting_results_abort_the_merge(self, tmp_path):
        job = make_job(seed=7)
        a = ResultStore(tmp_path / "a.jsonl")
        a.put(job, make_result())
        b = ResultStore(tmp_path / "b.jsonl")
        b.put(job, make_result(n_records=3))  # same key, different result
        merged = self.shard(tmp_path, "merged.jsonl", seeds=[1])
        before = merged.path.read_bytes()
        with pytest.raises(ResultStoreError, match="shard merge conflict"):
            merged.merge([a, b])
        # atomic: the target store is untouched on conflict
        assert merged.path.read_bytes() == before
        assert len(ResultStore(merged.path)) == 1

    def test_merge_is_atomic_and_compacted(self, tmp_path):
        a = self.shard(tmp_path, "a.jsonl", seeds=[1, 2])
        merged = ResultStore(tmp_path / "merged.jsonl")
        merged.merge([a])
        lines = merged.path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["key"] for line in lines)

    def test_merged_classmethod(self, tmp_path):
        a = self.shard(tmp_path, "a.jsonl", seeds=[1])
        b = self.shard(tmp_path, "b.jsonl", seeds=[2])
        merged = ResultStore.merged([a.path, b.path], into=tmp_path / "out.jsonl")
        assert len(merged) == 2
        # and the written file reloads identically
        assert ResultStore(merged.path).results_by_key() == merged.results_by_key()

    def test_merge_empty_shard_list_is_a_noop(self, tmp_path):
        merged = self.shard(tmp_path, "merged.jsonl", seeds=[1])
        before = merged.path.read_bytes()
        assert merged.merge([]) == 0
        assert merged.path.read_bytes() == before
