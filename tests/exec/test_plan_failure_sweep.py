"""Tests for the fault-recovery sweep planner."""

import pytest

from repro.exec import plan_failure_sweep
from repro.experiments.spec import ScenarioSpec
from repro.sim.random import derive_seed


def base_spec():
    return ScenarioSpec.pareto_poisson(sim_time_s=4.0, seed=9)


class TestPlanFailureSweep:
    def test_two_jobs_per_outage_duration(self):
        jobs = plan_failure_sweep([0.5, 1.0], base=base_spec())
        assert len(jobs) == 4
        assert [j.tags["role"] for j in jobs] == ["candidate", "baseline"] * 2
        assert [j.tags["parameter"] for j in jobs] == [0.5, 0.5, 1.0, 1.0]

    def test_points_carry_failure_and_recovery_events(self):
        [job, _] = plan_failure_sweep([0.75], base=base_spec(), fail_at_s=1.5)[:2]
        kinds = [e["kind"] for e in job.spec.dynamics]
        assert kinds == ["link-failure", "link-recovery"]
        fail, recover = job.spec.dynamics
        assert fail["at_s"] == 1.5
        assert recover["at_s"] == 2.25
        assert fail["select"] == "switch-uplink"

    def test_default_failure_time_is_a_quarter_into_the_run(self):
        [job, _] = plan_failure_sweep([1.0], base=base_spec())[:2]
        assert job.spec.dynamics[0]["at_s"] == pytest.approx(1.0)  # 4.0 * 0.25

    def test_outage_durations_must_be_positive(self):
        with pytest.raises(ValueError):
            plan_failure_sweep([0.0], base=base_spec())
        with pytest.raises(ValueError):
            plan_failure_sweep([], base=base_spec())

    def test_jobs_at_different_durations_have_distinct_keys(self):
        jobs = plan_failure_sweep([0.5, 1.0], base=base_spec())
        assert len({j.key for j in jobs}) == 4

    def test_reseed_per_point_uses_identity_derivation(self):
        spec = base_spec()
        jobs = plan_failure_sweep([0.5], base=spec, reseed_per_point=True)
        expected = derive_seed(spec.seed, "sweep", "failure", "outage=0.5")
        assert all(j.seed == expected for j in jobs)

    def test_spec_json_round_trip_preserves_the_script(self):
        [job, _] = plan_failure_sweep([0.5], base=base_spec())[:2]
        clone = ScenarioSpec.from_json(job.spec.to_json())
        assert clone.dynamics == job.spec.dynamics
        assert len(clone.build_dynamics()) == 2
