"""Cross-backend determinism and equivalence for aggregate-flow scenarios.

Two contracts:

* an aggregate scenario (multiplicity-weighted workload, tenant tags)
  produces bit-identical canonical results on the serial and process
  executors — multiplicity and tenant survive the wire and the store;
* at small N, an aggregate population's session-weighted summary statistics
  match the equivalent discrete population run through the same pipeline.
"""

import json

import pytest

from repro.exec.executors import run_jobs
from repro.exec.job import ExperimentJob
from repro.exec.store import ResultStore
from repro.experiments.runner import run_scheme
from repro.experiments.spec import ScenarioSpec
from repro.workloads.traces import FlowRequest, Operation, Workload


def aggregate_spec(seed=7):
    return ScenarioSpec(
        name="aggregate-smoke",
        seed=seed,
        sim_time_s=4.0,
        drain_time_s=20.0,
        topology="fattree",
        topology_params={"k": 4, "num_clients": 4},
        workload="multi-tenant",
        workload_params={
            "sessions_per_tenant": [300, 150, 75],
            "arrival_rate_per_s": 1.0,
        },
    )


def canonical(report):
    return {key: result.canonical_dict() for key, result in report.results.items()}


class TestAggregateCrossBackend:
    def test_process_matches_serial_line_identical(self, tmp_path):
        jobs = [ExperimentJob(spec=aggregate_spec(), scheme="scda")]
        serial_store = tmp_path / "serial.jsonl"
        process_store = tmp_path / "process.jsonl"
        serial = run_jobs(jobs, executor="serial", store=str(serial_store))
        processed = run_jobs(jobs, executor="process", max_workers=2, store=str(process_store))
        assert canonical(serial) == canonical(processed)

        def stable_lines(path):
            lines = []
            for line in path.read_text().splitlines():
                entry = json.loads(line)
                # Host/backend-dependent line meta; the result payload itself
                # must be identical.
                entry.get("meta", {}).pop("wall_clock_s", None)
                entry.get("meta", {}).pop("executor", None)
                lines.append(json.dumps(entry, sort_keys=True))
            return sorted(lines)

        assert stable_lines(serial_store) == stable_lines(process_store)

    def test_tenant_extras_survive_the_store(self, tmp_path):
        job = ExperimentJob(spec=aggregate_spec(), scheme="scda")
        store = ResultStore(tmp_path / "r.jsonl")
        run_jobs([job], executor="serial", store=store)
        loaded = ResultStore(tmp_path / "r.jsonl").get(job)
        assert loaded.extras["tenant_count"] == 3.0
        assert any(r.multiplicity > 1 for r in loaded.records)
        assert {r.tenant for r in loaded.records} <= {"gold", "silver", "bronze"}
        assert 0.0 < loaded.extras["tenant_fairness_jain"] <= 1.0


class TestAggregateVsDiscreteEndToEnd:
    #: (arrival_time_s, size_bytes, client_index, sessions)
    SPECS = ((0.25, 4e6, 0, 6), (0.30, 5e6, 1, 4), (0.40, 3e6, 2, 1))

    def _run(self, expand):
        """Run the spec'd populations as aggregates or as discrete clones.

        A single block server forces every write onto the same primary, so an
        aggregate flow and its N discrete clones see the exact same path —
        the only regime where end-to-end equivalence is well-defined (an
        aggregate models N *identical* sessions; independent placement of N
        separate requests is legitimately different).
        """
        spec = ScenarioSpec(
            name="agg-vs-discrete",
            seed=11,
            sim_time_s=2.0,
            drain_time_s=60.0,
            topology="tree",
            topology_params={
                "num_agg": 1,
                "racks_per_agg": 1,
                "hosts_per_rack": 1,
                "num_clients": 4,
            },
            replication_enabled=False,
        )
        requests = []
        for at, size, client, sessions in self.SPECS:
            clones = sessions if expand else 1
            for _ in range(clones):
                requests.append(
                    FlowRequest(
                        arrival_time_s=at,
                        size_bytes=size,
                        client_index=client,
                        operation=Operation.WRITE,
                        multiplicity=1 if expand else sessions,
                    )
                )
        return run_scheme(spec, "scda", workload=Workload(requests, name="fixed"))

    def test_small_n_aggregate_matches_discrete_statistics(self):
        aggregate = self._run(expand=False)
        discrete = self._run(expand=True)

        assert aggregate.completed_sessions == discrete.completed_sessions
        assert aggregate.completed_flows == len(self.SPECS)
        assert aggregate.mean_fct_s() == pytest.approx(discrete.mean_fct_s(), rel=1e-9)
        agg_stats = aggregate.fct_statistics()
        disc_stats = discrete.fct_statistics()
        assert agg_stats.count == disc_stats.count
        assert agg_stats.mean_s == pytest.approx(disc_stats.mean_s, rel=1e-9)
        assert agg_stats.max_s == pytest.approx(disc_stats.max_s, rel=1e-9)
        assert aggregate.mean_goodput_kBps() == pytest.approx(
            discrete.mean_goodput_kBps(), rel=1e-9
        )
