"""Tests for the cluster backend: determinism, chaos, worker loss, degradation.

These run real ``WorkerServer`` daemons in-process on ephemeral localhost
ports — the full HTTP path is exercised; only the process boundary is
simulated by threads.
"""

import pytest

from repro.exec.cluster import ClusterExecutor
from repro.exec.executors import run_jobs
from repro.exec.planner import plan_comparison, plan_replications
from repro.exec.retry import ExecutorDegradedError, RetryPolicy
from repro.exec.store import ResultStore
from repro.experiments.spec import ScenarioSpec
from repro.registry import EXECUTORS
from repro.service.discovery import HOSTS_ENV, WorkerEndpoint
from repro.service.worker import WorkerServer


def tiny_jobs(sim_time_s=1.0, seed=3):
    return plan_comparison(ScenarioSpec.pareto_poisson(sim_time_s=sim_time_s, seed=seed))


def ensemble_jobs(seeds=3, sim_time_s=1.0, seed=3):
    spec = ScenarioSpec.pareto_poisson(sim_time_s=sim_time_s, seed=seed)
    return plan_replications(spec, seeds=seeds)


def canonical(report):
    return {key: result.canonical_dict() for key, result in report.results.items()}


@pytest.fixture()
def two_workers(tmp_path, monkeypatch):
    workers = [WorkerServer(port=0, shard_dir=tmp_path).start() for _ in range(2)]
    hosts = ",".join(f"{w.host}:{w.port}" for w in workers)
    monkeypatch.setenv(HOSTS_ENV, hosts)
    yield workers
    for worker in workers:
        try:
            worker.stop()
        except Exception:
            pass


class TestRegistration:
    def test_cluster_is_the_fourth_backend(self):
        assert {"serial", "thread", "process", "cluster"} <= set(EXECUTORS.names())

    def test_unconfigured_cluster_raises_degraded(self, monkeypatch):
        monkeypatch.delenv(HOSTS_ENV, raising=False)
        monkeypatch.delenv("REPRO_CLUSTER_HOSTS_FILE", raising=False)
        backend = ClusterExecutor()
        with pytest.raises(ExecutorDegradedError, match="no workers configured"):
            backend.execute(tiny_jobs())

    def test_unreachable_cluster_raises_degraded(self, monkeypatch):
        monkeypatch.delenv(HOSTS_ENV, raising=False)
        backend = ClusterExecutor(hosts="127.0.0.1:1", health_timeout_s=0.5)
        with pytest.raises(ExecutorDegradedError, match="health check"):
            backend.execute(tiny_jobs())

    def test_fallback_chain_reaches_serial(self):
        backend = ClusterExecutor()
        names = []
        while backend is not None:
            names.append(backend.name)
            backend = backend.fallback_backend()
        assert names == ["cluster", "process", "thread", "serial"]


class TestDeterminism:
    def test_cluster_store_equals_serial_store(self, two_workers, tmp_path):
        jobs = ensemble_jobs()
        serial_store = tmp_path / "serial.jsonl"
        cluster_store = tmp_path / "cluster.jsonl"
        serial = run_jobs(jobs, executor="serial", store=serial_store)
        cluster = run_jobs(jobs, executor="cluster", store=cluster_store)
        assert cluster.executor == "cluster"
        assert not cluster.fallbacks
        assert canonical(cluster) == canonical(serial)
        assert (
            ResultStore(cluster_store).results_by_key()
            == ResultStore(serial_store).results_by_key()
        )

    def test_load_balances_across_workers(self, two_workers):
        run_jobs(ensemble_jobs(seeds=4), executor="cluster")
        shard_sizes = sorted(len(ResultStore(w.shard_path)) for w in two_workers)
        # 8 jobs over 2 workers under fewest-outstanding balancing: both
        # workers must have computed something
        assert sum(shard_sizes) == 8
        assert shard_sizes[0] > 0

    def test_merged_shards_equal_serial_store(self, two_workers, tmp_path):
        jobs = ensemble_jobs()
        serial_store = tmp_path / "serial.jsonl"
        run_jobs(jobs, executor="serial", store=serial_store)
        run_jobs(jobs, executor="cluster")
        merged = ResultStore.merged(
            [w.shard_path for w in two_workers], into=tmp_path / "merged.jsonl"
        )
        assert merged.results_by_key() == ResultStore(serial_store).results_by_key()

    def test_rerun_against_cluster_store_recomputes_nothing(self, two_workers, tmp_path):
        jobs = tiny_jobs()
        store = tmp_path / "cluster.jsonl"
        first = run_jobs(jobs, executor="cluster", store=store)
        again = run_jobs(jobs, executor="cluster", store=store)
        assert first.computed == len(jobs)
        assert again.computed == 0
        assert again.cached == len(jobs)

    def test_batch_size_chunks_do_not_change_results(self, two_workers, tmp_path):
        jobs = ensemble_jobs()
        serial = run_jobs(jobs, executor="serial")
        chunked = run_jobs(jobs, executor="cluster", batch_size=3)
        assert canonical(chunked) == canonical(serial)
        stats_chunks = sum(
            w.stats()["chunks"] for w in two_workers
        )
        assert stats_chunks < len(jobs)  # round-trips were actually amortised


class TestColumnarWire:
    def test_cluster_defaults_to_columnar_and_matches_serial(self, two_workers, tmp_path):
        jobs = ensemble_jobs()
        serial_store = tmp_path / "serial.jsonl"
        cluster_store = tmp_path / "cluster.jsonl"
        serial = run_jobs(jobs, executor="serial", store=serial_store)
        report = run_jobs(jobs, executor="cluster", store=cluster_store)
        assert canonical(report) == canonical(serial)
        assert (
            ResultStore(cluster_store).results_by_key()
            == ResultStore(serial_store).results_by_key()
        )
        # The exchange really was columnar: the dispatcher decoded every
        # computed result, and the workers counted the encodes.
        wire = report.summary()["wire"]
        assert wire["decoded_results"] == len(jobs)
        assert wire["encoded_bytes"] > 0
        assert sum(w.stats()["wire_results"] for w in two_workers) == len(jobs)

    def test_json_wire_override_matches_serial(self, two_workers, tmp_path):
        jobs = tiny_jobs()
        serial = run_jobs(jobs, executor="serial")
        report = run_jobs(jobs, executor="cluster", wire="json")
        assert canonical(report) == canonical(serial)
        assert report.summary()["wire"]["decoded_results"] == 0
        assert all(w.stats()["columnar_chunks"] == 0 for w in two_workers)

    def test_json_only_workers_fall_back_transparently(self, tmp_path, monkeypatch):
        # A columnar client against a fleet of pre-codec (json-only) workers:
        # negotiation degrades to plain JSON with identical results.
        workers = [
            WorkerServer(port=0, shard_dir=tmp_path, wire="json").start()
            for _ in range(2)
        ]
        monkeypatch.setenv(
            HOSTS_ENV, ",".join(f"{w.host}:{w.port}" for w in workers)
        )
        try:
            jobs = tiny_jobs()
            serial = run_jobs(jobs, executor="serial")
            report = run_jobs(jobs, executor="cluster")  # asks for columnar
            assert canonical(report) == canonical(serial)
            assert not report.failures
            assert report.summary()["wire"]["decoded_results"] == 0
        finally:
            for worker in workers:
                worker.stop()

    def test_chaos_cluster_over_columnar_store_equals_serial(self, two_workers, tmp_path):
        # The acceptance criterion: chaos:cluster on the columnar wire still
        # converges to the serial bytes — corruption is caught, not masked.
        jobs = ensemble_jobs()
        serial_store = tmp_path / "serial.jsonl"
        chaos_store = tmp_path / "chaos.jsonl"
        run_jobs(jobs, executor="serial", store=serial_store)
        report = run_jobs(
            jobs,
            executor="chaos:cluster",
            store=chaos_store,
            policy=RetryPolicy(max_attempts=4),
        )
        assert not report.failures
        assert (
            ResultStore(chaos_store).results_by_key()
            == ResultStore(serial_store).results_by_key()
        )


class TestChaosCluster:
    def test_chaos_cluster_converges_to_serial_results(self, two_workers, tmp_path):
        jobs = ensemble_jobs()
        serial_store = tmp_path / "serial.jsonl"
        chaos_store = tmp_path / "chaos.jsonl"
        serial = run_jobs(jobs, executor="serial", store=serial_store)
        chaos = run_jobs(
            jobs,
            executor="chaos:cluster",
            store=chaos_store,
            policy=RetryPolicy(max_attempts=4),
        )
        assert canonical(chaos) == canonical(serial)
        assert (
            ResultStore(chaos_store).results_by_key()
            == ResultStore(serial_store).results_by_key()
        )

    def test_chaos_injections_actually_happened(self, two_workers):
        jobs = ensemble_jobs()
        report = run_jobs(
            jobs, executor="chaos:cluster", policy=RetryPolicy(max_attempts=4)
        )
        # the default config injects on ~85% of first attempts across 6 jobs;
        # at least one retry is a statistical certainty under the fixed seeds
        assert report.retried > 0


class TestWorkerLoss:
    def test_killing_a_worker_mid_batch_completes_via_retry(self, two_workers, tmp_path):
        import threading

        jobs = ensemble_jobs(seeds=3)
        serial = run_jobs(jobs, executor="serial")
        killer = threading.Timer(0.3, two_workers[0].stop)
        killer.start()
        try:
            report = run_jobs(
                jobs,
                executor="cluster",
                store=tmp_path / "killed.jsonl",
                policy=RetryPolicy(max_attempts=4),
            )
        finally:
            killer.join()
        assert canonical(report) == canonical(serial)

    def test_losing_every_worker_degrades_to_process(self, tmp_path, monkeypatch):
        worker = WorkerServer(port=0, shard_dir=tmp_path).start()
        monkeypatch.setenv(HOSTS_ENV, f"{worker.host}:{worker.port}")
        jobs = tiny_jobs()
        serial = run_jobs(jobs, executor="serial")
        worker.stop()
        # the health gate now fails; with fallback on, the run lands on the
        # local process backend and completes with identical results
        report = run_jobs(jobs, executor="cluster", policy=RetryPolicy(max_attempts=2))
        assert report.fallbacks
        assert report.fallbacks[0]["from"] == "cluster"
        assert report.fallbacks[0]["to"] == "process"
        assert canonical(report) == canonical(serial)

    def test_no_fallback_propagates_the_degradation(self, tmp_path, monkeypatch):
        monkeypatch.setenv(HOSTS_ENV, "127.0.0.1:1")
        backend = ClusterExecutor(health_timeout_s=0.5)
        with pytest.raises(ExecutorDegradedError):
            run_jobs(tiny_jobs(), executor=backend, fallback=False)


class TestShardConflicts:
    def test_conflicting_shard_result_is_a_final_failure(self, tmp_path, monkeypatch):
        """A worker whose shard holds a *different* result for a job's key
        reports a non-retryable ResultStoreError — cross-host nondeterminism
        must surface, not be masked by retries."""
        from repro.exec.executors import ExecutionError

        worker = WorkerServer(port=0, shard_dir=tmp_path).start()
        monkeypatch.setenv(HOSTS_ENV, f"{worker.host}:{worker.port}")
        try:
            job = tiny_jobs()[0]
            report = run_jobs([job], executor="cluster")
            # poison the shard: same key, different result
            shard = ResultStore(worker.shard_path)
            entry = dict(shard.entry(job.key))
            entry["result"] = dict(entry["result"], mean_fct_s=-1.0)
            import json

            worker.shard_path.write_text(
                json.dumps(entry, sort_keys=True) + "\n", encoding="utf-8"
            )
            worker.store.reload()
            with pytest.raises(ExecutionError) as excinfo:
                run_jobs([job], executor="cluster", policy=RetryPolicy(max_attempts=3))
            (failure,) = excinfo.value.failures
            assert failure.exc_type == "ResultStoreError"
            assert failure.attempts == 1  # non-retryable: no attempts wasted
        finally:
            worker.stop()


class TestEndpointConfig:
    def test_hosts_flag_beats_environment(self, two_workers, tmp_path, monkeypatch):
        monkeypatch.setenv(HOSTS_ENV, "127.0.0.1:1")  # dead endpoint in env
        live = two_workers[0]
        backend = ClusterExecutor(hosts=f"{live.host}:{live.port}")
        outcomes = backend.execute(tiny_jobs())
        assert all(isinstance(outcome, dict) for outcome in outcomes)

    def test_hosts_file_configuration(self, two_workers, tmp_path, monkeypatch):
        monkeypatch.delenv(HOSTS_ENV, raising=False)
        hosts_file = tmp_path / "hosts"
        hosts_file.write_text(
            "\n".join(f"{w.host}:{w.port}" for w in two_workers) + "\n"
        )
        backend = ClusterExecutor(hosts_file=str(hosts_file))
        endpoints = backend.live_workers()
        assert endpoints == [WorkerEndpoint(w.host, w.port) for w in two_workers]
