"""Tests for the executor backends: determinism, caching, error reporting."""

import pytest

from repro.exec.executors import (
    ExecutionError,
    JobFailure,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
    run_jobs,
)
from repro.exec.job import ExperimentJob
from repro.exec.planner import plan_comparison
from repro.exec.store import ResultStore
from repro.experiments.spec import ScenarioSpec
from repro.registry import EXECUTORS, RegistryError


def tiny_jobs(sim_time_s=1.5, seed=3):
    return plan_comparison(ScenarioSpec.pareto_poisson(sim_time_s=sim_time_s, seed=seed))


def canonical(report):
    return {key: result.canonical_dict() for key, result in report.results.items()}


class TestRegistry:
    def test_builtin_executors_are_registered(self):
        assert {"serial", "thread", "process"} <= set(EXECUTORS.names())

    def test_unknown_executor_gets_did_you_mean(self):
        with pytest.raises(RegistryError, match="did you mean 'serial'"):
            EXECUTORS.get("serail")

    def test_resolve_executor_from_key_and_instance(self):
        backend = resolve_executor("thread", max_workers=3)
        assert isinstance(backend, ThreadExecutor)
        assert backend.max_workers == 3
        same = SerialExecutor()
        assert resolve_executor(same) is same

    def test_aliases(self):
        assert EXECUTORS.get("threads").name == "thread"
        assert EXECUTORS.get("multiprocessing").name == "process"


class TestDeterminism:
    def test_serial_and_thread_are_bit_identical(self):
        jobs = tiny_jobs()
        serial = run_jobs(jobs, executor="serial")
        threaded = run_jobs(jobs, executor="thread", max_workers=2)
        assert canonical(serial) == canonical(threaded)

    def test_process_matches_serial(self):
        jobs = tiny_jobs(sim_time_s=1.0)
        serial = run_jobs(jobs, executor="serial")
        processed = run_jobs(jobs, executor="process", max_workers=2)
        assert canonical(serial) == canonical(processed)

    def test_rerunning_in_same_interpreter_is_bit_identical(self):
        # Guards the per-run id counters: a second run must not see flow or
        # content ids continuing from the first.
        jobs = tiny_jobs()
        first = run_jobs(jobs, executor="serial")
        second = run_jobs(jobs, executor="serial")
        assert canonical(first) == canonical(second)


class TestRunJobs:
    def test_duplicate_jobs_computed_once(self):
        jobs = tiny_jobs()
        doubled = jobs + [jobs[0].with_tags(role="again")]
        report = run_jobs(doubled, executor="serial")
        assert report.computed == 2
        assert report.result_for(doubled[-1]) is report.result_for(jobs[0])

    def test_store_resume_recomputes_nothing(self, tmp_path):
        jobs = tiny_jobs()
        path = tmp_path / "results.jsonl"
        first = run_jobs(jobs, executor="serial", store=str(path))
        assert (first.computed, first.cached) == (2, 0)
        second = run_jobs(jobs, executor="serial", store=str(path))
        assert (second.computed, second.cached) == (0, 2)
        assert canonical(first) == canonical(second)

    def test_store_fills_only_missing_points(self, tmp_path):
        jobs = tiny_jobs()
        store = ResultStore(tmp_path / "results.jsonl")
        run_jobs(jobs[:1], executor="serial", store=store)
        report = run_jobs(jobs, executor="serial", store=store)
        assert (report.computed, report.cached) == (1, 1)

    def test_progress_events(self):
        events = []
        jobs = tiny_jobs()
        run_jobs(
            jobs,
            executor="serial",
            progress=lambda event, job, detail: events.append((event, job.scheme_name)),
        )
        assert events == [
            ("submitted", "scda"),
            ("finished", "scda"),
            ("submitted", "rand-tcp"),
            ("finished", "rand-tcp"),
        ]

    def test_failures_raise_execution_error_with_labels(self):
        # Scheme keys are validated at planning time; an unknown *topology*
        # only surfaces when the worker builds the stack, exercising the
        # failure-reporting path.
        bad = ExperimentJob(
            spec=ScenarioSpec.pareto_poisson(sim_time_s=1.0).with_topology("moebius"),
            scheme="scda",
        )
        with pytest.raises(ExecutionError, match="moebius"):
            run_jobs([bad], executor="serial")

    def test_failures_collected_when_not_fatal(self):
        good = tiny_jobs()[0]
        bad = ExperimentJob(
            spec=ScenarioSpec.pareto_poisson(sim_time_s=1.0).with_topology("moebius"),
            scheme="scda",
        )
        events = []
        report = run_jobs(
            [good, bad],
            executor="serial",
            raise_on_error=False,
            progress=lambda event, job, detail: events.append(event),
        )
        assert report.computed == 1
        assert len(report.failures) == 1
        assert isinstance(report.failures[0], JobFailure)
        assert "moebius" in report.failures[0].error
        assert report.failures[0].traceback  # the worker traceback is kept
        assert events.count("failed") == 1
        with pytest.raises(KeyError):
            report.result_for(bad)

    def test_thread_pool_reports_failures_too(self):
        bad = ExperimentJob(
            spec=ScenarioSpec.pareto_poisson(sim_time_s=1.0).with_topology("moebius"),
            scheme="scda",
        )
        report = run_jobs(
            [bad], executor="thread", max_workers=2, raise_on_error=False
        )
        assert len(report.failures) == 1

    def test_summary_shape(self):
        report = run_jobs(tiny_jobs(), executor="serial")
        summary = report.summary()
        assert summary["executor"] == "serial"
        assert summary["jobs"] == 2
        assert summary["computed"] == 2
        assert summary["failed"] == 0
        assert summary["retried"] == 0
        assert summary["fallbacks"] == 0

    def test_failures_carry_structured_fields(self):
        bad = ExperimentJob(
            spec=ScenarioSpec.pareto_poisson(sim_time_s=1.0).with_topology("moebius"),
            scheme="scda",
        )
        report = run_jobs([bad], executor="serial", raise_on_error=False)
        failure = report.failures[0]
        assert failure.exc_type == "RegistryError"
        assert failure.attempts == 1
        assert failure.elapsed_s > 0.0
        assert JobFailure.from_dict(failure.to_dict()).to_dict() == failure.to_dict()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SerialExecutor(max_workers=0)

    def test_results_are_stored_as_each_job_finishes(self, tmp_path):
        # Partial progress must survive an interrupted batch: by the time a
        # job's progress event fires, every *previously finished* job is
        # already on disk.
        jobs = tiny_jobs()
        store = ResultStore(tmp_path / "incremental.jsonl")
        stored_when_finished = []
        run_jobs(
            jobs,
            executor="serial",
            store=store,
            progress=lambda event, job, detail: (
                stored_when_finished.append(len(ResultStore(store.path)))
                if event == "finished"
                else None
            ),
        )
        # At each finish, all prior finishes were already persisted.
        assert stored_when_finished == [0, 1]
        assert len(store) == 2

    def test_resolve_executor_does_not_mutate_caller_instance(self):
        mine = ThreadExecutor(max_workers=8)
        resolved = resolve_executor(mine, max_workers=2)
        assert mine.max_workers == 8
        assert resolved.max_workers == 2
        assert resolved is not mine
        with pytest.raises(ValueError):
            resolve_executor(mine, max_workers=0)


class TestBatchSize:
    def test_chunked_thread_results_match_serial(self):
        jobs = tiny_jobs()
        serial = run_jobs(jobs, executor="serial")
        chunked = run_jobs(jobs, executor="thread", max_workers=2, batch_size=2)
        assert canonical(chunked) == canonical(serial)

    def test_chunked_process_results_match_serial(self):
        jobs = tiny_jobs(sim_time_s=1.0)
        serial = run_jobs(jobs, executor="serial")
        chunked = run_jobs(jobs, executor="process", max_workers=2, batch_size=3)
        assert canonical(chunked) == canonical(serial)

    def test_resolve_executor_validates_batch_size(self):
        with pytest.raises(ValueError, match="batch_size must be >= 1"):
            resolve_executor("thread", batch_size=0)

    def test_resolve_executor_sets_batch_size_on_built_backend(self):
        backend = resolve_executor("thread", batch_size=4)
        assert backend.batch_size == 4
        assert resolve_executor("thread").batch_size == 1

    def test_batch_size_override_copies_passed_instances(self):
        mine = ThreadExecutor(max_workers=2)
        resolved = resolve_executor(mine, batch_size=5)
        assert resolved is not mine
        assert resolved.batch_size == 5
        assert mine.batch_size == 1  # the caller's object is never mutated

    def test_chunk_outcomes_stay_per_job(self):
        # One bad job in a chunk must not poison its chunk-mates.
        from repro.exec.executors import execute_job_chunk

        good = tiny_jobs()[0].to_dict()
        bad = dict(good, scheme="no-such-scheme")
        outcomes = execute_job_chunk([good, bad, good])
        assert [o["ok"] for o in outcomes] == [True, False, True]
        assert outcomes[1]["exc_type"] == "RegistryError"
