"""Tests for the retry policy: deterministic backoff, classification, retries."""

import pytest

from repro.exec.chaos import ChaosConfig, ChaosExecutor
from repro.exec.executors import JobFailure, run_jobs
from repro.exec.job import ExperimentJob
from repro.exec.planner import plan_comparison
from repro.exec.retry import DEFAULT_RETRYABLE, NO_RETRY, RetryPolicy
from repro.experiments.spec import ScenarioSpec


def tiny_jobs(sim_time_s=1.5, seed=3):
    return plan_comparison(ScenarioSpec.pareto_poisson(sim_time_s=sim_time_s, seed=seed))


def canonical(report):
    return {key: result.canonical_dict() for key, result in report.results.items()}


class TestPolicyValidation:
    def test_defaults_are_the_historical_behaviour(self):
        assert NO_RETRY.max_attempts == 1
        assert NO_RETRY.timeout_s is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
            {"base_delay_s": -0.1},
            {"backoff_factor": 0.5},
            {"max_delay_s": -1.0},
            {"jitter_fraction": -0.1},
            {"jitter_fraction": 1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_to_dict_round_trips_losslessly(self):
        policy = RetryPolicy(
            max_attempts=4, timeout_s=2.5, base_delay_s=0.01, backoff_factor=3.0,
            max_delay_s=1.0, jitter_fraction=0.1, retryable=("OSError", "MyError"),
        )
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
        assert RetryPolicy.from_dict(NO_RETRY.to_dict()) == NO_RETRY


class TestClassification:
    def test_infrastructure_failures_are_retryable(self):
        policy = RetryPolicy(max_attempts=3)
        for name in ("WorkerCrashError", "JobTimeoutError", "CorruptResultError",
                     "ChaosError", "OSError"):
            assert policy.is_retryable(name), name

    def test_deterministic_failures_are_not(self):
        policy = RetryPolicy(max_attempts=3)
        for name in ("RegistryError", "ValueError", "TypeError", "KeyError"):
            assert not policy.is_retryable(name), name

    def test_wildcard_retries_everything(self):
        policy = RetryPolicy(max_attempts=2, retryable=("*",))
        assert policy.is_retryable("AnythingAtAllError")

    def test_default_list_is_the_module_constant(self):
        assert RetryPolicy().retryable == DEFAULT_RETRYABLE


class TestDeterministicBackoff:
    def test_same_seed_same_schedule(self):
        # The headline determinism property: the schedule is a pure function
        # of (policy, job seed, job key) — two policy instances agree.
        a = RetryPolicy(max_attempts=5)
        b = RetryPolicy(max_attempts=5)
        key = "ab" * 32
        assert a.schedule(7, key) == b.schedule(7, key)
        assert len(a.schedule(7, key)) == 4  # one delay per possible retry

    def test_schedule_is_pinned(self):
        # Regression pin: changing the derivation would silently change every
        # run's retry timing, so lock the exact values for one (seed, key).
        policy = RetryPolicy(max_attempts=3)
        assert policy.schedule(7, "ab" * 32) == [
            pytest.approx(0.04332930114952005),
            pytest.approx(0.07842497474924393),
        ]

    def test_different_jobs_get_different_jitter(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.backoff_s(7, "aa" * 32, 1) != policy.backoff_s(7, "bb" * 32, 1)
        assert policy.backoff_s(7, "aa" * 32, 1) != policy.backoff_s(8, "aa" * 32, 1)

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(max_attempts=6, base_delay_s=0.1, backoff_factor=2.0,
                             max_delay_s=10.0, jitter_fraction=0.25)
        for attempt in range(1, 6):
            nominal = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.backoff_s(3, "cd" * 32, attempt)
            assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_delay_is_capped(self):
        policy = RetryPolicy(max_attempts=10, base_delay_s=1.0, backoff_factor=10.0,
                             max_delay_s=0.5, jitter_fraction=0.0)
        assert policy.backoff_s(1, "ef" * 32, 9) == 0.5

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.2, backoff_factor=2.0,
                             max_delay_s=10.0, jitter_fraction=0.0)
        assert policy.schedule(1, "00" * 32) == [0.2, 0.4, 0.8]

    def test_invalid_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=2).backoff_s(1, "aa" * 32, 0)


class TestRetriesThroughRunJobs:
    def test_injected_errors_are_retried_to_the_serial_bits(self):
        # Every first attempt raises (chaos error mode); the retry runs
        # undisturbed, so the recovered results equal a plain serial run's.
        jobs = tiny_jobs()
        plain = run_jobs(jobs, executor="serial")
        chaos = ChaosExecutor("serial", config=ChaosConfig(
            crash_rate=0.0, error_rate=1.0, delay_rate=0.0, corrupt_rate=0.0))
        events = []
        report = run_jobs(
            jobs,
            executor=chaos,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.001),
            progress=lambda event, job, detail: events.append(event),
        )
        assert canonical(report) == canonical(plain)
        assert report.retried == len(jobs)
        assert events.count("retry") == len(jobs)
        assert not report.failures
        summary = report.summary()
        assert summary["retried"] == len(jobs)
        assert summary["fallbacks"] == 0

    def test_attempts_exhausted_becomes_structured_failure(self):
        jobs = tiny_jobs(sim_time_s=1.0)[:1]
        chaos = ChaosExecutor("serial", config=ChaosConfig(
            crash_rate=0.0, error_rate=1.0, delay_rate=0.0, corrupt_rate=0.0,
            first_attempt_only=False))
        report = run_jobs(
            jobs, executor=chaos,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
            raise_on_error=False,
        )
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.exc_type == "ChaosError"
        assert failure.attempts == 3
        assert failure.elapsed_s > 0.0
        assert report.summary()["failed"] == 1

    def test_non_retryable_failures_are_not_retried(self):
        # An unknown topology is deterministic: retrying would fail the same
        # way, so the policy must spend exactly one attempt on it.
        bad = ExperimentJob(
            spec=ScenarioSpec.pareto_poisson(sim_time_s=1.0).with_topology("moebius"),
            scheme="scda",
        )
        report = run_jobs(
            [bad], executor="serial",
            policy=RetryPolicy(max_attempts=5, base_delay_s=0.001),
            raise_on_error=False,
        )
        assert report.failures[0].attempts == 1
        assert report.retried == 0

    def test_failure_to_dict_round_trips_losslessly(self):
        bad = ExperimentJob(
            spec=ScenarioSpec.pareto_poisson(sim_time_s=1.0).with_topology("moebius"),
            scheme="scda",
        )
        report = run_jobs([bad], executor="serial", raise_on_error=False)
        failure = report.failures[0]
        data = failure.to_dict()
        rebuilt = JobFailure.from_dict(data)
        assert rebuilt.to_dict() == data
        assert rebuilt.job.key == bad.key
        assert rebuilt.exc_type == failure.exc_type
        assert rebuilt.attempts == failure.attempts

    def test_timeout_warns_on_non_enforcing_backend(self):
        with pytest.warns(UserWarning, match="cannot preempt"):
            run_jobs(tiny_jobs(sim_time_s=1.0), executor="serial",
                     policy=RetryPolicy(timeout_s=60.0))
