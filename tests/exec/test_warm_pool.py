"""Tests for warm worker pools (``pool="keep"``) and the columnar dispatch wire.

These spawn real worker processes, so they use the shortest scenarios that
still exercise the machinery; the lifetime counters on
:meth:`ProcessExecutor.stats` make reuse/respawn behaviour directly
observable instead of inferred from timing.
"""

import time

import pytest

from repro.exec.chaos import ChaosConfig, ChaosExecutor
from repro.exec.executors import (
    ProcessExecutor,
    SerialExecutor,
    resolve_executor,
    run_jobs,
)
from repro.exec.planner import plan_comparison
from repro.exec.retry import RetryPolicy
from repro.exec.store import ResultStore
from repro.experiments.spec import ScenarioSpec
from repro.metrics.codec import WIRE_COLUMNAR, WIRE_JSON


def tiny_jobs(sim_time_s=1.0, seed=3):
    return plan_comparison(ScenarioSpec.pareto_poisson(sim_time_s=sim_time_s, seed=seed))


def canonical(report):
    return {key: result.canonical_dict() for key, result in report.results.items()}


class TestConstruction:
    def test_pool_mode_is_validated(self):
        with pytest.raises(ValueError, match="pool must be one of"):
            ProcessExecutor(pool="warm")

    def test_idle_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="idle_timeout_s"):
            ProcessExecutor(idle_timeout_s=0.0)

    def test_defaults_are_fresh_and_columnar(self):
        backend = ProcessExecutor()
        assert backend.pool == "fresh"
        assert backend.wire_format == WIRE_COLUMNAR
        assert backend.stats() == {
            "spawned": 0,
            "respawned": 0,
            "reused": 0,
            "idle_reaped": 0,
            "pool_size": 0,
        }

    def test_resolve_executor_threads_pool_and_wire(self):
        built = resolve_executor("process", max_workers=2, pool="keep", wire=WIRE_JSON)
        assert (built.pool, built.wire_format) == ("keep", WIRE_JSON)
        with pytest.raises(ValueError, match="pool must be one of"):
            resolve_executor("process", pool="warm")
        with pytest.raises(ValueError, match="wire must be one of"):
            resolve_executor("process", wire="msgpack")

    def test_resolve_executor_override_copy_shares_the_pool(self):
        # Overrides take a shallow copy; the retained pool must be the *same*
        # object so whichever copy runs warms the pool the caller holds.
        base = ProcessExecutor(max_workers=2, pool="keep")
        built = resolve_executor(base, batch_size=3)
        assert built is not base
        assert built._pool_workers is base._pool_workers
        assert built._pool_counters is base._pool_counters


class TestWarmReuse:
    def test_consecutive_run_jobs_reuse_workers_with_zero_respawns(self, tmp_path):
        jobs = tiny_jobs()
        serial = run_jobs(jobs, executor="serial", store=str(tmp_path / "serial.jsonl"))
        warm = ProcessExecutor(max_workers=2, pool="keep")
        try:
            first = run_jobs(jobs, executor=warm, store=str(tmp_path / "warm.jsonl"))
            after_first = warm.stats()
            assert after_first["pool_size"] > 0
            assert after_first["respawned"] == 0
            spawned_once = after_first["spawned"]
            # Second batch on the same executor: the pool must be reused
            # as-is — zero additional spawns, zero respawns.
            second = run_jobs(jobs, executor=warm)
            after_second = warm.stats()
            assert after_second["spawned"] == spawned_once
            assert after_second["respawned"] == 0
            assert after_second["reused"] >= after_first["pool_size"]
        finally:
            warm.close()
        assert canonical(first) == canonical(serial)
        assert canonical(second) == canonical(serial)
        a = ResultStore(tmp_path / "serial.jsonl")
        b = ResultStore(tmp_path / "warm.jsonl")
        assert a.results_by_key() == b.results_by_key()

    def test_fresh_mode_tears_the_pool_down_per_call(self):
        fresh = ProcessExecutor(max_workers=2)  # pool="fresh" default
        run_jobs(tiny_jobs(), executor=fresh)
        stats = fresh.stats()
        assert stats["pool_size"] == 0
        assert stats["spawned"] > 0

    def test_run_jobs_pool_kwarg_reaches_the_backend(self):
        # The string path builds a backend per call, so "keep" through the
        # orchestrator only pays off with an instance — but the knob must
        # still arrive (observable via the stats of the built backend).
        report = run_jobs(tiny_jobs()[:1], executor="process", max_workers=1,
                          pool="fresh", wire=WIRE_JSON)
        assert not report.failures

    def test_close_shuts_down_retained_workers(self):
        warm = ProcessExecutor(max_workers=2, pool="keep")
        run_jobs(tiny_jobs(), executor=warm)
        retained = list(warm._pool_workers)
        assert retained
        warm.close()
        assert warm.stats()["pool_size"] == 0
        deadline = time.monotonic() + 10.0
        while any(w.alive() for w in retained) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not any(w.alive() for w in retained)

    def test_context_manager_closes_on_exit(self):
        with ProcessExecutor(max_workers=1, pool="keep") as warm:
            run_jobs(tiny_jobs()[:1], executor=warm)
            assert warm.stats()["pool_size"] > 0
        assert warm.stats()["pool_size"] == 0

    def test_idle_workers_are_reaped_on_the_next_call(self):
        warm = ProcessExecutor(max_workers=1, pool="keep", idle_timeout_s=0.05)
        try:
            run_jobs(tiny_jobs()[:1], executor=warm)
            assert warm.stats()["pool_size"] == 1
            time.sleep(0.2)
            run_jobs(tiny_jobs()[:1], executor=warm)
            stats = warm.stats()
            assert stats["idle_reaped"] >= 1
            assert stats["respawned"] == 0  # an idle reap is not a crash
        finally:
            warm.close()


class TestWarmFaultTolerance:
    def test_crash_mid_batch_respawns_and_matches_serial(self, tmp_path):
        # The satellite scenario: a warm pool whose workers get killed
        # mid-batch must respawn within budget, finish the batch, leave a
        # store bit-identical to serial — and still have a healthy warm pool
        # for the next call.
        jobs = tiny_jobs()
        run_jobs(jobs, executor="serial", store=str(tmp_path / "serial.jsonl"))
        inner = ProcessExecutor(max_workers=2, pool="keep")
        chaos = ChaosExecutor(
            inner,
            config=ChaosConfig(crash_rate=1.0, error_rate=0.0,
                               delay_rate=0.0, corrupt_rate=0.0),
        )
        try:
            report = run_jobs(
                jobs, executor=chaos,
                policy=RetryPolicy(max_attempts=3, base_delay_s=0.001),
                store=str(tmp_path / "chaos.jsonl"),
            )
            assert not report.failures
            stats = inner.stats()
            assert stats["respawned"] >= 1
            assert stats["pool_size"] > 0  # a clean finish retains the pool
            # Warm pool is still healthy after the chaos batch.
            second = run_jobs(jobs, executor=inner)
            assert not second.failures
        finally:
            inner.close()
        a = ResultStore(tmp_path / "serial.jsonl")
        b = ResultStore(tmp_path / "chaos.jsonl")
        assert a.results_by_key() == b.results_by_key()

    def test_degraded_batch_tears_the_warm_pool_down(self):
        # Only a cleanly finished batch leaves warm workers behind; a batch
        # that ends in ExecutorDegradedError must not leak half-dead workers
        # into the next call.
        from repro.exec.retry import ExecutorDegradedError

        inner = ProcessExecutor(max_workers=2, max_respawns=0, pool="keep")
        chaos = ChaosExecutor(
            inner,
            config=ChaosConfig(crash_rate=1.0, error_rate=0.0, delay_rate=0.0,
                               corrupt_rate=0.0, first_attempt_only=False),
        )
        with pytest.raises(ExecutorDegradedError):
            run_jobs(tiny_jobs(), executor=chaos,
                     policy=RetryPolicy(max_attempts=2, base_delay_s=0.001),
                     fallback=False)
        assert inner.stats()["pool_size"] == 0

    def test_fallback_after_degradation_rewarms_the_shared_pool(self):
        # With fallback enabled the chain's first hop is a plain copy of the
        # same process backend sharing the pool; its clean run leaves fresh
        # healthy workers behind — the pool that degraded is rebuilt, not
        # leaked.
        inner = ProcessExecutor(max_workers=2, max_respawns=0, pool="keep")
        chaos = ChaosExecutor(
            inner,
            config=ChaosConfig(crash_rate=1.0, error_rate=0.0, delay_rate=0.0,
                               corrupt_rate=0.0, first_attempt_only=False),
        )
        try:
            report = run_jobs(
                tiny_jobs(), executor=chaos,
                policy=RetryPolicy(max_attempts=2, base_delay_s=0.001),
            )
            assert not report.failures  # completed via the fallback chain
            assert report.fallbacks
            assert all(w.alive() and w.task is None for w in inner._pool_workers)
        finally:
            inner.close()

    def test_chaos_wrapper_delegates_pool_knobs_to_inner(self):
        inner = ProcessExecutor(max_workers=1)
        chaos = ChaosExecutor(inner)
        chaos.pool = "keep"
        chaos.wire_format = WIRE_JSON
        assert (inner.pool, inner.wire_format) == ("keep", WIRE_JSON)
        assert (chaos.pool, chaos.wire_format) == ("keep", WIRE_JSON)
        assert chaos.stats() == inner.stats()
        chaos.close()  # forwards; no retained workers, must not raise


class TestWireFormat:
    def test_columnar_and_json_wires_are_bit_identical(self, tmp_path):
        jobs = tiny_jobs()
        serial = run_jobs(jobs, executor="serial", store=str(tmp_path / "s.jsonl"))
        columnar = run_jobs(jobs, executor="process", max_workers=2,
                            store=str(tmp_path / "c.jsonl"))
        plain = run_jobs(jobs, executor="process", max_workers=2, wire=WIRE_JSON,
                         store=str(tmp_path / "j.jsonl"))
        assert canonical(serial) == canonical(columnar) == canonical(plain)
        stores = [ResultStore(tmp_path / n) for n in ("s.jsonl", "c.jsonl", "j.jsonl")]
        assert stores[0].results_by_key() == stores[1].results_by_key()
        assert stores[0].results_by_key() == stores[2].results_by_key()

    def test_columnar_runs_report_wire_counters(self):
        jobs = tiny_jobs()[:1]
        report = run_jobs(jobs, executor="process", max_workers=1)
        wire = report.summary()["wire"]
        assert wire["decoded_results"] == len(jobs)
        assert wire["encoded_results"] == len(jobs)
        assert wire["encoded_bytes"] > 0
        assert wire["decode_s"] >= 0.0

    def test_json_wire_reports_zero_wire_counters(self):
        report = run_jobs(tiny_jobs()[:1], executor="process", max_workers=1,
                          wire=WIRE_JSON)
        assert report.summary()["wire"]["decoded_results"] == 0
        assert report.summary()["wire"]["encoded_results"] == 0

    def test_serial_backend_ships_plain_dicts(self):
        # In-process backends skip encoding entirely — nothing crosses a
        # boundary, so columns would be pure overhead.
        assert SerialExecutor().wire_format == WIRE_JSON
        report = run_jobs(tiny_jobs()[:1], executor="serial")
        assert report.summary()["wire"]["encoded_results"] == 0

    def test_chaos_corruption_survives_the_columnar_wire(self, tmp_path):
        # A chaos-corrupted payload must NOT be maskable by the codec: the
        # corrupt dict fails strict encoding, ships plain, and is caught by
        # the usual hydration check, then retried to the serial bytes.
        jobs = tiny_jobs()
        serial = run_jobs(jobs, executor="serial")
        chaos = ChaosExecutor("process", max_workers=2,
                              config=ChaosConfig(crash_rate=0.0, error_rate=0.0,
                                                 delay_rate=0.0, corrupt_rate=1.0))
        report = run_jobs(
            jobs, executor=chaos,
            policy=RetryPolicy(max_attempts=2, base_delay_s=0.001),
        )
        assert canonical(report) == canonical(serial)
        assert report.retried == len(jobs)
