"""Tests for ExperimentJob serialisation, keys, and the planners."""

import json

import pytest

from repro.baselines.schemes import SCDA_SCHEME, SchemeSpec
from repro.exec.job import ExperimentJob
from repro.exec.planner import (
    plan_comparison,
    plan_control_interval_sweep,
    plan_matrix,
    plan_offered_load_sweep,
    with_arrival_rate,
)
from repro.experiments.spec import ScenarioSpec
from repro.sim.random import derive_seed


def tiny_spec(**overrides):
    spec = ScenarioSpec.pareto_poisson(sim_time_s=2.0, seed=5)
    return spec.with_overrides(**overrides) if overrides else spec


class TestExperimentJob:
    def test_json_round_trip_is_lossless(self):
        job = ExperimentJob(spec=tiny_spec(), scheme="scda", tags={"role": "candidate"})
        clone = ExperimentJob.from_json(job.to_json())
        assert clone == job
        assert clone.key == job.key

    def test_inline_scheme_spec_round_trips(self):
        job = ExperimentJob(spec=tiny_spec(), scheme=SCDA_SCHEME)
        clone = ExperimentJob.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone.resolved_scheme() == SCDA_SCHEME
        assert clone.key == job.key

    def test_invalid_inline_scheme_fails_at_construction(self):
        with pytest.raises(ValueError):
            ExperimentJob(
                spec=tiny_spec(), scheme={"name": "x", "placement": "nope", "transport": "tcp"}
            )

    def test_unknown_scheme_key_fails_at_construction_not_in_a_worker(self):
        from repro.registry import RegistryError

        with pytest.raises(RegistryError, match="did you mean 'scda'"):
            ExperimentJob(spec=tiny_spec(), scheme="sdca")

    def test_scheme_aliases_share_the_canonical_job_key(self):
        canonical = ExperimentJob(spec=tiny_spec(), scheme="rand-tcp")
        via_alias = ExperimentJob(spec=tiny_spec(), scheme="RAND_TCP")
        assert via_alias.scheme == "rand-tcp"
        assert via_alias.key == canonical.key

    def test_registered_scheme_spec_folds_back_to_its_key(self):
        # The CLI plans by key, the Python API often by spec object; they
        # must hit the same ResultStore entries.
        by_key = ExperimentJob(spec=tiny_spec(), scheme="scda")
        by_spec = ExperimentJob(spec=tiny_spec(), scheme=SCDA_SCHEME)
        assert by_spec.scheme == "scda"
        assert by_spec.key == by_key.key

    def test_unregistered_scheme_spec_stays_inline(self):
        adhoc = SchemeSpec("Weird", placement="random", transport="ideal", routing="vlb")
        job = ExperimentJob(spec=tiny_spec(), scheme=adhoc)
        assert isinstance(job.scheme, dict)
        assert job.resolved_scheme() == adhoc

    def test_key_ignores_tags(self):
        base = ExperimentJob(spec=tiny_spec(), scheme="scda")
        tagged = base.with_tags(parameter=40.0, role="candidate")
        assert tagged.tags["parameter"] == 40.0
        assert tagged.key == base.key

    def test_key_depends_on_spec_scheme_and_seed(self):
        job = ExperimentJob(spec=tiny_spec(), scheme="scda")
        assert ExperimentJob(spec=tiny_spec(), scheme="rand-tcp").key != job.key
        assert ExperimentJob(spec=tiny_spec(seed=6), scheme="scda").key != job.key
        assert ExperimentJob(spec=tiny_spec(), scheme="scda", seed=99).key != job.key

    def test_key_is_stable_across_processes(self):
        # The key must never involve salted hashing: pin its derivation by
        # checking it equals the sha256 of the canonical payload.
        import hashlib

        job = ExperimentJob(spec=tiny_spec(), scheme="scda")
        spec_payload = job.resolved_spec().to_dict()
        del spec_payload["name"]
        payload = {"spec": spec_payload, "scheme": "scda"}
        expected = hashlib.sha256(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()
        assert job.key == expected

    def test_key_ignores_display_name(self):
        # The spec's name labels output; it never changes the numbers, so
        # renamed-but-identical scenarios must share cache entries.
        plain = ExperimentJob(spec=tiny_spec(), scheme="scda")
        renamed = ExperimentJob(
            spec=tiny_spec().with_overrides(name="pareto-poisson+fattree"), scheme="scda"
        )
        assert renamed.key == plain.key

    def test_seed_defaults_to_spec_seed(self):
        job = ExperimentJob(spec=tiny_spec(), scheme="scda")
        assert job.seed == 5
        assert job.resolved_spec() is job.spec

    def test_explicit_seed_overrides_spec(self):
        job = ExperimentJob(spec=tiny_spec(), scheme="scda", seed=77)
        assert job.resolved_spec().seed == 77
        assert job.spec.seed == 5  # original spec untouched

    def test_resolved_scheme_from_registry_key(self):
        job = ExperimentJob(spec=tiny_spec(), scheme="scda")
        assert job.resolved_scheme() == SCDA_SCHEME

    def test_label_mentions_scenario_and_scheme(self):
        job = ExperimentJob(spec=tiny_spec(), scheme="scda")
        assert "pareto-poisson" in job.label()
        assert "scda" in job.label()


class TestPlanners:
    def test_plan_comparison_roles(self):
        jobs = plan_comparison(tiny_spec())
        assert [j.tags["role"] for j in jobs] == ["candidate", "baseline"]
        assert jobs[0].scheme == "scda"
        assert jobs[1].scheme == "rand-tcp"

    def test_plan_matrix_cross_product(self):
        jobs = plan_matrix([tiny_spec(), tiny_spec(seed=9)], ["scda", "rand-tcp", "ideal"])
        assert len(jobs) == 6
        assert len({j.key for j in jobs}) == 6

    def test_plan_matrix_validates_inputs(self):
        with pytest.raises(ValueError):
            plan_matrix([], ["scda"])
        with pytest.raises(ValueError):
            plan_matrix([tiny_spec()], [])

    def test_load_sweep_plans_two_jobs_per_rate(self):
        jobs = plan_offered_load_sweep([10.0, 20.0], base=tiny_spec())
        assert len(jobs) == 4
        rates = sorted({j.tags["parameter"] for j in jobs})
        assert rates == [10.0, 20.0]
        for job in jobs:
            params = job.spec.workload_params
            assert params["arrival_rate_per_s"] == job.tags["parameter"]

    def test_load_sweep_default_keeps_base_seed(self):
        jobs = plan_offered_load_sweep([10.0], base=tiny_spec())
        assert all(j.seed == 5 for j in jobs)

    def test_load_sweep_reseed_per_point_is_order_independent(self):
        base = tiny_spec()
        jobs = plan_offered_load_sweep([10.0, 20.0], base=base, reseed_per_point=True)
        reversed_jobs = plan_offered_load_sweep(
            [20.0, 10.0], base=base, reseed_per_point=True
        )
        by_rate = lambda js: {j.tags["parameter"]: j.seed for j in js}  # noqa: E731
        assert by_rate(jobs) == by_rate(reversed_jobs)
        assert jobs[0].seed == derive_seed(5, "sweep", "offered-load", "rate=10")

    def test_tau_sweep_plans_both_schemes_per_point(self):
        jobs = plan_control_interval_sweep([0.01, 0.05], base=tiny_spec())
        assert len(jobs) == 4
        for job in jobs:
            assert job.spec.control_interval_s == job.tags["parameter"]

    def test_sweep_validation(self):
        with pytest.raises(ValueError):
            plan_offered_load_sweep([], base=tiny_spec())
        with pytest.raises(ValueError):
            plan_offered_load_sweep([0.0], base=tiny_spec())
        with pytest.raises(ValueError):
            plan_control_interval_sweep([-0.01], base=tiny_spec())

    def test_with_arrival_rate_rejects_rateless_workloads(self):
        spec = tiny_spec()
        assert with_arrival_rate(spec, 33.0).workload_params["arrival_rate_per_s"] == 33.0
