"""Tests for the availability/disruption time series."""

import json

import pytest

from repro.metrics.availability import AvailabilitySample, AvailabilitySeries


def sample(t, down=0, total=10, rerouted=0, aborted=0):
    return AvailabilitySample(
        time_s=t, links_down=down, links_total=total,
        flows_rerouted=rerouted, flows_aborted=aborted,
    )


class TestAvailabilitySample:
    def test_availability_fraction(self):
        assert sample(1.0, down=2, total=10).availability == pytest.approx(0.8)
        assert sample(1.0, down=0, total=0).availability == 1.0

    def test_round_trip(self):
        s = sample(2.0, down=1, rerouted=3, aborted=1)
        clone = AvailabilitySample.from_dict(json.loads(json.dumps(s.to_dict())))
        assert clone == s


class TestAvailabilitySeries:
    def test_mean_availability(self):
        series = AvailabilitySeries()
        series.add(sample(1.0, down=0))
        series.add(sample(2.0, down=5))
        assert series.mean_availability() == pytest.approx(0.75)
        assert AvailabilitySeries().mean_availability() == 1.0

    def test_disrupted_time_integrates_down_intervals(self):
        series = AvailabilitySeries()
        series.add(sample(1.0, down=0))
        series.add(sample(2.0, down=2))
        series.add(sample(3.0, down=2))
        series.add(sample(4.0, down=0))
        assert series.disrupted_time_s() == pytest.approx(2.0)

    def test_samples_must_be_time_ordered(self):
        series = AvailabilitySeries()
        series.add(sample(2.0))
        with pytest.raises(ValueError):
            series.add(sample(1.0))

    def test_round_trip_and_merge(self):
        a = AvailabilitySeries()
        a.add(sample(1.0, down=1))
        b = AvailabilitySeries()
        b.add(sample(0.5))
        b.add(sample(1.5, down=2))
        merged = a.merged_with(b)
        assert [s.time_s for s in merged.samples] == [0.5, 1.0, 1.5]
        clone = AvailabilitySeries.from_dict(merged.to_dict())
        assert clone.to_dict() == merged.to_dict()
