"""Tests for the replication statistics (means, stddevs, CIs)."""

import json
import math

import numpy as np
import pytest

from repro.metrics.stats import (
    SummaryStats,
    bootstrap_ci,
    mean,
    normal_ci,
    stddev,
    summarize,
    z_value,
)


class TestBasicStats:
    def test_mean_and_stddev(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert stddev([1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_non_finite_values_are_excluded(self):
        assert mean([1.0, float("nan"), 3.0, float("inf")]) == pytest.approx(2.0)
        assert stddev([1.0, float("nan"), 3.0]) == pytest.approx(np.std([1, 3], ddof=1))

    def test_degenerate_inputs(self):
        assert math.isnan(mean([]))
        assert stddev([]) == 0.0
        assert stddev([5.0]) == 0.0

    def test_z_value_95(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)

    def test_z_value_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            z_value(1.0)
        with pytest.raises(ValueError):
            z_value(0.0)


class TestNormalCi:
    def test_matches_hand_computed_interval(self):
        values = [1.0, 2.0, 3.0]
        lower, upper = normal_ci(values)
        half = 1.959964 * 1.0 / math.sqrt(3)
        assert lower == pytest.approx(2.0 - half, abs=1e-4)
        assert upper == pytest.approx(2.0 + half, abs=1e-4)

    def test_single_value_collapses_to_point(self):
        assert normal_ci([4.2]) == (4.2, 4.2)

    def test_wider_confidence_is_wider(self):
        values = [1.0, 2.0, 3.0, 4.0]
        lo95, hi95 = normal_ci(values, 0.95)
        lo99, hi99 = normal_ci(values, 0.99)
        assert lo99 < lo95 < hi95 < hi99


class TestBootstrapCi:
    def test_deterministic_across_calls(self):
        values = [1.0, 3.0, 2.0, 5.0, 4.0]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)

    def test_different_seed_different_interval(self):
        values = [1.0, 3.0, 2.0, 5.0, 4.0]
        assert bootstrap_ci(values, seed=1) != bootstrap_ci(values, seed=2)

    def test_interval_brackets_the_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        lower, upper = bootstrap_ci(values, seed=0)
        assert lower <= np.mean(values) <= upper

    def test_single_value_collapses_to_point(self):
        assert bootstrap_ci([3.0]) == (3.0, 3.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], n_resamples=0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)


class TestSummarize:
    def test_normal_summary_fields(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.n == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)
        assert stats.method == "normal"
        assert stats.ci_lower < stats.mean < stats.ci_upper
        assert stats.half_width == pytest.approx((stats.ci_upper - stats.ci_lower) / 2)

    def test_bootstrap_method_recorded(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0], method="bootstrap")
        assert stats.method == "bootstrap"
        assert stats.ci_lower <= stats.mean <= stats.ci_upper

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown CI method"):
            summarize([1.0], method="magic")

    def test_nan_values_reduce_n(self):
        stats = summarize([1.0, float("nan"), 3.0])
        assert stats.n == 2

    def test_all_nan_summary(self):
        stats = summarize([float("nan")])
        assert stats.n == 0
        assert math.isnan(stats.mean)

    def test_round_trips_through_json(self):
        stats = summarize([1.0, 2.0, 3.0])
        payload = json.loads(json.dumps(stats.to_dict()))
        assert SummaryStats.from_dict(payload) == stats
