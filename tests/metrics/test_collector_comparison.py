"""Tests for the metrics collector and the scheme comparison helpers."""

import numpy as np
import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.comparison import ComparisonResult, SchemeResult
from repro.metrics.records import FlowRecord
from repro.metrics.throughput import ThroughputSample, ThroughputSeries
from repro.network.fabric import FabricSimulator
from repro.network.flow import FlowKind
from repro.network.transport.ideal import IdealMaxMinTransport
from repro.sim.engine import Simulator


class TestMetricsCollector:
    def _run(self, topology, record_kinds=None):
        sim = Simulator()
        fabric = FabricSimulator(sim, topology, IdealMaxMinTransport())
        collector = MetricsCollector(fabric, sample_interval_s=0.5, record_kinds=record_kinds)
        collector.start_sampling()
        # 25 MB / 12.5 MB over a 100 Mb/s link keep flows active across several samples.
        fabric.start_flow(topology.node("ucl-0"), topology.node("bs-0"), 25_000_000.0, FlowKind.VIDEO)
        fabric.start_flow(
            topology.node("bs-0"), topology.node("ucl-0"), 12_500_000.0, FlowKind.REPLICATION
        )
        sim.run(until=5.0)
        collector.stop_sampling()
        return collector

    def test_records_all_finished_flows_by_default(self, tiny_line_topology):
        collector = self._run(tiny_line_topology)
        assert collector.completed_count == 2
        assert set(collector.sizes().tolist()) == {25_000_000.0, 12_500_000.0}

    def test_record_kind_filter(self, tiny_line_topology):
        collector = self._run(tiny_line_topology, record_kinds=(FlowKind.VIDEO,))
        assert collector.completed_count == 1
        assert collector.records[0].kind is FlowKind.VIDEO

    def test_throughput_samples_are_collected(self, tiny_line_topology):
        collector = self._run(tiny_line_topology)
        assert len(collector.throughput) >= 2
        # While the flows were active the sampled mean per-flow rate is positive.
        assert collector.throughput.average_mean_flow_kBps() > 0.0

    def test_fcts_filtered_by_kind(self, tiny_line_topology):
        collector = self._run(tiny_line_topology)
        video_only = collector.fcts(kinds=(FlowKind.VIDEO,))
        assert video_only.size == 1

    def test_invalid_interval_raises(self, tiny_line_topology):
        sim = Simulator()
        fabric = FabricSimulator(sim, tiny_line_topology, IdealMaxMinTransport())
        with pytest.raises(ValueError):
            MetricsCollector(fabric, sample_interval_s=0.0)


def scheme_result(name, fcts, rates_kBps=(100.0,)):
    records = [
        FlowRecord(i, 1e6, 0.0, 0.0, fct, FlowKind.DATA, "a", "b") for i, fct in enumerate(fcts)
    ]
    series = ThroughputSeries()
    for i, rate in enumerate(rates_kBps):
        series.add(ThroughputSample(float(i), 1, rate * 8 * 1024, rate * 8 * 1024))
    return SchemeResult(scheme=name, records=records, throughput=series)


class TestComparisonResult:
    def test_headline_ratios(self):
        candidate = scheme_result("SCDA", [1.0, 1.0], rates_kBps=(200.0,))
        baseline = scheme_result("RandTCP", [2.0, 2.0], rates_kBps=(100.0,))
        comparison = ComparisonResult("test", candidate, baseline)
        assert comparison.speedup_afct() == pytest.approx(2.0)
        assert comparison.fct_reduction_fraction() == pytest.approx(0.5)
        assert comparison.throughput_gain_fraction() == pytest.approx(1.0)
        assert comparison.median_fct_ratio() == pytest.approx(2.0)
        assert comparison.cdf_dominance() == 1.0

    def test_summary_contains_all_headline_keys(self):
        comparison = ComparisonResult(
            "test", scheme_result("a", [1.0]), scheme_result("b", [2.0])
        )
        summary = comparison.summary()
        for key in (
            "speedup_afct",
            "fct_reduction_fraction",
            "throughput_gain_fraction",
            "cdf_dominance",
            "candidate_flows",
        ):
            assert key in summary

    def test_empty_results_give_nan_ratios(self):
        comparison = ComparisonResult("test", scheme_result("a", []), scheme_result("b", []))
        assert np.isnan(comparison.speedup_afct())
        assert np.isnan(comparison.median_fct_ratio())

    def test_scheme_result_statistics(self):
        result = scheme_result("SCDA", [1.0, 3.0])
        assert result.mean_fct_s() == pytest.approx(2.0)
        assert result.fct_statistics().count == 2
        x, y = result.fct_cdf()
        assert x.tolist() == [1.0, 3.0]
        centers, afct, counts = result.afct_curve([0.0, 2e6])
        assert counts[0] == 2
