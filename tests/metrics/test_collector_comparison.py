"""Tests for the metrics collector and the scheme comparison helpers."""

import numpy as np
import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.comparison import ComparisonResult, SchemeResult
from repro.metrics.records import FlowRecord
from repro.metrics.throughput import ThroughputSample, ThroughputSeries
from repro.network.fabric import FabricSimulator
from repro.network.flow import FlowKind
from repro.network.transport.ideal import IdealMaxMinTransport
from repro.sim.engine import Simulator


class TestMetricsCollector:
    def _run(self, topology, record_kinds=None):
        sim = Simulator()
        fabric = FabricSimulator(sim, topology, IdealMaxMinTransport())
        collector = MetricsCollector(fabric, sample_interval_s=0.5, record_kinds=record_kinds)
        collector.start_sampling()
        # 25 MB / 12.5 MB over a 100 Mb/s link keep flows active across several samples.
        fabric.start_flow(topology.node("ucl-0"), topology.node("bs-0"), 25_000_000.0, FlowKind.VIDEO)
        fabric.start_flow(
            topology.node("bs-0"), topology.node("ucl-0"), 12_500_000.0, FlowKind.REPLICATION
        )
        sim.run(until=5.0)
        collector.stop_sampling()
        return collector

    def test_records_all_finished_flows_by_default(self, tiny_line_topology):
        collector = self._run(tiny_line_topology)
        assert collector.completed_count == 2
        assert set(collector.sizes().tolist()) == {25_000_000.0, 12_500_000.0}

    def test_record_kind_filter(self, tiny_line_topology):
        collector = self._run(tiny_line_topology, record_kinds=(FlowKind.VIDEO,))
        assert collector.completed_count == 1
        assert collector.records[0].kind is FlowKind.VIDEO

    def test_throughput_samples_are_collected(self, tiny_line_topology):
        collector = self._run(tiny_line_topology)
        assert len(collector.throughput) >= 2
        # While the flows were active the sampled mean per-flow rate is positive.
        assert collector.throughput.average_mean_flow_kBps() > 0.0

    def test_fcts_filtered_by_kind(self, tiny_line_topology):
        collector = self._run(tiny_line_topology)
        video_only = collector.fcts(kinds=(FlowKind.VIDEO,))
        assert video_only.size == 1

    def test_invalid_interval_raises(self, tiny_line_topology):
        sim = Simulator()
        fabric = FabricSimulator(sim, tiny_line_topology, IdealMaxMinTransport())
        with pytest.raises(ValueError):
            MetricsCollector(fabric, sample_interval_s=0.0)

    def test_detach_stops_recording_and_sampling(self, tiny_line_topology):
        sim = Simulator()
        fabric = FabricSimulator(sim, tiny_line_topology, IdealMaxMinTransport())
        collector = MetricsCollector(fabric, sample_interval_s=0.5)
        collector.start_sampling()
        fabric.start_flow(
            tiny_line_topology.node("ucl-0"),
            tiny_line_topology.node("bs-0"),
            25_000_000.0,
            FlowKind.VIDEO,
        )
        sim.run(until=3.0)
        collector.detach()
        recorded = collector.completed_count
        samples = len(collector.throughput)
        # Later fabric activity is invisible to the detached collector.
        fabric.start_flow(
            tiny_line_topology.node("bs-0"),
            tiny_line_topology.node("ucl-0"),
            1_000_000.0,
            FlowKind.DATA,
        )
        sim.run(until=10.0)
        assert collector.completed_count == recorded
        assert len(collector.throughput) == samples
        assert collector._timer is None
        # Idempotent: detaching again (or a collector that never sampled) is fine.
        collector.detach()

    def test_detach_without_sampling_unregisters_callback(self, tiny_line_topology):
        sim = Simulator()
        fabric = FabricSimulator(sim, tiny_line_topology, IdealMaxMinTransport())
        collector = MetricsCollector(fabric)
        collector.detach()
        assert collector._on_flow_finished not in fabric._finish_callbacks


def scheme_result(name, fcts, rates_kBps=(100.0,)):
    records = [
        FlowRecord(i, 1e6, 0.0, 0.0, fct, FlowKind.DATA, "a", "b") for i, fct in enumerate(fcts)
    ]
    series = ThroughputSeries()
    for i, rate in enumerate(rates_kBps):
        series.add(ThroughputSample(float(i), 1, rate * 8 * 1024, rate * 8 * 1024))
    return SchemeResult(scheme=name, records=records, throughput=series)


class TestComparisonResult:
    def test_headline_ratios(self):
        candidate = scheme_result("SCDA", [1.0, 1.0], rates_kBps=(200.0,))
        baseline = scheme_result("RandTCP", [2.0, 2.0], rates_kBps=(100.0,))
        comparison = ComparisonResult("test", candidate, baseline)
        assert comparison.speedup_afct() == pytest.approx(2.0)
        assert comparison.fct_reduction_fraction() == pytest.approx(0.5)
        assert comparison.throughput_gain_fraction() == pytest.approx(1.0)
        assert comparison.median_fct_ratio() == pytest.approx(2.0)
        assert comparison.cdf_dominance() == 1.0

    def test_summary_contains_all_headline_keys(self):
        comparison = ComparisonResult(
            "test", scheme_result("a", [1.0]), scheme_result("b", [2.0])
        )
        summary = comparison.summary()
        for key in (
            "speedup_afct",
            "fct_reduction_fraction",
            "throughput_gain_fraction",
            "cdf_dominance",
            "candidate_flows",
        ):
            assert key in summary

    def test_empty_results_give_nan_ratios(self):
        comparison = ComparisonResult("test", scheme_result("a", []), scheme_result("b", []))
        assert np.isnan(comparison.speedup_afct())
        assert np.isnan(comparison.median_fct_ratio())

    def test_scheme_result_statistics(self):
        result = scheme_result("SCDA", [1.0, 3.0])
        assert result.mean_fct_s() == pytest.approx(2.0)
        assert result.fct_statistics().count == 2
        x, y = result.fct_cdf()
        assert x.tolist() == [1.0, 3.0]
        centers, afct, counts = result.afct_curve([0.0, 2e6])
        assert counts[0] == 2


class TestResultSerialisation:
    def test_flow_record_round_trip_preserves_enum_kind(self):
        record = FlowRecord(3, 1e6, 0.0, 0.1, 1.5, FlowKind.VIDEO, "ucl-0", "bs-1")
        clone = FlowRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.kind is FlowKind.VIDEO

    def test_scheme_result_json_round_trip_is_bit_identical(self):
        import json

        result = scheme_result("SCDA", [0.1234567890123456, 2.0], rates_kBps=(150.0, 80.0))
        result.sla_violations = 3
        result.wall_clock_s = 1.25
        result.extras = {"events_processed": 1234.0}
        clone = SchemeResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.to_dict() == result.to_dict()
        assert clone.records == result.records
        assert clone.throughput.to_dict() == result.throughput.to_dict()

    def test_canonical_dict_drops_only_wall_clock(self):
        result = scheme_result("SCDA", [1.0])
        result.wall_clock_s = 9.9
        canonical = result.canonical_dict()
        assert "wall_clock_s" not in canonical
        rebuilt = SchemeResult.from_dict(canonical)
        assert rebuilt.wall_clock_s == 0.0
        assert rebuilt.records == result.records

    def test_merge_concatenates_and_sums(self):
        a = scheme_result("SCDA", [1.0], rates_kBps=(100.0,))
        a.sla_violations, a.wall_clock_s, a.extras = 1, 0.5, {"requests_issued": 2.0}
        b = scheme_result("SCDA", [2.0], rates_kBps=(50.0,))
        b.sla_violations, b.wall_clock_s, b.extras = 2, 0.25, {
            "requests_issued": 3.0, "hedera_reroutes": 1.0,
        }
        merged = a.merge(b)
        assert merged.completed_flows == 2
        assert merged.sla_violations == 3
        assert merged.wall_clock_s == pytest.approx(0.75)
        assert merged.extras == {"requests_issued": 5.0, "hedera_reroutes": 1.0}
        assert len(merged.throughput) == 2
        # Samples are interleaved in time order.
        assert list(merged.throughput.times()) == sorted(merged.throughput.times())

    def test_merge_combines_max_extras_by_maximum(self):
        a = scheme_result("SCDA", [1.0])
        a.extras = {"nns_write_requests_max": 216.0, "nns_write_requests_total": 400.0}
        b = scheme_result("SCDA", [2.0])
        b.extras = {"nns_write_requests_max": 180.0, "nns_write_requests_total": 174.0}
        merged = a.merge(b)
        # A sum of per-shard maxima would fabricate 396 — a load no NNS saw.
        assert merged.extras["nns_write_requests_max"] == 216.0
        assert merged.extras["nns_write_requests_total"] == 574.0

    def test_merge_rejects_different_schemes(self):
        with pytest.raises(ValueError):
            scheme_result("SCDA", [1.0]).merge(scheme_result("RandTCP", [1.0]))

    # -- merging the PR-4 availability/dynamics payloads -----------------------------

    @staticmethod
    def _availability_series(times_and_down):
        from repro.metrics.availability import AvailabilitySample, AvailabilitySeries

        series = AvailabilitySeries()
        for time_s, links_down in times_and_down:
            series.add(
                AvailabilitySample(
                    time_s=time_s, links_down=links_down, links_total=10,
                    flows_rerouted=links_down, flows_aborted=0,
                )
            )
        return series

    DYNAMICS_EXTRAS = {
        "links_failed": 1.0, "flows_rerouted_on_failure": 2.0,
        "servers_departed": 1.0, "requests_disrupted": 3.0,
    }

    def test_merge_availability_present_on_one_side(self):
        a = scheme_result("SCDA", [1.0])
        a.availability = self._availability_series([(0.0, 1), (1.0, 0)])
        a.extras = dict(self.DYNAMICS_EXTRAS)
        b = scheme_result("SCDA", [2.0])  # static shard: empty series, no extras
        merged = a.merge(b)
        assert len(merged.availability) == 2
        assert merged.availability.mean_availability() == pytest.approx(0.95)
        # One-sided dynamics extras survive unchanged.
        assert merged.extras["links_failed"] == 1.0
        assert merged.extras["requests_disrupted"] == 3.0
        # Merge is value-symmetric for these payloads.
        swapped = b.merge(a)
        assert swapped.availability.to_dict() == merged.availability.to_dict()
        assert swapped.extras == merged.extras

    def test_merge_availability_present_on_both_sides(self):
        a = scheme_result("SCDA", [1.0])
        a.availability = self._availability_series([(0.0, 2), (2.0, 0)])
        a.extras = dict(self.DYNAMICS_EXTRAS)
        b = scheme_result("SCDA", [2.0])
        b.availability = self._availability_series([(1.0, 1), (3.0, 0)])
        b.extras = {"links_failed": 2.0, "flows_aborted_on_failure": 1.0}
        merged = a.merge(b)
        # Samples interleave in time order across the two shards.
        assert list(merged.availability.times()) == [0.0, 1.0, 2.0, 3.0]
        assert [s.links_down for s in merged.availability.samples] == [2, 1, 0, 0]
        # Dynamics counters sum; keys unique to one side survive.
        assert merged.extras["links_failed"] == 3.0
        assert merged.extras["flows_rerouted_on_failure"] == 2.0
        assert merged.extras["flows_aborted_on_failure"] == 1.0

    def test_merge_availability_absent_on_both_sides(self):
        a = scheme_result("SCDA", [1.0])
        b = scheme_result("SCDA", [2.0])
        merged = a.merge(b)
        # Static shards stay trivially static: no samples, availability 1.0.
        assert len(merged.availability) == 0
        assert merged.availability.mean_availability() == 1.0
        assert merged.extras == {}

    def test_comparison_round_trip(self):
        comparison = ComparisonResult(
            "pareto", scheme_result("SCDA", [1.0]), scheme_result("RandTCP", [2.0])
        )
        clone = ComparisonResult.from_dict(comparison.to_dict())
        assert clone.to_dict() == comparison.to_dict()
        assert clone.speedup_afct() == comparison.speedup_afct()
