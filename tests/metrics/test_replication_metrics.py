"""Tests for the multi-seed replication aggregates."""

import json

import numpy as np
import pytest

from repro.metrics.comparison import ComparisonResult, SchemeResult
from repro.metrics.records import FlowRecord
from repro.metrics.replication import ReplicatedComparison, ReplicatedResult
from repro.metrics.throughput import ThroughputSample, ThroughputSeries
from repro.network.flow import FlowKind


def scheme_result(name, fcts, rates_kBps=(100.0,)):
    records = [
        FlowRecord(i, 1e6, 0.0, 0.0, fct, FlowKind.DATA, "a", "b")
        for i, fct in enumerate(fcts)
    ]
    series = ThroughputSeries()
    for i, rate in enumerate(rates_kBps):
        series.add(ThroughputSample(float(i), 1, rate * 8 * 1024, rate * 8 * 1024))
    return SchemeResult(scheme=name, records=records, throughput=series)


def make_ensemble(n=3):
    candidates = [scheme_result("SCDA", [1.0 + 0.1 * i]) for i in range(n)]
    baselines = [scheme_result("RandTCP", [2.0 + 0.2 * i]) for i in range(n)]
    return ReplicatedComparison(
        scenario="test",
        candidate=ReplicatedResult("SCDA", seeds=list(range(n)), results=candidates),
        baseline=ReplicatedResult("RandTCP", seeds=list(range(n)), results=baselines),
    )


class TestReplicatedResult:
    def test_per_seed_and_stats(self):
        rep = ReplicatedResult(
            "SCDA",
            seeds=[1, 2, 3],
            results=[scheme_result("SCDA", [v]) for v in (1.0, 2.0, 3.0)],
        )
        assert list(rep.per_seed_mean_fct_s()) == [1.0, 2.0, 3.0]
        stats = rep.fct_stats()
        assert stats.mean == pytest.approx(2.0)
        assert stats.n == 3
        assert stats.ci_lower < 2.0 < stats.ci_upper

    def test_availability_trivial_on_static_results(self):
        rep = ReplicatedResult(
            "SCDA", seeds=[1], results=[scheme_result("SCDA", [1.0])]
        )
        stats = rep.availability_stats()
        assert stats.mean == 1.0

    def test_pooled_merges_every_replicate(self):
        rep = ReplicatedResult(
            "SCDA",
            seeds=[1, 2],
            results=[scheme_result("SCDA", [1.0, 2.0]), scheme_result("SCDA", [3.0])],
        )
        pooled = rep.pooled()
        assert pooled.completed_flows == 3
        assert sorted(rep.pooled_fcts().tolist()) == [1.0, 2.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one replicate"):
            ReplicatedResult("SCDA", seeds=[], results=[])
        with pytest.raises(ValueError, match="align"):
            ReplicatedResult("SCDA", seeds=[1, 2], results=[scheme_result("SCDA", [1.0])])
        with pytest.raises(ValueError, match="ensemble"):
            ReplicatedResult("SCDA", seeds=[1], results=[scheme_result("RandTCP", [1.0])])

    def test_round_trips_through_json(self):
        rep = ReplicatedResult(
            "SCDA",
            seeds=[1, 2],
            results=[scheme_result("SCDA", [1.0]), scheme_result("SCDA", [2.0])],
        )
        payload = json.loads(json.dumps(rep.to_dict()))
        rebuilt = ReplicatedResult.from_dict(payload)
        assert rebuilt.to_dict() == rep.to_dict()


class TestReplicatedComparison:
    def test_paired_speedup_stats(self):
        ens = make_ensemble(3)
        stats = ens.speedup_stats()
        expected = np.mean([2.0 / 1.0, 2.2 / 1.1, 2.4 / 1.2])
        assert stats.mean == pytest.approx(expected)
        assert stats.n == 3

    def test_summary_keys_match_single_seed_summary(self):
        ens = make_ensemble(2)
        replicated_keys = set(ens.summary())
        single_keys = set(ens.comparisons()[0].summary())
        assert replicated_keys == single_keys
        speedup = ens.summary()["speedup_afct"]
        assert {"mean", "std", "n", "ci_lower", "ci_upper"} <= set(speedup)

    def test_comparisons_are_per_replicate(self):
        ens = make_ensemble(3)
        comparisons = ens.comparisons()
        assert len(comparisons) == 3
        assert all(isinstance(c, ComparisonResult) for c in comparisons)
        assert comparisons[0].speedup_afct() == pytest.approx(2.0)

    def test_replicate_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="replicates"):
            ReplicatedComparison(
                scenario="x",
                candidate=ReplicatedResult(
                    "SCDA", seeds=[1], results=[scheme_result("SCDA", [1.0])]
                ),
                baseline=ReplicatedResult(
                    "RandTCP",
                    seeds=[1, 2],
                    results=[
                        scheme_result("RandTCP", [2.0]),
                        scheme_result("RandTCP", [2.1]),
                    ],
                ),
            )

    def test_unpaired_seeds_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            ReplicatedComparison(
                scenario="x",
                candidate=ReplicatedResult(
                    "SCDA", seeds=[1], results=[scheme_result("SCDA", [1.0])]
                ),
                baseline=ReplicatedResult(
                    "RandTCP", seeds=[9], results=[scheme_result("RandTCP", [2.0])]
                ),
            )

    def test_round_trips_through_json(self):
        ens = make_ensemble(2)
        payload = json.loads(json.dumps(ens.to_dict()))
        rebuilt = ReplicatedComparison.from_dict(payload)
        assert rebuilt.to_dict() == ens.to_dict()

    def test_comparison_result_replicated_hook(self):
        ens = ComparisonResult.replicated(
            "x",
            [1, 2],
            [scheme_result("SCDA", [1.0]), scheme_result("SCDA", [1.1])],
            [scheme_result("RandTCP", [2.0]), scheme_result("RandTCP", [2.2])],
        )
        assert isinstance(ens, ReplicatedComparison)
        assert ens.n_replicates == 2
