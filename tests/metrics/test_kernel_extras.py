"""Tests for the kernel perf-counter export pipeline.

Counters flow from the fabric / solver / engine through
``MetricsCollector.kernel_extras`` into ``SchemeResult.extras`` (prefixed
``kernel_``) and from there into the serve daemon's ``/stats`` aggregate.
All counters are deterministic functions of the run, so they are safe inside
the canonical (bit-compared) result payload.
"""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.network.fabric import FabricSimulator
from repro.network.transport.ideal import IdealMaxMinTransport
from repro.sim.engine import Simulator


@pytest.fixture
def stack(tiny_line_topology):
    sim = Simulator()
    fabric = FabricSimulator(sim, tiny_line_topology, IdealMaxMinTransport())
    collector = MetricsCollector(fabric)
    return sim, fabric, collector


class TestCollectorKernelExtras:
    def test_baseline_counters_always_present(self, stack):
        sim, fabric, collector = stack
        extras = collector.kernel_extras()
        for key in ("recomputes", "recomputes_coalesced", "heap_compactions"):
            assert key in extras
            assert isinstance(extras[key], float)

    def test_counters_track_fabric_activity(self, stack, tiny_line_topology):
        sim, fabric, collector = stack
        client, host = tiny_line_topology.clients()[0], tiny_line_topology.hosts()[0]
        with fabric.churn():
            for _ in range(3):
                fabric.start_flow(client, host, 1e6)
        sim.run(until=5.0)
        extras = collector.kernel_extras()
        assert extras["recomputes"] >= 1.0
        assert extras["recomputes_coalesced"] >= 3.0

    def test_delta_solver_counters_appear_when_attached(self, stack):
        sim, fabric, collector = stack
        extras = collector.kernel_extras()
        if fabric.incidence.delta is None:  # numpy-less environment
            assert "solves_incremental" not in extras
        else:
            for key in ("solves_full", "solves_incremental", "dirty_rows_max"):
                assert key in extras

    def test_wheel_counters_appear_once_wheel_exists(self, stack):
        sim, fabric, collector = stack
        assert not any(k.startswith("wheel_") for k in collector.kernel_extras())
        sim.timer_wheel().call_at(1.0, lambda: None)
        extras = collector.kernel_extras()
        assert extras["wheel_scheduled"] == 1.0
        assert extras["wheel_pending"] == 1.0


class TestRunnerExportsKernelExtras:
    def test_scheme_result_carries_prefixed_kernel_counters(self):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import run_scheme

        scenario = ScenarioConfig.pareto_poisson(sim_time=1.0, seed=5)
        result = run_scheme(scenario, "rand-tcp")
        assert result.extras["kernel_recomputes"] > 0.0
        assert "kernel_heap_compactions" in result.extras
        # Deterministic: the same run reproduces the same counters.
        again = run_scheme(scenario, "rand-tcp")
        kernel = {k: v for k, v in result.extras.items() if k.startswith("kernel_")}
        kernel_again = {
            k: v for k, v in again.extras.items() if k.startswith("kernel_")
        }
        assert kernel == kernel_again
