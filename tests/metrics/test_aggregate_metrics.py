"""Tests for aggregate-flow (multiplicity/tenant) metrics semantics.

Three invariants:

* records carry multiplicity and tenant losslessly through ``to_dict`` /
  ``from_dict``, the columnar codec, and the JSONL :class:`ResultStore` —
  and payloads written *before* the fields existed still load;
* every summary statistic is session-weighted — an aggregate record of
  multiplicity N is indistinguishable from N discrete records with the same
  FCT and goodput;
* a multiplicity-1, tenant-free run is byte-identical to the historical
  discrete path everywhere.
"""

import json

import numpy as np
import pytest

from repro.exec.job import ExperimentJob
from repro.exec.store import ResultStore
from repro.experiments.spec import ScenarioSpec
from repro.metrics.codec import decode_result, encode_result
from repro.metrics.comparison import SchemeResult
from repro.metrics.fct import FctStatistics, afct_by_size_bins, average_fct
from repro.metrics.records import FlowRecord
from repro.metrics.tenancy import jain_fairness_index, per_tenant_extras
from repro.network.flow import FlowKind


def record(
    flow_id=0,
    size=1e6,
    finished=1.0,
    multiplicity=1,
    tenant="",
    kind=FlowKind.DATA,
):
    return FlowRecord(
        flow_id=flow_id,
        size_bytes=size,
        created_at_s=0.0,
        started_at_s=0.0,
        finished_at_s=finished,
        kind=kind,
        src="a",
        dst="b",
        multiplicity=multiplicity,
        tenant=tenant,
    )


def expand(records):
    """The discrete-equivalent population: each record repeated N times."""
    out = []
    for r in records:
        out.extend(
            record(
                flow_id=r.flow_id,
                size=r.size_bytes,
                finished=r.finished_at_s,
                tenant=r.tenant,
            )
            for _ in range(r.multiplicity)
        )
    return out


class TestRecordRoundTrip:
    def test_to_dict_carries_multiplicity_and_tenant(self):
        r = record(multiplicity=500, tenant="cdn-a")
        data = r.to_dict()
        assert data["multiplicity"] == 500
        assert data["tenant"] == "cdn-a"
        assert FlowRecord.from_dict(data) == r

    def test_pre_aggregate_payloads_still_load(self):
        data = record().to_dict()
        del data["multiplicity"]
        del data["tenant"]
        loaded = FlowRecord.from_dict(data)
        assert loaded.multiplicity == 1
        assert loaded.tenant == ""

    def test_multiplicity_must_be_positive_integer(self):
        with pytest.raises(ValueError):
            record(multiplicity=0)
        with pytest.raises(ValueError):
            record(multiplicity=-3)

    def test_json_round_trip_is_lossless(self):
        r = record(multiplicity=123456, tenant="tenant:with:colons")
        assert FlowRecord.from_dict(json.loads(json.dumps(r.to_dict()))) == r


class TestSessionWeightedStatistics:
    def _population(self):
        return [
            record(flow_id=0, size=1e6, finished=1.0, multiplicity=10, tenant="a"),
            record(flow_id=1, size=2e6, finished=3.0, multiplicity=1, tenant="b"),
            record(flow_id=2, size=5e5, finished=0.5, multiplicity=4, tenant="a"),
        ]

    def test_average_fct_equals_discrete_expansion(self):
        agg = self._population()
        assert average_fct(agg) == average_fct(expand(agg))

    def test_fct_statistics_equal_discrete_expansion(self):
        agg = self._population()
        reps = [r.multiplicity for r in agg]
        weighted = FctStatistics.from_fcts([r.fct_s for r in agg], reps)
        discrete = FctStatistics.from_fcts([r.fct_s for r in expand(agg)])
        assert weighted == discrete
        assert weighted.count == 15

    def test_afct_bins_equal_discrete_expansion(self):
        agg = self._population()
        edges = [1e5, 1e6 + 1, 1e7]
        centers_a, afct_a, counts_a = afct_by_size_bins(agg, edges)
        centers_d, afct_d, counts_d = afct_by_size_bins(expand(agg), edges)
        np.testing.assert_array_equal(centers_a, centers_d)
        np.testing.assert_array_equal(counts_a, counts_d)
        np.testing.assert_array_equal(afct_a, afct_d)

    def test_scheme_result_fcts_and_goodput_expand(self):
        agg = SchemeResult(scheme="scda", records=self._population())
        disc = SchemeResult(scheme="scda", records=expand(self._population()))
        np.testing.assert_array_equal(np.sort(agg.fcts()), np.sort(disc.fcts()))
        assert agg.mean_goodput_kBps() == pytest.approx(disc.mean_goodput_kBps(), rel=1e-12)
        assert agg.completed_flows == 3
        assert agg.completed_sessions == 15 == disc.completed_flows

    def test_all_discrete_population_uses_original_code_path(self):
        records = [record(flow_id=i, finished=float(i + 1)) for i in range(5)]
        assert average_fct(records) == float(
            np.mean([r.fct_s for r in records])
        )


class TestTenancyExtras:
    def test_untagged_runs_produce_no_extras(self):
        assert per_tenant_extras([record(), record(multiplicity=7)]) == {}

    def test_per_tenant_breakdown_and_fairness(self):
        records = [
            record(flow_id=0, finished=1.0, multiplicity=10, tenant="gold"),
            record(flow_id=1, finished=2.0, multiplicity=10, tenant="gold"),
            record(flow_id=2, finished=2.0, multiplicity=5, tenant="bronze"),
        ]
        extras = per_tenant_extras(records)
        assert extras["tenant_count"] == 2.0
        assert extras["tenant:gold:sessions"] == 20.0
        assert extras["tenant:gold:flows"] == 2.0
        assert extras["tenant:gold:mean_fct_s"] == pytest.approx(1.5)
        assert extras["tenant:bronze:sessions"] == 5.0
        assert 0.0 < extras["tenant_fairness_jain"] <= 1.0

    def test_untagged_records_in_tagged_run_become_pseudo_tenant(self):
        records = [record(tenant="a"), record()]
        extras = per_tenant_extras(records)
        assert extras["tenant:untagged:flows"] == 1.0

    def test_jain_index_properties(self):
        assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
        assert jain_fairness_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)
        assert jain_fairness_index([0.0, 0.0]) == 1.0
        assert np.isnan(jain_fairness_index([]))


class TestCodecAndStoreRoundTrip:
    def _result(self, multiplicity=1000, tenant="cdn-a"):
        return SchemeResult(
            scheme="scda",
            records=[
                record(flow_id=0, multiplicity=multiplicity, tenant=tenant),
                record(flow_id=1),
            ],
            extras={"tenant_count": 1.0},
        )

    def test_columnar_codec_round_trips_new_columns(self):
        data = self._result().canonical_dict()
        assert json.dumps(decode_result(encode_result(data))) == json.dumps(data)

    def test_result_store_round_trips_aggregate_records(self, tmp_path):
        store = ResultStore(tmp_path / "agg.jsonl")
        job = ExperimentJob(
            spec=ScenarioSpec.pareto_poisson(sim_time_s=2.0, seed=5), scheme="scda"
        )
        result = self._result(multiplicity=77, tenant="t-9")
        store.put(job, result)
        loaded = ResultStore(tmp_path / "agg.jsonl").get(job)
        assert loaded.records[0].multiplicity == 77
        assert loaded.records[0].tenant == "t-9"
        assert loaded.canonical_dict() == result.canonical_dict()

    def test_multiplicity_one_store_lines_byte_identical_to_discrete(self, tmp_path):
        """An N=1 aggregate writes the exact line a discrete run writes."""
        job = ExperimentJob(
            spec=ScenarioSpec.pareto_poisson(sim_time_s=2.0, seed=5), scheme="scda"
        )
        discrete = SchemeResult(scheme="scda", records=[record(flow_id=3)])
        explicit = SchemeResult(
            scheme="scda", records=[record(flow_id=3, multiplicity=1, tenant="")]
        )
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        ResultStore(path_a).put(job, discrete)
        ResultStore(path_b).put(job, explicit)

        def stable_lines(path):
            # The wall-clock meta is host-dependent; everything else must match.
            lines = []
            for line in path.read_text().splitlines():
                entry = json.loads(line)
                entry.get("meta", {}).pop("wall_clock_s", None)
                lines.append(json.dumps(entry, sort_keys=True))
            return lines

        assert stable_lines(path_a) == stable_lines(path_b)
