"""Tests for flow records, FCT/AFCT statistics, CDFs and throughput series."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.cdf import cdf_at, empirical_cdf, percentile, stochastic_dominance_fraction
from repro.metrics.fct import (
    FctStatistics,
    afct_by_size_bins,
    afct_ratio,
    average_fct,
    size_bin_edges,
)
from repro.metrics.records import FlowRecord
from repro.metrics.throughput import ThroughputSample, ThroughputSeries
from repro.network.flow import Flow, FlowKind
from repro.network.routing import Router


def record(size=1e6, created=0.0, started=0.1, finished=1.0, kind=FlowKind.DATA):
    return FlowRecord(
        flow_id=0,
        size_bytes=size,
        created_at_s=created,
        started_at_s=started,
        finished_at_s=finished,
        kind=kind,
        src="a",
        dst="b",
    )


class TestFlowRecord:
    def test_derived_quantities(self):
        r = record(size=1e6, created=0.0, started=0.5, finished=2.0)
        assert r.fct_s == pytest.approx(2.0)
        assert r.transfer_time_s == pytest.approx(1.5)
        assert r.goodput_bps == pytest.approx(1e6 * 8 / 2.0)

    def test_from_flow_requires_finished_flow(self, tiny_line_topology):
        s, d = tiny_line_topology.node("ucl-0"), tiny_line_topology.node("bs-0")
        flow = Flow(s, d, 1000.0, Router(tiny_line_topology).path(s, d))
        with pytest.raises(ValueError):
            FlowRecord.from_flow(flow)
        flow.start(1.0)
        flow.finish(2.0)
        rec = FlowRecord.from_flow(flow)
        assert rec.fct_s == pytest.approx(2.0)
        assert rec.src == "ucl-0"


class TestFctStatistics:
    def test_summary_statistics(self):
        stats = FctStatistics.from_fcts([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean_s == pytest.approx(2.5)
        assert stats.median_s == pytest.approx(2.5)
        assert stats.max_s == 4.0

    def test_empty_input_gives_nans(self):
        stats = FctStatistics.from_fcts([])
        assert stats.count == 0
        assert np.isnan(stats.mean_s)

    def test_average_fct_and_ratio(self):
        fast = [record(finished=1.0), record(finished=2.0)]
        slow = [record(finished=3.0), record(finished=5.0)]
        assert average_fct(fast) == pytest.approx(1.5)
        assert afct_ratio(slow, fast) == pytest.approx(4.0 / 1.5)
        assert np.isnan(afct_ratio([], fast))


class TestAfctBinning:
    def test_bins_group_by_size(self):
        records = [
            record(size=100.0, finished=1.0),
            record(size=150.0, finished=3.0),
            record(size=900.0, finished=10.0),
        ]
        centers, afct, counts = afct_by_size_bins(records, [0.0, 500.0, 1000.0])
        assert len(centers) == 2
        assert afct[0] == pytest.approx(2.0)
        assert afct[1] == pytest.approx(10.0)
        assert counts.tolist() == [2, 1]

    def test_empty_bins_are_nan(self):
        records = [record(size=100.0, finished=1.0)]
        _centers, afct, counts = afct_by_size_bins(records, [0.0, 50.0, 200.0])
        assert np.isnan(afct[0]) and counts[0] == 0
        assert afct[1] == pytest.approx(1.0)

    def test_invalid_edges_raise(self):
        with pytest.raises(ValueError):
            afct_by_size_bins([], [1.0])
        with pytest.raises(ValueError):
            afct_by_size_bins([], [2.0, 1.0])

    def test_size_bin_edges_linear_and_log(self):
        linear = size_bin_edges(1.0, 100.0, 4)
        assert len(linear) == 5
        assert linear[0] == 1.0 and linear[-1] == 100.0
        log = size_bin_edges(1.0, 1000.0, 3, log_scale=True)
        assert log[1] / log[0] == pytest.approx(10.0)
        with pytest.raises(ValueError):
            size_bin_edges(10.0, 1.0, 3)


class TestCdf:
    def test_empirical_cdf_steps(self):
        x, y = empirical_cdf([3.0, 1.0, 2.0])
        assert x.tolist() == [1.0, 2.0, 3.0]
        assert y.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_cdf(self):
        x, y = empirical_cdf([])
        assert x.size == 0 and y.size == 0

    def test_cdf_at_and_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(values, 2.5) == pytest.approx(0.5)
        assert percentile(values, 50) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            percentile(values, 150.0)

    def test_stochastic_dominance(self):
        fast = [1.0, 1.5, 2.0]
        slow = [3.0, 4.0, 5.0]
        assert stochastic_dominance_fraction(fast, slow) == 1.0
        assert stochastic_dominance_fraction(slow, fast) < 0.5

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_cdf_is_monotone_and_ends_at_one(self, values):
        x, y = empirical_cdf(values)
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(y) >= 0)
        assert y[-1] == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_any_sample_dominates_itself(self, values):
        assert stochastic_dominance_fraction(values, values) == 1.0


class TestThroughputSeries:
    def test_samples_and_averages(self):
        series = ThroughputSeries()
        series.add(ThroughputSample(1.0, active_flows=2, aggregate_bps=8192.0 * 8, mean_flow_bps=8192.0 * 4))
        series.add(ThroughputSample(2.0, active_flows=0, aggregate_bps=0.0, mean_flow_bps=0.0))
        series.add(ThroughputSample(3.0, active_flows=1, aggregate_bps=8192.0 * 8, mean_flow_bps=8192.0 * 8))
        assert len(series) == 3
        assert series.times().tolist() == [1.0, 2.0, 3.0]
        # Samples with no active flows are excluded from the per-flow average.
        assert series.average_mean_flow_kBps() == pytest.approx((4.0 + 8.0) / 2)
        assert series.average_aggregate_kBps() == pytest.approx((8.0 + 0.0 + 8.0) / 3)

    def test_sample_unit_conversions(self):
        sample = ThroughputSample(0.0, 1, aggregate_bps=8.0 * 1024, mean_flow_bps=8.0 * 1024)
        assert sample.aggregate_kBps == pytest.approx(1.0)
        assert sample.mean_flow_kBps == pytest.approx(1.0)

    def test_out_of_order_samples_rejected(self):
        series = ThroughputSeries()
        series.add(ThroughputSample(2.0, 0, 0.0, 0.0))
        with pytest.raises(ValueError):
            series.add(ThroughputSample(1.0, 0, 0.0, 0.0))

    def test_series_accessor_matches_samples(self):
        series = ThroughputSeries()
        series.add(ThroughputSample(1.0, 1, 0.0, 8192.0))
        times, kbps = series.series()
        assert times.tolist() == [1.0]
        assert kbps[0] == pytest.approx(1.0)

    def test_empty_series_averages_are_zero(self):
        series = ThroughputSeries()
        assert series.average_mean_flow_kBps() == 0.0
        assert series.average_aggregate_kBps() == 0.0
