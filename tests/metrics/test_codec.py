"""Tests for the columnar result codec: lossless round-trips, strictness, size."""

import json
import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.executors import run_jobs
from repro.exec.planner import plan_comparison
from repro.experiments.spec import ScenarioSpec
from repro.metrics.codec import (
    COLUMNAR_KEY,
    COLUMNAR_VERSION,
    WIRE_COLUMNAR,
    CodecError,
    WireCounters,
    decode_result,
    encode_result,
    encode_wire_outcome,
    is_columnar,
)


def dumps(data):
    """The byte-identity yardstick: canonical sorted-key JSON."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


# -- strategies matching the canonical result shape ------------------------------------

# Raw IEEE-754 bit patterns so the strategy covers -0.0, infinities and NaN
# payloads, not just the floats hypothesis likes.
any_float = st.binary(min_size=8, max_size=8).map(lambda b: struct.unpack("<d", b)[0])
int64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
name = st.text(min_size=0, max_size=8)


def record_rows():
    row = st.fixed_dictionaries(
        {
            "flow_id": int64,
            "size_bytes": any_float,
            "created_at_s": any_float,
            "started_at_s": any_float,
            "finished_at_s": any_float,
            "kind": name,
            "src": name,
            "dst": name,
            "multiplicity": int64,
            "tenant": name,
        }
    )
    return st.lists(row, max_size=12)


def throughput_rows():
    row = st.fixed_dictionaries(
        {
            "time_s": any_float,
            "active_flows": int64,
            "aggregate_bps": any_float,
            "mean_flow_bps": any_float,
        }
    )
    return st.lists(row, max_size=12)


def availability_rows():
    row = st.fixed_dictionaries(
        {
            "time_s": any_float,
            "links_down": int64,
            "links_total": int64,
            "flows_rerouted": int64,
            "flows_aborted": int64,
        }
    )
    return st.lists(row, max_size=12)


def results(with_wall_clock=False):
    base = {
        "scheme": name,
        "records": record_rows(),
        "throughput": st.fixed_dictionaries({"samples": throughput_rows()}),
        "availability": st.fixed_dictionaries({"samples": availability_rows()}),
        "sla_violations": int64,
        "extras": st.dictionaries(name, any_float, max_size=6),
    }
    if with_wall_clock:
        base["wall_clock_s"] = any_float
    return st.fixed_dictionaries(base)


def sample_result():
    """One concrete fixed result for the deterministic (non-property) tests."""
    return {
        "scheme": "ecmp",
        "records": [
            {
                "flow_id": 7,
                "size_bytes": 1.5e9,
                "created_at_s": 0.25,
                "started_at_s": 0.25,
                "finished_at_s": 1.75,
                "kind": "bulk",
                "src": "h0",
                "dst": "h3",
                "multiplicity": 1,
                "tenant": "",
            },
            {
                "flow_id": 8,
                "size_bytes": 2048.0,
                "created_at_s": 0.5,
                "started_at_s": 0.5,
                "finished_at_s": 0.51,
                "kind": "mice",
                "src": "h1",
                "dst": "h0",
                "multiplicity": 250,
                "tenant": "cdn-a",
            },
        ],
        "throughput": {
            "samples": [
                {
                    "time_s": 0.0,
                    "active_flows": 2,
                    "aggregate_bps": 9.5e9,
                    "mean_flow_bps": 4.75e9,
                }
            ]
        },
        "availability": {
            "samples": [
                {
                    "time_s": 0.0,
                    "links_down": 0,
                    "links_total": 48,
                    "flows_rerouted": 0,
                    "flows_aborted": 0,
                }
            ]
        },
        "sla_violations": 1,
        "extras": {"fct_p99_s": 1.5},
    }


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(results())
    def test_random_canonical_dicts_round_trip_byte_identical(self, data):
        assert dumps(decode_result(encode_result(data))) == dumps(data)

    @settings(max_examples=50, deadline=None)
    @given(results(with_wall_clock=True))
    def test_full_to_dict_shape_round_trips(self, data):
        assert dumps(decode_result(encode_result(data))) == dumps(data)

    @settings(max_examples=50, deadline=None)
    @given(results())
    def test_encoded_payload_survives_a_json_hop(self, data):
        # The encoded dict crosses pickle pipes and HTTP as JSON; a JSON
        # round-trip of the *encoded* form must not lose anything either.
        hopped = json.loads(json.dumps(encode_result(data)))
        assert dumps(decode_result(hopped)) == dumps(data)

    def test_special_floats_are_bit_exact(self):
        data = sample_result()
        data["records"][0]["size_bytes"] = -0.0
        data["records"][0]["created_at_s"] = float("inf")
        data["records"][1]["finished_at_s"] = float("-inf")
        data["extras"]["nan"] = float("nan")
        decoded = decode_result(encode_result(data))
        assert math.copysign(1.0, decoded["records"][0]["size_bytes"]) == -1.0
        assert decoded["records"][0]["created_at_s"] == float("inf")
        assert decoded["records"][1]["finished_at_s"] == float("-inf")
        assert math.isnan(decoded["extras"]["nan"])

    def test_real_simulation_result_round_trips(self):
        jobs = plan_comparison(ScenarioSpec.pareto_poisson(sim_time_s=1.0, seed=11))
        report = run_jobs(jobs[:1], executor="serial")
        (result,) = report.results.values()
        for data in (result.canonical_dict(), result.to_dict()):
            assert dumps(decode_result(encode_result(data))) == dumps(data)

    def test_empty_tables_round_trip(self):
        data = sample_result()
        data["records"] = []
        data["throughput"]["samples"] = []
        data["availability"]["samples"] = []
        data["extras"] = {}
        assert dumps(decode_result(encode_result(data))) == dumps(data)


class TestCompression:
    def test_columnar_encoding_is_smaller_on_real_results(self):
        jobs = plan_comparison(ScenarioSpec.pareto_poisson(sim_time_s=1.5, seed=5))
        report = run_jobs(jobs[:1], executor="serial")
        (result,) = report.results.values()
        plain = result.canonical_dict()
        assert len(dumps(encode_result(plain))) < 0.7 * len(dumps(plain))

    def test_string_columns_are_dictionary_encoded(self):
        data = sample_result()
        encoded = encode_result(data)
        kinds = encoded["records"]["kind"]
        assert sorted(kinds["values"]) == ["bulk", "mice"]
        assert len(kinds["values"]) == len(set(kinds["values"]))


class TestStrictness:
    def test_marker_key_identifies_encoded_payloads(self):
        encoded = encode_result(sample_result())
        assert is_columnar(encoded)
        assert encoded[COLUMNAR_KEY] == COLUMNAR_VERSION
        assert not is_columnar(sample_result())
        assert not is_columnar(None)
        assert not is_columnar(["not", "a", "mapping"])

    def test_extra_top_level_key_rejected(self):
        data = sample_result()
        data["__chaos_corrupted__"] = True
        with pytest.raises(CodecError, match="canonical shape"):
            encode_result(data)

    def test_missing_top_level_key_rejected(self):
        data = sample_result()
        del data["scheme"]
        with pytest.raises(CodecError, match="canonical shape"):
            encode_result(data)

    def test_bool_is_not_an_int(self):
        data = sample_result()
        data["records"][0]["flow_id"] = True
        with pytest.raises(CodecError, match="expected int"):
            encode_result(data)

    def test_int_where_float_belongs_rejected(self):
        data = sample_result()
        data["records"][0]["size_bytes"] = 2048  # int, would not round-trip
        with pytest.raises(CodecError, match="expected float"):
            encode_result(data)

    def test_row_with_wrong_keys_rejected(self):
        data = sample_result()
        del data["records"][0]["kind"]
        with pytest.raises(CodecError, match="records row"):
            encode_result(data)

    def test_int_outside_int64_rejected(self):
        data = sample_result()
        data["records"][0]["flow_id"] = 2**63
        with pytest.raises(CodecError, match="int64"):
            encode_result(data)

    def test_decode_rejects_unmarked_payloads(self):
        with pytest.raises(CodecError, match="no columnar marker"):
            decode_result(sample_result())

    def test_decode_rejects_future_versions(self):
        encoded = encode_result(sample_result())
        encoded[COLUMNAR_KEY] = COLUMNAR_VERSION + 1
        with pytest.raises(CodecError, match="unsupported columnar version"):
            decode_result(encoded)

    def test_decode_rejects_truncated_columns(self):
        encoded = encode_result(sample_result())
        encoded["records"]["flow_id"] = encoded["records"]["flow_id"][:4]
        with pytest.raises(CodecError, match="malformed columnar records"):
            decode_result(encoded)


class TestWireOutcome:
    def test_envelope_shape_and_counters(self):
        outcome = encode_wire_outcome(sample_result())
        assert outcome["ok"] is True
        assert outcome["encoding"] == WIRE_COLUMNAR
        assert is_columnar(outcome["result"])
        assert outcome["wire_bytes"] == len(dumps(outcome["result"]))
        assert outcome["encode_s"] >= 0.0

    def test_unencodable_result_raises(self):
        with pytest.raises(CodecError):
            encode_wire_outcome({"not": "a result"})


class TestWireCounters:
    def test_add_snapshot_delta(self):
        counters = WireCounters()
        before = counters.snapshot()
        counters.add(encoded_results=2, encoded_bytes=100.0, decode_s=0.25)
        delta = counters.delta_since(before)
        assert delta["encoded_results"] == 2
        assert delta["encoded_bytes"] == 100.0
        assert delta["decode_s"] == 0.25
        assert delta["decoded_results"] == 0

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError, match="unknown wire counter"):
            WireCounters().add(bogus=1)
