"""Tests for the engine's lazy-cancellation compaction and handle-free fast path."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.timers import PeriodicTimer


class TestHeapCompaction:
    def test_schedule_and_cancel_100k_timers_keeps_heap_bounded(self):
        """Regression: cancelled events used to stay on the heap until popped."""
        sim = Simulator()
        live = sim.call_at(1e9, lambda: None)  # one live far-future event
        for i in range(100_000):
            ev = sim.call_at(1.0 + i * 1e-6, lambda: None)
            ev.cancel()
            # The heap may transiently hold up to ~2x the live count plus the
            # compaction floor, never the full cancelled backlog.
            assert sim.heap_size <= 256
        assert sim.pending_count == 1
        assert live.pending

    def test_compaction_preserves_live_event_order(self):
        sim = Simulator()
        fired = []
        for t in range(1, 6):
            sim.call_at(float(t), lambda t=t: fired.append(t))
        # Bury them under a pile of cancellations that forces compaction.
        for i in range(1_000):
            sim.call_at(100.0 + i, lambda: None).cancel()
        assert sim.heap_size < 100
        sim.run(until=10.0)
        assert fired == [1, 2, 3, 4, 5]

    def test_repeated_reschedule_pattern_stays_bounded(self):
        """The fabric's cancel-and-rearm recompute pattern must not leak."""
        sim = Simulator()
        pending = None
        for i in range(10_000):
            if pending is not None and pending.pending:
                pending.cancel()
            pending = sim.call_at(1.0 + i * 1e-4, lambda: None)
        assert sim.heap_size <= 256
        assert sim.pending_count == 1

    def test_cancelled_count_survives_peek_and_step(self):
        sim = Simulator()
        evs = [sim.call_at(float(t + 1), lambda: None) for t in range(10)]
        for ev in evs[:5]:
            ev.cancel()
        assert sim.peek() == 6.0
        sim.run()
        assert sim.events_processed == 5
        assert sim.heap_size == 0


class TestCallAtFast:
    def test_fires_with_args_at_the_right_time(self):
        sim = Simulator()
        seen = []
        sim.call_at_fast(2.0, lambda a, b: seen.append((sim.now, a, b)), 1, "x")
        sim.run()
        assert seen == [(2.0, 1, "x")]

    def test_returns_no_handle(self):
        sim = Simulator()
        assert sim.call_at_fast(1.0, lambda: None) is None

    def test_interleaves_fifo_with_regular_events(self):
        sim = Simulator()
        order = []
        sim.call_at(1.0, lambda: order.append("event-a"))
        sim.call_at_fast(1.0, lambda: order.append("fast-b"))
        sim.call_at(1.0, lambda: order.append("event-c"))
        sim.call_at_fast(1.0, lambda: order.append("fast-d"))
        sim.run()
        assert order == ["event-a", "fast-b", "event-c", "fast-d"]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.call_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at_fast(5.0, lambda: None)

    def test_call_in_fast_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_in_fast(-0.5, lambda: None)

    def test_counts_towards_events_processed(self):
        sim = Simulator()
        sim.call_at_fast(1.0, lambda: None)
        sim.call_at_fast(2.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2

    def test_chained_fast_calls(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 1000:
                sim.call_in_fast(0.001, tick)

        sim.call_in_fast(0.001, tick)
        sim.run()
        assert count[0] == 1000


class TestPeriodicTimerFastPath:
    def test_timer_does_not_allocate_cancellable_events(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 1.0, lambda now: ticks.append(now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]
        # Ticks ride the fast path: the heap holds a bare record, no Event.
        assert sim._heap and sim._heap[0][2] is None

    def test_stopped_timer_stale_record_is_a_noop(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda now: ticks.append(now))
        sim.call_at(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not timer.active

    def test_unbounded_run_rests_at_most_one_interval_past_stop(self):
        """Documented trade-off: the stale tick record advances the clock as a no-op."""
        sim = Simulator()
        timer = PeriodicTimer(sim, 10.0, lambda now: None)
        sim.call_at(12.0, timer.stop)  # tick at 10 fired; next record sits at 20
        end = sim.run()
        assert end == 20.0
        assert timer.ticks == 1

    def test_restart_semantics_via_generation(self):
        """A stale tick from before stop() never fires even at the same time."""
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda now: ticks.append(now))
        sim.call_at(1.5, timer.stop)
        sim.run(until=5.0)
        assert ticks == [1.0]
        assert timer.ticks == 1


class TestHeapCompactionCounter:
    def test_compactions_are_counted(self):
        sim = Simulator()
        assert sim.heap_compactions == 0
        for i in range(10_000):
            sim.call_at(1.0 + i, lambda: None).cancel()
        assert sim.heap_compactions > 0
