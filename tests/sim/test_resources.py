"""Tests for Resource / PriorityResource / Container / Store."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import Container, PriorityResource, Resource, Store


class TestResource:
    def test_requests_within_capacity_grant_immediately(self, sim):
        res = Resource(sim, capacity=2)
        r1, r2 = res.request(), res.request()
        sim.run()
        assert r1.triggered and r2.triggered
        assert res.in_use == 2

    def test_request_beyond_capacity_waits_for_release(self, sim):
        res = Resource(sim, capacity=1)
        first = res.request()
        second = res.request()
        sim.run()
        assert first.triggered and not second.triggered
        assert res.queue_length == 1
        res.release()
        sim.run()
        assert second.triggered

    def test_release_without_request_raises(self, sim):
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_available_counts_free_slots(self, sim):
        res = Resource(sim, capacity=3)
        res.request()
        sim.run()
        assert res.available == 2

    def test_invalid_capacity_raises(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_cancelled_waiter_is_skipped(self, sim):
        res = Resource(sim, capacity=1)
        res.request()
        waiting_a = res.request()
        waiting_b = res.request()
        sim.run()
        waiting_a.cancel()
        res.release()
        sim.run()
        assert waiting_b.triggered


class TestPriorityResource:
    def test_lower_priority_number_served_first(self, sim):
        res = PriorityResource(sim, capacity=1)
        res.request(priority=0)
        low = res.request(priority=5)
        high = res.request(priority=1)
        sim.run()
        res.release()
        sim.run()
        assert high.triggered and not low.triggered

    def test_fifo_within_equal_priority(self, sim):
        res = PriorityResource(sim, capacity=1)
        res.request()
        first = res.request(priority=2)
        second = res.request(priority=2)
        sim.run()
        res.release()
        sim.run()
        assert first.triggered and not second.triggered


class TestContainer:
    def test_put_and_get_track_level(self, sim):
        box = Container(sim, capacity=100.0, init=10.0)
        box.put(20.0)
        box.get(5.0)
        sim.run()
        assert box.level == pytest.approx(25.0)

    def test_get_blocks_until_enough_available(self, sim):
        box = Container(sim, capacity=100.0)
        getter = box.get(30.0)
        sim.run()
        assert not getter.triggered
        box.put(50.0)
        sim.run()
        assert getter.triggered
        assert box.level == pytest.approx(20.0)

    def test_put_blocks_when_capacity_exceeded(self, sim):
        box = Container(sim, capacity=10.0, init=8.0)
        putter = box.put(5.0)
        sim.run()
        assert not putter.triggered
        box.get(4.0)
        sim.run()
        assert putter.triggered

    def test_invalid_init_raises(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=10.0, init=20.0)

    def test_negative_amount_raises(self, sim):
        box = Container(sim, capacity=10.0)
        with pytest.raises(ValueError):
            box.put(-1.0)


class TestStore:
    def test_fifo_ordering(self, sim):
        store = Store(sim)
        store.put("a")
        store.put("b")
        g1, g2 = store.get(), store.get()
        sim.run()
        assert (g1.value, g2.value) == ("a", "b")

    def test_get_blocks_until_item_available(self, sim):
        store = Store(sim)
        getter = store.get()
        sim.run()
        assert not getter.triggered
        store.put("late")
        sim.run()
        assert getter.triggered
        assert getter.value == "late"

    def test_bounded_store_blocks_puts(self, sim):
        store = Store(sim, capacity=1)
        store.put("first")
        blocked = store.put("second")
        sim.run()
        assert not blocked.triggered
        store.get()
        sim.run()
        assert blocked.triggered

    def test_len_and_items_snapshot(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        sim.run()
        assert len(store) == 2
        assert store.items == (1, 2)

    def test_invalid_capacity_raises(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)
