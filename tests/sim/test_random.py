"""Tests for deterministic random streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import RandomStreams, derive_seed


class TestDeterminism:
    def test_same_seed_same_stream_gives_identical_draws(self):
        a = RandomStreams(7).stream("arrivals").random(10)
        b = RandomStreams(7).stream("arrivals").random(10)
        assert np.array_equal(a, b)

    def test_different_streams_are_independent(self):
        streams = RandomStreams(7)
        a = streams.stream("arrivals").random(10)
        b = streams.stream("sizes").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(10)
        b = RandomStreams(2).stream("x").random(10)
        assert not np.array_equal(a, b)

    def test_stream_is_cached(self):
        streams = RandomStreams(3)
        assert streams.stream("x") is streams.stream("x")

    def test_spawn_creates_independent_child(self):
        parent = RandomStreams(5)
        child = parent.spawn("worker")
        a = parent.stream("x").random(5)
        b = child.stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_derive_seed_is_stable(self):
        assert derive_seed(42, "abc") == derive_seed(42, "abc")
        assert derive_seed(42, "abc") != derive_seed(42, "abd")

    def test_derive_seed_pinned_values(self):
        # SHA-256 based, so stable across interpreter restarts, platforms
        # and Python versions: pin the actual values.  A change here breaks
        # reproducibility of every stored ResultStore and must be treated as
        # a breaking format change, not a refactor.
        assert derive_seed(42, "abc") == 5912501815372177740
        assert derive_seed(0, "workload") == 99422827920234848
        assert derive_seed(1, "sweep", "rate=40", "scda") == 3492856802186913451

    def test_hierarchical_derivation_chains_flat_derivations(self):
        chained = derive_seed(derive_seed(derive_seed(7, "a"), "b"), "c")
        assert derive_seed(7, "a", "b", "c") == chained

    def test_hierarchical_derivation_is_order_sensitive(self):
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")
        # Path boundaries matter: ("ab",) is not ("a", "b").
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")


class TestConvenienceDraws:
    def test_exponential_requires_positive_mean(self):
        with pytest.raises(ValueError):
            RandomStreams(0).exponential("x", -1.0)

    def test_pareto_mean_matches_configuration(self):
        streams = RandomStreams(11)
        draws = [streams.pareto("p", mean=1000.0, shape=2.5) for _ in range(20000)]
        assert np.mean(draws) == pytest.approx(1000.0, rel=0.1)

    def test_pareto_shape_must_exceed_one(self):
        with pytest.raises(ValueError):
            RandomStreams(0).pareto("p", mean=10.0, shape=1.0)

    def test_choice_returns_an_option(self):
        streams = RandomStreams(3)
        options = ["a", "b", "c"]
        assert streams.choice("c", options) in options

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RandomStreams(0).choice("c", [])

    def test_integers_within_range(self):
        streams = RandomStreams(9)
        draws = [streams.integers("i", 0, 5) for _ in range(100)]
        assert all(0 <= d < 5 for d in draws)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1), name=st.text(min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_derive_seed_is_always_a_valid_64bit_value(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64

    @given(
        mean=st.floats(min_value=1.0, max_value=1e9),
        shape=st.floats(min_value=1.05, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_pareto_draws_never_fall_below_scale(self, mean, shape):
        streams = RandomStreams(1)
        scale = mean * (shape - 1.0) / shape
        draw = streams.pareto("p", mean=mean, shape=shape)
        assert draw >= scale * (1 - 1e-9)
