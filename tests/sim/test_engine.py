"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_run_with_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=12.5)
        assert sim.now == 12.5


class TestScheduling:
    def test_call_at_runs_callback_at_the_right_time(self):
        sim = Simulator()
        seen = []
        sim.call_at(3.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0]

    def test_call_in_is_relative_to_now(self):
        sim = Simulator()
        seen = []
        sim.call_at(2.0, lambda: sim.call_in(1.5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [3.5]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.call_at(5.0, lambda: order.append("late"))
        sim.call_at(1.0, lambda: order.append("early"))
        sim.call_at(3.0, lambda: order.append("middle"))
        sim.run()
        assert order == ["early", "middle", "late"]

    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.call_at(1.0, lambda l=label: order.append(l))
        sim.run()
        assert order == list("abcde")

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.call_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_in(-1.0, lambda: None)

    def test_callback_arguments_are_passed(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda a, b: seen.append((a, b)), 1, "x")
        sim.run()
        assert seen == [(1, "x")]


class TestRunControl:
    def test_run_until_does_not_fire_later_events(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: seen.append(1))
        sim.call_at(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0

    def test_later_events_survive_a_bounded_run(self):
        sim = Simulator()
        seen = []
        sim.call_at(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        sim.run()
        assert seen == [10]

    def test_max_events_limits_execution(self):
        sim = Simulator()
        seen = []
        for t in range(1, 6):
            sim.call_at(float(t), lambda t=t: seen.append(t))
        sim.run(max_events=2)
        assert seen == [1, 2]

    def test_stop_halts_the_run_loop(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: (seen.append(1), sim.stop()))
        sim.call_at(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]

    def test_step_returns_false_when_queue_is_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_step_fires_exactly_one_event(self):
        sim = Simulator()
        seen = []
        sim.call_at(1.0, lambda: seen.append(1))
        sim.call_at(2.0, lambda: seen.append(2))
        assert sim.step() is True
        assert seen == [1]

    def test_peek_returns_next_event_time(self):
        sim = Simulator()
        sim.call_at(4.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        assert sim.peek() == 2.0

    def test_peek_skips_cancelled_events(self):
        sim = Simulator()
        ev = sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        ev.cancel()
        assert sim.peek() == 2.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in range(3):
            sim.call_at(float(t + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        ev = sim.call_at(1.0, lambda: seen.append("x"))
        ev.cancel()
        sim.run()
        assert seen == []

    def test_events_scheduled_during_run_are_executed(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.call_in(1.0, chain, depth + 1)

        sim.call_at(1.0, chain, 0)
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 4.0
