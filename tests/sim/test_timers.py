"""Tests for periodic timers."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


class TestPeriodicTimer:
    def test_ticks_at_fixed_interval(self, sim):
        ticks = []
        PeriodicTimer(sim, 1.0, lambda now: ticks.append(now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_start_at_overrides_first_tick(self, sim):
        ticks = []
        PeriodicTimer(sim, 2.0, lambda now: ticks.append(now), start_at=0.5)
        sim.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_stop_prevents_future_ticks(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda now: ticks.append(now))
        sim.call_at(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not timer.active

    def test_stop_from_within_callback(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda now: (ticks.append(now), timer.stop()))
        sim.run(until=10.0)
        assert ticks == [1.0]

    def test_tick_counter(self, sim):
        timer = PeriodicTimer(sim, 0.5, lambda now: None)
        sim.run(until=2.0)
        assert timer.ticks == 4

    def test_invalid_interval_raises(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda now: None)

    def test_jitter_function_shifts_ticks(self, sim):
        ticks = []
        PeriodicTimer(sim, 1.0, lambda now: ticks.append(now), jitter_fn=lambda: 0.25)
        sim.run(until=4.0)
        assert ticks[0] == pytest.approx(1.0)
        assert ticks[1] == pytest.approx(2.25)
        assert ticks[2] == pytest.approx(3.5)


class TestTimerWheel:
    def test_same_deadline_shares_one_bucket_and_flushes_in_order(self, sim):
        from repro.sim.timers import TimerWheel

        wheel = TimerWheel(sim)
        fired = []
        for i in range(5):
            wheel.call_at(1.0, fired.append, i)
        wheel.call_at(2.0, fired.append, 99)
        assert wheel.pending == 6
        assert wheel.open_buckets == 2
        assert wheel.max_bucket == 5
        sim.run(until=3.0)
        assert fired == [0, 1, 2, 3, 4, 99]  # registration order per bucket
        assert wheel.pending == 0
        assert wheel.open_buckets == 0
        assert wheel.flushes == 2
        assert wheel.scheduled == 6

    def test_call_in_is_relative_to_now(self, sim):
        wheel = sim.timer_wheel()
        fired = []
        sim.call_at(1.5, lambda: wheel.call_in(0.5, fired.append, sim))
        sim.run(until=5.0)
        assert fired == [sim]
        with pytest.raises(ValueError):
            wheel.call_in(-0.1, fired.append, None)

    def test_engine_owns_a_single_lazy_wheel(self, sim):
        assert sim.timer_wheel() is sim.timer_wheel()

    def test_periodic_timer_on_wheel_matches_heap_schedule(self):
        """A wheel-backed periodic timer ticks at bit-identical times."""
        from repro.sim.engine import Simulator

        def run(use_wheel):
            sim = Simulator()
            ticks = []
            wheel = sim.timer_wheel() if use_wheel else None
            PeriodicTimer(sim, 0.25, ticks.append, wheel=wheel)
            sim.run(until=5.0)
            return ticks

        assert run(use_wheel=True) == run(use_wheel=False)

    def test_coscheduled_periodic_timers_share_buckets(self, sim):
        """N controllers on the same tau grid cost one heap event per round."""
        wheel = sim.timer_wheel()
        ticks = []
        for i in range(4):
            PeriodicTimer(sim, 0.5, lambda now, i=i: ticks.append((now, i)), wheel=wheel)
        sim.run(until=1.1)
        assert ticks == [
            (0.5, 0), (0.5, 1), (0.5, 2), (0.5, 3),
            (1.0, 0), (1.0, 1), (1.0, 2), (1.0, 3),
        ]
        assert wheel.flushes == 2
        assert wheel.max_bucket == 4

    def test_stopped_timer_does_not_fire_from_a_shared_bucket(self, sim):
        wheel = sim.timer_wheel()
        ticks = []
        keep = PeriodicTimer(sim, 1.0, lambda now: ticks.append("keep"), wheel=wheel)
        stop = PeriodicTimer(sim, 1.0, lambda now: ticks.append("stop"), wheel=wheel)
        sim.call_at(0.5, stop.stop)
        sim.run(until=2.5)
        assert ticks == ["keep", "keep"]
        assert keep.ticks == 2

    def test_wheel_stats_snapshot(self, sim):
        wheel = sim.timer_wheel()
        wheel.call_at(1.0, lambda: None)
        stats = wheel.stats()
        assert stats == {
            "scheduled": 1,
            "flushes": 0,
            "max_bucket": 1,
            "pending": 1,
            "open_buckets": 1,
        }
