"""Tests for periodic timers."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


class TestPeriodicTimer:
    def test_ticks_at_fixed_interval(self, sim):
        ticks = []
        PeriodicTimer(sim, 1.0, lambda now: ticks.append(now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_start_at_overrides_first_tick(self, sim):
        ticks = []
        PeriodicTimer(sim, 2.0, lambda now: ticks.append(now), start_at=0.5)
        sim.run(until=5.0)
        assert ticks == [0.5, 2.5, 4.5]

    def test_stop_prevents_future_ticks(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda now: ticks.append(now))
        sim.call_at(2.5, timer.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not timer.active

    def test_stop_from_within_callback(self, sim):
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda now: (ticks.append(now), timer.stop()))
        sim.run(until=10.0)
        assert ticks == [1.0]

    def test_tick_counter(self, sim):
        timer = PeriodicTimer(sim, 0.5, lambda now: None)
        sim.run(until=2.0)
        assert timer.ticks == 4

    def test_invalid_interval_raises(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda now: None)

    def test_jitter_function_shifts_ticks(self, sim):
        ticks = []
        PeriodicTimer(sim, 1.0, lambda now: ticks.append(now), jitter_fn=lambda: 0.25)
        sim.run(until=4.0)
        assert ticks[0] == pytest.approx(1.0)
        assert ticks[1] == pytest.approx(2.25)
        assert ticks[2] == pytest.approx(3.5)
