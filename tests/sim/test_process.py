"""Tests for generator-based processes."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import Interrupt
from repro.sim.process import Process


class TestBasicProcesses:
    def test_process_advances_through_timeouts(self, sim):
        trace = []

        def worker(sim):
            trace.append(("start", sim.now))
            yield sim.timeout(2.0)
            trace.append(("mid", sim.now))
            yield 3.0  # plain numbers also work
            trace.append(("end", sim.now))

        sim.process(worker(sim))
        sim.run()
        assert trace == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]

    def test_process_return_value_becomes_event_value(self, sim):
        def worker(sim):
            yield sim.timeout(1.0)
            return "result"

        proc = sim.process(worker(sim))
        sim.run()
        assert proc.triggered
        assert proc.value == "result"

    def test_process_receives_event_value_from_yield(self, sim):
        seen = []

        def worker(sim):
            value = yield sim.timeout(1.0, value="payload")
            seen.append(value)

        sim.process(worker(sim))
        sim.run()
        assert seen == ["payload"]

    def test_waiting_on_another_process(self, sim):
        trace = []

        def child(sim):
            yield sim.timeout(2.0)
            return "child-done"

        def parent(sim):
            result = yield sim.process(child(sim))
            trace.append((sim.now, result))

        sim.process(parent(sim))
        sim.run()
        assert trace == [(2.0, "child-done")]

    def test_non_generator_raises_type_error(self, sim):
        with pytest.raises(TypeError):
            Process(sim, lambda: None)

    def test_yielding_garbage_kills_the_process_with_type_error(self, sim):
        def worker(sim):
            yield "not an event"

        proc = sim.process(worker(sim))
        with pytest.raises(TypeError):
            sim.run()
        assert not proc.alive


class TestInterruptAndKill:
    def test_interrupt_raises_inside_generator(self, sim):
        caught = []

        def worker(sim):
            try:
                yield sim.timeout(10.0)
            except Interrupt as exc:
                caught.append(exc.cause)

        proc = sim.process(worker(sim))
        sim.call_at(1.0, lambda: proc.interrupt("too slow"))
        sim.run()
        assert caught == ["too slow"]

    def test_kill_stops_the_process(self, sim):
        progressed = []

        def worker(sim):
            yield sim.timeout(1.0)
            progressed.append("should not happen")

        proc = sim.process(worker(sim))
        sim.call_at(0.5, proc.kill)
        sim.run()
        assert progressed == []
        assert not proc.alive

    def test_interrupt_after_completion_is_a_noop(self, sim):
        def worker(sim):
            yield sim.timeout(1.0)

        proc = sim.process(worker(sim))
        sim.run()
        proc.interrupt("late")  # must not raise
        assert proc.triggered

    def test_alive_reflects_process_state(self, sim):
        def worker(sim):
            yield sim.timeout(1.0)

        proc = sim.process(worker(sim))
        assert proc.alive
        sim.run()
        assert not proc.alive

    def test_two_processes_interleave_deterministically(self, sim):
        order = []

        def worker(sim, name, delay):
            for _ in range(3):
                yield sim.timeout(delay)
                order.append((name, sim.now))

        sim.process(worker(sim, "fast", 1.0))
        sim.process(worker(sim, "slow", 1.5))
        sim.run()
        # At t=3.0 both are due; the slow worker scheduled its timeout earlier
        # (at t=1.5, versus t=2.0 for the fast one) so it fires first.
        assert order == [
            ("fast", 1.0),
            ("slow", 1.5),
            ("fast", 2.0),
            ("slow", 3.0),
            ("fast", 3.0),
            ("slow", 4.5),
        ]
