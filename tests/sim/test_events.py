"""Tests for event primitives."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventState, Timeout


class TestEventLifecycle:
    def test_new_event_is_pending(self, sim):
        ev = sim.event("x")
        assert ev.pending
        assert not ev.triggered
        assert not ev.cancelled

    def test_succeed_triggers_and_stores_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.value == 42

    def test_succeed_twice_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_cancel_prevents_callbacks(self, sim):
        ev = sim.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e))
        ev.cancel()
        assert ev.cancelled
        assert seen == []

    def test_cancel_after_trigger_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.cancel()

    def test_cancel_twice_is_idempotent(self, sim):
        ev = sim.event()
        ev.cancel()
        ev.cancel()
        assert ev.cancelled

    def test_callback_added_after_trigger_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed("done")
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["done"]

    def test_scheduled_time_records_trigger_time(self, sim):
        ev = sim.timeout(2.5)
        sim.run()
        assert ev.scheduled_time == 2.5


class TestTimeout:
    def test_timeout_fires_after_delay(self, sim):
        ev = sim.timeout(1.5, value="hello")
        fired = []
        ev.add_callback(lambda e: fired.append((sim.now, e.value)))
        sim.run()
        assert fired == [(1.5, "hello")]

    def test_zero_delay_fires_at_current_time(self, sim):
        ev = sim.timeout(0.0)
        sim.run()
        assert ev.triggered
        assert sim.now == 0.0

    def test_negative_delay_raises(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-0.1)


class TestComposites:
    def test_all_of_waits_for_every_child(self, sim):
        e1, e2 = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
        combo = sim.all_of([e1, e2])
        sim.run(until=1.5)
        assert not combo.triggered
        sim.run()
        assert combo.triggered
        assert combo.value == ["a", "b"]

    def test_all_of_empty_triggers_immediately(self, sim):
        combo = sim.all_of([])
        sim.run()
        assert combo.triggered
        assert combo.value == []

    def test_any_of_fires_on_first_child(self, sim):
        e1, e2 = sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")
        combo = sim.any_of([e1, e2])
        sim.run(until=1.0)
        assert combo.triggered
        assert combo.value is e2

    def test_any_of_ignores_later_children(self, sim):
        e1, e2 = sim.timeout(1.0), sim.timeout(2.0)
        combo = sim.any_of([e1, e2])
        sim.run()
        assert combo.triggered  # and no error when the second child fires

    def test_event_state_enum_values(self, sim):
        ev = sim.event()
        assert ev.state is EventState.PENDING
        ev.succeed()
        assert ev.state is EventState.TRIGGERED
