"""Package-level smoke tests: imports, version, public API exports."""

import importlib

import pytest

import repro


SUBPACKAGES = [
    "repro.sim",
    "repro.network",
    "repro.network.transport",
    "repro.core",
    "repro.cluster",
    "repro.energy",
    "repro.workloads",
    "repro.metrics",
    "repro.baselines",
    "repro.experiments",
    "repro.analysis",
    "repro.cli",
]


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_subpackages_import_cleanly(module_name):
    module = importlib.import_module(module_name)
    assert module is not None


@pytest.mark.parametrize("module_name", SUBPACKAGES)
def test_public_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ exports missing name {name}"


def test_quickstart_symbols_are_importable():
    from repro.experiments import ScenarioConfig, run_comparison  # noqa: F401
    from repro.core import ScdaController  # noqa: F401
    from repro.network import build_tree_topology  # noqa: F401
