"""Tests for the SCDA controller."""

import pytest

from repro.cluster.content import ContentClass
from repro.core.controller import ScdaController, ScdaControllerConfig
from repro.core.rate_metric import ScdaParams
from repro.core.sla import MitigationAction
from repro.network.fabric import FabricConfig, FabricSimulator
from repro.network.flow import FlowKind
from repro.network.transport.scda import ScdaTransport
from repro.sim.engine import Simulator

MBPS = 1e6


def build_scda_stack(topology, control_interval=0.01, **controller_kwargs):
    sim = Simulator()
    config = ScdaControllerConfig(
        params=ScdaParams(control_interval_s=control_interval), **controller_kwargs
    )
    controller = ScdaController(sim, topology, config)
    fabric = FabricSimulator(
        sim,
        topology,
        ScdaTransport(controller),
        config=FabricConfig(control_interval_s=control_interval),
    )
    controller.attach_fabric(fabric)
    return sim, controller, fabric


class TestAllocations:
    def test_single_flow_gets_the_path_bottleneck(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree)
        host = small_tree.hosts()[0]
        client = small_tree.clients()[0]
        x = small_tree.uplink_of(host).capacity_bps
        flow = fabric.start_flow(client, host, 10e6, FlowKind.DATA)
        sim.run(until=0.2)
        # After a couple of control intervals the flow should run near alpha*X
        # (the host access link is the narrowest link on its path).
        assert flow.current_rate_bps == pytest.approx(0.95 * x, rel=0.1)

    def test_two_flows_into_one_host_converge_to_half_share(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree)
        host = small_tree.hosts()[0]
        x = small_tree.uplink_of(host).capacity_bps
        f1 = fabric.start_flow(small_tree.clients()[0], host, 50e6)
        f2 = fabric.start_flow(small_tree.clients()[1], host, 50e6)
        sim.run(until=0.3)
        for flow in (f1, f2):
            assert flow.current_rate_bps == pytest.approx(0.95 * x / 2, rel=0.15)

    def test_flows_complete(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree)
        host = small_tree.hosts()[0]
        flow = fabric.start_flow(small_tree.clients()[0], host, 5e6)
        sim.run(until=10.0)
        assert flow.fct is not None
        assert controller.rounds_run > 0

    def test_reservation_admitted_via_flow_meta(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree)
        host = small_tree.hosts()[0]
        flow = fabric.start_flow(
            small_tree.clients()[0], host, 5e6, meta={"reserve_bps": 20 * MBPS}
        )
        assert controller.reservations.reservation_of(flow.flow_id) is not None
        sim.run(until=10.0)
        # Reservation released on completion.
        assert controller.reservations.reservation_of(flow.flow_id) is None

    def test_control_round_respects_tau(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree, control_interval=0.05)
        assert controller.control_round(0.0) is True
        assert controller.control_round(0.01) is False
        assert controller.control_round(0.06) is True
        assert controller.control_round(0.06, force=True) is True


class TestSelectionInterface:
    def test_select_primary_prefers_unloaded_host(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree)
        busy = small_tree.hosts()[0]
        # Saturate the busy host's downlink with two long flows.
        fabric.start_flow(small_tree.clients()[0], busy, 1e9)
        fabric.start_flow(small_tree.clients()[1], busy, 1e9)
        sim.run(until=0.3)
        chosen = controller.select_primary(ContentClass.LWHR)
        assert chosen != busy.node_id

    def test_placement_hints_spread_consecutive_choices(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree)
        sim.run(until=0.05)
        choices = {controller.select_primary(ContentClass.LWHR) for _ in range(4)}
        # Without any traffic all hosts look identical; the placement hints must
        # prevent four consecutive selections from herding onto one server.
        assert len(choices) >= 3

    def test_placement_hints_expire(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree)
        controller.note_placement("bs-0-0-0", now=0.0)
        assert controller.pending_placements("bs-0-0-0", now=0.1) == 1
        assert controller.pending_placements("bs-0-0-0", now=10.0) == 0

    def test_placement_hints_can_be_disabled(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree, placement_hint_ttl_s=0.0)
        controller.note_placement("bs-0-0-0")
        assert controller.pending_placements("bs-0-0-0") == 0

    def test_select_replica_differs_from_primary(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree)
        sim.run(until=0.05)
        primary = controller.select_primary(ContentClass.LWHR)
        replica = controller.select_replica(ContentClass.LWHR, primary_id=primary)
        assert replica != primary

    def test_select_read_source_restricted_to_replicas(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree)
        sim.run(until=0.05)
        replicas = [h.node_id for h in small_tree.hosts()[:3]]
        chosen = controller.select_read_source(ContentClass.LWHR, replicas)
        assert chosen in replicas

    def test_dormant_lookup_is_used(self, small_tree):
        sim = Simulator()
        controller = ScdaController(
            sim,
            small_tree,
            ScdaControllerConfig(),
            dormant_lookup=lambda host_id: host_id == "bs-0-0-0",
        )
        metrics = {m.host_id: m for m in controller.selection_metrics()}
        assert metrics["bs-0-0-0"].dormant
        assert not metrics["bs-0-0-1"].dormant

    def test_power_lookup_feeds_metrics(self, small_tree):
        sim = Simulator()
        controller = ScdaController(
            sim,
            small_tree,
            ScdaControllerConfig(),
            power_lookup=lambda host_id, now: 123.0,
        )
        metrics = controller.selection_metrics()
        assert all(m.power_watts == 123.0 for m in metrics)


class TestSlaIntegration:
    def test_report_contains_host_rates(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree)
        sim.run(until=0.05)
        report = controller.report()
        assert report["rounds_run"] >= 0
        assert set(report["hosts"]) == {h.node_id for h in small_tree.hosts()}

    def test_bandwidth_boost_mitigation_increases_capacity(self, small_tree):
        sim, controller, fabric = build_scda_stack(
            small_tree,
            sla_mitigation=MitigationAction.ADD_BANDWIDTH,
            sla_bandwidth_boost=2.0,
        )
        host = small_tree.hosts()[0]
        before = small_tree.uplink_of(host).capacity_bps
        controller.sla_monitor.record(0.0, host.node_id, 0, demand_bps=2 * before, capacity_bps=before)
        after = small_tree.uplink_of(host).capacity_bps
        assert after == pytest.approx(2 * before)

    def test_link_rate_query(self, small_tree):
        sim, controller, fabric = build_scda_stack(small_tree)
        link = small_tree.uplink_of(small_tree.hosts()[0])
        assert controller.link_rate_bps(link) > 0
