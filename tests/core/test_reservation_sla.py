"""Tests for explicit reservations and SLA detection/mitigation."""

import pytest

from repro.core.reservation import Reservation, ReservationRegistry
from repro.core.sla import (
    MitigationAction,
    SlaMonitor,
    SlaPolicy,
    SlaViolation,
    check_flow_slas,
)
from repro.network.flow import Flow
from repro.network.routing import Router

MBPS = 1e6


def make_flow(topo, size=1e6):
    s, d = topo.node("ucl-0"), topo.node("bs-0")
    return Flow(s, d, size, Router(topo).path(s, d))


class TestReservationRegistry:
    def test_admit_sets_the_flow_floor(self, tiny_line_topology):
        registry = ReservationRegistry()
        flow = make_flow(tiny_line_topology)
        assert registry.admit(flow, 10 * MBPS, tenant="gold")
        assert flow.min_rate_bps == 10 * MBPS
        assert registry.reservation_of(flow.flow_id) == Reservation(flow.flow_id, 10 * MBPS, "gold")

    def test_admission_control_rejects_oversubscription(self, tiny_line_topology):
        registry = ReservationRegistry(admission_utilisation=0.9)
        flows = [make_flow(tiny_line_topology) for _ in range(3)]
        assert registry.admit(flows[0], 50 * MBPS)
        assert registry.admit(flows[1], 30 * MBPS)
        # 50 + 30 + 20 > 90 Mb/s (90 % of the 100 Mb/s link): rejected.
        assert not registry.admit(flows[2], 20 * MBPS)
        assert flows[2].min_rate_bps == 0.0

    def test_release_frees_capacity(self, tiny_line_topology):
        registry = ReservationRegistry()
        f1, f2 = make_flow(tiny_line_topology), make_flow(tiny_line_topology)
        assert registry.admit(f1, 80 * MBPS)
        assert not registry.can_admit(f2, 80 * MBPS)
        registry.release(f1.flow_id)
        assert registry.can_admit(f2, 80 * MBPS)

    def test_reserved_on_link_sums_reservations(self, tiny_line_topology):
        registry = ReservationRegistry()
        f1, f2 = make_flow(tiny_line_topology), make_flow(tiny_line_topology)
        registry.admit(f1, 10 * MBPS)
        registry.admit(f2, 15 * MBPS)
        link = f1.path[0]
        assert registry.reserved_on_link(link) == pytest.approx(25 * MBPS)
        assert registry.total_reserved_bps == pytest.approx(25 * MBPS)
        assert len(registry) == 2

    def test_link_reservation_map(self, tiny_line_topology):
        registry = ReservationRegistry()
        flow = make_flow(tiny_line_topology)
        registry.admit(flow, 10 * MBPS)
        mapping = registry.link_reservation_map(tiny_line_topology.links)
        on_path = {l.link_id for l in flow.path}
        for link in tiny_line_topology.links:
            expected = 10 * MBPS if link.link_id in on_path else 0.0
            assert mapping[link.link_id] == pytest.approx(expected)

    def test_invalid_reservation_raises(self, tiny_line_topology):
        registry = ReservationRegistry()
        with pytest.raises(ValueError):
            registry.admit(make_flow(tiny_line_topology), 0.0)
        with pytest.raises(ValueError):
            Reservation(1, -5.0)


class TestSlaPolicy:
    def test_compliant_flow_passes(self):
        policy = SlaPolicy(min_throughput_bps=1 * MBPS, max_fct_s=10.0)
        assert policy.is_flow_compliant(achieved_throughput_bps=2 * MBPS, fct_s=5.0)

    def test_low_throughput_fails(self):
        policy = SlaPolicy(min_throughput_bps=10 * MBPS)
        assert not policy.is_flow_compliant(1 * MBPS, fct_s=1.0)

    def test_late_completion_fails(self):
        policy = SlaPolicy(max_fct_s=1.0)
        assert not policy.is_flow_compliant(100 * MBPS, fct_s=2.0)

    def test_invalid_policy_raises(self):
        with pytest.raises(ValueError):
            SlaPolicy(min_throughput_bps=-1.0)
        with pytest.raises(ValueError):
            SlaPolicy(max_fct_s=0.0)

    def test_check_flow_slas_finds_offenders(self, tiny_line_topology):
        policy = SlaPolicy(max_fct_s=0.5)
        good, bad = make_flow(tiny_line_topology), make_flow(tiny_line_topology)
        for f, fct in ((good, 0.2), (bad, 2.0)):
            f.start(0.0)
            f.finish(fct)
        offenders = check_flow_slas([good, bad], lambda f: policy)
        assert offenders == [bad]


class TestSlaMonitor:
    def test_record_and_summary(self):
        monitor = SlaMonitor()
        monitor.record(1.0, "bs-0", 0, demand_bps=120 * MBPS, capacity_bps=100 * MBPS)
        monitor.record(2.0, "bs-0", 0, demand_bps=130 * MBPS, capacity_bps=100 * MBPS)
        monitor.record(2.0, "tor-1", 1, demand_bps=300 * MBPS, capacity_bps=200 * MBPS)
        assert monitor.count == 3
        assert monitor.summary() == {"bs-0": 2, "tor-1": 1}
        assert len(monitor.violations_at("bs-0")) == 2
        assert monitor.violation_rate(10.0) == pytest.approx(0.3)

    def test_overload_ratio(self):
        violation = SlaViolation(0.0, "x", 0, demand_bps=150.0, capacity_bps=100.0)
        assert violation.overload_ratio == pytest.approx(1.5)

    def test_add_bandwidth_mitigation_invokes_callback_once_per_location(self):
        boosted = []
        monitor = SlaMonitor(
            mitigation=MitigationAction.ADD_BANDWIDTH,
            bandwidth_boost_factor=1.5,
            apply_bandwidth_boost=lambda loc, factor: boosted.append((loc, factor)),
        )
        monitor.record(1.0, "tor-1", 1, 300.0, 200.0)
        monitor.record(2.0, "tor-1", 1, 310.0, 200.0)
        assert boosted == [("tor-1", 1.5)]
        assert monitor.violations[0].mitigation is MitigationAction.ADD_BANDWIDTH
        assert monitor.violations[1].mitigation is MitigationAction.NONE

    def test_invalid_boost_factor_raises(self):
        with pytest.raises(ValueError):
            SlaMonitor(bandwidth_boost_factor=0.5)

    def test_violation_rate_requires_positive_duration(self):
        with pytest.raises(ValueError):
            SlaMonitor().violation_rate(0.0)
