"""Tests for the RM/RA tree and the max/min exchange."""

import pytest

from repro.core.maxmin import ScdaTree
from repro.core.monitors import OtherResourceModel
from repro.core.rate_metric import ScdaParams
from repro.network.flow import Flow
from repro.network.routing import Router

MBPS = 1e6


def flows_map(topology, flows):
    """link_id -> flows, as the controller would build it."""
    mapping = {}
    for flow in flows:
        for link in flow.path:
            mapping.setdefault(link.link_id, []).append(flow)
    return mapping


def make_flow(topo, src, dst, rate):
    s, d = topo.node(src), topo.node(dst)
    f = Flow(s, d, 1e9, Router(topo).path(s, d))
    f.current_rate_bps = rate
    return f


class TestTreeConstruction:
    def test_one_rm_per_host_and_one_ra_per_switch(self, small_tree):
        tree = ScdaTree(small_tree)
        assert set(tree.monitors) == {h.node_id for h in small_tree.hosts()}
        assert set(tree.allocators) == {s.node_id for s in small_tree.switches()}

    def test_client_links_get_standalone_calculators(self, small_tree):
        tree = ScdaTree(small_tree)
        client = small_tree.clients()[0]
        client_links = small_tree.out_links(client) + small_tree.in_links(client)
        for link in client_links:
            assert link.link_id in tree.extra_calculators

    def test_every_link_has_an_advertised_rate(self, small_tree):
        tree = ScdaTree(small_tree)
        for link in small_tree.links:
            assert tree.link_rate_bps(link) > 0

    def test_hmax_matches_topology(self, small_tree):
        assert ScdaTree(small_tree).hmax == 3


class TestRound:
    def test_idle_round_advertises_alpha_capacity_everywhere(self, small_tree):
        tree = ScdaTree(small_tree, ScdaParams(alpha=0.9))
        tree.run_round({}, now=0.0)
        host = small_tree.hosts()[0]
        rates = tree.level_rates_of(host.node_id)
        # Host access links are the narrowest part of the path, so every level
        # reports the host link's alpha*C.
        assert rates.up_to(3) == pytest.approx(0.9 * small_tree.uplink_of(host).capacity_bps)
        assert tree.rounds_completed == 1

    def test_loaded_host_advertises_lower_rate(self, small_tree):
        params = ScdaParams(alpha=1.0, beta=0.0)
        tree = ScdaTree(small_tree, params)
        busy = small_tree.hosts()[0].node_id
        idle = small_tree.hosts()[1].node_id
        x = small_tree.uplink_of(small_tree.hosts()[0]).capacity_bps
        # Two flows write into the busy host at its full downlink rate.
        flows = [make_flow(small_tree, "ucl-0", busy, rate=x) for _ in range(2)]
        tree.run_round(flows_map(small_tree, flows), now=0.0)
        metrics = {m.host_id: m for m in tree.host_metrics()}
        assert metrics[busy].down_bps < metrics[idle].down_bps

    def test_host_metrics_reflect_upper_level_bottlenecks(self, small_tree_config, small_tree):
        # Saturate the right-side aggregation uplink: hosts under it should
        # advertise a whole-DC rate capped by that link, not by their own.
        params = ScdaParams(alpha=1.0, beta=0.0)
        tree = ScdaTree(small_tree, params)
        x = small_tree_config.base_bandwidth_bps
        agg_capacity = small_tree_config.bandwidth_factor * x
        right_host = "bs-1-0-0"
        other_right_host = "bs-1-1-0"
        # Many flows from right-side hosts out to clients, all crossing agg-1 -> core.
        flows = []
        for i in range(8):
            flows.append(make_flow(small_tree, right_host, "ucl-0", rate=agg_capacity / 2))
        tree.run_round(flows_map(small_tree, flows), now=0.0)
        tree.run_round(flows_map(small_tree, flows), now=0.01)
        metrics = {m.host_id: m for m in tree.host_metrics()}
        # The sibling host's whole-DC uplink rate is constrained by the shared
        # aggregation uplink which is now heavily oversubscribed.
        assert metrics[other_right_host].up_bps < x

    def test_sla_violations_surface(self, small_tree):
        params = ScdaParams(alpha=1.0, beta=0.0)
        tree = ScdaTree(small_tree, params)
        host = small_tree.hosts()[0]
        x = small_tree.uplink_of(host).capacity_bps
        flows = [make_flow(small_tree, host.node_id, "ucl-0", rate=0.8 * x) for _ in range(3)]
        tree.run_round(flows_map(small_tree, flows), now=0.0)
        assert host.node_id in tree.sla_violations()

    def test_reservations_shrink_advertised_rates(self, small_tree):
        params = ScdaParams(alpha=1.0, beta=0.0)
        tree = ScdaTree(small_tree, params)
        host = small_tree.hosts()[0]
        uplink = small_tree.uplink_of(host)
        tree.run_round({}, now=0.0, link_reservations={uplink.link_id: 0.5 * uplink.capacity_bps})
        rm = tree.monitor_of(host.node_id)
        assert rm.capped_up_bps == pytest.approx(0.5 * uplink.capacity_bps)

    def test_other_resources_cap_host_metrics(self, small_tree):
        other = OtherResourceModel()
        slow_host = small_tree.hosts()[0].node_id
        other.set_host_limit(slow_host, 7 * MBPS, 9 * MBPS)
        tree = ScdaTree(small_tree, other_resources=other)
        tree.run_round({}, now=0.0)
        metrics = {m.host_id: m for m in tree.host_metrics()}
        assert metrics[slow_host].up_bps == pytest.approx(7 * MBPS)
        assert metrics[slow_host].down_bps == pytest.approx(9 * MBPS)
        assert metrics[slow_host].min_bps == pytest.approx(7 * MBPS)

    def test_reset_clears_state(self, small_tree):
        tree = ScdaTree(small_tree)
        flows = [make_flow(small_tree, "bs-0-0-0", "ucl-0", rate=10 * MBPS)]
        tree.run_round(flows_map(small_tree, flows), now=0.0)
        tree.reset()
        assert tree.rounds_completed == 0
        assert tree.level_rates_of("bs-0-0-0").rates == {}

    def test_missing_host_link_raises(self):
        from repro.network.topology import Topology

        topo = Topology()
        topo.add_switch("sw", 1)
        host = topo.add_host("lonely")
        # host has links only in one direction
        topo.add_link(host, topo.node("sw"), 1e6, 0.001)
        with pytest.raises(ValueError):
            ScdaTree(topo)


class TestConvergenceToMaxMin:
    def test_single_bottleneck_equal_split(self, small_tree):
        """Four equal flows into one host converge to C/4 each (like RCP)."""
        params = ScdaParams(alpha=1.0, beta=0.0)
        tree = ScdaTree(small_tree, params)
        host = small_tree.hosts()[0]
        x = small_tree.uplink_of(host).capacity_bps
        flows = [make_flow(small_tree, f"ucl-{i}", host.node_id, rate=0.0) for i in range(4)]

        # Emulate the closed loop: every round, flows adopt the rate the tree
        # advertises on their path (min over links), then the tree re-measures.
        for round_idx in range(30):
            tree.run_round(flows_map(small_tree, flows), now=round_idx * 0.01)
            for f in flows:
                f.current_rate_bps = min(tree.link_rate_bps(l) for l in f.path)
        for f in flows:
            assert f.current_rate_bps == pytest.approx(x / 4, rel=0.05)

    def test_flow_bottlenecked_elsewhere_frees_capacity(self, small_tree):
        """Equation 3's max-min property at tree scale."""
        params = ScdaParams(alpha=1.0, beta=0.0)
        tree = ScdaTree(small_tree, params)
        host = small_tree.hosts()[0]
        x = small_tree.uplink_of(host).capacity_bps
        capped = make_flow(small_tree, "ucl-0", host.node_id, rate=0.0)
        free = make_flow(small_tree, "ucl-1", host.node_id, rate=0.0)
        app_limit = 0.1 * x
        for round_idx in range(40):
            tree.run_round(flows_map(small_tree, [capped, free]), now=round_idx * 0.01)
            capped.current_rate_bps = min(
                app_limit, min(tree.link_rate_bps(l) for l in capped.path)
            )
            free.current_rate_bps = min(tree.link_rate_bps(l) for l in free.path)
        # The unconstrained flow should converge towards ~0.9x, not 0.5x.
        assert free.current_rate_bps > 0.8 * x
