"""Tests for the OpenFlow packet-count SJF approximation."""

import pytest

from repro.core.openflow import OpenFlowSjfScheduler, OpenFlowSwitch
from repro.network.flow import Flow
from repro.network.routing import Router


def make_flow(topo):
    s, d = topo.node("ucl-0"), topo.node("bs-0")
    return Flow(s, d, 1e6, Router(topo).path(s, d))


class TestOpenFlowSwitch:
    def test_observe_accumulates_counters(self, tiny_line_topology):
        switch = OpenFlowSwitch("sw", mtu_bytes=1000.0)
        flow = make_flow(tiny_line_topology)
        switch.observe(flow, 2500.0)
        assert switch.packet_count(flow.flow_id) == 3
        switch.observe(flow, 1000.0)
        assert switch.packet_count(flow.flow_id) == 5  # 3 + 2 (1000/1000 + partial)

    def test_unknown_flow_has_zero_count(self, tiny_line_topology):
        switch = OpenFlowSwitch("sw")
        assert switch.packet_count(1234) == 0

    def test_service_order_puts_small_senders_first(self, tiny_line_topology):
        switch = OpenFlowSwitch("sw")
        f1, f2 = make_flow(tiny_line_topology), make_flow(tiny_line_topology)
        switch.observe(f1, 1_000_000.0)
        switch.observe(f2, 10_000.0)
        assert switch.service_order([f1.flow_id, f2.flow_id]) == [f2.flow_id, f1.flow_id]

    def test_remove_clears_entry(self, tiny_line_topology):
        switch = OpenFlowSwitch("sw")
        flow = make_flow(tiny_line_topology)
        switch.observe(flow, 5000.0)
        switch.remove(flow.flow_id)
        assert switch.packet_count(flow.flow_id) == 0

    def test_invalid_arguments_raise(self, tiny_line_topology):
        switch = OpenFlowSwitch("sw")
        flow = make_flow(tiny_line_topology)
        with pytest.raises(ValueError):
            switch.observe(flow, -1.0)
        with pytest.raises(ValueError):
            switch.set_priority(flow.flow_id, 0.0)
        with pytest.raises(ValueError):
            OpenFlowSwitch("sw", mtu_bytes=0.0)


class TestSjfScheduler:
    def test_light_senders_get_higher_weights(self, tiny_line_topology):
        switch = OpenFlowSwitch("sw")
        scheduler = OpenFlowSjfScheduler(switch)
        heavy, light = make_flow(tiny_line_topology), make_flow(tiny_line_topology)
        switch.observe(heavy, 10_000_000.0)
        switch.observe(light, 10_000.0)
        weights = scheduler.weights([heavy, light])
        assert weights[light.flow_id] > weights[heavy.flow_id]

    def test_explicit_priorities_override_counters(self, tiny_line_topology):
        switch = OpenFlowSwitch("sw")
        scheduler = OpenFlowSjfScheduler(switch, max_weight=10.0)
        heavy, light = make_flow(tiny_line_topology), make_flow(tiny_line_topology)
        switch.observe(heavy, 10_000_000.0)
        switch.observe(light, 10_000.0)
        switch.set_priority(heavy.flow_id, 8.0)
        weights = scheduler.weights([heavy, light])
        assert weights[heavy.flow_id] == pytest.approx(8.0)

    def test_apply_writes_flow_priority_weights(self, tiny_line_topology):
        switch = OpenFlowSwitch("sw")
        scheduler = OpenFlowSjfScheduler(switch)
        f1, f2 = make_flow(tiny_line_topology), make_flow(tiny_line_topology)
        switch.observe(f1, 1_000_000.0)
        switch.observe(f2, 1_000.0)
        scheduler.apply([f1, f2])
        assert f2.priority_weight > f1.priority_weight

    def test_empty_flow_list(self, tiny_line_topology):
        scheduler = OpenFlowSjfScheduler(OpenFlowSwitch("sw"))
        assert scheduler.weights([]) == {}

    def test_invalid_weight_bounds_raise(self):
        with pytest.raises(ValueError):
            OpenFlowSjfScheduler(OpenFlowSwitch("sw"), min_weight=2.0, max_weight=1.0)
