"""Tests for the control-plane overhead estimates."""

import pytest

from repro.core.overhead import (
    EXTERNAL_READ_MESSAGES,
    EXTERNAL_WRITE_MESSAGES,
    INTERNAL_WRITE_MESSAGES,
    MessageSizes,
    estimate_control_overhead,
)
from repro.network.tree import TreeTopologyConfig, build_tree_topology

MBPS = 1e6


@pytest.fixture
def paper_tree():
    return build_tree_topology(TreeTopologyConfig())


class TestMessageSizes:
    def test_defaults_are_positive(self):
        sizes = MessageSizes()
        assert sizes.delta_report_bytes < sizes.full_report_bytes

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            MessageSizes(full_report_bytes=0.0)


class TestOverheadEstimate:
    def test_report_counts_match_topology(self, paper_tree):
        report = estimate_control_overhead(paper_tree, control_interval_s=0.01)
        assert report.monitors == len(paper_tree.hosts()) == 20
        assert report.allocators == len(paper_tree.switches()) == 7
        # 20 RMs + 6 non-top RAs report upward each interval.
        assert report.reports_per_interval == 26

    def test_delta_encoding_saves_bytes(self, paper_tree):
        report = estimate_control_overhead(paper_tree, control_interval_s=0.01)
        assert report.report_bytes_per_interval_delta < report.report_bytes_per_interval_full
        assert 0.0 < report.delta_saving_fraction < 1.0
        assert report.control_bytes_per_second_delta < report.control_bytes_per_second_full

    def test_overhead_is_a_tiny_fraction_of_fabric_capacity(self, paper_tree):
        # The paper's design goal: fine-grained allocation without meaningful
        # control-plane cost.  At τ=10 ms and 200 requests/s the control load
        # must stay below 0.1 % of the aggregate fabric capacity.
        report = estimate_control_overhead(
            paper_tree, control_interval_s=0.01, request_rate_per_s=200.0
        )
        assert report.overhead_fraction_of_capacity(paper_tree) < 1e-3

    def test_request_messages_follow_the_protocol_counts(self, paper_tree):
        report = estimate_control_overhead(
            paper_tree,
            control_interval_s=0.01,
            request_rate_per_s=10.0,
            read_fraction=0.0,
            replication_fraction=0.0,
        )
        assert report.request_messages_per_second == pytest.approx(10 * EXTERNAL_WRITE_MESSAGES)

        with_replication = estimate_control_overhead(
            paper_tree,
            control_interval_s=0.01,
            request_rate_per_s=10.0,
            replication_fraction=1.0,
        )
        assert with_replication.request_messages_per_second == pytest.approx(
            10 * (EXTERNAL_WRITE_MESSAGES + INTERNAL_WRITE_MESSAGES)
        )

        reads_only = estimate_control_overhead(
            paper_tree, control_interval_s=0.01, request_rate_per_s=10.0, read_fraction=1.0
        )
        assert reads_only.request_messages_per_second == pytest.approx(10 * EXTERNAL_READ_MESSAGES)

    def test_faster_control_loop_costs_proportionally_more(self, paper_tree):
        slow = estimate_control_overhead(paper_tree, control_interval_s=0.1)
        fast = estimate_control_overhead(paper_tree, control_interval_s=0.01)
        assert fast.control_bytes_per_second_delta == pytest.approx(
            10 * slow.control_bytes_per_second_delta, rel=1e-6
        )

    def test_invalid_arguments_raise(self, paper_tree):
        with pytest.raises(ValueError):
            estimate_control_overhead(paper_tree, control_interval_s=0.0)
        with pytest.raises(ValueError):
            estimate_control_overhead(paper_tree, 0.01, request_rate_per_s=-1.0)
        with pytest.raises(ValueError):
            estimate_control_overhead(paper_tree, 0.01, read_fraction=1.5)
