"""Tests for resource monitors (RM) and resource allocators (RA)."""

import pytest

from repro.core.allocators import BestServer, ChildMetrics, ResourceAllocator
from repro.core.monitors import OtherResourceModel, ResourceMonitor
from repro.core.rate_metric import ScdaParams
from repro.network.flow import Flow
from repro.network.routing import Router

MBPS = 1e6


def make_rm(topo, host_id="bs-0", **kw):
    host = topo.node(host_id)
    return ResourceMonitor(host, topo.uplink_of(host), topo.downlink_to(host), **kw)


def make_flow(topo, src, dst, rate=0.0, weight=1.0):
    s, d = topo.node(src), topo.node(dst)
    f = Flow(s, d, 1e9, Router(topo).path(s, d), priority_weight=weight)
    f.current_rate_bps = rate
    return f


class TestOtherResourceModel:
    def test_default_is_unconstrained(self):
        model = OtherResourceModel()
        assert model.limits("any-host") == (float("inf"), float("inf"))

    def test_per_host_limits(self):
        model = OtherResourceModel()
        model.set_host_limit("bs-1", 10 * MBPS, 20 * MBPS)
        assert model.limits("bs-1") == (10 * MBPS, 20 * MBPS)
        model.clear_host_limit("bs-1")
        assert model.limits("bs-1") == (float("inf"), float("inf"))

    def test_invalid_limits_raise(self):
        with pytest.raises(ValueError):
            OtherResourceModel(default_up_bps=0.0)
        with pytest.raises(ValueError):
            OtherResourceModel().set_host_limit("x", -1.0, 1.0)


class TestResourceMonitor:
    def test_idle_measurement_advertises_alpha_c(self, tiny_line_topology):
        rm = make_rm(tiny_line_topology, params=ScdaParams(alpha=0.9))
        report = rm.measure([], [], now=0.0)
        assert report.rate_up_bps == pytest.approx(90 * MBPS)
        assert report.rate_down_bps == pytest.approx(90 * MBPS)
        assert not report.sla_violated

    def test_other_resource_caps_the_rates(self, tiny_line_topology):
        other = OtherResourceModel()
        other.set_host_limit("bs-0", 5 * MBPS, 8 * MBPS)
        rm = make_rm(tiny_line_topology, other_resources=other)
        report = rm.measure([], [], now=0.0)
        assert report.rate_up_bps == pytest.approx(5 * MBPS)
        assert report.rate_down_bps == pytest.approx(8 * MBPS)

    def test_flows_reduce_the_advertised_rate(self, tiny_line_topology):
        rm = make_rm(tiny_line_topology, params=ScdaParams(alpha=1.0, beta=0.0))
        prev = rm.up_calc.current_rate_bps
        flows = [make_flow(tiny_line_topology, "bs-0", "ucl-0", rate=prev) for _ in range(2)]
        report = rm.measure(flows, [], now=0.0)
        assert report.rate_up_bps == pytest.approx(prev / 2, rel=1e-6)

    def test_rate_to_level_falls_back_to_deepest_known(self, tiny_line_topology):
        rm = make_rm(tiny_line_topology)
        rm.measure([], [], now=0.0)
        rm.receive_level_rate(1, 10 * MBPS, 20 * MBPS)
        assert rm.rate_to_level(1) == (10 * MBPS, 20 * MBPS)
        # Level 3 was never propagated: fall back to the deepest known level.
        assert rm.rate_to_level(3) == (10 * MBPS, 20 * MBPS)

    def test_negative_level_raises(self, tiny_line_topology):
        rm = make_rm(tiny_line_topology)
        with pytest.raises(ValueError):
            rm.receive_level_rate(-1, 1.0, 1.0)

    def test_access_counting(self, tiny_line_topology):
        rm = make_rm(tiny_line_topology)
        rm.record_access("content-1")
        rm.record_access("content-1", count=2)
        assert rm.popularity("content-1") == 3
        assert rm.popularity("unknown") == 0

    def test_sla_violation_reported_when_demand_exceeds_capacity(self, tiny_line_topology):
        rm = make_rm(tiny_line_topology, params=ScdaParams(alpha=1.0, beta=0.0))
        flows = [make_flow(tiny_line_topology, "bs-0", "ucl-0", rate=80 * MBPS) for _ in range(2)]
        report = rm.measure(flows, [], now=0.0)
        assert report.sla_violated


class TestResourceAllocator:
    def _children(self):
        return [
            ChildMetrics("bs-a", 30 * MBPS, 40 * MBPS, 10 * MBPS, 10 * MBPS, "bs-a", "bs-a", "bs-a"),
            ChildMetrics("bs-b", 80 * MBPS, 20 * MBPS, 10 * MBPS, 10 * MBPS, "bs-b", "bs-b", "bs-b"),
            ChildMetrics("bs-c", 50 * MBPS, 90 * MBPS, 10 * MBPS, 10 * MBPS, "bs-c", "bs-c", "bs-c"),
        ]

    def test_level_validation(self, tiny_line_topology):
        switch = tiny_line_topology.node("sw")
        with pytest.raises(ValueError):
            ResourceAllocator(switch, 0, None, None)

    def test_top_level_ra_reports_unconstrained_own_rates(self, tiny_line_topology):
        ra = ResourceAllocator(tiny_line_topology.node("sw"), 1, None, None)
        up, down = ra.compute_own_rates([], [])
        assert up == float("inf") and down == float("inf")

    def test_aggregate_tracks_best_children(self, tiny_line_topology):
        ra = ResourceAllocator(tiny_line_topology.node("sw"), 1, None, None)
        summary = ra.aggregate(self._children(), own_up_bps=float("inf"), own_down_bps=float("inf"))
        assert summary.best_up.host_id == "bs-b"
        assert summary.best_down.host_id == "bs-c"
        # best min(up, down): bs-a=30, bs-b=20, bs-c=50 -> bs-c
        assert summary.best_min.host_id == "bs-c"

    def test_aggregate_caps_best_rates_by_own_links(self, tiny_line_topology):
        ra = ResourceAllocator(tiny_line_topology.node("sw"), 1, None, None)
        summary = ra.aggregate(self._children(), own_up_bps=25 * MBPS, own_down_bps=35 * MBPS)
        assert summary.best_up.rate_bps == pytest.approx(25 * MBPS)
        assert summary.best_down.rate_bps == pytest.approx(35 * MBPS)

    def test_aggregated_rate_sums_add_up(self, tiny_line_topology):
        ra = ResourceAllocator(tiny_line_topology.node("sw"), 1, None, None)
        summary = ra.aggregate(self._children(), float("inf"), float("inf"))
        assert summary.aggregated_rate_sum_up_bps == pytest.approx(30 * MBPS)
        assert summary.aggregated_rate_sum_down_bps == pytest.approx(30 * MBPS)

    def test_child_violation_propagates(self, tiny_line_topology):
        ra = ResourceAllocator(tiny_line_topology.node("sw"), 1, None, None)
        children = self._children()
        children[0] = ChildMetrics(
            "bs-a", 30 * MBPS, 40 * MBPS, 10 * MBPS, 10 * MBPS, "bs-a", "bs-a", "bs-a", sla_violated=True
        )
        summary = ra.aggregate(children, float("inf"), float("inf"))
        assert summary.sla_violated

    def test_best_server_comparison_helper(self):
        better = BestServer("a", 10.0)
        worse = BestServer("b", 5.0)
        assert better.better_than(worse)
        assert better.better_than(None)
        assert not worse.better_than(better)
