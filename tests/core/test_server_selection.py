"""Tests for the content-aware server-selection policies (Section VII)."""

import numpy as np
import pytest

from repro.cluster.content import ContentClass
from repro.core.server_selection import (
    InteractivePolicy,
    PassivePolicy,
    PowerAwarePolicy,
    RandomPolicy,
    SelectionError,
    SelectionMetrics,
    SelectionObjective,
    SemiInteractivePolicy,
    ServerSelector,
)

MBPS = 1e6


def metrics():
    return [
        SelectionMetrics("bs-a", up_bps=80 * MBPS, down_bps=20 * MBPS, power_watts=200.0),
        SelectionMetrics("bs-b", up_bps=50 * MBPS, down_bps=60 * MBPS, power_watts=300.0),
        SelectionMetrics("bs-c", up_bps=30 * MBPS, down_bps=90 * MBPS, power_watts=100.0),
        SelectionMetrics("bs-d", up_bps=95 * MBPS, down_bps=95 * MBPS, power_watts=250.0, dormant=True),
    ]


class TestInteractivePolicy:
    def test_picks_best_bidirectional_among_non_dormant(self):
        # min(up,down): a=20, b=50, c=30; d=95 but dormant -> b wins.
        assert InteractivePolicy().select_primary(metrics()).host_id == "bs-b"

    def test_uses_dormant_server_when_nothing_else_exists(self):
        only_dormant = [m for m in metrics() if m.dormant]
        assert InteractivePolicy().select_primary(only_dormant).host_id == "bs-d"

    def test_dormant_allowed_when_avoidance_disabled(self):
        policy = InteractivePolicy(avoid_dormant=False)
        assert policy.select_primary(metrics()).host_id == "bs-d"

    def test_empty_candidates_raise(self):
        with pytest.raises(SelectionError):
            InteractivePolicy().select_primary([])


class TestSemiInteractivePolicy:
    def test_primary_is_best_downlink(self):
        assert SemiInteractivePolicy().select_primary(metrics()).host_id == "bs-c"

    def test_replica_is_best_uplink_excluding_primary(self):
        policy = SemiInteractivePolicy()
        primary = policy.select_primary(metrics())
        replica = policy.select_replica(metrics(), primary)
        # Best uplink among non-dormant, non-primary: bs-a (80).
        assert replica.host_id == "bs-a"

    def test_replica_can_fall_back_to_primary_if_alone(self):
        only = [SelectionMetrics("bs-x", 10 * MBPS, 10 * MBPS)]
        policy = SemiInteractivePolicy()
        assert policy.select_replica(only, only[0]).host_id == "bs-x"


class TestPassivePolicy:
    def test_primary_is_best_downlink_regardless_of_dormancy(self):
        # Section VII-C: the first write stage just picks the fastest-to-write
        # server; dormancy only matters for the replica stage.
        policy = PassivePolicy(scale_down_threshold_bps=70 * MBPS)
        assert policy.select_primary(metrics()).host_id == "bs-d"

    def test_replica_prefers_dormant_servers(self):
        policy = PassivePolicy(scale_down_threshold_bps=70 * MBPS)
        primary = metrics()[2]  # bs-c
        replica = policy.select_replica(metrics(), primary)
        # Dormant pool (excluding the primary): bs-d (dormant flag) and bs-a
        # (uplink 80 > 70 threshold); best uplink among them is bs-d.
        assert replica.host_id == "bs-d"

    def test_replica_falls_back_when_no_dormant_candidates(self):
        policy = PassivePolicy(scale_down_threshold_bps=1000 * MBPS)
        pool = [m for m in metrics() if not m.dormant]
        replica = policy.select_replica(pool, pool[2])  # primary bs-c
        assert replica.host_id == "bs-a"

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            PassivePolicy(scale_down_threshold_bps=0.0)


class TestPowerAwarePolicy:
    def test_picks_best_rate_per_watt(self):
        # min_bps/power: a=0.1, b=0.167, c=0.3, d=0.38 MBit/W -> d.
        policy = PowerAwarePolicy()
        assert policy.select_primary(metrics()).host_id == "bs-d"

    def test_objective_can_target_downlink(self):
        policy = PowerAwarePolicy(SelectionObjective.BEST_DOWNLINK)
        # down/power: a=0.1, b=0.2, c=0.9, d=0.38 -> c.
        assert policy.select_primary(metrics()).host_id == "bs-c"


class TestRandomPolicy:
    def test_requires_rng(self):
        with pytest.raises(ValueError):
            RandomPolicy(None)

    def test_choice_is_deterministic_per_seed(self):
        a = RandomPolicy(np.random.default_rng(3)).select_primary(metrics())
        b = RandomPolicy(np.random.default_rng(3)).select_primary(metrics())
        assert a.host_id == b.host_id

    def test_empty_candidates_raise(self):
        with pytest.raises(SelectionError):
            RandomPolicy(np.random.default_rng(0)).select_primary([])


class TestServerSelector:
    def test_class_dispatch(self):
        selector = ServerSelector(scale_down_threshold_bps=70 * MBPS)
        assert isinstance(selector.policy_for(ContentClass.HWHR), InteractivePolicy)
        assert isinstance(selector.policy_for(ContentClass.LWHR), SemiInteractivePolicy)
        assert isinstance(selector.policy_for(ContentClass.HWLR), SemiInteractivePolicy)
        assert isinstance(selector.policy_for(ContentClass.LWLR), PassivePolicy)

    def test_power_aware_overrides_dispatch(self):
        selector = ServerSelector(power_aware=True)
        assert isinstance(selector.policy_for(ContentClass.HWHR), PowerAwarePolicy)

    def test_select_primary_and_replica_for_semi_interactive(self):
        selector = ServerSelector(scale_down_threshold_bps=70 * MBPS)
        primary = selector.select_primary(ContentClass.LWHR, metrics())
        replica = selector.select_replica(ContentClass.LWHR, metrics(), primary)
        assert primary.host_id == "bs-c"
        assert replica.host_id == "bs-a"

    def test_read_source_is_best_uplink_replica(self):
        selector = ServerSelector()
        replicas = [m for m in metrics() if m.host_id in ("bs-a", "bs-b")]
        assert selector.select_read_source(ContentClass.LWHR, replicas).host_id == "bs-a"

    def test_read_source_requires_replicas(self):
        with pytest.raises(SelectionError):
            ServerSelector().select_read_source(ContentClass.LWHR, [])

    def test_selection_metrics_from_host_rate_metrics(self):
        from repro.core.maxmin import HostRateMetrics

        converted = SelectionMetrics.from_host_rate_metrics(
            HostRateMetrics("bs-z", 10.0, 20.0), power_watts=5.0, dormant=True
        )
        assert converted.host_id == "bs-z"
        assert converted.min_bps == 10.0
        assert converted.dormant
