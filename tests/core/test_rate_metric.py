"""Tests for the SCDA rate metric (equations 1-6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rate_metric import (
    LinkRateCalculator,
    ScdaParams,
    effective_capacity,
    effective_flow_count,
    link_rate,
    simplified_link_rate,
    weighted_rate_sum,
)

MBPS = 1e6


class TestParams:
    def test_defaults_are_valid(self):
        params = ScdaParams()
        assert 0 < params.alpha <= 1.0
        assert params.effective_drain_time_s == params.control_interval_s

    def test_drain_time_override(self):
        params = ScdaParams(drain_time_s=0.05)
        assert params.effective_drain_time_s == 0.05

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"beta": -1.0},
            {"control_interval_s": 0.0},
            {"drain_time_s": -1.0},
            {"min_rate_bps": 0.0},
        ],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            ScdaParams(**kwargs)


class TestEquation4And6:
    def test_unweighted_sum(self):
        assert weighted_rate_sum([1.0, 2.0, 3.0]) == 6.0

    def test_weighted_sum(self):
        assert weighted_rate_sum([10.0, 20.0], weights=[2.0, 0.5]) == pytest.approx(30.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            weighted_rate_sum([1.0], weights=[1.0, 2.0])

    def test_non_positive_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_rate_sum([1.0], weights=[0.0])

    def test_empty_sum_is_zero(self):
        assert weighted_rate_sum([]) == 0.0


class TestEquation3:
    def test_flow_at_advertised_rate_counts_as_one(self):
        assert effective_flow_count(50 * MBPS, 50 * MBPS) == pytest.approx(1.0)

    def test_bottlenecked_elsewhere_counts_as_fraction(self):
        # The paper: a flow bottlenecked at R_j < R(t-τ) counts as R_j / R(t-τ).
        assert effective_flow_count(10 * MBPS, 50 * MBPS) == pytest.approx(0.2)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            effective_flow_count(1.0, 0.0)
        with pytest.raises(ValueError):
            effective_flow_count(-1.0, 1.0)


class TestEquation2:
    def test_empty_link_advertises_full_effective_capacity(self):
        params = ScdaParams(alpha=0.95)
        rate = link_rate(params, 100 * MBPS, queue_bytes=0.0, rate_sum_bps=0.0, previous_rate_bps=95 * MBPS)
        assert rate == pytest.approx(95 * MBPS)

    def test_n_flows_at_previous_rate_get_equal_split(self):
        params = ScdaParams(alpha=1.0, beta=0.0)
        prev = 100 * MBPS
        rate = link_rate(params, 100 * MBPS, 0.0, rate_sum_bps=4 * prev, previous_rate_bps=prev)
        assert rate == pytest.approx(25 * MBPS)

    def test_queue_backlog_reduces_the_rate(self):
        params = ScdaParams(alpha=1.0, beta=1.0, control_interval_s=0.01)
        no_queue = link_rate(params, 100 * MBPS, 0.0, 2 * 100 * MBPS, 100 * MBPS)
        with_queue = link_rate(params, 100 * MBPS, 10_000.0, 2 * 100 * MBPS, 100 * MBPS)
        assert with_queue < no_queue

    def test_rate_never_drops_below_floor(self):
        params = ScdaParams(min_rate_bps=1e3)
        rate = link_rate(params, 1e6, queue_bytes=1e9, rate_sum_bps=1e9, previous_rate_bps=1.0)
        assert rate == pytest.approx(1e3)

    def test_reservations_reduce_shareable_capacity(self):
        params = ScdaParams(alpha=1.0, beta=0.0)
        full = link_rate(params, 100 * MBPS, 0.0, 0.0, 100 * MBPS)
        reserved = link_rate(params, 100 * MBPS, 0.0, 0.0, 100 * MBPS, reserved_bps=40 * MBPS)
        assert full == pytest.approx(100 * MBPS)
        assert reserved == pytest.approx(60 * MBPS)

    def test_effective_capacity_clamps_at_zero(self):
        params = ScdaParams(alpha=1.0, beta=1.0, control_interval_s=0.001)
        assert effective_capacity(params, 1e6, queue_bytes=1e9) == 0.0

    @given(
        capacity=st.floats(min_value=1e6, max_value=1e10),
        queue=st.floats(min_value=0.0, max_value=1e6),
        rate_sum=st.floats(min_value=0.0, max_value=1e11),
        prev=st.floats(min_value=1e3, max_value=1e10),
    )
    @settings(max_examples=100, deadline=None)
    def test_rate_is_always_within_bounds(self, capacity, queue, rate_sum, prev):
        params = ScdaParams()
        rate = link_rate(params, capacity, queue, rate_sum, prev)
        cap = effective_capacity(params, capacity, queue)
        assert params.min_rate_bps <= rate <= max(cap, params.min_rate_bps) + 1e-6


class TestEquation5:
    def test_matches_expected_formula(self):
        params = ScdaParams(alpha=1.0, beta=0.0, control_interval_s=0.01)
        # arrival rate = 2x the previous rate -> new rate halves (scaled by capacity).
        prev = 50 * MBPS
        arrival_bits = 2 * prev * 0.01
        rate = simplified_link_rate(params, 100 * MBPS, 0.0, prev, arrival_bits)
        assert rate == pytest.approx(100 * MBPS * prev / (2 * prev))

    def test_idle_link_advertises_capacity(self):
        params = ScdaParams(alpha=0.9)
        rate = simplified_link_rate(params, 100 * MBPS, 0.0, 50 * MBPS, arrival_bits=0.0)
        assert rate == pytest.approx(90 * MBPS)

    def test_negative_arrivals_raise(self):
        with pytest.raises(ValueError):
            simplified_link_rate(ScdaParams(), 1e6, 0.0, 1e6, arrival_bits=-1.0)


class TestLinkRateCalculator:
    def test_initial_rate_is_alpha_c(self):
        calc = LinkRateCalculator(100 * MBPS, ScdaParams(alpha=0.95))
        assert calc.current_rate_bps == pytest.approx(95 * MBPS)

    def test_converges_to_fair_share_with_constant_flows(self):
        params = ScdaParams(alpha=1.0, beta=0.0)
        calc = LinkRateCalculator(100 * MBPS, params)
        # Four flows that always send at whatever the link advertised last round.
        for _ in range(30):
            rate = calc.current_rate_bps
            calc.update(queue_bytes=0.0, flow_rates_bps=[rate] * 4)
        assert calc.current_rate_bps == pytest.approx(25 * MBPS, rel=1e-3)
        assert calc.effective_flows == pytest.approx(4.0, rel=1e-3)

    def test_bottlenecked_flow_frees_capacity_for_the_other(self):
        params = ScdaParams(alpha=1.0, beta=0.0)
        calc = LinkRateCalculator(100 * MBPS, params)
        # Flow A is stuck at 10 Mb/s elsewhere; flow B follows this link's rate.
        for _ in range(50):
            rate = calc.current_rate_bps
            calc.update(queue_bytes=0.0, flow_rates_bps=[10 * MBPS, min(rate, 100 * MBPS)])
        # B should converge to ~90 Mb/s (the max-min share), not 50.
        assert calc.current_rate_bps == pytest.approx(90 * MBPS, rel=0.05)

    def test_sla_violation_flag(self):
        params = ScdaParams(alpha=1.0, beta=0.0)
        calc = LinkRateCalculator(100 * MBPS, params)
        calc.update(queue_bytes=0.0, flow_rates_bps=[80 * MBPS, 50 * MBPS])
        assert calc.sla_violated
        calc.update(queue_bytes=0.0, flow_rates_bps=[10 * MBPS])
        assert not calc.sla_violated

    def test_simplified_variant_runs(self):
        calc = LinkRateCalculator(100 * MBPS, ScdaParams(), use_simplified=True)
        rate = calc.update(queue_bytes=0.0, flow_rates_bps=[10 * MBPS], arrival_bits=1e5)
        assert rate > 0

    def test_reset_restores_initial_state(self):
        calc = LinkRateCalculator(100 * MBPS, ScdaParams(alpha=0.95))
        calc.update(queue_bytes=1e5, flow_rates_bps=[50 * MBPS] * 10)
        calc.reset()
        assert calc.current_rate_bps == pytest.approx(95 * MBPS)
        assert calc.state.updates == 0

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            LinkRateCalculator(0.0)
