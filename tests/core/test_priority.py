"""Tests for prioritized rate allocation (priority weight policies)."""

import pytest

from repro.core.priority import (
    EdfWeightPolicy,
    PriorityManager,
    SjfWeightPolicy,
    TargetRateWeightPolicy,
    WeightPolicy,
)
from repro.network.flow import Flow
from repro.network.routing import Router

MBPS = 1e6


def make_flow(topo, size=1e6, **meta):
    s, d = topo.node("ucl-0"), topo.node("bs-0")
    f = Flow(s, d, size, Router(topo).path(s, d))
    f.meta.update(meta)
    return f


class TestUniformPolicy:
    def test_default_weight_is_one(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        assert WeightPolicy().weight(flow, 0.0) == 1.0

    def test_manager_applies_weights_to_flows(self, tiny_line_topology):
        flows = [make_flow(tiny_line_topology) for _ in range(3)]
        weights = PriorityManager().refresh(flows, now=0.0)
        assert all(w == 1.0 for w in weights.values())
        assert all(f.priority_weight == 1.0 for f in flows)


class TestSjfPolicy:
    def test_short_flows_get_higher_weight_than_long_flows(self, tiny_line_topology):
        policy = SjfWeightPolicy(reference_size_bytes=1e6)
        short = make_flow(tiny_line_topology, size=1e4)
        long = make_flow(tiny_line_topology, size=1e8)
        assert policy.weight(short, 0.0) > policy.weight(long, 0.0)

    def test_weights_are_clamped(self, tiny_line_topology):
        policy = SjfWeightPolicy(min_weight=0.5, max_weight=2.0)
        tiny = make_flow(tiny_line_topology, size=1.0)
        huge = make_flow(tiny_line_topology, size=1e12)
        assert policy.weight(tiny, 0.0) == 2.0
        assert policy.weight(huge, 0.0) == 0.5

    def test_weight_grows_as_flow_drains(self, tiny_line_topology):
        policy = SjfWeightPolicy(reference_size_bytes=1e6)
        flow = make_flow(tiny_line_topology, size=1e7)
        before = policy.weight(flow, 0.0)
        flow.start(0.0)
        flow.current_rate_bps = 8e6
        flow.advance(9.0)  # most of the flow is gone
        after = policy.weight(flow, 9.0)
        assert after > before

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            SjfWeightPolicy(reference_size_bytes=0.0)
        with pytest.raises(ValueError):
            SjfWeightPolicy(min_weight=3.0, max_weight=1.0)


class TestEdfPolicy:
    def test_flows_without_deadline_get_weight_one(self, tiny_line_topology):
        policy = EdfWeightPolicy()
        assert policy.weight(make_flow(tiny_line_topology), 0.0) == 1.0

    def test_urgent_deadline_gets_higher_weight(self, tiny_line_topology):
        policy = EdfWeightPolicy(fair_rate_estimate_bps=10 * MBPS)
        urgent = make_flow(tiny_line_topology, size=5e6, deadline_s=1.0)
        relaxed = make_flow(tiny_line_topology, size=5e6, deadline_s=100.0)
        assert policy.weight(urgent, 0.0) > policy.weight(relaxed, 0.0)

    def test_missed_deadline_gets_max_weight(self, tiny_line_topology):
        policy = EdfWeightPolicy(max_weight=8.0)
        flow = make_flow(tiny_line_topology, deadline_s=1.0)
        assert policy.weight(flow, now=2.0) == 8.0


class TestTargetRatePolicy:
    def test_weight_is_target_over_achieved(self, tiny_line_topology):
        policy = TargetRateWeightPolicy()
        flow = make_flow(tiny_line_topology, target_rate_bps=20 * MBPS)
        flow.current_rate_bps = 10 * MBPS
        assert policy.weight(flow, 0.0) == pytest.approx(2.0)

    def test_without_target_weight_is_one(self, tiny_line_topology):
        policy = TargetRateWeightPolicy()
        assert policy.weight(make_flow(tiny_line_topology), 0.0) == 1.0

    def test_weight_is_clamped(self, tiny_line_topology):
        policy = TargetRateWeightPolicy(min_weight=0.1, max_weight=4.0)
        flow = make_flow(tiny_line_topology, target_rate_bps=1e12)
        flow.current_rate_bps = 1.0
        assert policy.weight(flow, 0.0) == 4.0


class TestManagerValidation:
    def test_non_positive_weight_from_policy_raises(self, tiny_line_topology):
        class BrokenPolicy(WeightPolicy):
            def weight(self, flow, now):
                return 0.0

        manager = PriorityManager(BrokenPolicy())
        with pytest.raises(ValueError):
            manager.refresh([make_flow(tiny_line_topology)], 0.0)
