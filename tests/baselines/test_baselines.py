"""Tests for scheme specs, Hedera rerouting and VLB/ECMP path choice."""

import numpy as np
import pytest

from repro.baselines.hedera import HederaConfig, HederaScheduler
from repro.baselines.schemes import (
    RAND_TCP,
    SCDA_SCHEME,
    SCDA_SELECT_TCP,
    SchemeSpec,
    all_schemes,
)
from repro.baselines.vlb import ecmp_path_choice, vlb_path_choice
from repro.network.fabric import FabricSimulator
from repro.network.fattree import build_fat_tree
from repro.network.routing import EcmpRouter
from repro.network.transport.ideal import IdealMaxMinTransport
from repro.sim.engine import Simulator


class TestSchemeSpec:
    def test_predefined_schemes_are_valid(self):
        for spec in all_schemes():
            assert spec.placement in ("random", "scda", "round-robin", "least-loaded")
            assert spec.transport in ("tcp", "scda", "ideal")

    def test_rand_tcp_matches_the_paper_baseline(self):
        assert RAND_TCP.placement == "random"
        assert RAND_TCP.transport == "tcp"
        assert not RAND_TCP.needs_controller

    def test_scda_scheme_needs_controller(self):
        assert SCDA_SCHEME.needs_controller
        assert SCDA_SELECT_TCP.needs_controller

    def test_unknown_placement_or_transport_rejected(self):
        with pytest.raises(ValueError):
            SchemeSpec("x", placement="magic", transport="tcp")
        with pytest.raises(ValueError):
            SchemeSpec("x", placement="random", transport="udp")

    def test_scheme_names_are_unique(self):
        names = [s.name for s in all_schemes()]
        assert len(names) == len(set(names))


class TestVlbEcmp:
    def test_ecmp_choice_is_an_equal_cost_path(self):
        topo = build_fat_tree(k=4, num_clients=1)
        router = EcmpRouter(topo)
        a, b = topo.node("bs-0-0-0"), topo.node("bs-1-0-0")
        path = ecmp_path_choice(router, a, b, flow_id=3)
        assert path[0].src.node_id == "bs-0-0-0"
        assert path[-1].dst.node_id == "bs-1-0-0"
        assert len(path) == len(router.path(a, b))

    def test_vlb_path_reaches_destination(self):
        topo = build_fat_tree(k=4, num_clients=1)
        router = EcmpRouter(topo)
        rng = np.random.default_rng(0)
        a, b = topo.node("bs-0-0-0"), topo.node("bs-1-0-0")
        path = vlb_path_choice(router, a, b, rng)
        assert path[0].src.node_id == "bs-0-0-0"
        assert path[-1].dst.node_id == "bs-1-0-0"

    def test_vlb_uses_varied_intermediates(self):
        topo = build_fat_tree(k=4, num_clients=1)
        router = EcmpRouter(topo)
        rng = np.random.default_rng(1)
        a, b = topo.node("bs-0-0-0"), topo.node("bs-1-0-0")
        paths = {tuple(l.link_id for l in vlb_path_choice(router, a, b, rng)) for _ in range(12)}
        assert len(paths) >= 2


class TestHedera:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            HederaConfig(elephant_threshold_bytes=0.0)
        with pytest.raises(ValueError):
            HederaConfig(scheduling_interval_s=0.0)

    def test_elephants_detected_by_transferred_bytes(self):
        topo = build_fat_tree(k=4, num_clients=1)
        sim = Simulator()
        fabric = FabricSimulator(sim, topo, IdealMaxMinTransport())
        router = EcmpRouter(topo)
        scheduler = HederaScheduler(
            fabric, router, HederaConfig(elephant_threshold_bytes=1e6, scheduling_interval_s=0.5)
        )
        big = fabric.start_flow(topo.node("bs-0-0-0"), topo.node("bs-1-0-0"), 1e9)
        small = fabric.start_flow(topo.node("bs-0-0-1"), topo.node("bs-1-0-1"), 1e4)
        sim.run(until=0.3)
        elephants = scheduler.elephants()
        assert big in elephants and small not in elephants

    def test_scheduler_reroutes_elephants_off_loaded_paths(self):
        topo = build_fat_tree(k=4, num_clients=1)
        sim = Simulator()
        fabric = FabricSimulator(sim, topo, IdealMaxMinTransport())
        router = EcmpRouter(topo)
        scheduler = HederaScheduler(
            fabric, router, HederaConfig(elephant_threshold_bytes=1e5, scheduling_interval_s=0.2)
        )
        scheduler.start()
        # Two elephants pinned (by shortest-path routing) onto the same links.
        fabric.start_flow(topo.node("bs-0-0-0"), topo.node("bs-1-0-0"), 5e9)
        fabric.start_flow(topo.node("bs-0-0-1"), topo.node("bs-1-0-1"), 5e9)
        sim.run(until=2.0)
        scheduler.stop()
        assert scheduler.reroutes >= 1

    def test_stop_prevents_further_rounds(self):
        topo = build_fat_tree(k=4, num_clients=1)
        sim = Simulator()
        fabric = FabricSimulator(sim, topo, IdealMaxMinTransport())
        scheduler = HederaScheduler(fabric, EcmpRouter(topo))
        scheduler.start()
        scheduler.stop()
        sim.run(until=1.0)
        assert scheduler.reroutes == 0
