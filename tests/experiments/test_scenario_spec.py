"""Tests for the declarative ScenarioSpec API and its back-compat guarantees."""

import json

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import (
    generate_workload,
    resolve_scheme,
    run_comparison,
    run_scenario,
)
from repro.experiments.spec import ScenarioSpec, as_spec
from repro.registry import RegistryError

TOPOLOGY_KEYS = ("tree", "fattree", "vl2", "leafspine")

#: Pre-refactor mean FCTs for ``ScenarioConfig.pareto_poisson(sim_time=2.5,
#: seed=3)`` measured on the direct-import runner, before the registry
#: rewire.  The refactor must keep these bit-for-bit (tolerance only for
#: cross-platform float noise).
PARETO_PINNED_SCDA_FCT_S = 0.26670428511751804
PARETO_PINNED_RANDTCP_FCT_S = 1.2718256447813858


def small_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="spec-test",
        seed=7,
        sim_time_s=2.0,
        drain_time_s=20.0,
        topology="fattree",
        workload="pareto-poisson",
        workload_params={"arrival_rate_per_s": 15.0},
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestSerialisation:
    @pytest.mark.parametrize("topology", TOPOLOGY_KEYS)
    def test_json_round_trip_is_lossless(self, topology):
        spec = ScenarioSpec(
            name=f"rt-{topology}",
            seed=11,
            sim_time_s=4.5,
            topology=topology,
            workload="datacenter",
            workload_params={"arrival_rate_per_s": 25.0, "mice_fraction": 0.75},
            scda_params={"alpha": 0.9},
        )
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_save_and_load(self, tmp_path):
        spec = small_spec()
        path = spec.save(tmp_path / "scenario.json")
        assert ScenarioSpec.load(path) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="valid fields"):
            ScenarioSpec.from_dict({"definitely_not_a_field": 1})

    def test_params_are_canonicalised_to_json_types(self):
        spec = small_spec(topology_params={"k": 4, "weights": (1, 2)})
        assert spec.topology_params["weights"] == [1, 2]
        assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestRegistryLookups:
    @pytest.mark.parametrize("topology", TOPOLOGY_KEYS)
    def test_every_registered_topology_builds_from_string_key(self, topology):
        topo = ScenarioSpec(topology=topology).build_topology()
        assert len(topo.hosts()) > 0

    def test_unknown_topology_lists_available(self):
        with pytest.raises(RegistryError) as excinfo:
            ScenarioSpec(topology="moebius-strip").build_topology()
        message = str(excinfo.value)
        assert "unknown topology" in message
        for name in TOPOLOGY_KEYS:
            assert name in message

    def test_unknown_workload_kind_lists_available(self):
        with pytest.raises(RegistryError) as excinfo:
            generate_workload(ScenarioSpec(workload="quantum"))
        message = str(excinfo.value)
        assert "unknown workload" in message
        assert "pareto-poisson" in message

    def test_unknown_scheme_lists_available(self):
        with pytest.raises(RegistryError) as excinfo:
            resolve_scheme("warp-drive")
        message = str(excinfo.value)
        assert "unknown scheme" in message
        assert "rand-tcp" in message

    def test_bad_topology_param_names_config_fields(self):
        with pytest.raises(RegistryError, match="valid fields"):
            ScenarioSpec(topology="fattree", topology_params={"pods": 4}).build_topology()

    def test_workload_duration_defaults_to_sim_time(self):
        spec = small_spec(sim_time_s=1.5)
        workload = spec.build_workload()
        assert len(workload) > 0
        assert max(r.arrival_time_s for r in workload) <= 1.5


class TestRunScenario:
    def test_fattree_scenario_runs_end_to_end_via_string_keys(self):
        spec = ScenarioSpec(
            name="fattree-dc",
            seed=3,
            sim_time_s=2.0,
            drain_time_s=20.0,
            topology="fattree",
            workload="datacenter",
        )
        comparison = run_scenario(spec)
        assert comparison.scenario == "fattree-dc"
        assert comparison.candidate.scheme == "SCDA"
        assert comparison.baseline.scheme == "RandTCP"
        assert comparison.candidate.completed_flows > 0
        assert comparison.baseline.completed_flows > 0
        # identical workloads for both schemes
        assert (
            comparison.candidate.extras["requests_issued"]
            == comparison.baseline.extras["requests_issued"]
        )

    def test_scheme_registry_keys_and_spec_objects_are_equivalent(self):
        from repro.baselines.schemes import RAND_TCP, SCDA_SCHEME

        spec = small_spec(topology="tree", topology_params={})
        by_key = run_scenario(spec, schemes=("scda", "rand-tcp"))
        by_spec = run_scenario(spec, schemes=(SCDA_SCHEME, RAND_TCP))
        assert by_key.candidate.mean_fct_s() == pytest.approx(
            by_spec.candidate.mean_fct_s(), rel=1e-12
        )

    def test_run_scenario_requires_exactly_two_schemes(self):
        with pytest.raises(ValueError, match="exactly two"):
            run_scenario(small_spec(), schemes=("scda",))

    def test_dict_scenario_is_accepted(self):
        spec = small_spec()
        comparison = run_scenario(spec.to_dict())
        assert comparison.candidate.completed_flows > 0

    def test_hedera_params_reach_the_scheduler(self):
        from repro.experiments.runner import build_stack

        spec = small_spec(
            hedera_params={"elephant_threshold_bytes": 1024.0, "scheduling_interval_s": 0.5}
        )
        stack = build_stack(spec, "hedera")
        assert stack.hedera is not None
        assert stack.hedera.config.elephant_threshold_bytes == 1024.0
        assert stack.hedera.config.scheduling_interval_s == 0.5
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_bad_hedera_param_names_valid_fields(self):
        with pytest.raises(RegistryError, match="valid fields"):
            small_spec(hedera_params={"threshold": 1}).build_hedera_config()

    def test_bad_scda_param_value_raises_registry_error(self):
        with pytest.raises(RegistryError, match="invalid scda_params"):
            small_spec(scda_params={"alpha": -5.0}).build_scda_params()
        with pytest.raises(RegistryError, match="invalid hedera_params"):
            small_spec(hedera_params={"scheduling_interval_s": 0.0}).build_hedera_config()

    def test_tau_sweep_keeps_base_arrival_rate(self):
        from repro.exec.planner import with_arrival_rate
        from repro.experiments.sweeps import _base_spec

        base = ScenarioConfig.pareto_poisson(
            sim_time=2.0, arrival_rate_per_s=200.0
        ).to_spec()
        # mirrors sweep_control_interval's rate handling: None keeps the base's
        spec = _base_spec(base, None, None, None)
        assert spec.workload_params["arrival_rate_per_s"] == 200.0
        assert with_arrival_rate(spec, 40.0).workload_params["arrival_rate_per_s"] == 40.0

    def test_control_interval_cannot_diverge_via_scda_params(self):
        spec = small_spec(scda_params={"control_interval_s": 0.1})
        with pytest.raises(RegistryError, match="control_interval_s"):
            spec.build_scda_params()
        assert (
            small_spec(control_interval_s=0.02).build_scda_params().control_interval_s
            == 0.02
        )

    def test_sweep_base_honours_explicit_overrides_only(self):
        from repro.experiments.sweeps import _base_spec

        base = small_spec(sim_time_s=3.5, seed=9)
        kept = _base_spec(base, None, None, None)
        assert kept.sim_time_s == 3.5 and kept.seed == 9
        overridden = _base_spec(base, 7.0, 2, "leafspine")
        assert overridden.sim_time_s == 7.0 and overridden.seed == 2
        assert overridden.topology == "leafspine" and overridden.topology_params == {}

    def test_sweep_sim_time_override_shortens_a_baked_in_duration(self):
        from repro.experiments.sweeps import _base_spec

        base = ScenarioConfig.pareto_poisson(sim_time=20.0).to_spec()
        assert base.workload_params["duration_s"] == 20.0
        short = _base_spec(base, 1.0, None, None)
        assert short.workload_params["duration_s"] == 1.0
        workload = short.build_workload()
        assert max(r.arrival_time_s for r in workload) <= 1.0

    def test_with_topology_and_with_workload_helpers(self):
        spec = small_spec().with_topology("vl2", num_tor=6).with_workload("video")
        assert spec.topology == "vl2" and spec.topology_params == {"num_tor": 6}
        assert spec.workload == "video" and spec.workload_params == {}
        assert len(spec.build_topology().hosts()) == 24

    def test_sweep_handles_video_arrival_rate_field(self):
        from repro.exec.planner import with_arrival_rate

        video = ScenarioConfig.video_with_control(sim_time=2.0).to_spec()
        swept = with_arrival_rate(video, 5.0)
        assert swept.workload_params["video_arrival_rate_per_s"] == 5.0
        pareto = ScenarioConfig.pareto_poisson(sim_time=2.0).to_spec()
        assert with_arrival_rate(pareto, 9.0).workload_params["arrival_rate_per_s"] == 9.0


class TestBackCompat:
    def test_pareto_fct_matches_pre_refactor_pin(self):
        """The old ScenarioConfig path must keep producing the seed-pinned FCTs."""
        cfg = ScenarioConfig.pareto_poisson(sim_time=2.5, seed=3)
        comparison = run_comparison(cfg)
        assert comparison.candidate.mean_fct_s() == pytest.approx(
            PARETO_PINNED_SCDA_FCT_S, rel=1e-6
        )
        assert comparison.baseline.mean_fct_s() == pytest.approx(
            PARETO_PINNED_RANDTCP_FCT_S, rel=1e-6
        )

    def test_config_and_spec_paths_are_bit_identical(self):
        cfg = ScenarioConfig.pareto_poisson(sim_time=2.5, seed=3)
        via_config = run_comparison(cfg)
        via_spec = run_scenario(cfg.to_spec())
        assert via_config.candidate.mean_fct_s() == via_spec.candidate.mean_fct_s()
        assert via_config.baseline.mean_fct_s() == via_spec.baseline.mean_fct_s()

    def test_to_spec_preserves_workload(self):
        for cfg in (
            ScenarioConfig.video_with_control(sim_time=2.0),
            ScenarioConfig.datacenter(sim_time=2.0),
            ScenarioConfig.pareto_poisson(sim_time=2.0, arrival_rate_per_s=20.0),
        ):
            old = generate_workload(cfg)
            new = cfg.to_spec().build_workload()
            assert [r.size_bytes for r in old] == [r.size_bytes for r in new]
            assert [r.arrival_time_s for r in old] == [r.arrival_time_s for r in new]

    def test_to_spec_accepts_string_and_alias_workload_kinds(self):
        cfg = ScenarioConfig.pareto_poisson(sim_time=2.0, arrival_rate_per_s=40.0)
        for kind in ("pareto-poisson", "pareto", "PARETO_POISSON"):
            spec = cfg.with_overrides(workload_kind=kind).to_spec()
            assert spec.workload == "pareto-poisson"
            assert spec.workload_params["arrival_rate_per_s"] == 40.0

    def test_as_spec_accepts_config_spec_and_dict(self):
        cfg = ScenarioConfig.pareto_poisson()
        spec = cfg.to_spec()
        assert as_spec(cfg) == spec
        assert as_spec(spec) is spec
        assert as_spec(spec.to_dict()) == spec
        with pytest.raises(TypeError):
            as_spec(42)

    def test_named_constructors_still_round_trip_through_json(self):
        for cfg in (
            ScenarioConfig.video_with_control(),
            ScenarioConfig.video_without_control(),
            ScenarioConfig.datacenter(bandwidth_factor=1.0),
            ScenarioConfig.datacenter(bandwidth_factor=3.0),
            ScenarioConfig.pareto_poisson(),
        ):
            spec = cfg.to_spec()
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_spec_pareto_poisson_factory_matches_legacy_config_bit_for_bit(self):
        # The sweeps and the execution planner default to the pure-spec
        # factory; it must stay interchangeable with the config shim.
        for sim_time, seed in ((6.0, 1), (2.5, 2013), (10.0, 7)):
            via_config = ScenarioConfig.pareto_poisson(sim_time=sim_time, seed=seed).to_spec()
            via_spec = ScenarioSpec.pareto_poisson(sim_time_s=sim_time, seed=seed)
            assert via_spec.to_dict() == via_config.to_dict()
