"""Tests for scenario configuration and the experiment runner."""

import pytest

from repro.baselines.schemes import IDEAL_ORACLE, RAND_TCP, SCDA_SCHEME
from repro.experiments.config import ScenarioConfig, WorkloadKind
from repro.experiments.runner import build_stack, generate_workload, run_comparison, run_scheme

MBPS = 1e6


def tiny_scenario(**overrides):
    """A deliberately small scenario so runner tests stay fast."""
    cfg = ScenarioConfig.pareto_poisson(sim_time=3.0, seed=5, arrival_rate_per_s=15.0)
    cfg = cfg.with_overrides(drain_time_s=10.0, **overrides)
    return cfg


class TestScenarioConfig:
    def test_named_constructors_set_paper_parameters(self):
        video = ScenarioConfig.video_with_control()
        assert video.workload_kind is WorkloadKind.VIDEO
        assert video.topology.base_bandwidth_bps == pytest.approx(500 * MBPS)
        assert video.topology.num_hosts == 20
        assert video.video.include_control_flows

        no_control = ScenarioConfig.video_without_control()
        assert not no_control.video.include_control_flows

        dc1 = ScenarioConfig.datacenter(bandwidth_factor=1.0)
        dc3 = ScenarioConfig.datacenter(bandwidth_factor=3.0)
        assert dc1.topology.bandwidth_factor == 1.0
        assert dc3.topology.bandwidth_factor == 3.0

        pareto = ScenarioConfig.pareto_poisson()
        assert pareto.topology.base_bandwidth_bps == pytest.approx(200 * MBPS)
        assert pareto.pareto.pareto_shape == pytest.approx(1.6)

    def test_with_overrides_returns_modified_copy(self):
        cfg = ScenarioConfig.pareto_poisson()
        other = cfg.with_overrides(seed=99)
        assert other.seed == 99 and cfg.seed != 99

    def test_total_time_includes_drain(self):
        cfg = ScenarioConfig.pareto_poisson(sim_time=10.0).with_overrides(drain_time_s=5.0)
        assert cfg.total_time_s == 15.0

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(sim_time_s=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(drain_time_s=-1.0)


class TestWorkloadGeneration:
    def test_workload_is_deterministic_per_config(self):
        cfg = tiny_scenario()
        a, b = generate_workload(cfg), generate_workload(cfg)
        assert [r.size_bytes for r in a] == [r.size_bytes for r in b]

    def test_each_kind_produces_requests(self):
        for cfg in (
            ScenarioConfig.video_with_control(sim_time=3.0),
            ScenarioConfig.datacenter(sim_time=3.0),
            ScenarioConfig.pareto_poisson(sim_time=3.0, arrival_rate_per_s=20.0),
        ):
            assert len(generate_workload(cfg)) > 0


class TestBuildStack:
    def test_rand_tcp_stack_has_no_controller(self):
        stack = build_stack(tiny_scenario(), RAND_TCP)
        assert stack.controller is None
        assert stack.fabric.transport.name == "tcp"

    def test_scda_stack_wires_controller_everywhere(self):
        stack = build_stack(tiny_scenario(), SCDA_SCHEME)
        assert stack.controller is not None
        assert stack.fabric.transport.name == "scda"
        assert stack.fabric.transport.provider is stack.controller
        assert stack.placement.name == "scda"

    def test_cluster_has_block_servers_on_every_host(self):
        stack = build_stack(tiny_scenario(), RAND_TCP)
        assert set(stack.cluster.block_servers) == {h.node_id for h in stack.topology.hosts()}


class TestRunScheme:
    def test_run_produces_records_and_throughput(self):
        result = run_scheme(tiny_scenario(), SCDA_SCHEME)
        assert result.scheme == "SCDA"
        assert result.completed_flows > 0
        assert len(result.throughput) > 0
        assert result.extras["requests_issued"] > 0
        # Nearly every request should finish within the drain window.
        assert result.extras["requests_completed"] >= 0.9 * result.extras["requests_issued"]

    def test_ideal_oracle_also_runs(self):
        result = run_scheme(tiny_scenario(), IDEAL_ORACLE)
        assert result.completed_flows > 0

    def test_same_seed_same_scheme_is_reproducible(self):
        cfg = tiny_scenario()
        a = run_scheme(cfg, RAND_TCP)
        b = run_scheme(cfg, RAND_TCP)
        assert a.completed_flows == b.completed_flows
        assert a.mean_fct_s() == pytest.approx(b.mean_fct_s(), rel=1e-9)

    def test_run_comparison_uses_identical_workloads(self):
        comparison = run_comparison(tiny_scenario())
        assert comparison.candidate.extras["requests_issued"] == comparison.baseline.extras[
            "requests_issued"
        ]
        assert comparison.candidate.scheme == "SCDA"
        assert comparison.baseline.scheme == "RandTCP"
