"""Tests for the figure generators and the qualitative shape checks.

These are integration tests: they run scaled-down versions of the paper's
scenarios end to end, so they are the slowest tests in the suite (a few
seconds each).
"""

import numpy as np
import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import (
    FIGURE_DEFAULT_CONFIGS,
    FIGURE_GENERATORS,
    FigureData,
    figure08,
    figure09,
    figure17,
    figure18,
    generate_figure,
)
from repro.experiments.runner import run_comparison
from repro.experiments.shapes import afct_fluctuation_ratio, check_comparison_shape
from repro.metrics.replication import ReplicatedComparison, ReplicatedResult

MB = 1024.0 * 1024.0


def _fake_ensemble(comparison, n):
    """An n-replicate ensemble reusing one comparison's results per replicate."""
    return ReplicatedComparison(
        scenario=comparison.scenario,
        candidate=ReplicatedResult(
            scheme=comparison.candidate.scheme,
            seeds=list(range(n)),
            results=[comparison.candidate] * n,
        ),
        baseline=ReplicatedResult(
            scheme=comparison.baseline.scheme,
            seeds=list(range(n)),
            results=[comparison.baseline] * n,
        ),
    )


@pytest.fixture(scope="module")
def pareto_comparison():
    cfg = ScenarioConfig.pareto_poisson(sim_time=6.0, seed=11, arrival_rate_per_s=30.0)
    return run_comparison(cfg)


@pytest.fixture(scope="module")
def video_comparison():
    cfg = ScenarioConfig.video_with_control(sim_time=8.0, seed=12)
    return run_comparison(cfg)


class TestFigureData:
    def test_add_series_validates_lengths(self):
        fig = FigureData("figX", "t", "x", "y")
        with pytest.raises(ValueError):
            fig.add_series("bad", np.array([1.0, 2.0]), np.array([1.0]))

    def test_as_table_renders_all_series(self):
        fig = FigureData("figX", "demo", "x", "y")
        fig.add_series("a", np.array([1.0, 2.0]), np.array([10.0, 20.0]))
        fig.add_series("b", np.array([1.0, 2.0]), np.array([30.0, 40.0]))
        table = fig.as_table()
        assert "figX" in table and "a" in table and "b" in table
        assert len(table.splitlines()) == 4

    def test_generator_registry_covers_every_figure(self):
        assert set(FIGURE_GENERATORS) == {f"fig{i:02d}" for i in range(7, 19)}


class TestFigureGenerators:
    def test_throughput_figure_has_both_schemes(self, pareto_comparison):
        fig = figure17(comparison=pareto_comparison)
        assert set(fig.series) == {"SCDA", "RandTCP"}
        assert fig.y_label.startswith("Avg. Inst. Thpt")
        for x, y in fig.series.values():
            assert len(x) == len(y) > 0

    def test_fct_cdf_figure_monotone_series(self, pareto_comparison):
        fig = figure18(comparison=pareto_comparison)
        for x, y in fig.series.values():
            assert np.all(np.diff(y) >= 0)
            assert y[-1] == pytest.approx(1.0)

    def test_afct_figure_bins_in_mb(self, video_comparison):
        fig = figure09(comparison=video_comparison)
        for x, y in fig.series.values():
            assert len(x) == len(y) > 0
            assert x.max() <= 31.0  # MB units
            assert np.all(y > 0)

    def test_fct_cdf_video_figure(self, video_comparison):
        fig = figure08(comparison=video_comparison)
        assert set(fig.series) == {"SCDA", "RandTCP"}
        assert fig.summary["speedup_afct"] > 1.0


class TestEnsembleFigures:
    def test_single_replicate_ensemble_is_bit_identical(self, pareto_comparison):
        single = figure17(comparison=pareto_comparison)
        replicated = figure17(ensemble=_fake_ensemble(pareto_comparison, 1))
        assert replicated.as_table() == single.as_table()
        assert replicated.summary == single.summary
        assert not replicated.bands

    def test_multi_replicate_figure_renders_error_bands(self, pareto_comparison):
        fig = figure17(ensemble=_fake_ensemble(pareto_comparison, 3))
        assert set(fig.bands) == set(fig.series) == {"SCDA", "RandTCP"}
        table = fig.as_table()
        assert "SCDA lo" in table and "SCDA hi" in table
        # Identical replicates: zero-width bands centred on the mean curve.
        x, lower, upper = fig.bands["SCDA"]
        np.testing.assert_allclose(lower, upper)
        np.testing.assert_allclose(fig.series["SCDA"][1], lower)

    def test_multi_replicate_summary_carries_ci_bounds(self, pareto_comparison):
        fig = figure18(ensemble=_fake_ensemble(pareto_comparison, 2))
        assert "speedup_afct" in fig.summary
        assert "speedup_afct_ci_lower" in fig.summary
        assert "speedup_afct_ci_upper" in fig.summary
        assert fig.ensemble is not None and fig.ensemble.n_replicates == 2
        assert fig.comparison is not None  # replicate 0, for shape checks

    def test_every_generator_accepts_an_ensemble(self, pareto_comparison, video_comparison):
        ensemble_by_scenario = {
            "pareto": _fake_ensemble(pareto_comparison, 2),
            "video": _fake_ensemble(video_comparison, 2),
        }
        pareto_figs = {"fig17", "fig18"}
        for figure_id, generator in FIGURE_GENERATORS.items():
            ensemble = ensemble_by_scenario[
                "pareto" if figure_id in pareto_figs else "video"
            ]
            fig = generator(ensemble=ensemble)
            assert fig.series, figure_id
            assert fig.bands, figure_id

    def test_empty_first_replicate_falls_back_to_a_non_empty_grid(self, pareto_comparison):
        from repro.metrics.comparison import SchemeResult

        empty_candidate = SchemeResult(scheme=pareto_comparison.candidate.scheme)
        empty_baseline = SchemeResult(scheme=pareto_comparison.baseline.scheme)
        ensemble = ReplicatedComparison(
            scenario=pareto_comparison.scenario,
            candidate=ReplicatedResult(
                scheme=pareto_comparison.candidate.scheme,
                seeds=[0, 1, 2],
                results=[empty_candidate, pareto_comparison.candidate,
                         pareto_comparison.candidate],
            ),
            baseline=ReplicatedResult(
                scheme=pareto_comparison.baseline.scheme,
                seeds=[0, 1, 2],
                results=[empty_baseline, pareto_comparison.baseline,
                         pareto_comparison.baseline],
            ),
        )
        fig = figure18(ensemble=ensemble)
        # The degenerate replicate 0 is skipped, not allowed to blank the figure.
        for name, (x, y) in fig.series.items():
            assert len(x) > 0, name
        assert set(fig.bands) == set(fig.series)

    def test_comparison_and_ensemble_are_mutually_exclusive(self, pareto_comparison):
        with pytest.raises(ValueError, match="not both"):
            figure17(
                comparison=pareto_comparison,
                ensemble=_fake_ensemble(pareto_comparison, 1),
            )

    def test_band_requires_matching_series(self):
        fig = FigureData("figX", "t", "x", "y")
        with pytest.raises(ValueError, match="no matching series"):
            fig.add_band("ghost", np.array([1.0]), np.array([0.5]), np.array([1.5]))

    def test_generate_figure_covers_every_figure_default(self):
        assert set(FIGURE_DEFAULT_CONFIGS) == set(FIGURE_GENERATORS)
        with pytest.raises(ValueError, match="unknown figure"):
            generate_figure("fig99")
        with pytest.raises(ValueError, match="seeds"):
            generate_figure("fig17", seeds=0)


class TestShapes:
    def test_scda_beats_randtcp_on_pareto_poisson(self, pareto_comparison):
        shape = check_comparison_shape(pareto_comparison)
        assert shape.fct_improved, shape
        assert shape.throughput_not_worse, shape
        assert shape.cdf_mostly_dominates, shape
        assert shape.all_passed

    def test_scda_beats_randtcp_on_video_traces(self, video_comparison):
        shape = check_comparison_shape(video_comparison)
        assert shape.fct_improved, shape
        assert shape.all_passed

    def test_fct_reduction_is_in_the_paper_ballpark(self, pareto_comparison):
        # The paper reports roughly 50 % lower transfer times; our flow-level
        # reproduction must show at least a 25 % reduction.
        shape = check_comparison_shape(pareto_comparison)
        assert shape.fct_reduction_fraction >= 0.25

    def test_afct_fluctuation_is_larger_for_randtcp(self, video_comparison):
        ratio = afct_fluctuation_ratio(video_comparison, max_size_bytes=31 * MB)
        # RandTCP's AFCT-vs-size curve should fluctuate at least as much as SCDA's.
        assert np.isnan(ratio) or ratio >= 0.8
