"""Tests for the load / control-interval sweeps."""

import pytest

from repro.experiments.sweeps import (
    SweepPoint,
    SweepResult,
    sweep_control_interval,
    sweep_offered_load,
)


class TestSweepResult:
    def _result(self):
        return SweepResult(
            parameter_name="x",
            points=[
                SweepPoint(1.0, 0.5, 1.0, 2.0, 1.0),
                SweepPoint(2.0, 0.6, 1.2, 2.0, 1.0),
                SweepPoint(3.0, 1.5, 1.2, 0.8, 0.4),
            ],
        )

    def test_accessors(self):
        result = self._result()
        assert result.parameters() == [1.0, 2.0, 3.0]
        assert result.speedups() == [2.0, 2.0, 0.8]
        assert result.crossover_points() == [3.0]

    def test_table_rendering(self):
        table = self._result().as_table()
        assert "speedup" in table
        assert len(table.splitlines()) == 4


class TestOfferedLoadSweep:
    def test_scda_wins_at_every_load_point(self):
        result = sweep_offered_load([10.0, 30.0], sim_time=2.5, seed=4)
        assert len(result.points) == 2
        # No crossover: SCDA stays ahead at light and moderate load.
        assert result.crossover_points() == []
        assert all(p.cdf_dominance >= 0.7 for p in result.points)

    def test_invalid_rates_raise(self):
        with pytest.raises(ValueError):
            sweep_offered_load([])
        with pytest.raises(ValueError):
            sweep_offered_load([0.0])


class TestControlIntervalSweep:
    def test_sweep_runs_and_keeps_scda_ahead(self):
        result = sweep_control_interval([0.01, 0.05], sim_time=2.5, seed=4, arrival_rate_per_s=20.0)
        assert len(result.points) == 2
        assert result.crossover_points() == []

    def test_invalid_intervals_raise(self):
        with pytest.raises(ValueError):
            sweep_control_interval([])
        with pytest.raises(ValueError):
            sweep_control_interval([-0.01])


class TestSweepSerialisation:
    def test_round_trip_like_the_spec(self):
        import json

        result = SweepResult(
            parameter_name="arrival rate (flows/s)",
            points=[SweepPoint(1.0, 0.5, 1.0, 2.0, 1.0), SweepPoint(2.0, 0.6, 1.2, 2.0, 0.9)],
        )
        clone = SweepResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone == result

    def test_point_round_trip(self):
        point = SweepPoint(40.0, 0.25, 1.25, 5.0, 1.0)
        assert SweepPoint.from_dict(point.to_dict()) == point


class TestExecutorBackends:
    def test_thread_sweep_is_bit_identical_to_serial(self):
        kwargs = dict(sim_time=2.0, seed=4)
        serial = sweep_offered_load([10.0, 30.0], executor="serial", **kwargs)
        threaded = sweep_offered_load([10.0, 30.0], executor="thread", max_workers=2, **kwargs)
        assert threaded.to_dict() == serial.to_dict()

    def test_sweep_with_store_resumes_fully(self, tmp_path):
        store = tmp_path / "sweep.jsonl"
        first = sweep_offered_load([10.0], sim_time=2.0, seed=4, store=str(store))
        events = []
        second = sweep_offered_load(
            [10.0], sim_time=2.0, seed=4, store=str(store),
            progress=lambda event, job, detail: events.append(event),
        )
        assert second.to_dict() == first.to_dict()
        # Every job was a cache hit: nothing was submitted to a backend.
        assert set(events) == {"cached"}
