"""Tests for the load / control-interval sweeps."""

import pytest

from repro.experiments.sweeps import (
    SweepPoint,
    SweepResult,
    sweep_control_interval,
    sweep_offered_load,
)


class TestSweepResult:
    def _result(self):
        return SweepResult(
            parameter_name="x",
            points=[
                SweepPoint(1.0, 0.5, 1.0, 2.0, 1.0),
                SweepPoint(2.0, 0.6, 1.2, 2.0, 1.0),
                SweepPoint(3.0, 1.5, 1.2, 0.8, 0.4),
            ],
        )

    def test_accessors(self):
        result = self._result()
        assert result.parameters() == [1.0, 2.0, 3.0]
        assert result.speedups() == [2.0, 2.0, 0.8]
        assert result.crossover_points() == [3.0]

    def test_table_rendering(self):
        table = self._result().as_table()
        assert "speedup" in table
        assert len(table.splitlines()) == 4


class TestOfferedLoadSweep:
    def test_scda_wins_at_every_load_point(self):
        result = sweep_offered_load([10.0, 30.0], sim_time=2.5, seed=4)
        assert len(result.points) == 2
        # No crossover: SCDA stays ahead at light and moderate load.
        assert result.crossover_points() == []
        assert all(p.cdf_dominance >= 0.7 for p in result.points)

    def test_invalid_rates_raise(self):
        with pytest.raises(ValueError):
            sweep_offered_load([])
        with pytest.raises(ValueError):
            sweep_offered_load([0.0])


class TestControlIntervalSweep:
    def test_sweep_runs_and_keeps_scda_ahead(self):
        result = sweep_control_interval([0.01, 0.05], sim_time=2.5, seed=4, arrival_rate_per_s=20.0)
        assert len(result.points) == 2
        assert result.crossover_points() == []

    def test_invalid_intervals_raise(self):
        with pytest.raises(ValueError):
            sweep_control_interval([])
        with pytest.raises(ValueError):
            sweep_control_interval([-0.01])
