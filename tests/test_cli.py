"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_knows_all_commands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("compare", "run", "sweep", "list-plugins", "figure", "workload", "report"):
            assert command in text


class TestCompareCommand:
    def test_compare_prints_headline_numbers(self, capsys):
        code = main(["compare", "--scenario", "pareto", "--sim-time", "2.5", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean FCT" in out
        assert "shape checks passed: True" in out

    def test_compare_json_output_is_parseable(self, capsys):
        code = main(["compare", "--scenario", "pareto", "--sim-time", "2.5", "--seed", "3", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["scenario"] == "pareto-poisson"
        assert payload["summary"]["speedup_afct"] > 1.0


class TestCompareWithRegistryKeys:
    def test_compare_on_fattree_via_topology_flag(self, capsys):
        code = main(["compare", "--topology", "fattree", "--sim-time", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mean FCT" in out
        assert "topology=fattree" in out
        assert "RandTCP" in out and "SCDA" in out

    def test_unknown_topology_lists_available(self, capsys):
        code = main(["compare", "--topology", "hypercube", "--sim-time", "2"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown topology" in err
        assert "fattree" in err

    def test_unknown_scheme_lists_available(self, capsys):
        code = main(["compare", "--candidate", "warp", "--sim-time", "2"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown scheme" in err
        assert "rand-tcp" in err


class TestListPluginsCommand:
    def test_lists_all_seven_registries(self, capsys):
        code = main(["list-plugins"])
        out = capsys.readouterr().out
        assert code == 0
        for section in ("topologies:", "workloads:", "schemes:", "placements:",
                        "executors:", "dynamics:", "analyses:"):
            assert section in out
        for name in ("fattree", "vl2", "leafspine", "pareto-poisson", "hedera", "vlb",
                     "serial", "thread", "process",
                     "link-failure", "link-recovery", "capacity-degradation",
                     "block-server-churn", "workload-surge",
                     "scheme-comparison", "sweep-summary", "fct-cdf", "availability"):
            assert name in out

    def test_json_output_is_parseable(self, capsys):
        code = main(["list-plugins", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert "fattree" in payload["topologies"]
        assert payload["topologies"]["fattree"]["config"] == "FatTreeConfig"

    def test_json_output_covers_the_dynamics_registry(self, capsys):
        """Machine-readable discovery of every registry, incl. DYNAMICS."""
        code = main(["list-plugins", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert set(payload) == {"topologies", "workloads", "schemes",
                                "placements", "executors", "dynamics", "analyses"}
        failure = payload["dynamics"]["link-failure"]
        assert failure["config"] == "LinkFailureEvent"
        assert "link-fail" in failure["aliases"]
        assert failure["description"]

    def test_json_output_covers_the_analyses_registry(self, capsys):
        code = main(["list-plugins", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        comparison = payload["analyses"]["scheme-comparison"]
        assert "comparison" in comparison["aliases"]
        assert comparison["description"]


class TestRunCommand:
    def test_run_scenario_file(self, tmp_path, capsys):
        from repro.experiments.spec import ScenarioSpec

        spec = ScenarioSpec(
            name="cli-run",
            seed=3,
            sim_time_s=1.5,
            drain_time_s=20.0,
            topology="leafspine",
            workload="pareto-poisson",
            workload_params={"arrival_rate_per_s": 10.0},
        )
        path = spec.save(tmp_path / "scenario.json")
        code = main(["run", str(path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 1)  # shapes may be noisy at this tiny scale
        assert payload["scenario"] == "cli-run"
        assert payload["summary"]["candidate_mean_fct_s"] > 0

    def test_run_missing_file_errors(self, tmp_path, capsys):
        code = main(["run", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot load" in capsys.readouterr().err

    def test_run_badly_typed_field_errors_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"sim_time_s": "10"}')
        code = main(["run", str(bad)])
        assert code == 2
        assert "cannot load" in capsys.readouterr().err

    def test_run_with_thread_executor_and_store(self, tmp_path, capsys):
        from repro.exec.store import ResultStore
        from repro.experiments.spec import ScenarioSpec

        path = ScenarioSpec.pareto_poisson(sim_time_s=1.5, seed=3).save(
            tmp_path / "scenario.json"
        )
        store = tmp_path / "results.jsonl"
        code = main(["run", str(path), "--executor", "thread", "--jobs", "2",
                     "--results", str(store), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 1)
        assert payload["summary"]["candidate_mean_fct_s"] > 0
        assert len(ResultStore(store)) == 2

    def test_run_with_dynamics_script(self, tmp_path, capsys):
        from repro.exec.store import ResultStore
        from repro.experiments.spec import ScenarioSpec

        spec = ScenarioSpec(
            name="cli-dynamics", seed=3, sim_time_s=1.5, drain_time_s=12.0,
            topology="leafspine", workload="pareto-poisson",
            workload_params={"arrival_rate_per_s": 10.0},
        )
        scenario_path = spec.save(tmp_path / "scenario.json")
        script_path = tmp_path / "dynamics.json"
        script_path.write_text(json.dumps([
            {"kind": "link-failure", "at_s": 0.4, "select": "switch-uplink", "index": 0},
            {"kind": "link-recovery", "at_s": 1.0, "select": "switch-uplink", "index": 0},
        ]))
        store = tmp_path / "results.jsonl"
        code = main(["run", str(scenario_path), "--dynamics", str(script_path),
                     "--results", str(store), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 1)
        assert payload["scenario"] == "cli-dynamics"
        # The stored jobs carry the script, and the run actually failed links.
        loaded = ResultStore(store)
        assert len(loaded) == 2
        for key in loaded.keys():
            entry = loaded.entry(key)
            assert [e["kind"] for e in entry["job"]["spec"]["dynamics"]] == [
                "link-failure", "link-recovery"]
            assert entry["result"]["extras"]["links_failed"] == 2.0

    def test_run_with_bad_dynamics_script_errors(self, tmp_path, capsys):
        from repro.experiments.spec import ScenarioSpec

        scenario_path = ScenarioSpec.pareto_poisson(sim_time_s=1.0).save(
            tmp_path / "s.json")
        bad = tmp_path / "bad.json"
        bad.write_text('[{"kind": "meteor-strike", "at_s": 1.0}]')
        code = main(["run", str(scenario_path), "--dynamics", str(bad)])
        assert code == 2
        assert "cannot load dynamics script" in capsys.readouterr().err

    def test_run_unknown_executor_lists_available(self, tmp_path, capsys):
        from repro.experiments.spec import ScenarioSpec

        path = ScenarioSpec.pareto_poisson(sim_time_s=1.0).save(tmp_path / "s.json")
        code = main(["run", str(path), "--executor", "slurm"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown executor" in err
        assert "serial" in err

    def test_run_with_seeds_reports_confidence_intervals(self, tmp_path, capsys):
        from repro.exec.store import ResultStore
        from repro.experiments.spec import ScenarioSpec
        from repro.sim.random import derive_seed

        path = ScenarioSpec.pareto_poisson(sim_time_s=1.5, seed=3).save(
            tmp_path / "scenario.json"
        )
        store = tmp_path / "results.jsonl"
        code = main(["run", str(path), "--seeds", "2", "--executor", "thread",
                     "--jobs", "2", "--results", str(store), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code in (0, 1)
        assert payload["replicates"] == 2
        assert payload["seeds"] == [3, derive_seed(3, "replicate", "1")]
        speedup = payload["summary"]["speedup_afct"]
        assert speedup["n"] == 2
        assert speedup["ci_lower"] <= speedup["mean"] <= speedup["ci_upper"]
        assert len(ResultStore(store)) == 4  # 2 schemes × 2 replicates

    def test_run_seeds_one_output_matches_plain_run(self, tmp_path, capsys):
        """--seeds 1 must be the historical single-seed path, byte for byte."""
        from repro.experiments.spec import ScenarioSpec

        path = ScenarioSpec.pareto_poisson(sim_time_s=1.5, seed=3).save(
            tmp_path / "scenario.json"
        )
        code_plain = main(["run", str(path), "--json"])
        out_plain = capsys.readouterr().out
        code_seeded = main(["run", str(path), "--seeds", "1", "--json"])
        out_seeded = capsys.readouterr().out
        assert code_plain == code_seeded
        assert out_plain == out_seeded


class TestSweepCommand:
    def test_load_sweep_table_and_summary(self, tmp_path, capsys):
        store = tmp_path / "sweep.jsonl"
        code = main(["sweep", "load", "--points", "10,20", "--sim-time", "1.5",
                     "--seed", "4", "--results", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "arrival rate" in out
        assert "computed=4 cached=0" in out
        # Re-run: every point comes from the store.
        code = main(["sweep", "load", "--points", "10,20", "--sim-time", "1.5",
                     "--seed", "4", "--results", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        assert "computed=0 cached=4" in out

    def test_tau_sweep_json_payload(self, capsys):
        code = main(["sweep", "tau", "--points", "0.01,0.05", "--sim-time", "1.5",
                     "--seed", "4", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["execution"]["jobs"] == 4
        assert len(payload["sweep"]["points"]) == 2
        assert payload["sweep"]["parameter_name"] == "control interval (s)"

    def test_bad_points_error(self, capsys):
        code = main(["sweep", "load", "--points", "ten,20"])
        assert code == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_nonpositive_point_error(self, capsys):
        code = main(["sweep", "load", "--points", "0", "--sim-time", "1"])
        assert code == 2
        assert "positive" in capsys.readouterr().err

    def test_nonpositive_jobs_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "load", "--points", "10", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_arrival_rate_rejected_for_load_axis(self, capsys):
        code = main(["sweep", "load", "--points", "10", "--arrival-rate", "20"])
        assert code == 2
        assert "tau sweeps" in capsys.readouterr().err

    def test_reseed_changes_point_seeds_and_default_does_not(self, tmp_path, capsys):
        from repro.exec.store import ResultStore
        from repro.sim.random import derive_seed

        default_store = tmp_path / "default.jsonl"
        code = main(["sweep", "load", "--points", "10", "--sim-time", "1",
                     "--seed", "4", "--results", str(default_store)])
        assert code == 0
        default_seeds = {e.job.seed for e in ResultStore(default_store).query()}
        # Default: every point reuses the base seed (historical behaviour).
        assert default_seeds == {4}

        reseed_store = tmp_path / "reseed.jsonl"
        code = main(["sweep", "load", "--points", "10", "--sim-time", "1",
                     "--seed", "4", "--results", str(reseed_store), "--reseed"])
        assert code == 0
        reseed_seeds = {e.job.seed for e in ResultStore(reseed_store).query()}
        # --reseed: the point's seed is pinned to its identity derivation.
        assert reseed_seeds == {derive_seed(4, "sweep", "offered-load", "rate=10")}
        assert reseed_seeds != default_seeds
        capsys.readouterr()

    def test_cli_tau_sweep_shares_store_with_library_default(self, tmp_path, capsys):
        from repro.experiments.sweeps import sweep_control_interval

        store = tmp_path / "tau.jsonl"
        sweep_control_interval([0.01], sim_time=1.5, seed=4, store=str(store))
        code = main(["sweep", "tau", "--points", "0.01", "--sim-time", "1.5",
                     "--seed", "4", "--results", str(store)])
        out = capsys.readouterr().out
        assert code == 0
        # Same operating point (40 flows/s default) → full cache hit.
        assert "computed=0 cached=2" in out


class TestFigureCommand:
    def test_unknown_figure_returns_error_code(self, capsys):
        code = main(["figure", "fig99"])
        assert code == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figure_table_and_json_output(self, tmp_path, capsys):
        out_file = tmp_path / "fig18.json"
        code = main(
            ["figure", "fig18", "--sim-time", "2.5", "--seed", "3", "--plot", "--out", str(out_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fig18" in out
        payload = json.loads(out_file.read_text())
        assert set(payload["series"]) == {"SCDA", "RandTCP"}
        assert "bands" not in payload  # single-seed artifacts are unchanged

    def test_figure_with_seeds_writes_bands_to_json(self, tmp_path, capsys):
        out_file = tmp_path / "fig18_ens.json"
        code = main(["figure", "fig18", "--sim-time", "1.5", "--seed", "3",
                     "--seeds", "2", "--executor", "thread", "--jobs", "2",
                     "--out", str(out_file)])
        capsys.readouterr()
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert set(payload["bands"]) == set(payload["series"])
        x, lower, upper = payload["bands"]["SCDA"]
        assert len(x) == len(lower) == len(upper) == len(payload["series"]["SCDA"][0])
        assert "speedup_afct_ci_lower" in payload["summary"]


class TestWorkloadCommand:
    def test_workload_csv_round_trips(self, tmp_path, capsys):
        out_file = tmp_path / "workload.csv"
        code = main(
            ["workload", "--scenario", "video", "--sim-time", "3", "--seed", "2", "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        from repro.workloads.traces import Workload

        loaded = Workload.from_csv(out_file)
        assert len(loaded) > 0
        assert "wrote" in capsys.readouterr().out


class TestReplayCommand:
    def test_replay_round_trips_a_generated_workload(self, tmp_path, capsys):
        csv_path = tmp_path / "trace.csv"
        assert main(
            ["workload", "--scenario", "pareto", "--sim-time", "2", "--seed", "5", "--out", str(csv_path)]
        ) == 0
        capsys.readouterr()
        code = main(["replay", str(csv_path), "--scenario", "pareto", "--seed", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed" in out
        assert "shape checks passed: True" in out


class TestReportCommand:
    def test_report_from_results_directory(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig07.json").write_text(
            json.dumps(
                {
                    "summary": {
                        "candidate_mean_fct_s": 0.3,
                        "baseline_mean_fct_s": 1.0,
                        "fct_reduction_fraction": 0.7,
                        "cdf_dominance": 1.0,
                    },
                    "shape": {"all_passed": True},
                }
            )
        )
        out_md = tmp_path / "report.md"
        code = main(["report", "--results-dir", str(results), "--out", str(out_md)])
        assert code == 0
        assert "| fig07 |" in out_md.read_text()

    def test_report_missing_directory_errors(self, tmp_path, capsys):
        code = main(["report", "--results-dir", str(tmp_path / "nope")])
        assert code == 2


class TestReportStoreMode:
    @pytest.fixture
    def store_path(self, tmp_path):
        """A small replication store built without running any simulation."""
        from repro.exec.job import ExperimentJob
        from repro.exec.store import ResultStore
        from repro.experiments.spec import ScenarioSpec
        from repro.metrics.comparison import SchemeResult
        from repro.metrics.records import FlowRecord
        from repro.network.flow import FlowKind

        store = ResultStore(tmp_path / "store.jsonl")
        spec = ScenarioSpec.pareto_poisson(sim_time_s=2.0, seed=1)
        for replicate, seed in ((0, 1), (1, 77)):
            for scheme, role, fct in (("scda", "candidate", 1.0),
                                      ("rand-tcp", "baseline", 2.0)):
                job = ExperimentJob(
                    spec=spec, scheme=scheme, seed=seed,
                    tags={"ensemble": "ens", "replicate": replicate, "role": role},
                )
                result = SchemeResult(
                    scheme="SCDA" if scheme == "scda" else "RandTCP",
                    records=[FlowRecord(0, 1e6, 0.0, 0.0, fct + 0.01 * replicate,
                                        FlowKind.DATA, "a", "b")],
                )
                store.put(job, result)
        return store.path

    def test_single_analysis_artifact(self, store_path, tmp_path, capsys):
        out = tmp_path / "artifact.json"
        code = main(["report", "--results", str(store_path),
                     "--analysis", "scheme-comparison", "--out", str(out)])
        assert code == 0
        artifact = json.loads(out.read_text())
        assert artifact["analysis"] == "scheme-comparison"
        assert artifact["ensembles"]["ens"]["comparison"]["replicates"] == 2
        # The artifact survives a JSON round-trip unchanged.
        assert json.loads(json.dumps(artifact)) == artifact

    def test_composed_report_runs_every_analysis(self, store_path, capsys):
        code = main(["report", "--results", str(store_path)])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert {"scheme-comparison", "sweep-summary", "fct-cdf",
                "availability"} <= set(payload["analyses"])

    def test_markdown_mode(self, store_path, capsys):
        code = main(["report", "--results", str(store_path), "--markdown"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Scheme comparison" in out

    def test_unknown_analysis_lists_available(self, store_path, capsys):
        code = main(["report", "--results", str(store_path),
                     "--analysis", "tail-latency"])
        assert code == 2
        assert "scheme-comparison" in capsys.readouterr().err

    def test_unknown_ensemble_lists_stored_labels(self, store_path, capsys):
        code = main(["report", "--results", str(store_path),
                     "--analysis", "scheme-comparison", "--ensemble", "typo"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown ensemble" in err and "ens" in err

    def test_markdown_with_single_analysis_errors(self, store_path, capsys):
        code = main(["report", "--results", str(store_path),
                     "--analysis", "scheme-comparison", "--markdown"])
        assert code == 2
        assert "--markdown" in capsys.readouterr().err

    def test_missing_store_errors(self, tmp_path, capsys):
        code = main(["report", "--results", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "no result store" in capsys.readouterr().err

    def test_analysis_without_results_errors(self, capsys):
        code = main(["report", "--analysis", "scheme-comparison"])
        assert code == 2
        assert "--results" in capsys.readouterr().err
