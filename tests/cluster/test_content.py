"""Tests for the content model and activity classification."""

import pytest

from repro.cluster.content import AccessStats, Content, ContentClass, ContentClassifier


class TestContentClass:
    def test_interactive_flags(self):
        assert ContentClass.HWHR.is_interactive
        assert not ContentClass.LWHR.is_interactive

    def test_semi_interactive_flags(self):
        assert ContentClass.LWHR.is_semi_interactive
        assert ContentClass.HWLR.is_semi_interactive
        assert not ContentClass.HWHR.is_semi_interactive

    def test_passive_and_active(self):
        assert ContentClass.LWLR.is_passive
        assert not ContentClass.LWLR.is_active
        assert ContentClass.HWLR.is_active


class TestContent:
    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            Content("c", 0.0)

    def test_create_generates_unique_ids(self):
        a, b = Content.create(100.0), Content.create(100.0)
        assert a.content_id != b.content_id

    def test_declared_class_is_kept(self):
        content = Content.create(100.0, declared_class=ContentClass.HWHR)
        assert content.declared_class is ContentClass.HWHR


class TestAccessStats:
    def test_counters_and_rates(self):
        stats = AccessStats()
        stats.record_write(0.0)
        stats.record_read(10.0)
        stats.record_read(20.0)
        assert stats.writes == 1
        assert stats.reads == 2
        assert stats.write_rate_per_s(100.0) == pytest.approx(0.01)
        assert stats.read_rate_per_s(100.0) == pytest.approx(0.02)

    def test_interleave_gap_tracks_write_read_proximity(self):
        stats = AccessStats()
        stats.record_write(100.0)
        stats.record_read(101.5)
        assert stats.min_interleave_gap_s == pytest.approx(1.5)
        stats.record_write(200.0)
        stats.record_read(200.2)
        assert stats.min_interleave_gap_s == pytest.approx(0.2)

    def test_invalid_horizon_raises(self):
        with pytest.raises(ValueError):
            AccessStats().write_rate_per_s(0.0)


class TestClassifier:
    def test_declared_class_wins(self):
        classifier = ContentClassifier()
        content = Content.create(1e6, declared_class=ContentClass.HWLR)
        assert classifier.classify(content) is ContentClass.HWLR

    def test_learned_classes_cover_all_quadrants(self):
        classifier = ContentClassifier(
            high_write_per_s=0.1, high_read_per_s=0.1, observation_horizon_s=100.0
        )

        def stats(writes, reads):
            s = AccessStats()
            for i in range(writes):
                s.record_write(float(i))
            for i in range(reads):
                s.record_read(50.0 + i)
            # Stretch observation to the full horizon for stable rates.
            s.first_access_s, s.last_access_s = 0.0, 100.0
            return s

        assert classifier.classify_from_stats(stats(50, 50)) is ContentClass.HWHR
        assert classifier.classify_from_stats(stats(50, 1)) is ContentClass.HWLR
        assert classifier.classify_from_stats(stats(1, 50)) is ContentClass.LWHR
        assert classifier.classify_from_stats(stats(1, 1)) is ContentClass.LWLR

    def test_interactive_requires_tight_interleaving(self):
        classifier = ContentClassifier(
            high_write_per_s=0.01, high_read_per_s=0.01, interactivity_interval_s=5.0
        )
        chat = Content.create(1e4, declared_class=ContentClass.HWHR)
        chat.stats.record_write(0.0)
        chat.stats.record_read(1.0)
        assert classifier.is_interactive(chat)

        batch = Content.create(1e4, declared_class=ContentClass.HWHR)
        batch.stats.record_write(0.0)
        batch.stats.record_read(600.0)
        assert not classifier.is_interactive(batch)

    def test_non_hwhr_is_never_interactive(self):
        classifier = ContentClassifier()
        passive = Content.create(1e4, declared_class=ContentClass.LWLR)
        assert not classifier.is_interactive(passive)

    def test_invalid_thresholds_raise(self):
        with pytest.raises(ValueError):
            ContentClassifier(high_write_per_s=0.0)
        with pytest.raises(ValueError):
            ContentClassifier(interactivity_interval_s=0.0)
