"""Tests for blocks, block maps and block servers."""

import pytest

from repro.cluster.block import Block, BlockMap
from repro.cluster.block_server import BlockServer, StorageFullError
from repro.network.topology import Node, NodeKind

MB = 1024.0 * 1024.0


def host_node(name="bs-0"):
    return Node(name, NodeKind.HOST, 0)


class TestBlock:
    def test_replica_management(self):
        block = Block("c/blk-0", "c", 0, 100.0)
        block.add_replica("bs-1")
        block.add_replica("bs-1")  # duplicate ignored
        block.add_replica("bs-2")
        assert block.replica_count == 2
        block.remove_replica("bs-1")
        assert block.replicas == ["bs-2"]

    def test_invalid_block_raises(self):
        with pytest.raises(ValueError):
            Block("b", "c", 0, 0.0)
        with pytest.raises(ValueError):
            Block("b", "c", -1, 10.0)


class TestBlockMap:
    def test_small_content_is_one_block(self):
        block_map = BlockMap("c", content_size_bytes=10 * MB, block_size_bytes=64 * MB)
        assert len(block_map) == 1
        assert block_map.total_bytes == pytest.approx(10 * MB)

    def test_large_content_splits_with_remainder(self):
        block_map = BlockMap("c", content_size_bytes=150 * MB, block_size_bytes=64 * MB)
        assert len(block_map) == 3
        sizes = [b.size_bytes for b in block_map]
        assert sizes[0] == pytest.approx(64 * MB)
        assert sizes[-1] == pytest.approx(150 * MB - 2 * 64 * MB)
        assert block_map.total_bytes == pytest.approx(150 * MB)

    def test_servers_and_full_copy_queries(self):
        block_map = BlockMap("c", 100 * MB, 64 * MB)
        b0, b1 = block_map.block(0), block_map.block(1)
        b0.add_replica("bs-a")
        b1.add_replica("bs-a")
        b0.add_replica("bs-b")
        assert set(block_map.servers()) == {"bs-a", "bs-b"}
        assert block_map.servers_with_full_copy() == ["bs-a"]
        assert block_map.min_replication() == 1

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            BlockMap("c", 0.0, 64 * MB)
        with pytest.raises(ValueError):
            BlockMap("c", 10.0, 0.0)


class TestBlockServer:
    def test_store_and_evict(self):
        server = BlockServer(host_node(), disk_capacity_bytes=100 * MB)
        block = Block("c/blk-0", "c", 0, 10 * MB)
        server.store_block(block)
        assert server.has_block("c/blk-0")
        assert server.used_bytes == pytest.approx(10 * MB)
        assert "bs-0" in block.replicas
        server.evict_block("c/blk-0")
        assert not server.has_block("c/blk-0")
        assert server.used_bytes == pytest.approx(0.0)
        assert "bs-0" not in block.replicas

    def test_storing_twice_is_idempotent(self):
        server = BlockServer(host_node(), disk_capacity_bytes=100 * MB)
        block = Block("c/blk-0", "c", 0, 10 * MB)
        server.store_block(block)
        server.store_block(block)
        assert server.used_bytes == pytest.approx(10 * MB)

    def test_capacity_enforced(self):
        server = BlockServer(host_node(), disk_capacity_bytes=15 * MB)
        server.store_block(Block("a/0", "a", 0, 10 * MB))
        with pytest.raises(StorageFullError):
            server.store_block(Block("b/0", "b", 0, 10 * MB))

    def test_stored_content_ids_and_popularity(self):
        server = BlockServer(host_node())
        server.store_block(Block("a/0", "a", 0, 1 * MB))
        server.store_block(Block("a/1", "a", 1, 1 * MB))
        server.store_block(Block("b/0", "b", 0, 1 * MB))
        assert server.stored_content_ids() == ["a", "b"]
        server.record_read("a", 2 * MB)
        server.record_read("a", 2 * MB)
        assert server.popularity("a") == 2
        assert server.bytes_read == pytest.approx(4 * MB)

    def test_utilisation_and_free_bytes(self):
        server = BlockServer(host_node(), disk_capacity_bytes=100 * MB)
        server.store_block(Block("a/0", "a", 0, 25 * MB))
        assert server.utilisation == pytest.approx(0.25)
        assert server.free_bytes == pytest.approx(75 * MB)

    def test_invalid_configuration_raises(self):
        with pytest.raises(ValueError):
            BlockServer(host_node(), disk_capacity_bytes=0.0)
        with pytest.raises(ValueError):
            BlockServer(host_node(), disk_bandwidth_bps=0.0)
