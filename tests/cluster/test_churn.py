"""Tests for block-server churn: departure, re-replication, rejoin."""

import pytest

from repro.cluster.cluster import StorageCluster, StorageClusterConfig
from repro.cluster.content import Content, ContentClass
from repro.cluster.placement import RoundRobinPlacement
from repro.cluster.replication import ReplicationConfig
from repro.network.fabric import FabricSimulator
from repro.network.transport.ideal import IdealMaxMinTransport
from repro.sim.engine import Simulator

MB = 1024.0 * 1024.0


def build_cluster(topology, extra_replicas=1, replication=True):
    sim = Simulator()
    fabric = FabricSimulator(sim, topology, IdealMaxMinTransport())
    cluster = StorageCluster(
        sim,
        topology,
        fabric,
        RoundRobinPlacement(),
        config=StorageClusterConfig(
            replication=ReplicationConfig(enabled=replication, extra_replicas=extra_replicas),
        ),
    )
    return sim, fabric, cluster


def written_content(sim, cluster, client, size=5 * MB):
    content = Content.create(size, declared_class=ContentClass.LWHR)
    cluster.write(client, content)
    sim.run(until=30.0)
    return content


class TestDeparture:
    def test_departed_server_leaves_the_candidate_set(self, small_tree):
        _sim, _fabric, cluster = build_cluster(small_tree)
        victim = cluster.all_server_ids()[0]
        cluster.deactivate_server(victim)
        assert victim not in cluster.server_ids()
        assert victim in cluster.all_server_ids()
        assert not cluster.is_server_active(victim)
        assert cluster.servers_departed == 1

    def test_unknown_server_raises(self, small_tree):
        _sim, _fabric, cluster = build_cluster(small_tree)
        with pytest.raises(KeyError):
            cluster.deactivate_server("bs-nope")

    def test_double_departure_is_a_noop(self, small_tree):
        _sim, _fabric, cluster = build_cluster(small_tree)
        victim = cluster.all_server_ids()[0]
        cluster.deactivate_server(victim)
        assert cluster.deactivate_server(victim) == 0
        assert cluster.servers_departed == 1

    def test_departure_drops_replicas_from_metadata(self, small_tree):
        sim, _fabric, cluster = build_cluster(small_tree)
        client = small_tree.clients()[0]
        content = written_content(sim, cluster, client)
        nns = cluster.name_node_for_content(content.content_id)
        holders = nns.record_of(content.content_id).block_map.servers_with_full_copy()
        assert len(holders) == 2  # primary + 1 replica
        cluster.deactivate_server(holders[0])
        remaining = nns.record_of(content.content_id).block_map.servers()
        assert holders[0] not in remaining

    def test_departure_triggers_re_replication_that_completes(self, small_tree):
        sim, _fabric, cluster = build_cluster(small_tree)
        client = small_tree.clients()[0]
        content = written_content(sim, cluster, client)
        nns = cluster.name_node_for_content(content.content_id)
        holders = nns.record_of(content.content_id).block_map.servers_with_full_copy()
        repairs = cluster.deactivate_server(holders[0])
        assert repairs == 1
        assert cluster.replication.re_replications_planned == 1
        sim.run(until=60.0)
        assert cluster.replication.re_replications_completed == 1
        restored = nns.record_of(content.content_id).block_map.servers_with_full_copy()
        assert len(restored) == 2
        assert holders[0] not in restored

    def test_departure_aborts_inflight_transfers_and_counts_disruption(self, small_tree):
        sim, fabric, cluster = build_cluster(small_tree, replication=False)
        client = small_tree.clients()[0]
        content = Content.create(50 * MB, declared_class=ContentClass.LWHR)
        request = cluster.write(client, content)
        sim.run(until=0.1)  # past setup latency; transfer in flight
        assert fabric.active_flow_count == 1
        cluster.deactivate_server(request.primary_server)
        assert fabric.active_flow_count == 0
        assert cluster.requests_disrupted == 1
        assert not request.completed

    def test_replication_interrupted_by_target_departure_is_replanned(self, small_tree):
        """A transfer cancelled because its target departed must not leave
        the content permanently under-replicated: a repair from the primary
        to another surviving server takes over."""
        sim, _fabric, cluster = build_cluster(small_tree)
        client = small_tree.clients()[0]
        content = Content.create(5 * MB, declared_class=ContentClass.LWHR)
        cluster.write(client, content)
        # Run until the write committed and the replication transfer is in
        # flight (planned but not yet completed).
        while cluster.replication.tasks_planned == 0:
            sim.step()
        while not any(
            t.kind == "replica" and t in cluster._replication_tasks_by_flow.values()
            for t in cluster.replication.outstanding_tasks
        ):
            sim.step()
        [task] = cluster.replication.outstanding_tasks
        cluster.deactivate_server(task.target_server)
        assert cluster.replication.tasks_cancelled == 1
        assert cluster.replication.re_replications_planned == 1
        sim.run(until=60.0)
        assert cluster.replication.re_replications_completed == 1
        nns = cluster.name_node_for_content(content.content_id)
        holders = nns.record_of(content.content_id).block_map.servers_with_full_copy()
        assert len(holders) == 2
        assert task.target_server not in holders

    def test_no_repair_when_no_surviving_replica(self, small_tree):
        sim, _fabric, cluster = build_cluster(small_tree, replication=False)
        client = small_tree.clients()[0]
        content = written_content(sim, cluster, client)
        nns = cluster.name_node_for_content(content.content_id)
        [only_holder] = nns.record_of(content.content_id).block_map.servers_with_full_copy()
        assert cluster.deactivate_server(only_holder) == 0
        assert cluster.replication.re_replications_planned == 0


class TestRejoin:
    def test_rejoin_restores_candidacy_and_metadata(self, small_tree):
        sim, _fabric, cluster = build_cluster(small_tree, replication=False)
        client = small_tree.clients()[0]
        content = written_content(sim, cluster, client)
        nns = cluster.name_node_for_content(content.content_id)
        [holder] = nns.record_of(content.content_id).block_map.servers_with_full_copy()
        cluster.deactivate_server(holder)
        assert nns.record_of(content.content_id).block_map.servers() == []
        cluster.reactivate_server(holder)
        assert cluster.is_server_active(holder)
        assert cluster.servers_rejoined == 1
        # The server rejoins with its stored blocks: reads resolve again.
        assert nns.record_of(content.content_id).block_map.servers_with_full_copy() == [holder]
        record = cluster.read(client, content.content_id)
        sim.run(until=60.0)
        assert record.completed

    def test_rejoin_of_active_server_is_a_noop(self, small_tree):
        _sim, _fabric, cluster = build_cluster(small_tree)
        cluster.reactivate_server(cluster.all_server_ids()[0])
        assert cluster.servers_rejoined == 0

    def test_read_during_departure_window_is_disrupted(self, small_tree):
        sim, fabric, cluster = build_cluster(small_tree, replication=False)
        client = small_tree.clients()[0]
        content = written_content(sim, cluster, client)
        nns = cluster.name_node_for_content(content.content_id)
        [holder] = nns.record_of(content.content_id).block_map.servers_with_full_copy()
        record = cluster.read(client, content.content_id)
        # The server departs while the read is still in connection setup.
        cluster.deactivate_server(holder)
        sim.run(until=60.0)
        assert not record.completed
        assert cluster.requests_disrupted == 1
