"""Tests for placement policies and the replication manager."""

import numpy as np
import pytest

from repro.cluster.content import Content, ContentClass
from repro.cluster.placement import (
    LeastLoadedPlacement,
    PlacementError,
    RandomPlacement,
    RoundRobinPlacement,
    ScdaPlacement,
)
from repro.cluster.replication import ReplicationConfig, ReplicationManager
from repro.core.controller import ScdaController, ScdaControllerConfig
from repro.network.fabric import FabricSimulator
from repro.network.transport.ideal import IdealMaxMinTransport
from repro.sim.engine import Simulator

SERVERS = ["bs-a", "bs-b", "bs-c", "bs-d"]


def content():
    return Content.create(1e6, declared_class=ContentClass.LWHR)


class TestRandomPlacement:
    def test_deterministic_given_seed(self):
        a = RandomPlacement(seed=5).select_primary(content(), SERVERS)
        b = RandomPlacement(seed=5).select_primary(content(), SERVERS)
        assert a == b

    def test_covers_many_servers_over_time(self):
        policy = RandomPlacement(seed=1)
        chosen = {policy.select_primary(content(), SERVERS) for _ in range(50)}
        assert len(chosen) == len(SERVERS)

    def test_replica_avoids_primary_when_possible(self):
        policy = RandomPlacement(seed=2)
        for _ in range(20):
            assert policy.select_replica(content(), SERVERS, primary="bs-a") != "bs-a"

    def test_empty_candidates_raise(self):
        with pytest.raises(PlacementError):
            RandomPlacement(seed=0).select_primary(content(), [])


class TestRoundRobinPlacement:
    def test_cycles_in_order(self):
        policy = RoundRobinPlacement()
        chosen = [policy.select_primary(content(), SERVERS) for _ in range(6)]
        assert chosen == ["bs-a", "bs-b", "bs-c", "bs-d", "bs-a", "bs-b"]


class TestLeastLoadedPlacement:
    def test_picks_server_with_fewest_active_flows(self, small_tree):
        sim = Simulator()
        fabric = FabricSimulator(sim, small_tree, IdealMaxMinTransport())
        busy = small_tree.hosts()[0]
        fabric.start_flow(small_tree.clients()[0], busy, 1e9)
        policy = LeastLoadedPlacement(fabric)
        candidates = [h.node_id for h in small_tree.hosts()[:2]]
        assert policy.select_primary(content(), candidates) == small_tree.hosts()[1].node_id

    def test_requires_fabric(self):
        with pytest.raises(ValueError):
            LeastLoadedPlacement(None)


class TestScdaPlacement:
    def test_delegates_to_controller(self, small_tree):
        sim = Simulator()
        controller = ScdaController(sim, small_tree, ScdaControllerConfig())
        policy = ScdaPlacement(controller)
        candidates = [h.node_id for h in small_tree.hosts()]
        primary = policy.select_primary(content(), candidates)
        assert primary in candidates
        replica = policy.select_replica(content(), candidates, primary)
        assert replica in candidates and replica != primary
        source = policy.select_read_source(content(), [primary, replica])
        assert source in (primary, replica)

    def test_requires_controller(self):
        with pytest.raises(ValueError):
            ScdaPlacement(None)

    def test_empty_candidates_raise(self, small_tree):
        sim = Simulator()
        controller = ScdaController(sim, small_tree, ScdaControllerConfig())
        with pytest.raises(PlacementError):
            ScdaPlacement(controller).select_primary(content(), [])


class TestReplicationManager:
    def test_plan_creates_tasks_for_distinct_targets(self):
        manager = ReplicationManager(ReplicationConfig(extra_replicas=2))
        tasks = manager.plan("c", 1e6, "bs-a", ["bs-b", "bs-c", "bs-a"])
        assert [t.target_server for t in tasks] == ["bs-b", "bs-c"]
        assert all(t.source_server == "bs-a" for t in tasks)
        assert manager.tasks_planned == 2

    def test_small_content_is_not_replicated(self):
        manager = ReplicationManager(ReplicationConfig(min_size_bytes=1e6))
        assert not manager.should_replicate(1000.0)
        assert manager.plan("c", 1000.0, "bs-a", ["bs-b"]) == []

    def test_disabled_replication(self):
        manager = ReplicationManager(ReplicationConfig(enabled=False))
        assert manager.plan("c", 1e9, "bs-a", ["bs-b"]) == []

    def test_extra_replicas_limit(self):
        manager = ReplicationManager(ReplicationConfig(extra_replicas=1))
        tasks = manager.plan("c", 1e7, "bs-a", ["bs-b", "bs-c", "bs-d"])
        assert len(tasks) == 1

    def test_start_delay_propagates_to_tasks(self):
        manager = ReplicationManager(ReplicationConfig(start_delay_s=2.5))
        tasks = manager.plan("c", 1e7, "bs-a", ["bs-b"])
        assert tasks[0].start_after_s == pytest.approx(2.5)

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            ReplicationConfig(extra_replicas=-1)
        with pytest.raises(ValueError):
            ReplicationConfig(start_delay_s=-0.1)

    def test_plan_with_no_eligible_targets_returns_nothing(self):
        """Every chosen target equals the primary (or repeats): no tasks."""
        manager = ReplicationManager(ReplicationConfig(extra_replicas=2))
        assert manager.plan("c", 1e7, "bs-a", ["bs-a", "bs-a"]) == []
        assert manager.plan("c", 1e7, "bs-a", []) == []
        assert manager.tasks_planned == 0
        assert manager.outstanding_tasks == []

    def test_mark_completed_for_unknown_task_is_reported(self):
        from repro.cluster.replication import ReplicationTask

        manager = ReplicationManager()
        stray = ReplicationTask("c", "bs-a", "bs-b", 1e7)
        assert manager.mark_completed(stray) is False
        assert manager.tasks_completed == 0

    def test_mark_completed_accounts_each_task_exactly_once(self):
        manager = ReplicationManager(ReplicationConfig(extra_replicas=1))
        [task] = manager.plan("c", 1e7, "bs-a", ["bs-b"])
        assert manager.mark_completed(task) is True
        assert manager.tasks_completed == 1
        # A second completion of the same task is refused, not double-counted.
        assert manager.mark_completed(task) is False
        assert manager.tasks_completed == 1
        assert manager.outstanding_tasks == []

    def test_mark_cancelled_drops_without_completing(self):
        manager = ReplicationManager(ReplicationConfig(extra_replicas=1))
        [task] = manager.plan("c", 1e7, "bs-a", ["bs-b"])
        assert manager.mark_cancelled(task) is True
        assert manager.tasks_cancelled == 1
        assert manager.tasks_completed == 0
        assert manager.mark_cancelled(task) is False

    def test_plan_repair_bypasses_policy_knobs(self):
        """Repairs restore existing durability even when replication of new
        writes is disabled or the content is below min_size_bytes."""
        manager = ReplicationManager(
            ReplicationConfig(enabled=False, min_size_bytes=1e9)
        )
        task = manager.plan_repair("c", 1e3, "bs-a", "bs-b")
        assert task.kind == "repair"
        assert manager.re_replications_planned == 1
        assert manager.mark_completed(task) is True
        assert manager.re_replications_completed == 1

    def test_plan_repair_rejects_source_as_target(self):
        manager = ReplicationManager()
        with pytest.raises(ValueError):
            manager.plan_repair("c", 1e7, "bs-a", "bs-a")
