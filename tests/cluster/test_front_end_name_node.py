"""Tests for the FES hashing tier and the name nodes."""

import pytest

from repro.cluster.content import Content, ContentClass
from repro.cluster.front_end import FrontEndServer, stable_hash
from repro.cluster.name_node import NameNodeServer, UnknownContentError
from repro.cluster.placement import PlacementError, RoundRobinPlacement


class TestFrontEnd:
    def test_requires_name_nodes(self):
        with pytest.raises(ValueError):
            FrontEndServer([])

    def test_routing_is_deterministic(self):
        fes = FrontEndServer(["nns-0", "nns-1", "nns-2"])
        assert fes.route_client("ucl-7") == fes.route_client("ucl-7")
        assert fes.route_content("video-1") == fes.route_content("video-1")

    def test_stable_hash_is_platform_independent(self):
        # Regression guard: the value must never change across runs/machines.
        assert stable_hash("ucl-0") == stable_hash("ucl-0")
        assert stable_hash("a") != stable_hash("b")

    def test_routing_spreads_keys_across_name_nodes(self):
        fes = FrontEndServer([f"nns-{i}" for i in range(4)])
        keys = [f"client-{i}" for i in range(400)]
        load = fes.load_per_name_node(keys)
        assert sum(load.values()) == 400
        # Reasonably balanced: no NNS holds more than half the keys.
        assert max(load.values()) < 200

    def test_single_name_node_gets_everything(self):
        fes = FrontEndServer(["only"])
        assert fes.route_client("x") == "only"

    def test_forward_counter(self):
        fes = FrontEndServer(["nns-0", "nns-1"])
        fes.route_client("a")
        fes.route_content("b")
        assert fes.requests_forwarded == 2


class TestNameNode:
    def _nns(self):
        return NameNodeServer("nns-0", RoundRobinPlacement(), block_size_bytes=64 * 1024 * 1024)

    def test_register_write_creates_metadata_and_primary(self):
        nns = self._nns()
        content = Content.create(1e6, declared_class=ContentClass.LWHR)
        record = nns.register_write(content, ["bs-a", "bs-b"], now=0.0)
        assert record.primary_server == "bs-a"
        assert nns.knows(content.content_id)
        assert nns.write_requests == 1
        assert content.stats.writes == 1

    def test_commit_write_adds_replicas_to_every_block(self):
        nns = self._nns()
        content = Content.create(200 * 1024 * 1024.0)
        nns.register_write(content, ["bs-a"], now=0.0)
        nns.commit_write(content.content_id, "bs-a")
        record = nns.record_of(content.content_id)
        assert all("bs-a" in b.replicas for b in record.block_map)

    def test_plan_replication_skips_primary(self):
        nns = self._nns()
        content = Content.create(1e6)
        nns.register_write(content, ["bs-a", "bs-b", "bs-c"], now=0.0)
        target = nns.plan_replication(content.content_id, ["bs-a", "bs-b", "bs-c"], now=1.0)
        assert target != "bs-a"

    def test_plan_replication_returns_none_for_single_server(self):
        nns = self._nns()
        content = Content.create(1e6)
        nns.register_write(content, ["bs-a"], now=0.0)
        assert nns.plan_replication(content.content_id, ["bs-a"], now=1.0) is None

    def test_resolve_read_prefers_full_copies(self):
        nns = self._nns()
        content = Content.create(1e6)
        nns.register_write(content, ["bs-a", "bs-b"], now=0.0)
        nns.commit_write(content.content_id, "bs-b")
        source = nns.resolve_read(content.content_id, now=1.0)
        assert source == "bs-b"
        assert nns.read_requests == 1
        assert content.stats.reads == 1

    def test_resolve_read_without_replicas_raises(self):
        nns = self._nns()
        content = Content.create(1e6)
        nns.register_write(content, ["bs-a"], now=0.0)
        with pytest.raises(PlacementError):
            nns.resolve_read(content.content_id, now=1.0)

    def test_unknown_content_raises(self):
        nns = self._nns()
        with pytest.raises(UnknownContentError):
            nns.record_of("nope")
        with pytest.raises(UnknownContentError):
            nns.resolve_read("nope", now=0.0)

    def test_metadata_entry_count(self):
        nns = self._nns()
        nns.register_write(Content.create(200 * 1024 * 1024.0), ["bs-a"], now=0.0)
        nns.register_write(Content.create(10.0), ["bs-a"], now=0.0)
        assert nns.metadata_entries == 5  # 4 blocks + 1 block

    def test_content_class_uses_classifier(self):
        nns = self._nns()
        content = Content.create(1e6, declared_class=ContentClass.HWHR)
        nns.register_write(content, ["bs-a"], now=0.0)
        assert nns.content_class(content.content_id) is ContentClass.HWHR

    def test_invalid_block_size_raises(self):
        with pytest.raises(ValueError):
            NameNodeServer("nns", RoundRobinPlacement(), block_size_bytes=0.0)
