"""Integration tests for the storage cluster (write/read/replication protocols)."""

import pytest

from repro.cluster.cluster import StorageCluster, StorageClusterConfig
from repro.cluster.content import Content, ContentClass
from repro.cluster.placement import RandomPlacement, RoundRobinPlacement
from repro.cluster.replication import ReplicationConfig
from repro.network.fabric import FabricSimulator
from repro.network.flow import FlowKind
from repro.network.transport.ideal import IdealMaxMinTransport
from repro.sim.engine import Simulator

MB = 1024.0 * 1024.0


def build_cluster(topology, replication=True, num_name_nodes=3, setup_rtts=1.5):
    sim = Simulator()
    fabric = FabricSimulator(sim, topology, IdealMaxMinTransport())
    cluster = StorageCluster(
        sim,
        topology,
        fabric,
        RoundRobinPlacement(),
        config=StorageClusterConfig(
            num_name_nodes=num_name_nodes,
            setup_rtts=setup_rtts,
            replication=ReplicationConfig(enabled=replication, extra_replicas=1),
        ),
    )
    return sim, fabric, cluster


class TestClusterConstruction:
    def test_one_block_server_per_host(self, small_tree):
        _sim, _fabric, cluster = build_cluster(small_tree)
        assert set(cluster.block_servers) == {h.node_id for h in small_tree.hosts()}

    def test_requested_number_of_name_nodes(self, small_tree):
        _sim, _fabric, cluster = build_cluster(small_tree, num_name_nodes=3)
        assert len(cluster.name_nodes) == 3

    def test_name_node_count_capped_by_hosts(self, small_tree):
        _sim, _fabric, cluster = build_cluster(small_tree, num_name_nodes=100)
        assert len(cluster.name_nodes) == len(small_tree.hosts())

    def test_clients_are_registered(self, small_tree):
        _sim, _fabric, cluster = build_cluster(small_tree)
        assert set(cluster.clients) == {c.node_id for c in small_tree.clients()}

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            StorageClusterConfig(num_name_nodes=0)
        with pytest.raises(ValueError):
            StorageClusterConfig(setup_rtts=-1.0)


class TestWriteProtocol:
    def test_write_completes_and_stores_blocks(self, small_tree):
        sim, fabric, cluster = build_cluster(small_tree, replication=False)
        client = small_tree.clients()[0]
        content = Content.create(5 * MB, declared_class=ContentClass.LWHR)
        request = cluster.write(client, content, flow_kind=FlowKind.VIDEO)
        sim.run(until=30.0)
        assert request.completed
        primary = cluster.block_servers[request.primary_server]
        assert primary.has_block(f"{content.content_id}/blk-0")
        nns = cluster.name_node_for_content(content.content_id)
        assert request.primary_server in nns.record_of(content.content_id).block_map.servers()

    def test_fct_includes_setup_latency(self, small_tree):
        sim, fabric, cluster = build_cluster(small_tree, replication=False, setup_rtts=1.5)
        client = small_tree.clients()[0]
        content = Content.create(1 * MB)
        request = cluster.write(client, content)
        sim.run(until=30.0)
        primary_node = cluster.block_servers[request.primary_server].node
        base_rtt = fabric.router.base_rtt(client, primary_node)
        assert request.completion_time > 1.5 * base_rtt

    def test_write_triggers_replication_flow(self, small_tree):
        sim, fabric, cluster = build_cluster(small_tree, replication=True)
        client = small_tree.clients()[0]
        content = Content.create(5 * MB)
        request = cluster.write(client, content)
        sim.run(until=30.0)
        assert len(request.replication_flows) == 1
        replica_flow = request.replication_flows[0]
        assert replica_flow.kind is FlowKind.REPLICATION
        # After replication the content has (at least) two replicas.
        nns = cluster.name_node_for_content(content.content_id)
        assert nns.record_of(content.content_id).block_map.min_replication() >= 2
        assert cluster.replication.tasks_completed == 1

    def test_small_content_is_not_replicated(self, small_tree):
        sim, fabric, cluster = build_cluster(small_tree, replication=True)
        content = Content.create(1000.0)  # below the replication threshold
        request = cluster.write(small_tree.clients()[0], content)
        sim.run(until=30.0)
        assert request.replication_flows == []

    def test_requests_are_tracked(self, small_tree):
        sim, fabric, cluster = build_cluster(small_tree, replication=False)
        for i in range(3):
            cluster.write(small_tree.clients()[i % len(small_tree.clients())], Content.create(1 * MB))
        sim.run(until=30.0)
        assert len(cluster.completed_requests("write")) == 3
        assert cluster.pending_requests() == []

    def test_completion_callback_is_invoked(self, small_tree):
        done = []
        sim = Simulator()
        fabric = FabricSimulator(sim, small_tree, IdealMaxMinTransport())
        cluster = StorageCluster(
            sim,
            small_tree,
            fabric,
            RandomPlacement(seed=0),
            config=StorageClusterConfig(replication=ReplicationConfig(enabled=False)),
            on_request_completed=lambda req: done.append(req.request_id),
        )
        request = cluster.write(small_tree.clients()[0], Content.create(1 * MB))
        sim.run(until=30.0)
        assert done == [request.request_id]


class TestReadProtocol:
    def test_read_after_write_round_trips(self, small_tree):
        sim, fabric, cluster = build_cluster(small_tree, replication=True)
        client = small_tree.clients()[0]
        content = Content.create(4 * MB, declared_class=ContentClass.LWHR)
        cluster.write(client, content)
        sim.run(until=30.0)
        reader = small_tree.clients()[1]
        request = cluster.read(reader, content.content_id)
        sim.run(until=60.0)
        assert request.completed
        assert request.kind == "read"
        assert request.flow.dst.node_id == reader.node_id
        # The read was served from a server that holds the content.
        nns = cluster.name_node_for_content(content.content_id)
        assert request.primary_server in nns.record_of(content.content_id).block_map.servers()

    def test_read_of_unknown_content_raises(self, small_tree):
        sim, fabric, cluster = build_cluster(small_tree)
        from repro.cluster.name_node import UnknownContentError

        with pytest.raises(UnknownContentError):
            cluster.read(small_tree.clients()[0], "missing-content")

    def test_read_accounts_server_popularity(self, small_tree):
        sim, fabric, cluster = build_cluster(small_tree, replication=False)
        client = small_tree.clients()[0]
        content = Content.create(2 * MB)
        cluster.write(client, content)
        sim.run(until=30.0)
        request = cluster.read(client, content.content_id)
        sim.run(until=60.0)
        source = cluster.block_servers[request.primary_server]
        assert source.popularity(content.content_id) == 1

    def test_replica_distribution_snapshot(self, small_tree):
        sim, fabric, cluster = build_cluster(small_tree, replication=False)
        cluster.write(small_tree.clients()[0], Content.create(1 * MB))
        sim.run(until=30.0)
        distribution = cluster.replica_distribution()
        assert sum(distribution.values()) == 1
