"""Tests for the host-side (disk/CPU) resource model."""

import pytest

from repro.cluster.host_resources import HostResourceProfile, HostResourceSimulator
from repro.core.controller import ScdaController, ScdaControllerConfig
from repro.network.fabric import FabricSimulator
from repro.network.transport.scda import ScdaTransport
from repro.sim.engine import Simulator

GBPS = 1e9
MBPS = 1e6


class TestHostResourceProfile:
    def test_available_rates_subtract_background_load(self):
        profile = HostResourceProfile(
            disk_bandwidth_bps=8 * GBPS,
            cpu_rate_per_core_bps=2 * GBPS,
            cores=4,
            background_cpu_fraction=0.5,
            background_disk_fraction=0.25,
        )
        assert profile.available_cpu_rate_bps == pytest.approx(4 * GBPS)
        assert profile.available_disk_rate_bps == pytest.approx(6 * GBPS)

    def test_invalid_profiles_raise(self):
        with pytest.raises(ValueError):
            HostResourceProfile(disk_bandwidth_bps=0.0)
        with pytest.raises(ValueError):
            HostResourceProfile(cores=0)
        with pytest.raises(ValueError):
            HostResourceProfile(background_cpu_fraction=1.0)


class TestHostResourceSimulator:
    def test_limits_default_to_the_sustainable_rate(self):
        simulator = HostResourceSimulator()
        up, down = simulator.limits("bs-0")
        expected = min(
            simulator.default_profile.available_disk_rate_bps,
            simulator.default_profile.available_cpu_rate_bps,
        )
        assert up == pytest.approx(expected)
        assert down == pytest.approx(expected)

    def test_per_host_profile_overrides_default(self):
        simulator = HostResourceSimulator()
        simulator.set_profile("bs-slow", HostResourceProfile(disk_bandwidth_bps=100 * MBPS))
        up, _ = simulator.limits("bs-slow")
        assert up == pytest.approx(100 * MBPS)
        assert simulator.limits("bs-other")[0] > 100 * MBPS

    def test_concurrent_transfers_divide_the_rate(self, small_tree):
        sim = Simulator()
        from repro.network.transport.ideal import IdealMaxMinTransport

        fabric = FabricSimulator(sim, small_tree, IdealMaxMinTransport())
        simulator = HostResourceSimulator(fabric, HostResourceProfile(disk_bandwidth_bps=1 * GBPS))
        host = small_tree.hosts()[0]
        assert simulator.concurrent_transfers(host.node_id) == 0
        fabric.start_flow(small_tree.clients()[0], host, 1e9)
        fabric.start_flow(small_tree.clients()[1], host, 1e9)
        assert simulator.concurrent_transfers(host.node_id) == 2
        up, down = simulator.limits(host.node_id)
        assert up == pytest.approx(simulator.sustainable_rate_bps(host.node_id) / 2)

    def test_controller_respects_disk_limited_host(self, small_tree):
        """End to end: a disk-limited server advertises (and gets) a lower rate."""
        sim = Simulator()
        host_resources = HostResourceSimulator(
            default_profile=HostResourceProfile(disk_bandwidth_bps=10 * GBPS)
        )
        slow_host = small_tree.hosts()[0]
        # This server's disk can only sustain 20 Mb/s.
        host_resources.set_profile(slow_host.node_id, HostResourceProfile(disk_bandwidth_bps=20 * MBPS))
        controller = ScdaController(
            sim, small_tree, ScdaControllerConfig(), other_resources=host_resources
        )
        fabric = FabricSimulator(sim, small_tree, ScdaTransport(controller))
        controller.attach_fabric(fabric)
        host_resources.attach_fabric(fabric)

        flow = fabric.start_flow(small_tree.clients()[0], slow_host, 20e6)
        sim.run(until=1.0)
        # The write is capped by the host's disk, not by the 100 Mb/s access link.
        assert flow.current_rate_bps <= 20 * MBPS * 1.05

        metrics = {m.host_id: m for m in controller.tree.host_metrics()}
        other_host = small_tree.hosts()[1].node_id
        assert metrics[slow_host.node_id].down_bps < metrics[other_host].down_bps
