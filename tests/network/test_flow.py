"""Tests for flow objects."""

import pytest

from repro.network.flow import Flow, FlowKind, FlowState
from repro.network.routing import Router

MBPS = 1e6


def make_flow(topo, size=1_000_000.0, src="ucl-0", dst="bs-0", **kw):
    router = Router(topo)
    s, d = topo.node(src), topo.node(dst)
    return Flow(s, d, size, router.path(s, d), **kw)


class TestFlowConstruction:
    def test_initial_state(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        assert flow.state is FlowState.PENDING
        assert flow.remaining_bytes == flow.size_bytes
        assert flow.transferred_bytes == 0.0

    def test_base_rtt_is_twice_forward_delay(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        assert flow.base_rtt_s == pytest.approx(2 * (0.001 + 0.001))

    def test_invalid_size_raises(self, tiny_line_topology):
        with pytest.raises(ValueError):
            make_flow(tiny_line_topology, size=0.0)

    def test_invalid_priority_raises(self, tiny_line_topology):
        with pytest.raises(ValueError):
            make_flow(tiny_line_topology, priority_weight=0.0)

    def test_negative_reservation_raises(self, tiny_line_topology):
        with pytest.raises(ValueError):
            make_flow(tiny_line_topology, min_rate_bps=-1.0)

    def test_flow_ids_are_unique(self, tiny_line_topology):
        a = make_flow(tiny_line_topology)
        b = make_flow(tiny_line_topology)
        assert a.flow_id != b.flow_id


class TestFlowProgress:
    def test_advance_delivers_rate_times_dt(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology, size=1_000_000.0)
        flow.start(0.0)
        flow.current_rate_bps = 8e6  # 1 MB/s
        delivered = flow.advance(0.25)
        assert delivered == pytest.approx(250_000.0)
        assert flow.remaining_bytes == pytest.approx(750_000.0)
        assert flow.completion_fraction == pytest.approx(0.25)

    def test_advance_never_overshoots(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology, size=1000.0)
        flow.start(0.0)
        flow.current_rate_bps = 8e9
        delivered = flow.advance(10.0)
        assert delivered == pytest.approx(1000.0)
        assert flow.remaining_bytes == 0.0

    def test_advance_before_start_is_noop(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        flow.current_rate_bps = 8e6
        assert flow.advance(1.0) == 0.0

    def test_negative_dt_raises(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        flow.start(0.0)
        with pytest.raises(ValueError):
            flow.advance(-0.1)

    def test_time_to_complete(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology, size=1_000_000.0)
        flow.start(0.0)
        flow.current_rate_bps = 8e6
        assert flow.time_to_complete() == pytest.approx(1.0)

    def test_time_to_complete_with_zero_rate_is_infinite(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        flow.start(0.0)
        assert flow.time_to_complete() == float("inf")

    def test_double_start_raises(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        flow.start(0.0)
        with pytest.raises(RuntimeError):
            flow.start(1.0)


class TestFlowCompletion:
    def test_finish_records_fct(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology, created_at=1.0)
        flow.start(1.5)
        flow.finish(3.0)
        assert flow.state is FlowState.FINISHED
        assert flow.fct == pytest.approx(2.0)
        assert flow.current_rate_bps == 0.0

    def test_fct_is_none_until_finished(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        assert flow.fct is None

    def test_abort(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        flow.start(0.0)
        flow.abort(2.0)
        assert flow.state is FlowState.ABORTED

    def test_abort_after_finish_raises(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        flow.start(0.0)
        flow.finish(1.0)
        with pytest.raises(RuntimeError):
            flow.abort(2.0)

    def test_rtt_estimate_includes_queueing_delay(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        link = flow.path[0]
        link.integrate_queue(2 * link.capacity_bps, 0.1)  # build a backlog
        assert flow.rtt_estimate() > flow.base_rtt_s

    def test_uses_link(self, tiny_line_topology):
        flow = make_flow(tiny_line_topology)
        assert flow.uses_link(flow.path[0])
        other = tiny_line_topology.find_link(
            tiny_line_topology.node("sw"), tiny_line_topology.node("ucl-0")
        )
        assert not flow.uses_link(other)

    def test_kind_defaults_to_data(self, tiny_line_topology):
        assert make_flow(tiny_line_topology).kind is FlowKind.DATA
