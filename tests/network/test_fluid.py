"""Tests for the max-min (water-filling) allocator, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.flow import Flow
from repro.network.fluid import is_feasible, is_max_min_fair, link_utilisation, max_min_shares
from repro.network.topology import Topology

MBPS = 1e6


def build_line(num_links=1, capacity=100 * MBPS):
    """A chain of switches with the given number of links in each direction."""
    topo = Topology("line")
    nodes = [topo.add_switch(f"n{i}", level=1) for i in range(num_links + 1)]
    for a, b in zip(nodes, nodes[1:]):
        topo.add_duplex_link(a, b, capacity, 0.001)
    return topo, nodes


def flow_on(topo, src, dst, size=1e9, **kw):
    from repro.network.routing import Router

    return Flow(src, dst, size, Router(topo).path(src, dst), **kw)


class TestSingleLink:
    def test_single_flow_gets_full_capacity(self):
        topo, nodes = build_line(1)
        f = flow_on(topo, nodes[0], nodes[1])
        rates = max_min_shares([f])
        assert rates[f.flow_id] == pytest.approx(100 * MBPS)

    def test_two_flows_share_equally(self):
        topo, nodes = build_line(1)
        f1 = flow_on(topo, nodes[0], nodes[1])
        f2 = flow_on(topo, nodes[0], nodes[1])
        rates = max_min_shares([f1, f2])
        assert rates[f1.flow_id] == pytest.approx(50 * MBPS)
        assert rates[f2.flow_id] == pytest.approx(50 * MBPS)

    def test_demand_capped_flow_leaves_capacity_to_others(self):
        topo, nodes = build_line(1)
        f1 = flow_on(topo, nodes[0], nodes[1])
        f2 = flow_on(topo, nodes[0], nodes[1])
        rates = max_min_shares([f1, f2], demand_caps={f1.flow_id: 10 * MBPS})
        assert rates[f1.flow_id] == pytest.approx(10 * MBPS)
        assert rates[f2.flow_id] == pytest.approx(90 * MBPS)

    def test_weighted_sharing(self):
        topo, nodes = build_line(1)
        f1 = flow_on(topo, nodes[0], nodes[1], priority_weight=3.0)
        f2 = flow_on(topo, nodes[0], nodes[1], priority_weight=1.0)
        rates = max_min_shares([f1, f2])
        assert rates[f1.flow_id] == pytest.approx(75 * MBPS)
        assert rates[f2.flow_id] == pytest.approx(25 * MBPS)

    def test_app_limited_flow_is_capped(self):
        topo, nodes = build_line(1)
        f1 = flow_on(topo, nodes[0], nodes[1], app_limit_bps=5 * MBPS)
        rates = max_min_shares([f1])
        assert rates[f1.flow_id] == pytest.approx(5 * MBPS)

    def test_capacity_scale_alpha(self):
        topo, nodes = build_line(1)
        f1 = flow_on(topo, nodes[0], nodes[1])
        rates = max_min_shares([f1], capacity_scale=0.9)
        assert rates[f1.flow_id] == pytest.approx(90 * MBPS)

    def test_zero_cap_flow_gets_nothing(self):
        topo, nodes = build_line(1)
        f1 = flow_on(topo, nodes[0], nodes[1])
        f2 = flow_on(topo, nodes[0], nodes[1])
        rates = max_min_shares([f1, f2], demand_caps={f1.flow_id: 0.0})
        assert rates[f1.flow_id] == 0.0
        assert rates[f2.flow_id] == pytest.approx(100 * MBPS)

    def test_empty_flow_list(self):
        assert max_min_shares([]) == {}


class TestMultiLink:
    def test_classic_parking_lot(self):
        # Three links in a row; one long flow crosses all three, each link also
        # carries one single-hop flow.  Max-min: every flow gets C/2.
        topo, nodes = build_line(3)
        long_flow = flow_on(topo, nodes[0], nodes[3])
        short_flows = [flow_on(topo, nodes[i], nodes[i + 1]) for i in range(3)]
        rates = max_min_shares([long_flow] + short_flows)
        assert rates[long_flow.flow_id] == pytest.approx(50 * MBPS)
        for f in short_flows:
            assert rates[f.flow_id] == pytest.approx(50 * MBPS)

    def test_bottleneck_elsewhere_frees_capacity(self):
        # Flow A crosses links 1 and 2; flow B only link 1; flow C only link 2.
        # Link 1 has lower capacity, so A is bottlenecked there and C can use
        # the slack on link 2 — the paper's max-min property.
        topo = Topology()
        n0 = topo.add_switch("n0", 1)
        n1 = topo.add_switch("n1", 1)
        n2 = topo.add_switch("n2", 1)
        topo.add_duplex_link(n0, n1, 40 * MBPS, 0.001)
        topo.add_duplex_link(n1, n2, 100 * MBPS, 0.001)
        a = flow_on(topo, n0, n2)
        b = flow_on(topo, n0, n1)
        c = flow_on(topo, n1, n2)
        rates = max_min_shares([a, b, c])
        assert rates[a.flow_id] == pytest.approx(20 * MBPS)
        assert rates[b.flow_id] == pytest.approx(20 * MBPS)
        assert rates[c.flow_id] == pytest.approx(80 * MBPS)

    def test_result_is_feasible_and_max_min_fair(self):
        topo, nodes = build_line(3)
        flows = [flow_on(topo, nodes[0], nodes[3]) for _ in range(2)]
        flows += [flow_on(topo, nodes[1], nodes[2]) for _ in range(3)]
        rates = max_min_shares(flows)
        assert is_feasible(flows, rates)
        assert is_max_min_fair(flows, rates)

    def test_link_utilisation_reports_per_link_load(self):
        topo, nodes = build_line(2)
        f = flow_on(topo, nodes[0], nodes[2])
        rates = {f.flow_id: 30 * MBPS}
        load = link_utilisation([f], rates)
        assert all(v == pytest.approx(30 * MBPS) for v in load.values())
        assert len(load) == 2


class TestMaxMinProperties:
    @given(
        num_flows=st.integers(min_value=1, max_value=8),
        num_links=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_scenarios_are_feasible_and_max_min_fair(self, num_flows, num_links, seed):
        rng = np.random.default_rng(seed)
        topo, nodes = build_line(num_links, capacity=100 * MBPS)
        flows = []
        caps = {}
        for _ in range(num_flows):
            i = int(rng.integers(0, num_links))
            j = int(rng.integers(i + 1, num_links + 1))
            f = flow_on(topo, nodes[i], nodes[j])
            flows.append(f)
            if rng.random() < 0.5:
                caps[f.flow_id] = float(rng.uniform(1 * MBPS, 120 * MBPS))
        rates = max_min_shares(flows, demand_caps=caps)
        assert is_feasible(flows, rates)
        assert is_max_min_fair(flows, rates, demand_caps=caps)

    @given(
        weights=st.lists(
            st.floats(min_value=0.25, max_value=4.0), min_size=2, max_size=6
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_weighted_shares_are_proportional_on_one_link(self, weights):
        topo, nodes = build_line(1)
        flows = [
            flow_on(topo, nodes[0], nodes[1], priority_weight=w) for w in weights
        ]
        rates = max_min_shares(flows)
        total_weight = sum(weights)
        for f, w in zip(flows, weights):
            assert rates[f.flow_id] == pytest.approx(100 * MBPS * w / total_weight, rel=1e-6)

    @given(num_flows=st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_all_capacity_is_used_when_demands_are_unbounded(self, num_flows):
        topo, nodes = build_line(1)
        flows = [flow_on(topo, nodes[0], nodes[1]) for _ in range(num_flows)]
        rates = max_min_shares(flows)
        assert sum(rates.values()) == pytest.approx(100 * MBPS, rel=1e-9)
