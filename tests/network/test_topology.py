"""Tests for topology primitives."""

import pytest

from repro.network.topology import Link, Node, NodeKind, Topology

MBPS = 1e6


@pytest.fixture
def simple_topo():
    topo = Topology("simple")
    core = topo.add_switch("core", level=2)
    tor = topo.add_switch("tor", level=1)
    host = topo.add_host("bs-0", level=0, rack="r0")
    client = topo.add_client("ucl-0")
    topo.add_duplex_link(tor, core, 10 * MBPS, 0.001)
    topo.add_duplex_link(host, tor, 10 * MBPS, 0.001)
    topo.add_duplex_link(client, core, 5 * MBPS, 0.01)
    return topo


class TestTopologyConstruction:
    def test_node_lookup_and_kinds(self, simple_topo):
        assert simple_topo.node("bs-0").kind is NodeKind.HOST
        assert simple_topo.node("core").kind is NodeKind.SWITCH
        assert simple_topo.node("ucl-0").kind is NodeKind.CLIENT

    def test_duplicate_node_id_raises(self, simple_topo):
        with pytest.raises(ValueError):
            simple_topo.add_host("bs-0")

    def test_link_requires_registered_endpoints(self, simple_topo):
        orphan = Node("ghost", NodeKind.HOST, 0)
        with pytest.raises(KeyError):
            simple_topo.add_link(orphan, simple_topo.node("core"), 1e6, 0.001)

    def test_hosts_switches_clients_partitions(self, simple_topo):
        assert {n.node_id for n in simple_topo.hosts()} == {"bs-0"}
        assert {n.node_id for n in simple_topo.switches()} == {"core", "tor"}
        assert {n.node_id for n in simple_topo.clients()} == {"ucl-0"}

    def test_duplex_link_creates_both_directions(self, simple_topo):
        host, tor = simple_topo.node("bs-0"), simple_topo.node("tor")
        up = simple_topo.find_link(host, tor)
        down = simple_topo.find_link(tor, host)
        assert up.is_uplink and not down.is_uplink

    def test_find_link_missing_raises(self, simple_topo):
        host, client = simple_topo.node("bs-0"), simple_topo.node("ucl-0")
        with pytest.raises(KeyError):
            simple_topo.find_link(host, client)

    def test_parent_and_children(self, simple_topo):
        host = simple_topo.node("bs-0")
        tor = simple_topo.node("tor")
        core = simple_topo.node("core")
        assert simple_topo.parent(host) is tor
        assert simple_topo.parent(tor) is core
        assert simple_topo.parent(core) is None
        assert host in simple_topo.children(tor)

    def test_uplink_and_downlink_of_host(self, simple_topo):
        host = simple_topo.node("bs-0")
        assert simple_topo.uplink_of(host).dst.node_id == "tor"
        assert simple_topo.downlink_to(host).src.node_id == "tor"

    def test_max_level_and_levels(self, simple_topo):
        assert simple_topo.max_level() == 2
        levels = simple_topo.levels()
        assert {n.node_id for n in levels[0]} == {"bs-0"}
        assert {n.node_id for n in levels[2]} == {"core"}

    def test_len_and_iteration(self, simple_topo):
        assert len(simple_topo) == 4
        assert {n.node_id for n in simple_topo} == {"core", "tor", "bs-0", "ucl-0"}

    def test_validate_accepts_well_formed_topology(self, simple_topo):
        simple_topo.validate()

    def test_validate_rejects_disconnected_host(self):
        topo = Topology()
        topo.add_host("isolated")
        with pytest.raises(ValueError):
            topo.validate()

    def test_to_dot_renders_every_node_and_each_cable_once(self, simple_topo):
        dot = simple_topo.to_dot()
        assert dot.startswith('graph "simple"')
        for node_id in ("core", "tor", "bs-0", "ucl-0"):
            assert f'"{node_id}"' in dot
        # Three duplex cables -> exactly three undirected edges.
        assert dot.count(" -- ") == 3
        assert "0.01G" in dot  # capacity labels present

    def test_to_dot_without_capacities(self, simple_topo):
        dot = simple_topo.to_dot(include_capacities=False)
        # No capacity labels on the edges when disabled.
        assert 'G"]' not in dot
        assert dot.count(" -- ") == 3


class TestLink:
    def test_invalid_capacity_or_delay_raises(self):
        a, b = Node("a", NodeKind.SWITCH, 1), Node("b", NodeKind.SWITCH, 1)
        with pytest.raises(ValueError):
            Link(a, b, capacity_bps=0.0, delay_s=0.001)
        with pytest.raises(ValueError):
            Link(a, b, capacity_bps=1e6, delay_s=-1.0)

    def test_default_buffer_is_100ms_worth_of_bytes(self):
        a, b = Node("a", NodeKind.SWITCH, 1), Node("b", NodeKind.SWITCH, 1)
        link = Link(a, b, capacity_bps=8e6, delay_s=0.001)
        assert link.buffer_bytes == pytest.approx(8e6 * 0.1 / 8)

    def test_queue_grows_when_offered_exceeds_capacity(self):
        a, b = Node("a", NodeKind.SWITCH, 1), Node("b", NodeKind.SWITCH, 1)
        link = Link(a, b, capacity_bps=8e6, delay_s=0.001)
        link.integrate_queue(offered_bps=16e6, dt=0.05)
        # (16e6 - 8e6) bits/s * 0.05 s / 8 = 50 KB backlog
        assert link.queue_bytes == pytest.approx(50_000)
        assert link.queueing_delay() == pytest.approx(50_000 * 8 / 8e6)

    def test_queue_drains_when_underloaded(self):
        a, b = Node("a", NodeKind.SWITCH, 1), Node("b", NodeKind.SWITCH, 1)
        link = Link(a, b, capacity_bps=8e6, delay_s=0.001)
        link.integrate_queue(16e6, 0.05)
        link.integrate_queue(0.0, 0.02)
        assert link.queue_bytes == pytest.approx(50_000 - 8e6 * 0.02 / 8)

    def test_queue_never_negative(self):
        a, b = Node("a", NodeKind.SWITCH, 1), Node("b", NodeKind.SWITCH, 1)
        link = Link(a, b, capacity_bps=8e6, delay_s=0.001)
        link.integrate_queue(0.0, 10.0)
        assert link.queue_bytes == 0.0

    def test_buffer_overflow_sets_loss_flag_and_clamps(self):
        a, b = Node("a", NodeKind.SWITCH, 1), Node("b", NodeKind.SWITCH, 1)
        link = Link(a, b, capacity_bps=8e6, delay_s=0.001, buffer_bytes=1000.0)
        link.integrate_queue(80e6, 1.0)
        assert link.queue_bytes == pytest.approx(1000.0)
        assert link.consume_loss_flag() is True
        # The flag is cleared by consuming it.
        assert link.consume_loss_flag() is False
        assert link.loss_events == 1

    def test_bytes_carried_capped_at_capacity(self):
        a, b = Node("a", NodeKind.SWITCH, 1), Node("b", NodeKind.SWITCH, 1)
        link = Link(a, b, capacity_bps=8e6, delay_s=0.001)
        link.integrate_queue(80e6, 1.0)
        assert link.bytes_carried == pytest.approx(1e6)

    def test_reset_state_clears_everything(self):
        a, b = Node("a", NodeKind.SWITCH, 1), Node("b", NodeKind.SWITCH, 1)
        link = Link(a, b, capacity_bps=8e6, delay_s=0.001, buffer_bytes=10.0)
        link.integrate_queue(80e6, 1.0)
        link.reset_state()
        assert link.queue_bytes == 0.0
        assert link.loss_events == 0
        assert link.bytes_carried == 0.0

    def test_negative_dt_raises(self):
        a, b = Node("a", NodeKind.SWITCH, 1), Node("b", NodeKind.SWITCH, 1)
        link = Link(a, b, capacity_bps=8e6, delay_s=0.001)
        with pytest.raises(ValueError):
            link.integrate_queue(1e6, -0.1)
