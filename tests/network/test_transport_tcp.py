"""Tests for the flow-level TCP model."""

import pytest

from repro.network.fabric import FabricConfig, FabricSimulator
from repro.network.flow import FlowState
from repro.network.transport.tcp import TcpConfig, TcpTransport
from repro.network.tree import TreeTopologyConfig, build_tree_topology
from repro.sim.engine import Simulator

MBPS = 1e6


def small_topo(bandwidth=100 * MBPS, delay=0.005):
    cfg = TreeTopologyConfig(
        base_bandwidth_bps=bandwidth,
        num_agg=1,
        racks_per_agg=1,
        hosts_per_rack=2,
        num_clients=2,
        internal_delay_s=delay,
        client_delay_s=delay,
    )
    return build_tree_topology(cfg)


class TestTcpConfig:
    def test_invalid_mss_raises(self):
        with pytest.raises(ValueError):
            TcpConfig(mss_bytes=0.0)

    def test_invalid_backoff_raises(self):
        with pytest.raises(ValueError):
            TcpConfig(loss_backoff=1.5)

    def test_initial_window_cannot_be_below_minimum(self):
        with pytest.raises(ValueError):
            TcpConfig(initial_window_segments=0.5, min_window_segments=1.0)


class TestWindowDynamics:
    def test_window_starts_at_initial_window(self):
        topo = small_topo()
        sim = Simulator()
        transport = TcpTransport()
        fabric = FabricSimulator(sim, topo, transport)
        flow = fabric.start_flow(topo.clients()[0], topo.hosts()[0], 1e8)
        assert TcpTransport.window_of(flow) == pytest.approx(2 * 1460.0)
        sim.run(until=0.001)

    def test_window_grows_over_time_without_loss(self):
        topo = small_topo()
        sim = Simulator()
        transport = TcpTransport()
        fabric = FabricSimulator(sim, topo, transport)
        flow = fabric.start_flow(topo.clients()[0], topo.hosts()[0], 1e9)
        sim.run(until=0.2)
        early = TcpTransport.window_of(flow)
        sim.run(until=0.8)
        later = TcpTransport.window_of(flow)
        assert later > early > 2 * 1460.0

    def test_demand_tracks_window_over_rtt(self):
        topo = small_topo()
        sim = Simulator()
        transport = TcpTransport()
        fabric = FabricSimulator(sim, topo, transport)
        flow = fabric.start_flow(topo.clients()[0], topo.hosts()[0], 1e9)
        sim.run(until=0.5)
        window = TcpTransport.window_of(flow)
        rtt = flow.rtt_estimate()
        assert flow.demand_rate_bps == pytest.approx(window * 8.0 / rtt, rel=0.3)

    def test_loss_halves_the_window(self):
        # A tiny buffer forces overflow quickly once slow start overshoots.
        cfg = TreeTopologyConfig(
            base_bandwidth_bps=10 * MBPS,
            num_agg=1,
            racks_per_agg=1,
            hosts_per_rack=1,
            num_clients=1,
            internal_delay_s=0.01,
            client_delay_s=0.01,
            buffer_ms=5.0,
        )
        topo = build_tree_topology(cfg)
        sim = Simulator()
        transport = TcpTransport()
        fabric = FabricSimulator(sim, topo, transport)
        flow = fabric.start_flow(topo.clients()[0], topo.hosts()[0], 1e9)
        sim.run(until=5.0)
        assert TcpTransport.losses_of(flow) >= 1

    def test_delivered_rate_never_exceeds_bottleneck(self):
        topo = small_topo(bandwidth=50 * MBPS)
        sim = Simulator()
        fabric = FabricSimulator(sim, topo, TcpTransport())
        flow = fabric.start_flow(topo.clients()[0], topo.hosts()[0], 1e9)
        max_seen = 0.0

        def watch(now):
            nonlocal max_seen
            max_seen = max(max_seen, flow.current_rate_bps)

        from repro.sim.timers import PeriodicTimer

        PeriodicTimer(sim, 0.05, watch)
        sim.run(until=3.0)
        assert max_seen <= 50 * MBPS * 1.001

    def test_two_flows_share_a_bottleneck_roughly_fairly(self):
        topo = small_topo(bandwidth=50 * MBPS)
        sim = Simulator()
        fabric = FabricSimulator(sim, topo, TcpTransport())
        size = 20e6
        f1 = fabric.start_flow(topo.clients()[0], topo.hosts()[0], size)
        f2 = fabric.start_flow(topo.clients()[1], topo.hosts()[0], size)
        sim.run(until=60.0)
        assert f1.state is FlowState.FINISHED and f2.state is FlowState.FINISHED
        # Same size, same path bottleneck: completion times within 50 % of each other.
        assert abs(f1.fct - f2.fct) / max(f1.fct, f2.fct) < 0.5

    def test_app_limit_caps_demand(self):
        topo = small_topo()
        sim = Simulator()
        fabric = FabricSimulator(sim, topo, TcpTransport())
        flow = fabric.start_flow(
            topo.clients()[0], topo.hosts()[0], 1e9, app_limit_bps=1 * MBPS
        )
        sim.run(until=2.0)
        assert flow.demand_rate_bps <= 1 * MBPS * 1.001

    def test_short_flow_fct_dominated_by_slow_start(self):
        # A 100 KB flow over a 100 Mb/s path takes ~8 ms at line rate but needs
        # several RTTs of window growth; with a 20 ms RTT the FCT is several
        # times the ideal transfer time.
        topo = small_topo(bandwidth=100 * MBPS, delay=0.005)
        sim = Simulator()
        fabric = FabricSimulator(sim, topo, TcpTransport())
        flow = fabric.start_flow(topo.clients()[0], topo.hosts()[0], 100_000.0)
        sim.run(until=10.0)
        ideal_time = 100_000 * 8 / (100 * MBPS)
        assert flow.fct > 3 * ideal_time
