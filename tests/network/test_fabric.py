"""Tests for the event-driven fabric simulator."""

import pytest

from repro.network.fabric import FabricConfig, FabricSimulator
from repro.network.flow import FlowKind, FlowState
from repro.network.transport.ideal import IdealMaxMinTransport
from repro.network.transport.tcp import TcpTransport
from repro.sim.engine import Simulator

MBPS = 1e6


@pytest.fixture
def ideal_fabric(tiny_line_topology):
    sim = Simulator()
    fabric = FabricSimulator(sim, tiny_line_topology, IdealMaxMinTransport())
    return sim, tiny_line_topology, fabric


class TestSingleFlow:
    def test_completion_time_matches_capacity(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        flow = fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 1_250_000.0)
        sim.run(until=10.0)
        # 1.25 MB over 100 Mb/s = 0.1 s
        assert flow.state is FlowState.FINISHED
        assert flow.fct == pytest.approx(0.1, rel=1e-3)

    def test_flow_records_appear_in_finished_list(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        flow = fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 1000.0)
        sim.run(until=1.0)
        assert flow in fabric.finished_flows
        assert fabric.active_flow_count == 0

    def test_created_at_override_affects_fct(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        sim.run(until=2.0)
        flow = fabric.start_flow(
            topo.node("ucl-0"), topo.node("bs-0"), 1_250_000.0, created_at=1.0
        )
        sim.run(until=10.0)
        assert flow.fct == pytest.approx(1.0 + 0.1, rel=1e-3)

    def test_total_bytes_delivered_accumulates(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 500_000.0)
        fabric.start_flow(topo.node("bs-0"), topo.node("ucl-0"), 250_000.0)
        sim.run(until=10.0)
        assert fabric.total_bytes_delivered == pytest.approx(750_000.0, rel=1e-6)

    def test_same_src_dst_raises(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        with pytest.raises(ValueError):
            fabric.start_flow(topo.node("bs-0"), topo.node("bs-0"), 1000.0)

    def test_callbacks_fire_on_start_and_finish(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        events = []
        fabric.on_flow_started(lambda f, now: events.append(("start", now)))
        fabric.on_flow_finished(lambda f, now: events.append(("finish", now)))
        fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 1_250_000.0)
        sim.run(until=10.0)
        assert events[0][0] == "start"
        assert events[-1][0] == "finish"
        assert events[-1][1] == pytest.approx(0.1, rel=1e-3)


class TestSharing:
    def test_two_flows_on_same_link_take_twice_as_long(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        f1 = fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 1_250_000.0)
        f2 = fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 1_250_000.0)
        sim.run(until=10.0)
        assert f1.fct == pytest.approx(0.2, rel=1e-2)
        assert f2.fct == pytest.approx(0.2, rel=1e-2)

    def test_later_arrival_shares_fairly(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        f1 = fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 1_250_000.0)
        sim.call_at(0.05, lambda: fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 625_000.0))
        sim.run(until=10.0)
        # f1 runs alone for 0.05 s (half done), then shares; both finish at 0.15.
        assert f1.fct == pytest.approx(0.15, rel=1e-2)

    def test_opposite_directions_do_not_contend(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        f1 = fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 1_250_000.0)
        f2 = fabric.start_flow(topo.node("bs-0"), topo.node("ucl-0"), 1_250_000.0)
        sim.run(until=10.0)
        assert f1.fct == pytest.approx(0.1, rel=1e-2)
        assert f2.fct == pytest.approx(0.1, rel=1e-2)

    def test_flows_on_link_query(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        flow = fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 1e9)
        link = flow.path[0]
        assert fabric.flows_on_link(link) == [flow]


class TestControl:
    def test_abort_flow_removes_it(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        flow = fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 1e9)
        sim.run(until=0.05)
        fabric.abort_flow(flow)
        sim.run(until=1.0)
        assert flow.state is FlowState.ABORTED
        assert fabric.active_flow_count == 0

    def test_reroute_requires_active_flow(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        flow = fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 1000.0)
        sim.run(until=1.0)
        with pytest.raises(RuntimeError):
            fabric.reroute_flow(flow, flow.path)

    def test_drain_runs_until_all_flows_finish(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        f1 = fabric.start_flow(topo.node("ucl-0"), topo.node("bs-0"), 2_500_000.0)
        fabric.drain()
        assert f1.state is FlowState.FINISHED

    def test_max_active_flows_guard(self, tiny_line_topology):
        sim = Simulator()
        fabric = FabricSimulator(
            sim,
            tiny_line_topology,
            IdealMaxMinTransport(),
            config=FabricConfig(max_active_flows=1),
        )
        fabric.start_flow(tiny_line_topology.node("ucl-0"), tiny_line_topology.node("bs-0"), 1e9)
        with pytest.raises(RuntimeError):
            fabric.start_flow(
                tiny_line_topology.node("ucl-0"), tiny_line_topology.node("bs-0"), 1e9
            )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            FabricConfig(control_interval_s=0.0)
        with pytest.raises(ValueError):
            FabricConfig(completion_tolerance_bytes=-1.0)


class TestTcpFabricIntegration:
    def test_tcp_flow_completes_and_is_slower_than_ideal(self, tiny_line_topology):
        size = 2_500_000.0
        sim_ideal = Simulator()
        fabric_ideal = FabricSimulator(sim_ideal, tiny_line_topology, IdealMaxMinTransport())
        ideal_flow = fabric_ideal.start_flow(
            tiny_line_topology.node("ucl-0"), tiny_line_topology.node("bs-0"), size
        )
        sim_ideal.run(until=30.0)

        from repro.network.tree import build_tree_topology, TreeTopologyConfig

        # A fresh copy of the topology so link state does not leak between runs.
        sim_tcp = Simulator()
        topo2_cfg = TreeTopologyConfig(
            base_bandwidth_bps=100 * MBPS, num_agg=1, racks_per_agg=1, hosts_per_rack=1, num_clients=1
        )
        topo2 = build_tree_topology(topo2_cfg)
        fabric_tcp = FabricSimulator(sim_tcp, topo2, TcpTransport())
        tcp_flow = fabric_tcp.start_flow(topo2.clients()[0], topo2.hosts()[0], size)
        sim_tcp.run(until=60.0)

        assert ideal_flow.state is FlowState.FINISHED
        assert tcp_flow.state is FlowState.FINISHED
        # Slow start means TCP takes strictly longer than the fluid optimum.
        assert tcp_flow.fct > ideal_flow.fct


class TestChurnBatching:
    def test_churn_context_coalesces_recomputes(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        client, host = topo.clients()[0], topo.hosts()[0]
        before = fabric.recomputes
        with fabric.churn():
            for _ in range(10):
                fabric.start_flow(client, host, 1e6)
        assert fabric.recomputes == before + 1
        assert fabric.recomputes_coalesced >= 10

    def test_nested_churn_recomputes_once_at_outermost_exit(self, ideal_fabric):
        sim, topo, fabric = ideal_fabric
        client, host = topo.clients()[0], topo.hosts()[0]
        before = fabric.recomputes
        with fabric.churn():
            fabric.start_flow(client, host, 1e6)
            with fabric.churn():
                fabric.start_flow(client, host, 1e6)
            # Inner exit must not recompute: still inside the outer batch.
            assert fabric.recomputes == before
        assert fabric.recomputes == before + 1

    def test_batched_arrivals_reach_same_rates_as_unbatched(self, tiny_line_topology):
        import copy

        def run(batched):
            topo = copy.deepcopy(tiny_line_topology)
            sim = Simulator()
            fabric = FabricSimulator(sim, topo, IdealMaxMinTransport())
            client, host = topo.clients()[0], topo.hosts()[0]
            if batched:
                with fabric.churn():
                    flows = [fabric.start_flow(client, host, 1e7) for _ in range(5)]
            else:
                flows = [fabric.start_flow(client, host, 1e7) for _ in range(5)]
            sim.run(until=3.0)
            return fabric, flows

        fabric_a, flows_a = run(batched=False)
        fabric_b, flows_b = run(batched=True)
        assert [f.current_rate_bps for f in flows_a] == [
            f.current_rate_bps for f in flows_b
        ]
        assert [f.remaining_bytes for f in flows_a] == [
            f.remaining_bytes for f in flows_b
        ]
        assert fabric_a.total_bytes_delivered == pytest.approx(
            fabric_b.total_bytes_delivered, rel=1e-12
        )

    def test_vectorized_advance_matches_python_path(self, monkeypatch):
        """Above the vectorization threshold the numpy advance must mirror
        the per-flow Python arithmetic flow by flow."""
        import repro.network.fabric as fabric_mod
        from repro.network.leafspine import build_leaf_spine

        def run(vector_min):
            monkeypatch.setattr(fabric_mod, "_VECTOR_MIN_FLOWS", vector_min)
            topo = build_leaf_spine(
                num_spines=2, num_leaves=2, hosts_per_leaf=2, num_clients=2
            )
            sim = Simulator()
            fabric = FabricSimulator(sim, topo, IdealMaxMinTransport())
            clients, hosts = topo.clients(), topo.hosts()
            flows = []
            with fabric.churn():
                for i in range(80):
                    flows.append(
                        fabric.start_flow(
                            clients[i % len(clients)],
                            hosts[i % len(hosts)],
                            1e6 + 37_000.0 * i,
                        )
                    )
            sim.run(until=4.0)
            return fabric, flows

        fabric_vec, flows_vec = run(vector_min=1)
        fabric_py, flows_py = run(vector_min=10**9)
        assert [f.remaining_bytes for f in flows_vec] == [
            f.remaining_bytes for f in flows_py
        ]
        assert [f.state for f in flows_vec] == [f.state for f in flows_py]
        assert [f.finished_at for f in flows_vec] == [f.finished_at for f in flows_py]
        # Total delivered differs only by float summation order (numpy
        # pairwise vs sequential accumulation).
        assert fabric_vec.total_bytes_delivered == pytest.approx(
            fabric_py.total_bytes_delivered, rel=1e-12
        )
