"""Tests for the fabric's runtime topology-mutation API."""

import pytest

from repro.network.fabric import FabricSimulator
from repro.network.flow import FlowState
from repro.network.leafspine import build_leaf_spine
from repro.network.transport.ideal import IdealMaxMinTransport
from repro.network.transport.tcp import TcpTransport
from repro.sim.engine import Simulator

MBPS = 1e6


def leafspine_stack(transport=None):
    topo = build_leaf_spine(num_spines=2, num_leaves=2, hosts_per_leaf=2,
                            num_clients=2)
    sim = Simulator()
    fabric = FabricSimulator(sim, topo, transport or IdealMaxMinTransport())
    return sim, topo, fabric


def spine_leaf_link(topo, spine_id, leaf_id):
    return topo.find_link(topo.node(spine_id), topo.node(leaf_id))


class TestFailLink:
    def test_stranded_flow_reroutes_onto_surviving_path(self):
        sim, topo, fabric = leafspine_stack()
        client = topo.clients()[0]          # attached to spine-0
        host = topo.hosts()[0]              # under leaf-0
        flow = fabric.start_flow(client, host, 50e6)
        crossed = {l.link_id for l in flow.path}
        down = spine_leaf_link(topo, "spine-0", "leaf-0")
        assert down.link_id in crossed

        aborted = fabric.fail_link(down)
        assert aborted == []
        assert flow.state is FlowState.ACTIVE
        assert down.link_id not in {l.link_id for l in flow.path}
        assert all(l.up for l in flow.path)
        assert fabric.flows_rerouted_on_failure == 1
        assert fabric.links_down == 1

        sim.run(until=60.0)
        assert flow.state is FlowState.FINISHED

    def test_flow_with_no_surviving_path_is_aborted(self, small_tree):
        sim = Simulator()
        fabric = FabricSimulator(sim, small_tree, IdealMaxMinTransport())
        host = small_tree.hosts()[0]
        client = small_tree.clients()[0]
        flow = fabric.start_flow(client, host, 10e6)
        # The tree has a single path; the host's access link is fatal.
        uplink = small_tree.downlink_to(host)
        aborted = fabric.fail_link(uplink)
        assert aborted == [flow]
        assert flow.state is FlowState.ABORTED
        assert fabric.flows_aborted_on_failure == 1
        assert fabric.active_flow_count == 0

    def test_abort_callback_fires(self, small_tree):
        sim = Simulator()
        fabric = FabricSimulator(sim, small_tree, IdealMaxMinTransport())
        seen = []
        fabric.on_flow_aborted(lambda flow, now: seen.append(flow.flow_id))
        host = small_tree.hosts()[0]
        flow = fabric.start_flow(small_tree.clients()[0], host, 10e6)
        fabric.fail_link(small_tree.downlink_to(host))
        assert seen == [flow.flow_id]

    def test_fail_is_idempotent(self):
        sim, topo, fabric = leafspine_stack()
        link = spine_leaf_link(topo, "spine-0", "leaf-0")
        fabric.fail_link(link)
        fabric.fail_link(link)
        assert fabric.link_failures == 1

    def test_new_flows_avoid_the_down_link(self):
        sim, topo, fabric = leafspine_stack()
        down = spine_leaf_link(topo, "spine-0", "leaf-0")
        fabric.fail_link(down)
        flow = fabric.start_flow(topo.clients()[0], topo.hosts()[0], 1e6)
        assert down.link_id not in {l.link_id for l in flow.path}


class TestRestoreLink:
    def test_restore_clears_state_and_reopens_routing(self):
        sim, topo, fabric = leafspine_stack()
        link = spine_leaf_link(topo, "spine-0", "leaf-0")
        fabric.fail_link(link)
        link.queue_bytes = 123.0
        fabric.restore_link(link)
        assert link.up
        assert link.queue_bytes == 0.0
        assert fabric.links_down == 0
        assert fabric.link_recoveries == 1
        # Routing sees the restored link again (shortest path is direct).
        flow = fabric.start_flow(topo.clients()[0], topo.hosts()[0], 1e6)
        assert len(flow.path) == 3

    def test_restore_is_idempotent(self):
        sim, topo, fabric = leafspine_stack()
        link = spine_leaf_link(topo, "spine-0", "leaf-0")
        fabric.restore_link(link)
        assert fabric.link_recoveries == 0


class TestSetLinkCapacity:
    def test_capacity_change_slows_delivered_rate(self):
        sim, topo, fabric = leafspine_stack()
        host = topo.hosts()[0]
        flow = fabric.start_flow(topo.clients()[0], host, 1e9)
        full_rate = flow.current_rate_bps
        access = topo.downlink_to(host)
        fabric.set_link_capacity(access, access.nominal_capacity_bps * 0.1)
        assert flow.current_rate_bps == pytest.approx(full_rate * 0.1, rel=1e-6)
        fabric.set_link_capacity(access, access.nominal_capacity_bps)
        assert flow.current_rate_bps == pytest.approx(full_rate, rel=1e-6)
        assert fabric.capacity_changes == 2

    def test_nonpositive_capacity_rejected(self):
        sim, topo, fabric = leafspine_stack()
        with pytest.raises(ValueError):
            fabric.set_link_capacity(topo.links[0], 0.0)

    def test_topology_change_callback_fires(self):
        sim, topo, fabric = leafspine_stack()
        seen = []
        fabric.on_topology_changed(lambda event, link, now: seen.append(event))
        link = spine_leaf_link(topo, "spine-0", "leaf-0")
        fabric.set_link_capacity(link, 1 * MBPS)
        fabric.fail_link(link)
        fabric.restore_link(link)
        assert seen == ["link-capacity", "link-failed", "link-restored"]
        fabric.remove_topology_changed_callback(seen.append)  # unknown: no-op


class TestCallbackSymmetry:
    """The satellite fix: every callback register has a matching remove."""

    def test_remove_flow_started_callback(self, small_tree):
        sim = Simulator()
        fabric = FabricSimulator(sim, small_tree, IdealMaxMinTransport())
        seen = []

        def observer(flow, now):
            seen.append(flow.flow_id)

        fabric.on_flow_started(observer)
        fabric.start_flow(small_tree.clients()[0], small_tree.hosts()[0], 1e6)
        assert len(seen) == 1
        fabric.remove_flow_started_callback(observer)
        fabric.start_flow(small_tree.clients()[1], small_tree.hosts()[1], 1e6)
        assert len(seen) == 1
        # Removing twice is a documented no-op.
        fabric.remove_flow_started_callback(observer)

    def test_remove_flow_aborted_callback(self, small_tree):
        sim = Simulator()
        fabric = FabricSimulator(sim, small_tree, IdealMaxMinTransport())
        seen = []

        def observer(flow, now):
            seen.append(flow.flow_id)

        fabric.on_flow_aborted(observer)
        fabric.remove_flow_aborted_callback(observer)
        flow = fabric.start_flow(small_tree.clients()[0], small_tree.hosts()[0], 1e6)
        fabric.abort_flow(flow)
        assert seen == []


class TestTransportRerouteHook:
    def test_tcp_restarts_slow_start_on_failure_reroute(self):
        transport = TcpTransport()
        sim, topo, fabric = leafspine_stack(transport)
        client = topo.clients()[0]
        host = topo.hosts()[0]
        flow = fabric.start_flow(client, host, 500e6)
        sim.run(until=2.0)  # let the window grow past the initial value
        initial = transport.config.initial_window_segments * transport.config.mss_bytes
        grown = flow.transport_state["cwnd"]
        assert grown > initial

        down = spine_leaf_link(topo, "spine-0", "leaf-0")
        if down.link_id not in {l.link_id for l in flow.path}:
            down = spine_leaf_link(topo, "spine-1", "leaf-0")
        fabric.fail_link(down)
        assert flow.state is FlowState.ACTIVE
        assert flow.transport_state["cwnd"] == pytest.approx(initial)
        assert flow.transport_state["ssthresh"] >= initial

    def test_policy_reroute_keeps_the_window(self):
        transport = TcpTransport()
        sim, topo, fabric = leafspine_stack(transport)
        flow = fabric.start_flow(topo.clients()[0], topo.hosts()[0], 500e6)
        sim.run(until=2.0)
        before = flow.transport_state["cwnd"]
        fabric.reroute_flow(flow, list(flow.path))  # default reason="policy"
        assert flow.transport_state["cwnd"] == before


class TestFailureChurnBatching:
    def test_fail_link_recomputes_exactly_once(self):
        """A failure that reroutes several flows is one allocation event."""
        sim, topo, fabric = leafspine_stack()
        client = topo.clients()[0]
        host = topo.hosts()[0]
        flows = [fabric.start_flow(client, host, 50e6) for _ in range(4)]
        down = spine_leaf_link(topo, "spine-0", "leaf-0")
        before = fabric.recomputes
        fabric.fail_link(down)
        assert fabric.recomputes == before + 1
        assert all(f.state is FlowState.ACTIVE for f in flows)

    def test_failure_inside_explicit_churn_still_recomputes_once(self):
        sim, topo, fabric = leafspine_stack()
        client = topo.clients()[0]
        host = topo.hosts()[0]
        fabric.start_flow(client, host, 50e6)
        down = spine_leaf_link(topo, "spine-0", "leaf-0")
        before = fabric.recomputes
        with fabric.churn():
            fabric.start_flow(client, host, 10e6)
            fabric.fail_link(down)
            fabric.start_flow(client, host, 20e6)
        assert fabric.recomputes == before + 1

    def test_link_failure_mid_churn_is_deterministic(self):
        """The same scripted failure-under-churn run twice gives the same bits.

        This is the dynamics edge case for the incremental solver: a link
        failure changes the link set mid-batch (forcing re-routes and a full
        coverage of the dirty region), simultaneous arrivals coalesce into
        the same recompute, and a later restore brings the link back.
        """

        def scripted_run():
            sim, topo, fabric = leafspine_stack()
            client = topo.clients()[0]
            host = topo.hosts()[0]
            flows = [fabric.start_flow(client, host, 20e6 + 1e6 * i) for i in range(6)]
            down = spine_leaf_link(topo, "spine-0", "leaf-0")

            def mid_churn():
                with fabric.churn():
                    flows.append(fabric.start_flow(client, host, 5e6))
                    fabric.fail_link(down)
                    flows.append(fabric.start_flow(client, host, 7e6))

            sim.call_at(0.5, mid_churn)
            sim.call_at(2.0, fabric.restore_link, down)
            sim.run(until=60.0)
            return fabric, flows

        fabric_a, flows_a = scripted_run()
        fabric_b, flows_b = scripted_run()
        assert all(f.state is FlowState.FINISHED for f in flows_a)
        assert [f.finished_at for f in flows_a] == [f.finished_at for f in flows_b]
        assert [f.remaining_bytes for f in flows_a] == [
            f.remaining_bytes for f in flows_b
        ]
        assert fabric_a.total_bytes_delivered == fabric_b.total_bytes_delivered
        assert fabric_a.recomputes == fabric_b.recomputes
        assert fabric_a.recomputes_coalesced == fabric_b.recomputes_coalesced
