"""Tests for the SCDA explicit-rate transport (with a stub rate provider)."""

import pytest

from repro.network.fabric import FabricSimulator
from repro.network.flow import FlowState
from repro.network.transport.ideal import IdealMaxMinTransport
from repro.network.transport.scda import RateProvider, ScdaTransport
from repro.sim.engine import Simulator

MBPS = 1e6


class StubProvider(RateProvider):
    """Hands every flow the same fixed rate and records lifecycle calls."""

    def __init__(self, rate_bps):
        self.rate_bps = rate_bps
        self.started = []
        self.finished = []

    def flow_allocations(self, flows, now):
        return {f.flow_id: self.rate_bps for f in flows}

    def on_flow_start(self, flow, now):
        self.started.append(flow.flow_id)

    def on_flow_finish(self, flow, now):
        self.finished.append(flow.flow_id)


class TestScdaTransport:
    def test_requires_a_provider(self):
        with pytest.raises(ValueError):
            ScdaTransport(None)

    def test_flow_runs_at_the_allocated_rate(self, tiny_line_topology):
        sim = Simulator()
        provider = StubProvider(10 * MBPS)
        fabric = FabricSimulator(sim, tiny_line_topology, ScdaTransport(provider))
        flow = fabric.start_flow(
            tiny_line_topology.node("ucl-0"), tiny_line_topology.node("bs-0"), 1_250_000.0
        )
        sim.run(until=10.0)
        # 1.25 MB at 10 Mb/s = 1 s.
        assert flow.fct == pytest.approx(1.0, rel=1e-2)

    def test_lifecycle_hooks_reach_the_provider(self, tiny_line_topology):
        sim = Simulator()
        provider = StubProvider(10 * MBPS)
        fabric = FabricSimulator(sim, tiny_line_topology, ScdaTransport(provider))
        flow = fabric.start_flow(
            tiny_line_topology.node("ucl-0"), tiny_line_topology.node("bs-0"), 1000.0
        )
        sim.run(until=1.0)
        assert provider.started == [flow.flow_id]
        assert provider.finished == [flow.flow_id]

    def test_over_allocation_is_capped_by_capacity(self, tiny_line_topology):
        sim = Simulator()
        # Provider hands out 10x the link capacity; enforce_capacity must cap it.
        provider = StubProvider(1000 * MBPS)
        fabric = FabricSimulator(sim, tiny_line_topology, ScdaTransport(provider))
        flow = fabric.start_flow(
            tiny_line_topology.node("ucl-0"), tiny_line_topology.node("bs-0"), 1_250_000.0
        )
        sim.run(until=10.0)
        assert flow.fct == pytest.approx(0.1, rel=1e-2)

    def test_enforce_capacity_disabled_trusts_the_provider(self, tiny_line_topology):
        sim = Simulator()
        provider = StubProvider(10 * MBPS)
        fabric = FabricSimulator(
            sim, tiny_line_topology, ScdaTransport(provider, enforce_capacity=False)
        )
        flow = fabric.start_flow(
            tiny_line_topology.node("ucl-0"), tiny_line_topology.node("bs-0"), 1_250_000.0
        )
        sim.run(until=10.0)
        assert flow.fct == pytest.approx(1.0, rel=1e-2)

    def test_app_limit_caps_the_allocation(self, tiny_line_topology):
        sim = Simulator()
        provider = StubProvider(100 * MBPS)
        fabric = FabricSimulator(sim, tiny_line_topology, ScdaTransport(provider))
        flow = fabric.start_flow(
            tiny_line_topology.node("ucl-0"),
            tiny_line_topology.node("bs-0"),
            1_250_000.0,
            app_limit_bps=5 * MBPS,
        )
        sim.run(until=10.0)
        assert flow.fct == pytest.approx(2.0, rel=1e-2)

    def test_reservation_floor_is_respected(self, tiny_line_topology):
        sim = Simulator()
        # Provider gives almost nothing, but the flow reserved 20 Mb/s.
        provider = StubProvider(0.01 * MBPS)
        fabric = FabricSimulator(sim, tiny_line_topology, ScdaTransport(provider))
        flow = fabric.start_flow(
            tiny_line_topology.node("ucl-0"),
            tiny_line_topology.node("bs-0"),
            1_250_000.0,
            min_rate_bps=20 * MBPS,
        )
        sim.run(until=10.0)
        assert flow.fct == pytest.approx(0.5, rel=1e-2)


class TestIdealTransport:
    def test_utilisation_validation(self):
        with pytest.raises(ValueError):
            IdealMaxMinTransport(utilisation=0.0)

    def test_two_flows_finish_simultaneously(self, tiny_line_topology):
        sim = Simulator()
        fabric = FabricSimulator(sim, tiny_line_topology, IdealMaxMinTransport())
        f1 = fabric.start_flow(
            tiny_line_topology.node("ucl-0"), tiny_line_topology.node("bs-0"), 500_000.0
        )
        f2 = fabric.start_flow(
            tiny_line_topology.node("ucl-0"), tiny_line_topology.node("bs-0"), 500_000.0
        )
        sim.run(until=5.0)
        assert f1.state is FlowState.FINISHED and f2.state is FlowState.FINISHED
        assert f1.fct == pytest.approx(f2.fct, rel=1e-6)
