"""Equivalence of the numpy water-filler against the reference Python solver.

Property tests over randomized topologies, flow sets, weights, demand caps,
app limits, capacity scales and overrides: the two backends must agree within
1e-9 relative on every flow, and both allocations must satisfy the max-min
fairness property.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.flow import Flow
from repro.network.fluid import is_feasible, is_max_min_fair, max_min_shares
from repro.network.incidence import IncidenceCache
from repro.network.routing import Router
from repro.network.topology import Topology

MBPS = 1e6


def build_line(num_links, capacities):
    topo = Topology("line")
    nodes = [topo.add_switch(f"n{i}", level=1) for i in range(num_links + 1)]
    for (a, b), cap in zip(zip(nodes, nodes[1:]), capacities):
        topo.add_duplex_link(a, b, cap, 0.001)
    return topo, nodes


def random_scenario(num_flows, num_links, seed):
    """A randomized line-topology scenario with mixed weights/caps/limits."""
    rng = np.random.default_rng(seed)
    capacities = rng.uniform(10 * MBPS, 200 * MBPS, size=num_links)
    topo, nodes = build_line(num_links, capacities)
    router = Router(topo)
    flows, caps, weights = [], {}, {}
    for _ in range(num_flows):
        i = int(rng.integers(0, num_links))
        j = int(rng.integers(i + 1, num_links + 1))
        kw = {}
        if rng.random() < 0.4:
            kw["priority_weight"] = float(rng.uniform(0.25, 4.0))
        if rng.random() < 0.3:
            kw["app_limit_bps"] = float(rng.uniform(1 * MBPS, 150 * MBPS))
        f = Flow(nodes[i], nodes[j], 1e9, router.path(nodes[i], nodes[j]), **kw)
        flows.append(f)
        r = rng.random()
        if r < 0.3:
            caps[f.flow_id] = float(rng.uniform(0.5 * MBPS, 150 * MBPS))
        elif r < 0.35:
            caps[f.flow_id] = 0.0  # zero-cap flows freeze immediately
        if rng.random() < 0.2:
            weights[f.flow_id] = float(rng.uniform(0.5, 3.0))
    return topo, flows, caps, weights


def assert_allocations_close(a, b, rel=1e-9):
    assert a.keys() == b.keys()
    for flow_id in a:
        tol = rel * max(1.0, abs(a[flow_id]))
        assert abs(a[flow_id] - b[flow_id]) <= tol, (
            f"flow {flow_id}: python={a[flow_id]!r} numpy={b[flow_id]!r}"
        )


class TestRandomizedEquivalence:
    @given(
        num_flows=st.integers(min_value=1, max_value=40),
        num_links=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_solvers_agree_on_random_scenarios(self, num_flows, num_links, seed):
        topo, flows, caps, weights = random_scenario(num_flows, num_links, seed)
        py = max_min_shares(flows, demand_caps=caps, weights=weights, solver="python")
        np_ = max_min_shares(flows, demand_caps=caps, weights=weights, solver="numpy")
        assert_allocations_close(py, np_)
        assert is_feasible(flows, py)
        assert is_feasible(flows, np_)
        # is_max_min_fair checks the *unweighted* property, so only assert it
        # when every flow carries weight 1.
        if not weights and all(f.priority_weight == 1.0 for f in flows):
            assert is_max_min_fair(flows, py, demand_caps=caps)
            assert is_max_min_fair(flows, np_, demand_caps=caps)

    @given(
        num_flows=st.integers(min_value=1, max_value=30),
        num_links=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_unweighted_numpy_allocations_are_max_min_fair(
        self, num_flows, num_links, seed
    ):
        rng = np.random.default_rng(seed)
        capacities = rng.uniform(10 * MBPS, 200 * MBPS, size=num_links)
        topo, nodes = build_line(num_links, capacities)
        router = Router(topo)
        flows, caps = [], {}
        for _ in range(num_flows):
            i = int(rng.integers(0, num_links))
            j = int(rng.integers(i + 1, num_links + 1))
            f = Flow(nodes[i], nodes[j], 1e9, router.path(nodes[i], nodes[j]))
            flows.append(f)
            if rng.random() < 0.4:
                caps[f.flow_id] = float(rng.uniform(0.5 * MBPS, 150 * MBPS))
        for solver in ("python", "numpy"):
            rates = max_min_shares(flows, demand_caps=caps, solver=solver)
            assert is_feasible(flows, rates)
            assert is_max_min_fair(flows, rates, demand_caps=caps)

    @given(
        num_flows=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
        scale=st.floats(min_value=0.3, max_value=1.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_solvers_agree_under_capacity_scale_and_overrides(
        self, num_flows, seed, scale
    ):
        topo, flows, caps, weights = random_scenario(num_flows, 4, seed)
        rng = np.random.default_rng(seed + 1)
        overrides = {
            link.link_id: float(rng.uniform(5 * MBPS, 120 * MBPS))
            for link in topo.links
            if rng.random() < 0.5
        }
        kwargs = dict(
            demand_caps=caps,
            weights=weights,
            capacity_scale=scale,
            capacity_overrides=overrides,
        )
        py = max_min_shares(flows, solver="python", **kwargs)
        np_ = max_min_shares(flows, solver="numpy", **kwargs)
        assert_allocations_close(py, np_)

    @given(
        num_flows=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_cached_incidence_gives_identical_results(self, num_flows, seed):
        topo, flows, caps, weights = random_scenario(num_flows, 5, seed)
        cache = IncidenceCache(flows)
        fresh = max_min_shares(flows, demand_caps=caps, weights=weights, solver="numpy")
        cached = max_min_shares(
            flows, demand_caps=caps, weights=weights, solver="numpy", cache=cache
        )
        assert fresh == cached
        py_cached = max_min_shares(
            flows, demand_caps=caps, weights=weights, solver="python", cache=cache
        )
        assert_allocations_close(py_cached, cached)

    @given(
        num_flows=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_incremental_cache_updates_track_membership(self, num_flows, seed):
        """Removing/re-adding flows through the cache matches a fresh solve."""
        topo, flows, caps, _weights = random_scenario(num_flows, 4, seed)
        cache = IncidenceCache(flows)
        removed = flows[:: max(1, num_flows // 3)]
        for f in removed:
            cache.remove_flow(f)
        remaining = [f for f in flows if f not in removed]
        via_cache = max_min_shares(
            remaining, demand_caps=caps, solver="numpy", cache=cache
        )
        fresh = max_min_shares(remaining, demand_caps=caps, solver="numpy")
        assert via_cache == fresh


class TestDispatch:
    def test_auto_dispatches_to_numpy_at_scale(self):
        from repro.network import fluid

        topo, flows, caps, weights = random_scenario(
            fluid.AUTO_NUMPY_MIN_FLOWS + 10, 4, seed=5
        )
        auto = max_min_shares(flows, demand_caps=caps, solver="auto")
        explicit = max_min_shares(flows, demand_caps=caps, solver="numpy")
        assert auto == explicit

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            max_min_shares([], solver="fortran")

    def test_stale_cache_falls_back_to_rebuild(self):
        topo, flows, caps, _w = random_scenario(10, 3, seed=9)
        cache = IncidenceCache(flows[:5])  # does not cover the flow set
        result = max_min_shares(flows, demand_caps=caps, solver="numpy", cache=cache)
        fresh = max_min_shares(flows, demand_caps=caps, solver="numpy")
        assert result == fresh

    def test_non_positive_weight_raises_in_both_backends(self):
        topo, flows, _caps, _w = random_scenario(3, 2, seed=1)
        bad = {flows[0].flow_id: -1.0}
        with pytest.raises(ValueError):
            max_min_shares(flows, weights=bad, solver="python")
        with pytest.raises(ValueError):
            max_min_shares(flows, weights=bad, solver="numpy")

    def test_empty_and_pathless_flows(self):
        assert max_min_shares([], solver="numpy") == {}
        topo, nodes = build_line(1, [100 * MBPS])
        f = Flow(nodes[0], nodes[1], 1e9, [])
        assert max_min_shares([f], solver="numpy") == {f.flow_id: 0.0}
