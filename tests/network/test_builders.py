"""Tests for the topology builders (tree, fat-tree, VL2, leaf-spine)."""

import pytest

from repro.network.fattree import build_fat_tree
from repro.network.leafspine import build_leaf_spine
from repro.network.tree import TreeTopologyConfig, build_tree_topology, hosts_by_rack, rack_of
from repro.network.vl2 import build_vl2_topology

MBPS = 1e6
GBPS = 1e9


class TestTreeTopology:
    def test_host_count_matches_config(self, small_tree_config, small_tree):
        assert len(small_tree.hosts()) == small_tree_config.num_hosts == 8

    def test_client_count_matches_config(self, small_tree_config, small_tree):
        assert len(small_tree.clients()) == small_tree_config.num_clients

    def test_three_switch_levels_exist(self, small_tree):
        levels = {n.level for n in small_tree.switches()}
        assert levels == {1, 2, 3}
        assert small_tree.max_level() == 3

    def test_host_access_links_use_base_bandwidth(self, small_tree_config, small_tree):
        host = small_tree.hosts()[0]
        uplink = small_tree.uplink_of(host)
        assert uplink.capacity_bps == pytest.approx(small_tree_config.base_bandwidth_bps)

    def test_left_side_uses_core_multiplier_and_right_side_uses_k(self, small_tree_config, small_tree):
        x = small_tree_config.base_bandwidth_bps
        left_agg = small_tree.node("agg-0")
        right_agg = small_tree.node("agg-1")
        core = small_tree.node("core")
        left_bw = small_tree.find_link(left_agg, core).capacity_bps
        right_bw = small_tree.find_link(right_agg, core).capacity_bps
        assert left_bw == pytest.approx(small_tree_config.core_multiplier * x)
        assert right_bw == pytest.approx(small_tree_config.bandwidth_factor * x)

    def test_homogeneous_mode_disables_right_side_scaling(self, small_tree_config):
        cfg = TreeTopologyConfig(
            base_bandwidth_bps=small_tree_config.base_bandwidth_bps,
            bandwidth_factor=3.0,
            num_agg=2,
            racks_per_agg=1,
            hosts_per_rack=1,
            num_clients=1,
            heterogeneous_right_side=False,
        )
        topo = build_tree_topology(cfg)
        core = topo.node("core")
        bws = {topo.find_link(topo.node(f"agg-{i}"), core).capacity_bps for i in range(2)}
        assert bws == {cfg.core_multiplier * cfg.base_bandwidth_bps}

    def test_client_links_use_client_delay(self, small_tree_config, small_tree):
        client = small_tree.clients()[0]
        link = small_tree.uplink_of(client) or small_tree.out_links(client)[0]
        assert link.delay_s == pytest.approx(small_tree_config.client_delay_s)

    def test_every_host_has_a_rack_attribute(self, small_tree):
        assert all(rack_of(h) for h in small_tree.hosts())

    def test_hosts_by_rack_grouping(self, small_tree_config, small_tree):
        grouped = hosts_by_rack(small_tree)
        assert len(grouped) == small_tree_config.num_agg * small_tree_config.racks_per_agg
        assert all(len(hosts) == small_tree_config.hosts_per_rack for hosts in grouped.values())

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            TreeTopologyConfig(num_agg=0)
        with pytest.raises(ValueError):
            TreeTopologyConfig(base_bandwidth_bps=-1.0)
        with pytest.raises(ValueError):
            TreeTopologyConfig(num_clients=0)

    def test_paper_default_scale_has_20_servers(self):
        cfg = TreeTopologyConfig()
        assert cfg.num_hosts == 20


class TestFatTree:
    def test_k4_fat_tree_dimensions(self):
        topo = build_fat_tree(k=4, num_clients=2)
        # k^3/4 hosts, k^2/4 core switches, k^2 pod switches.
        assert len(topo.hosts()) == 16
        assert len([s for s in topo.switches() if s.level == 3]) == 4
        assert len([s for s in topo.switches() if s.level in (1, 2)]) == 16
        topo.validate()

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            build_fat_tree(k=3)

    def test_each_edge_switch_serves_k_over_2_hosts(self):
        topo = build_fat_tree(k=4, num_clients=1)
        edge = topo.node("edge-0-0")
        hosts = [n for n in topo.children(edge) if n.kind.value == "host"]
        assert len(hosts) == 2


class TestVl2:
    def test_structure(self):
        topo = build_vl2_topology(
            num_intermediate=2, num_aggregation=4, num_tor=4, hosts_per_tor=3, num_clients=2
        )
        assert len(topo.hosts()) == 12
        assert len([s for s in topo.switches() if s.level == 3]) == 2
        topo.validate()

    def test_tor_is_dual_homed(self):
        topo = build_vl2_topology(num_tor=2, hosts_per_tor=1, num_clients=1)
        tor = topo.node("tor-0")
        agg_neighbours = {n.node_id for n in topo.neighbors(tor) if n.level == 2}
        assert len(agg_neighbours) == 2

    def test_requires_two_aggregation_switches(self):
        with pytest.raises(ValueError):
            build_vl2_topology(num_aggregation=1)


class TestLeafSpine:
    def test_structure(self):
        topo = build_leaf_spine(num_spines=2, num_leaves=3, hosts_per_leaf=4, num_clients=2)
        assert len(topo.hosts()) == 12
        assert len([s for s in topo.switches() if s.level == 2]) == 2
        assert len([s for s in topo.switches() if s.level == 1]) == 3
        topo.validate()

    def test_every_leaf_connects_to_every_spine(self):
        topo = build_leaf_spine(num_spines=3, num_leaves=2, hosts_per_leaf=1, num_clients=1)
        leaf = topo.node("leaf-0")
        spine_neighbours = {n.node_id for n in topo.neighbors(leaf) if n.level == 2}
        assert spine_neighbours == {"spine-0", "spine-1", "spine-2"}

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            build_leaf_spine(num_spines=0)
