"""Tests for routing."""

import pytest

from repro.network.fattree import build_fat_tree
from repro.network.routing import EcmpRouter, NoPathError, Router, WidestPathRouter
from repro.network.topology import Topology

MBPS = 1e6


class TestShortestPathOnTree:
    def test_path_between_hosts_in_same_rack(self, small_tree):
        router = Router(small_tree)
        a, b = small_tree.node("bs-0-0-0"), small_tree.node("bs-0-0-1")
        path = router.path(a, b)
        assert [l.src.node_id for l in path] == ["bs-0-0-0", "tor-0-0"]
        assert path[-1].dst.node_id == "bs-0-0-1"

    def test_path_between_hosts_in_different_pods_goes_through_core(self, small_tree):
        router = Router(small_tree)
        a, b = small_tree.node("bs-0-0-0"), small_tree.node("bs-1-1-0")
        nodes = router.path_nodes(a, b)
        assert "core" in nodes
        assert len(nodes) == 7  # host-tor-agg-core-agg-tor-host

    def test_path_to_self_is_empty(self, small_tree):
        router = Router(small_tree)
        a = small_tree.node("bs-0-0-0")
        assert router.path(a, a) == []
        assert router.path_nodes(a, a) == ["bs-0-0-0"]

    def test_hop_count(self, small_tree):
        router = Router(small_tree)
        a, b = small_tree.node("bs-0-0-0"), small_tree.node("bs-0-0-1")
        assert router.hop_count(a, b) == 2

    def test_base_rtt_sums_both_directions(self, small_tree, small_tree_config):
        router = Router(small_tree)
        a, b = small_tree.node("bs-0-0-0"), small_tree.node("bs-0-0-1")
        assert router.base_rtt(a, b) == pytest.approx(4 * small_tree_config.internal_delay_s)

    def test_client_to_host_path(self, small_tree):
        router = Router(small_tree)
        client, host = small_tree.node("ucl-0"), small_tree.node("bs-1-0-1")
        nodes = router.path_nodes(client, host)
        assert nodes[0] == "ucl-0" and nodes[-1] == "bs-1-0-1"
        assert "core" in nodes

    def test_no_path_raises(self):
        topo = Topology()
        a = topo.add_switch("a", 1)
        b = topo.add_switch("b", 1)
        # no links at all
        with pytest.raises(NoPathError):
            Router(topo).path(a, b)

    def test_paths_are_cached_and_copied(self, small_tree):
        router = Router(small_tree)
        a, b = small_tree.node("bs-0-0-0"), small_tree.node("bs-0-0-1")
        p1 = router.path(a, b)
        p1.append("garbage")
        p2 = router.path(a, b)
        assert p2[-1] != "garbage"


class TestEcmp:
    def test_single_path_on_tree(self, small_tree):
        router = EcmpRouter(small_tree)
        a, b = small_tree.node("bs-0-0-0"), small_tree.node("bs-1-0-0")
        assert len(router.equal_cost_paths(a, b)) == 1

    def test_multiple_paths_on_fat_tree(self):
        topo = build_fat_tree(k=4, num_clients=1)
        router = EcmpRouter(topo)
        a, b = topo.node("bs-0-0-0"), topo.node("bs-1-0-0")
        paths = router.equal_cost_paths(a, b)
        assert len(paths) >= 2
        lengths = {len(p) for p in paths}
        assert len(lengths) == 1  # all equal cost

    def test_path_for_flow_is_deterministic_per_key(self):
        topo = build_fat_tree(k=4, num_clients=1)
        router = EcmpRouter(topo)
        a, b = topo.node("bs-0-0-0"), topo.node("bs-1-0-0")
        p1 = router.path_for_flow(a, b, flow_key=7)
        p2 = router.path_for_flow(a, b, flow_key=7)
        assert [l.link_id for l in p1] == [l.link_id for l in p2]

    def test_different_keys_can_use_different_paths(self):
        topo = build_fat_tree(k=4, num_clients=1)
        router = EcmpRouter(topo)
        a, b = topo.node("bs-0-0-0"), topo.node("bs-1-0-0")
        chosen = {
            tuple(l.link_id for l in router.path_for_flow(a, b, key)) for key in range(16)
        }
        assert len(chosen) >= 2

    def test_max_paths_validation(self, small_tree):
        with pytest.raises(ValueError):
            EcmpRouter(small_tree, max_paths=0)


class TestWidestPath:
    def test_widest_path_prefers_high_rate_links(self):
        topo = Topology("diamond")
        s = topo.add_switch("s", 1)
        a = topo.add_switch("a", 2)
        b = topo.add_switch("b", 2)
        t = topo.add_switch("t", 3)
        topo.add_duplex_link(s, a, 10 * MBPS, 0.001)
        topo.add_duplex_link(a, t, 10 * MBPS, 0.001)
        topo.add_duplex_link(s, b, 100 * MBPS, 0.001)
        topo.add_duplex_link(b, t, 100 * MBPS, 0.001)
        router = WidestPathRouter(topo)
        path, bottleneck = router.widest_path(s, t)
        assert {l.dst.node_id for l in path} >= {"b", "t"}
        assert bottleneck == pytest.approx(100 * MBPS)

    def test_widest_path_uses_dynamic_rates(self):
        topo = Topology("diamond")
        s = topo.add_switch("s", 1)
        a = topo.add_switch("a", 2)
        b = topo.add_switch("b", 2)
        t = topo.add_switch("t", 3)
        topo.add_duplex_link(s, a, 100 * MBPS, 0.001)
        topo.add_duplex_link(a, t, 100 * MBPS, 0.001)
        topo.add_duplex_link(s, b, 100 * MBPS, 0.001)
        topo.add_duplex_link(b, t, 100 * MBPS, 0.001)
        # Pretend the b-branch is congested: its advertised rate is tiny.
        rates = {}
        for link in topo.links:
            rates[link.link_id] = 1 * MBPS if "b" in (link.src.node_id, link.dst.node_id) else 50 * MBPS
        router = WidestPathRouter(topo, rate_of_link=lambda l: rates[l.link_id])
        path, bottleneck = router.widest_path(s, t)
        assert all("b" not in (l.src.node_id, l.dst.node_id) for l in path)
        assert bottleneck == pytest.approx(50 * MBPS)

    def test_widest_path_to_self(self, small_tree):
        router = WidestPathRouter(small_tree)
        a = small_tree.node("bs-0-0-0")
        path, bottleneck = router.widest_path(a, a)
        assert path == [] and bottleneck == float("inf")


class TestHashingEcmpRouter:
    def test_consecutive_flows_spread_over_equal_cost_paths(self):
        from repro.network.routing import HashingEcmpRouter

        topo = build_fat_tree(k=4, num_clients=2)
        router = HashingEcmpRouter(topo)
        src = topo.node("bs-0-0-0")
        dst = topo.node("bs-3-1-1")
        num_paths = len(router.equal_cost_paths(src, dst))
        assert num_paths > 1
        chosen = {
            tuple(l.link_id for l in router.path_for_new_flow(src, dst))
            for _ in range(num_paths)
        }
        assert len(chosen) == num_paths

    def test_estimation_calls_do_not_skew_flow_paths(self):
        from repro.network.routing import HashingEcmpRouter

        topo = build_fat_tree(k=4, num_clients=2)
        src = topo.node("bs-0-0-0")
        dst = topo.node("bs-3-1-1")

        def first_two_flows(router):
            return [
                tuple(l.link_id for l in router.path_for_new_flow(src, dst))
                for _ in range(2)
            ]

        undisturbed = first_two_flows(HashingEcmpRouter(topo))
        router = HashingEcmpRouter(topo)
        # base_rtt/hop_count/path are estimation helpers and must be stateless
        router.base_rtt(src, dst)
        router.hop_count(src, dst)
        router.path(src, dst)
        assert first_two_flows(router) == undisturbed


class TestVlbRouter:
    def test_estimation_does_not_consume_rng(self):
        from repro.baselines.vlb import VlbRouter

        topo = build_fat_tree(k=4, num_clients=2)
        src = topo.node("bs-0-0-0")
        dst = topo.node("bs-3-1-1")

        def flow_paths(router, n=5):
            return [
                tuple(l.link_id for l in router.path_for_new_flow(src, dst))
                for _ in range(n)
            ]

        undisturbed = flow_paths(VlbRouter(topo, seed=4))
        router = VlbRouter(topo, seed=4)
        router.base_rtt(src, dst)  # must not draw from the VLB RNG
        assert flow_paths(router) == undisturbed

    def test_vlb_paths_are_valid_and_varied(self):
        from repro.baselines.vlb import VlbRouter

        topo = build_fat_tree(k=4, num_clients=2)
        router = VlbRouter(topo, seed=1)
        src = topo.node("bs-0-0-0")
        dst = topo.node("bs-3-1-1")
        paths = [router.path_for_new_flow(src, dst) for _ in range(8)]
        for path in paths:
            assert path[0].src.node_id == src.node_id
            assert path[-1].dst.node_id == dst.node_id
            # loop-free: no link repeated
            ids = [l.link_id for l in path]
            assert len(ids) == len(set(ids))
        assert len({tuple(l.link_id for l in p) for p in paths}) > 1
