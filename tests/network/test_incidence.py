"""Tests for the incrementally-maintained link×flow incidence cache."""

import pytest

from repro.network.flow import Flow
from repro.network.incidence import IncidenceCache
from repro.network.routing import Router
from repro.network.topology import Topology

MBPS = 1e6


def build_line(num_links=3, capacity=100 * MBPS):
    topo = Topology("line")
    nodes = [topo.add_switch(f"n{i}", level=1) for i in range(num_links + 1)]
    for a, b in zip(nodes, nodes[1:]):
        topo.add_duplex_link(a, b, capacity, 0.001)
    return topo, nodes


def flow_on(topo, src, dst, **kw):
    return Flow(src, dst, 1e9, Router(topo).path(src, dst), **kw)


class TestMembership:
    def test_add_and_remove_round_trip(self):
        topo, nodes = build_line(3)
        f1 = flow_on(topo, nodes[0], nodes[3])
        f2 = flow_on(topo, nodes[1], nodes[2])
        cache = IncidenceCache([f1, f2])
        assert len(cache) == 2
        assert f1 in cache and f2 in cache
        cache.remove_flow(f1)
        assert len(cache) == 1
        assert f1 not in cache

    def test_link_flows_map_matches_paths(self):
        topo, nodes = build_line(3)
        long = flow_on(topo, nodes[0], nodes[3])
        short = flow_on(topo, nodes[1], nodes[2])
        cache = IncidenceCache([long, short])
        mapping = cache.link_flows_map()
        for link in long.path:
            assert long in mapping[link.link_id]
        shared = short.path[0]
        assert mapping[shared.link_id] == [long, short]

    def test_remove_drops_empty_links(self):
        topo, nodes = build_line(3)
        f = flow_on(topo, nodes[0], nodes[3])
        cache = IncidenceCache([f])
        assert len(cache.links) == 3
        cache.remove_flow(f)
        assert cache.links == []
        assert cache.link_flows_map() == {}

    def test_duplicate_add_is_idempotent(self):
        topo, nodes = build_line(1)
        f = flow_on(topo, nodes[0], nodes[1])
        cache = IncidenceCache([f])
        epoch = cache.epoch
        cache.add_flow(f)
        assert len(cache) == 1
        assert cache.epoch == epoch
        assert cache.link_flows_map()[f.path[0].link_id] == [f]

    def test_remove_unknown_flow_is_a_noop(self):
        topo, nodes = build_line(1)
        f = flow_on(topo, nodes[0], nodes[1])
        cache = IncidenceCache()
        epoch = cache.epoch
        cache.remove_flow(f)
        assert cache.epoch == epoch


class TestEpochAndCaching:
    def test_epoch_bumps_on_mutation(self):
        topo, nodes = build_line(1)
        f = flow_on(topo, nodes[0], nodes[1])
        cache = IncidenceCache()
        e0 = cache.epoch
        cache.add_flow(f)
        e1 = cache.epoch
        assert e1 > e0
        cache.remove_flow(f)
        assert cache.epoch > e1

    def test_map_is_cached_per_epoch(self):
        topo, nodes = build_line(2)
        f = flow_on(topo, nodes[0], nodes[2])
        cache = IncidenceCache([f])
        assert cache.link_flows_map() is cache.link_flows_map()
        g = flow_on(topo, nodes[0], nodes[1])
        first = cache.link_flows_map()
        cache.add_flow(g)
        assert cache.link_flows_map() is not first

    def test_arrays_are_cached_per_epoch(self):
        topo, nodes = build_line(2)
        f = flow_on(topo, nodes[0], nodes[2])
        cache = IncidenceCache([f])
        assert cache.arrays() is cache.arrays()
        cache.add_flow(flow_on(topo, nodes[0], nodes[1]))
        arrays = cache.arrays()
        assert arrays.num_flows == 2

    def test_arrays_structure(self):
        topo, nodes = build_line(3)
        long = flow_on(topo, nodes[0], nodes[3])
        short = flow_on(topo, nodes[1], nodes[2])
        cache = IncidenceCache([long, short])
        arrays = cache.arrays()
        assert arrays.num_flows == 2
        assert arrays.num_links == 3
        # Flow-major pairs: 3 links of the long flow then 1 of the short.
        assert list(arrays.pair_flow) == [0, 0, 0, 1]
        assert len(arrays.pair_link) == 4
        # The short flow rides the long flow's middle link.
        assert arrays.pair_link[3] == arrays.pair_link[1]


class TestRunRoundIntegration:
    def test_scda_run_round_accepts_incidence_cache(self):
        """run_round takes the fabric's cache directly (controller's hot path)."""
        from repro.core.maxmin import ScdaTree
        from repro.network.tree import TreeTopologyConfig, build_tree_topology

        topo = build_tree_topology(TreeTopologyConfig())
        tree = ScdaTree(topo)
        router = Router(topo)
        hosts, clients = topo.hosts(), topo.clients()
        f = Flow(clients[0], hosts[0], 1e9, router.path(clients[0], hosts[0]))
        cache = IncidenceCache([f])
        tree.run_round(cache, now=0.0)
        assert tree.rounds_completed == 1
        dict_tree = ScdaTree(build_tree_topology(TreeTopologyConfig()))
        dict_tree.run_round(cache.link_flows_map(), now=0.0)
        assert dict_tree.rounds_completed == 1


class TestMatches:
    def test_matches_exact_set(self):
        topo, nodes = build_line(2)
        f1 = flow_on(topo, nodes[0], nodes[2])
        f2 = flow_on(topo, nodes[0], nodes[1])
        cache = IncidenceCache([f1, f2])
        assert cache.matches([f1, f2])
        assert cache.matches([f2, f1])  # order-insensitive
        assert not cache.matches([f1])
        assert not cache.matches([f1, f2, flow_on(topo, nodes[1], nodes[2])])

    def test_matches_detects_path_change(self):
        topo, nodes = build_line(3)
        f = flow_on(topo, nodes[0], nodes[3])
        cache = IncidenceCache([f])
        f.path = f.path[:1]  # rerouted outside the cache's knowledge
        assert not cache.matches([f])

    def test_matches_detects_equal_length_reroute(self):
        # An ECMP-style reroute keeps the hop count; the guard must still see it.
        topo, nodes = build_line(3)
        f = flow_on(topo, nodes[0], nodes[3])
        reverse = flow_on(topo, nodes[3], nodes[0])
        cache = IncidenceCache([f])
        assert len(reverse.path) == len(f.path)
        f.path = list(reverse.path)  # same length, different links
        assert not cache.matches([f])
