"""Tests for the incremental (delta) water-filler.

The contract under test is the PR 1 equivalence invariant extended to the
third backend: after any sequence of churn — flow arrivals, departures,
weight changes, demand-cap changes, capacity scales and overrides — the
incremental solver must agree with both full backends to 1e-9 on every flow,
while actually solving incrementally (small dirty regions) on sparse churn
and falling back to a full solve when the dirty region grows too large or
the cache cannot vouch for the flow list.
"""

import numpy as np
import pytest

from repro.network.flow import Flow
from repro.network.fluid import max_min_shares
from repro.network.fluid_fast import MAX_DIRTY_FRACTION, DeltaWaterFiller
from repro.network.incidence import IncidenceCache
from repro.network.routing import Router
from repro.network.topology import Topology

MBPS = 1e6


def build_line(num_links, capacities):
    topo = Topology("line")
    nodes = [topo.add_switch(f"n{i}", level=1) for i in range(num_links + 1)]
    for (a, b), cap in zip(zip(nodes, nodes[1:]), capacities):
        topo.add_duplex_link(a, b, cap, 0.001)
    return topo, nodes


class ChurningScenario:
    """A line-topology flow population under scripted random churn."""

    def __init__(self, seed, num_links=6):
        self.rng = np.random.default_rng(seed)
        capacities = self.rng.uniform(10 * MBPS, 200 * MBPS, size=num_links)
        self.num_links = num_links
        self.topo, self.nodes = build_line(num_links, capacities)
        self.router = Router(self.topo)
        self.flows = []
        self.caps = {}
        self.weights = {}
        for _ in range(int(self.rng.integers(5, 30))):
            self._add_flow()
        self.cache = IncidenceCache(self.flows)
        self.delta = DeltaWaterFiller.attach(self.cache)

    def _make_flow(self):
        rng = self.rng
        i = int(rng.integers(0, self.num_links))
        j = int(rng.integers(i + 1, self.num_links + 1))
        kw = {}
        if rng.random() < 0.4:
            kw["priority_weight"] = float(rng.uniform(0.25, 4.0))
        if rng.random() < 0.3:
            kw["app_limit_bps"] = float(rng.uniform(1 * MBPS, 150 * MBPS))
        if rng.random() < 0.25:
            # Aggregate flows: one row standing in for up to a few thousand
            # sessions, exercising the multiplicity-weighted solver paths.
            kw["multiplicity"] = int(rng.integers(2, 5000))
        src, dst = self.nodes[i], self.nodes[j]
        return Flow(src, dst, 1e9, self.router.path(src, dst), **kw)

    def _add_flow(self):
        flow = self._make_flow()
        self.flows.append(flow)
        r = self.rng.random()
        if r < 0.3:
            self.caps[flow.flow_id] = float(self.rng.uniform(0.5 * MBPS, 150 * MBPS))
        elif r < 0.35:
            self.caps[flow.flow_id] = 0.0
        if self.rng.random() < 0.2:
            self.weights[flow.flow_id] = float(self.rng.uniform(0.5, 3.0))
        return flow

    def churn(self):
        """One random churn event against flows, caps and weights."""
        rng = self.rng
        move = rng.random()
        if move < 0.35 or not self.flows:
            flow = self._add_flow()
            self.cache.add_flow(flow)
        elif move < 0.6:
            victim = self.flows.pop(int(rng.integers(0, len(self.flows))))
            self.cache.remove_flow(victim)
            self.caps.pop(victim.flow_id, None)
            self.weights.pop(victim.flow_id, None)
        elif move < 0.8:
            flow = self.flows[int(rng.integers(0, len(self.flows)))]
            self.caps[flow.flow_id] = float(rng.uniform(0.0, 150 * MBPS))
        else:
            flow = self.flows[int(rng.integers(0, len(self.flows)))]
            self.weights[flow.flow_id] = float(rng.uniform(0.5, 3.0))


def assert_allocations_close(a, b, rel=1e-9):
    assert a.keys() == b.keys()
    for flow_id in a:
        tol = rel * max(1.0, abs(a[flow_id]))
        assert abs(a[flow_id] - b[flow_id]) <= tol, (
            f"flow {flow_id}: {a[flow_id]!r} vs {b[flow_id]!r}"
        )


class TestThreeWayChurnEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_churn_agrees_with_both_full_backends(self, seed):
        scenario = ChurningScenario(seed)
        for _ in range(25):
            scenario.churn()
            inc = max_min_shares(
                scenario.flows,
                demand_caps=scenario.caps,
                weights=scenario.weights,
                solver="incremental",
                cache=scenario.cache,
            )
            py = max_min_shares(
                scenario.flows,
                demand_caps=scenario.caps,
                weights=scenario.weights,
                solver="python",
            )
            np_ = max_min_shares(
                scenario.flows,
                demand_caps=scenario.caps,
                weights=scenario.weights,
                solver="numpy",
            )
            assert_allocations_close(inc, py)
            assert_allocations_close(inc, np_)

    @pytest.mark.parametrize("seed", range(4))
    def test_capacity_scale_and_overrides_agree(self, seed):
        scenario = ChurningScenario(seed + 100)
        rng = scenario.rng
        all_links = [l.link_id for l in scenario.topo.links]
        for _ in range(12):
            scenario.churn()
            scale = float(rng.uniform(0.3, 1.5))
            overrides = {}
            for link_id in all_links:
                if rng.random() < 0.3:
                    overrides[link_id] = float(rng.uniform(5 * MBPS, 100 * MBPS))
            kwargs = dict(
                demand_caps=scenario.caps,
                weights=scenario.weights,
                capacity_scale=scale,
                capacity_overrides=overrides,
            )
            inc = max_min_shares(
                scenario.flows, solver="incremental", cache=scenario.cache, **kwargs
            )
            py = max_min_shares(scenario.flows, solver="python", **kwargs)
            assert_allocations_close(inc, py)

    def test_sparse_churn_actually_solves_incrementally(self):
        scenario = ChurningScenario(7, num_links=12)
        # Steady state first (the cold start is a full solve)...
        max_min_shares(scenario.flows, solver="incremental", cache=scenario.cache)
        full_before = scenario.delta.solves_full
        # ...then single-flow churn events must take the incremental path.
        for _ in range(10):
            flow = scenario._make_flow()
            scenario.flows.append(flow)
            scenario.cache.add_flow(flow)
            max_min_shares(scenario.flows, solver="incremental", cache=scenario.cache)
        assert scenario.delta.solves_incremental >= 10
        assert scenario.delta.solves_full == full_before
        # On a line topology every flow is transitively coupled, so the
        # dirty component may cover the whole population — but never more.
        assert scenario.delta.dirty_rows_max <= len(scenario.flows)

    def test_disjoint_components_keep_dirty_regions_local(self):
        """Churn in one island must not drag the other islands into the solve."""
        topo = Topology("islands")
        pairs = []
        for i in range(8):
            a = topo.add_switch(f"a{i}", level=1)
            b = topo.add_switch(f"b{i}", level=1)
            topo.add_duplex_link(a, b, 100 * MBPS, 0.001)
            pairs.append((a, b))
        router = Router(topo)
        flows = []
        for a, b in pairs:
            flows.extend(Flow(a, b, 1e9, router.path(a, b)) for _ in range(4))
        cache = IncidenceCache(flows)
        delta = DeltaWaterFiller.attach(cache)
        max_min_shares(flows, solver="incremental", cache=cache)

        a, b = pairs[0]
        flow = Flow(a, b, 1e9, router.path(a, b))
        flows.append(flow)
        cache.add_flow(flow)
        inc = max_min_shares(flows, solver="incremental", cache=cache)
        assert delta.solves_incremental >= 1
        assert delta.dirty_rows_max <= 5  # island 0's four flows + the arrival
        assert_allocations_close(inc, max_min_shares(flows, solver="python"))

    def test_unchanged_problem_is_a_noop(self):
        scenario = ChurningScenario(11)
        first = max_min_shares(
            scenario.flows, solver="incremental", cache=scenario.cache
        )
        again = max_min_shares(
            scenario.flows, solver="incremental", cache=scenario.cache
        )
        assert first == again
        assert scenario.delta.solves_noop >= 1


class TestFallbacks:
    def test_large_dirty_region_falls_back_to_full_solve(self):
        scenario = ChurningScenario(3)
        max_min_shares(scenario.flows, solver="incremental", cache=scenario.cache)
        # Churn far more than MAX_DIRTY_FRACTION of the population at once
        # (also beyond the 64-row floor below which small problems never
        # bother falling back).
        n_churn = max(200, int(len(scenario.flows) * (MAX_DIRTY_FRACTION + 0.5)))
        for _ in range(n_churn):
            flow = scenario._make_flow()
            scenario.flows.append(flow)
            scenario.cache.add_flow(flow)
        before = scenario.delta.fallback_large_region + scenario.delta.solves_full
        inc = max_min_shares(
            scenario.flows, solver="incremental", cache=scenario.cache
        )
        after = scenario.delta.fallback_large_region + scenario.delta.solves_full
        assert after > before
        py = max_min_shares(scenario.flows, solver="python")
        assert_allocations_close(inc, py)

    def test_uncovered_flow_list_degrades_to_legacy_solve(self):
        scenario = ChurningScenario(5)
        max_min_shares(scenario.flows, solver="incremental", cache=scenario.cache)
        stray = scenario._make_flow()  # never added to the cache
        flows = scenario.flows + [stray]
        inc = max_min_shares(flows, solver="incremental", cache=scenario.cache)
        assert scenario.delta.fallback_stale >= 1
        py = max_min_shares(flows, solver="python")
        assert_allocations_close(inc, py)

    def test_auto_solver_uses_delta_on_large_cached_populations(self):
        from repro.network.fluid import AUTO_NUMPY_MIN_FLOWS

        scenario = ChurningScenario(9)
        while len(scenario.flows) < AUTO_NUMPY_MIN_FLOWS:
            flow = scenario._make_flow()
            scenario.flows.append(flow)
            scenario.cache.add_flow(flow)
        before = scenario.delta.solves_full + scenario.delta.solves_incremental
        max_min_shares(scenario.flows, solver="auto", cache=scenario.cache)
        assert scenario.delta.solves_full + scenario.delta.solves_incremental > before


class TestAggregateEquivalence:
    """Aggregate(N) ≡ N discrete flows, on rates and on completion times.

    The tentpole invariant: a multiplicity-N flow must receive exactly N
    times the rate a single session would get in a population of N discrete
    clones, in every solver backend, and its sessions must finish at the
    same instant the discrete sessions would.
    """

    def _mirror_populations(self, seed, n_specs=6):
        """Two flow sets over one line topology: aggregates and their clones."""
        rng = np.random.default_rng(seed)
        num_links = 5
        capacities = rng.uniform(20 * MBPS, 200 * MBPS, size=num_links)
        topo, nodes = build_line(num_links, capacities)
        router = Router(topo)
        aggregates, discretes = [], []
        for _ in range(n_specs):
            i = int(rng.integers(0, num_links))
            j = int(rng.integers(i + 1, num_links + 1))
            src, dst = nodes[i], nodes[j]
            path = router.path(src, dst)
            n = int(rng.integers(1, 40))
            weight = float(rng.uniform(0.25, 4.0))
            kw = {"priority_weight": weight}
            if rng.random() < 0.4:
                kw["app_limit_bps"] = float(rng.uniform(1 * MBPS, 50 * MBPS))
            aggregates.append(Flow(src, dst, 1e9, path, multiplicity=n, **kw))
            discretes.append([Flow(src, dst, 1e9, path, **kw) for _ in range(n)])
        return aggregates, discretes

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("solver", ["python", "numpy", "incremental"])
    def test_aggregate_rate_is_n_times_the_discrete_session_rate(self, seed, solver):
        aggregates, discretes = self._mirror_populations(seed)
        flat = [f for clones in discretes for f in clones]

        kwargs = {}
        if solver == "incremental":
            agg_cache = IncidenceCache(aggregates)
            DeltaWaterFiller.attach(agg_cache)
            agg = max_min_shares(aggregates, solver=solver, cache=agg_cache)
            disc_cache = IncidenceCache(flat)
            DeltaWaterFiller.attach(disc_cache)
            disc = max_min_shares(flat, solver=solver, cache=disc_cache)
        else:
            agg = max_min_shares(aggregates, solver=solver, **kwargs)
            disc = max_min_shares(flat, solver=solver, **kwargs)

        for aflow, clones in zip(aggregates, discretes):
            per_session = agg[aflow.flow_id] / aflow.multiplicity
            for clone in clones:
                expected = disc[clone.flow_id]
                tol = 1e-9 * max(1.0, abs(expected))
                assert abs(per_session - expected) <= tol, (
                    f"mult={aflow.multiplicity}: per-session {per_session!r} "
                    f"vs discrete {expected!r} ({solver})"
                )

    @pytest.mark.parametrize("seed", range(3))
    def test_explicit_weight_overrides_stay_per_session(self, seed):
        """A runtime weights dict entry is per-session: × multiplicity inside."""
        aggregates, discretes = self._mirror_populations(seed + 50, n_specs=4)
        flat = [f for clones in discretes for f in clones]
        rng = np.random.default_rng(seed + 999)
        agg_weights, disc_weights = {}, {}
        for aflow, clones in zip(aggregates, discretes):
            if rng.random() < 0.6:
                w = float(rng.uniform(0.5, 3.0))
                agg_weights[aflow.flow_id] = w
                for clone in clones:
                    disc_weights[clone.flow_id] = w
        agg = max_min_shares(aggregates, weights=agg_weights, solver="python")
        disc = max_min_shares(flat, weights=disc_weights, solver="python")
        np_agg = max_min_shares(aggregates, weights=agg_weights, solver="numpy")
        assert_allocations_close(agg, np_agg)
        for aflow, clones in zip(aggregates, discretes):
            per_session = agg[aflow.flow_id] / aflow.multiplicity
            for clone in clones:
                tol = 1e-9 * max(1.0, abs(disc[clone.flow_id]))
                assert abs(per_session - disc[clone.flow_id]) <= tol

    def test_aggregate_fct_matches_n_discrete_sessions(self):
        """One aggregate upload finishes exactly when its N clones would."""
        from repro.network.fabric import FabricSimulator
        from repro.network.transport import IdealMaxMinTransport
        from repro.sim.engine import Simulator

        n = 25
        size = 40e6

        def run(multiplicities):
            rng = np.random.default_rng(123)
            capacities = rng.uniform(50 * MBPS, 150 * MBPS, size=4)
            topo, nodes = build_line(4, capacities)
            sim = Simulator()
            fabric = FabricSimulator(sim, topo, IdealMaxMinTransport())
            finished = {}
            fabric.on_flow_finished(lambda f, now: finished.setdefault(f.flow_id, now))
            flows = [
                fabric.start_flow(nodes[0], nodes[4], size, multiplicity=m)
                for m in multiplicities
            ]
            # A competing cross flow so rates change mid-transfer.
            fabric.start_flow(nodes[1], nodes[3], size / 2.0)
            fabric.drain()
            return [finished[f.flow_id] for f in flows]

        (agg_fct,) = set(run([n]))
        discrete_fcts = run([1] * n)
        for fct in discrete_fcts:
            assert fct == pytest.approx(agg_fct, rel=1e-9)

    def test_multiplicity_one_is_bit_identical_to_default(self):
        """multiplicity=1 must take the exact historical code path."""
        rng = np.random.default_rng(21)
        capacities = rng.uniform(20 * MBPS, 200 * MBPS, size=5)
        topo, nodes = build_line(5, capacities)
        router = Router(topo)

        def population(**extra):
            flows = []
            for i in range(12):
                src, dst = nodes[i % 5], nodes[5 - (i % 3)]
                if src is dst:
                    dst = nodes[0]
                flows.append(
                    Flow(
                        src,
                        dst,
                        1e9,
                        router.path(src, dst),
                        priority_weight=1.0 + (i % 4) * 0.5,
                        **extra,
                    )
                )
            return flows

        base = max_min_shares(population(), solver="numpy")
        ones = max_min_shares(population(multiplicity=1), solver="numpy")
        assert sorted(base.values()) == sorted(ones.values())


class TestIncidenceTableCompaction:
    def test_tombstones_compact_and_results_stay_correct(self):
        from repro.network.incidence import _COMPACT_MIN_DEAD_PAIRS

        rng = np.random.default_rng(17)
        capacities = rng.uniform(50 * MBPS, 100 * MBPS, size=4)
        topo, nodes = build_line(4, capacities)
        router = Router(topo)

        def make_flow():
            return Flow(nodes[0], nodes[4], 1e9, router.path(nodes[0], nodes[4]))

        flows = [make_flow() for _ in range(64)]
        cache = IncidenceCache(flows)
        delta = DeltaWaterFiller.attach(cache)
        max_min_shares(flows, solver="incremental", cache=cache)

        # Each flow crosses 4 links; retire/admit until the dead-pair count
        # crosses the compaction threshold several times over.
        events = _COMPACT_MIN_DEAD_PAIRS // 2 + 200
        for _ in range(events):
            victim = flows.pop(int(rng.integers(0, len(flows))))
            cache.remove_flow(victim)
            flows.append(make_flow())
            cache.add_flow(flows[-1])
        inc = max_min_shares(flows, solver="incremental", cache=cache)

        stats = delta.stats()
        assert stats["table_compactions"] >= 1
        assert stats["table_dead_pairs"] < _COMPACT_MIN_DEAD_PAIRS
        py = max_min_shares(flows, solver="python")
        assert_allocations_close(inc, py)
