"""Tests for the dynamics event model and the DYNAMICS registry."""

import pytest

from repro.dynamics import (
    BlockServerChurnEvent,
    CapacityDegradationEvent,
    DynamicsError,
    LinkFailureEvent,
    LinkRecoveryEvent,
    WorkloadSurgeEvent,
    build_event,
)
from repro.dynamics.script import event_to_dict
from repro.network.tree import TreeTopologyConfig, build_tree_topology
from repro.registry import ALL_REGISTRIES, DYNAMICS, RegistryError
from repro.sim.random import derive_seed


class TestRegistry:
    def test_builtin_events_registered(self):
        names = DYNAMICS.names()
        for kind in (
            "link-failure",
            "link-recovery",
            "capacity-degradation",
            "block-server-churn",
            "workload-surge",
        ):
            assert kind in names

    def test_dynamics_is_a_top_level_registry(self):
        sections = [name for name, _ in ALL_REGISTRIES]
        assert "dynamics" in sections
        assert "analyses" in sections  # PR 5 added the seventh registry
        assert len(sections) == 7

    def test_aliases_resolve(self):
        assert DYNAMICS.get("surge").name == "workload-surge"
        assert DYNAMICS.get("brownout").name == "capacity-degradation"

    def test_unknown_kind_lists_available(self):
        with pytest.raises(RegistryError, match="link-failure"):
            build_event({"kind": "link-implosion", "at_s": 1.0})

    def test_unknown_parameter_lists_fields(self):
        with pytest.raises(RegistryError, match="at_s"):
            build_event({"kind": "link-failure", "when": 1.0})


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(DynamicsError):
            LinkFailureEvent(at_s=-1.0, select="host-uplink")

    def test_link_event_needs_exactly_one_selection(self):
        with pytest.raises(DynamicsError):
            LinkFailureEvent(at_s=1.0)
        with pytest.raises(DynamicsError):
            LinkFailureEvent(at_s=1.0, link_id="l", select="host-uplink")
        with pytest.raises(DynamicsError):
            LinkFailureEvent(at_s=1.0, src="a")  # dst missing

    def test_unknown_selector_rejected(self):
        with pytest.raises(DynamicsError, match="selector"):
            LinkFailureEvent(at_s=1.0, select="host-downlink")

    def test_capacity_factor_must_be_positive(self):
        with pytest.raises(DynamicsError):
            CapacityDegradationEvent(at_s=1.0, select="host-uplink", factor=0.0)

    def test_churn_action_validated(self):
        with pytest.raises(DynamicsError):
            BlockServerChurnEvent(at_s=1.0, action="explode")
        with pytest.raises(DynamicsError):
            BlockServerChurnEvent(at_s=1.0, action="rejoin", rejoin_after_s=2.0)

    def test_surge_flow_kind_validated(self):
        with pytest.raises(DynamicsError):
            WorkloadSurgeEvent(at_s=1.0, flow_kind="quantum")

    def test_surge_multiplicity_validated(self):
        with pytest.raises(DynamicsError):
            WorkloadSurgeEvent(at_s=1.0, multiplicity=0)
        with pytest.raises(DynamicsError):
            WorkloadSurgeEvent(at_s=1.0, multiplicity=-7)


class TestLinkSelection:
    @pytest.fixture
    def tree(self):
        return build_tree_topology(
            TreeTopologyConfig(num_agg=1, racks_per_agg=2, hosts_per_rack=2, num_clients=2)
        )

    def test_host_uplink_duplex_selects_both_directions(self, tree):
        event = LinkFailureEvent(at_s=1.0, select="host-uplink", index=0)
        links = event.resolve_links(tree)
        host = tree.hosts()[0]
        assert len(links) == 2
        assert {l.src.node_id for l in links} | {l.dst.node_id for l in links} >= {host.node_id}

    def test_host_uplink_simplex(self, tree):
        event = LinkFailureEvent(at_s=1.0, select="host-uplink", index=0, duplex=False)
        links = event.resolve_links(tree)
        assert len(links) == 1
        assert links[0].src.node_id == tree.hosts()[0].node_id

    def test_switch_uplink_skips_the_core(self, tree):
        event = LinkFailureEvent(at_s=1.0, select="switch-uplink", index=0)
        links = event.resolve_links(tree)
        # The core has no uplink, so the selector lands on a lower switch.
        assert all("core" not in (l.src.node_id, l.dst.node_id) or True for l in links)
        assert links[0].src.kind.value == "switch"

    def test_src_dst_selection(self, tree):
        host = tree.hosts()[0]
        tor = tree.parent(host)
        event = LinkRecoveryEvent(at_s=1.0, src=host.node_id, dst=tor.node_id)
        links = event.resolve_links(tree)
        assert {(l.src.node_id, l.dst.node_id) for l in links} == {
            (host.node_id, tor.node_id),
            (tor.node_id, host.node_id),
        }

    def test_link_id_selection(self, tree):
        link = tree.links[0]
        event = LinkFailureEvent(at_s=1.0, link_id=link.link_id)
        assert event.resolve_links(tree) == [link]

    def test_missing_link_id_raises(self, tree):
        with pytest.raises(DynamicsError):
            LinkFailureEvent(at_s=1.0, link_id="nope").resolve_links(tree)

    def test_unknown_src_dst_raises_dynamics_error(self, tree):
        """A typo'd node name must surface as DynamicsError, not a raw
        KeyError from inside a simulator callback."""
        with pytest.raises(DynamicsError, match="no link"):
            LinkFailureEvent(at_s=1.0, src="leaf9", dst="spine0").resolve_links(tree)
        host = tree.hosts()[0].node_id
        other = tree.hosts()[1].node_id
        with pytest.raises(DynamicsError, match="no link"):
            # Both nodes exist but are not adjacent.
            LinkFailureEvent(at_s=1.0, src=host, dst=other).resolve_links(tree)


class TestTimedCapacityRestore:
    def test_expiry_does_not_clobber_a_later_capacity_change(self):
        from repro.dynamics import DynamicsRuntime, DynamicsScript
        from repro.network.fabric import FabricSimulator
        from repro.network.transport.ideal import IdealMaxMinTransport
        from repro.sim.engine import Simulator

        topology = build_tree_topology(
            TreeTopologyConfig(num_agg=1, racks_per_agg=1, hosts_per_rack=2,
                               num_clients=1)
        )
        link = topology.uplink_of(topology.hosts()[0])
        sim = Simulator()
        fabric = FabricSimulator(sim, topology, IdealMaxMinTransport())
        runtime = DynamicsRuntime(sim=sim, topology=topology, fabric=fabric, seed=1)
        script = DynamicsScript.from_list([
            {"kind": "capacity-degradation", "at_s": 0.0, "link_id": link.link_id,
             "factor": 0.5, "duration_s": 1.0},
        ])
        script.arm(runtime)
        sim.run(until=0.5)
        assert link.capacity_bps == pytest.approx(link.nominal_capacity_bps * 0.5)
        # Another actor degrades further before the brown-out expires...
        fabric.set_link_capacity(link, link.nominal_capacity_bps * 0.2)
        sim.run(until=2.0)
        # ...and the expiry must not override that newer intent.
        assert link.capacity_bps == pytest.approx(link.nominal_capacity_bps * 0.2)


class TestJitter:
    def test_fire_time_without_jitter_is_exact(self):
        event = LinkFailureEvent(at_s=2.5, select="host-uplink")
        assert event.fire_time(seed=7, index=0) == 2.5

    def test_jitter_is_pinned_by_seed_and_identity(self):
        event = LinkFailureEvent(at_s=2.0, jitter_s=0.5, select="host-uplink")
        a = event.fire_time(seed=7, index=0)
        b = event.fire_time(seed=7, index=0)
        assert a == b
        assert 2.0 <= a <= 2.5
        # Different identity (index) or seed moves the draw.
        assert event.fire_time(seed=7, index=1) != a
        assert event.fire_time(seed=8, index=0) != a

    def test_jitter_namespace_is_the_documented_derive_seed_chain(self):
        """The jitter stream seed is pinned: derive_seed(seed, "dynamics",
        "jitter", f"{index}:{kind}") — a change would silently break stored
        result reproducibility."""
        from repro.sim.random import RandomStreams

        event = LinkFailureEvent(at_s=1.0, jitter_s=1.0, select="host-uplink")
        streams = RandomStreams(derive_seed(42, "dynamics", "jitter", "3:link-failure"))
        expected = 1.0 + streams.uniform("jitter", 0.0, 1.0)
        assert event.fire_time(seed=42, index=3) == expected


class TestRoundTrip:
    def test_every_builtin_round_trips(self):
        events = [
            LinkFailureEvent(at_s=1.0, select="host-uplink", index=2),
            LinkRecoveryEvent(at_s=2.0, src="a", dst="b", duplex=False),
            CapacityDegradationEvent(at_s=0.5, select="switch-uplink", factor=0.25,
                                     duration_s=1.0),
            BlockServerChurnEvent(at_s=1.5, index=1, rejoin_after_s=2.0),
            WorkloadSurgeEvent(at_s=3.0, duration_s=0.5, arrival_rate_per_s=10.0),
            WorkloadSurgeEvent(
                at_s=4.0, arrival_rate_per_s=5.0, multiplicity=1000, tenant="crowd"
            ),
        ]
        for event in events:
            data = event_to_dict(event)
            clone = build_event(data)
            assert clone == event
            assert event_to_dict(clone) == data
