"""Tests for DynamicsScript serialisation and scheduling."""

import json

import pytest

from repro.dynamics import DynamicsError, DynamicsRuntime, DynamicsScript
from repro.network.fabric import FabricSimulator
from repro.network.transport.ideal import IdealMaxMinTransport
from repro.network.tree import TreeTopologyConfig, build_tree_topology
from repro.sim.engine import Simulator

EVENTS = [
    {"kind": "link-failure", "at_s": 1.0, "select": "host-uplink", "index": 0},
    {"kind": "link-recovery", "at_s": 2.0, "select": "host-uplink", "index": 0},
]


class TestSerialisation:
    def test_list_round_trip(self):
        script = DynamicsScript.from_list(EVENTS)
        assert len(script) == 2
        clone = DynamicsScript.from_list(script.to_list())
        assert clone.to_list() == script.to_list()

    def test_json_round_trip_object_form(self):
        script = DynamicsScript.from_list(EVENTS)
        clone = DynamicsScript.from_json(script.to_json())
        assert clone.to_list() == script.to_list()

    def test_json_accepts_bare_list(self):
        script = DynamicsScript.from_json(json.dumps(EVENTS))
        assert len(script) == 2

    def test_json_object_without_events_rejected(self):
        with pytest.raises(DynamicsError):
            DynamicsScript.from_json('{"something": []}')

    def test_event_without_kind_rejected(self):
        with pytest.raises(DynamicsError):
            DynamicsScript.from_list([{"at_s": 1.0}])

    def test_mapping_instead_of_list_rejected(self):
        with pytest.raises(DynamicsError):
            DynamicsScript.from_list({"kind": "link-failure"})

    def test_save_load(self, tmp_path):
        script = DynamicsScript.from_list(EVENTS)
        path = script.save(tmp_path / "script.json")
        loaded = DynamicsScript.load(path)
        assert loaded.to_list() == script.to_list()

    def test_noop(self):
        assert DynamicsScript().is_noop
        assert not DynamicsScript.from_list(EVENTS).is_noop


class TestArming:
    def test_arm_schedules_and_fires_in_order(self):
        topology = build_tree_topology(
            TreeTopologyConfig(num_agg=1, racks_per_agg=1, hosts_per_rack=2, num_clients=1)
        )
        sim = Simulator()
        fabric = FabricSimulator(sim, topology, IdealMaxMinTransport())
        runtime = DynamicsRuntime(sim=sim, topology=topology, fabric=fabric, seed=1)
        script = DynamicsScript.from_list(EVENTS)
        assert script.arm(runtime) == 2

        host = topology.hosts()[0]
        uplink = topology.uplink_of(host)
        sim.run(until=1.5)
        assert not uplink.up
        assert fabric.links_down == 2  # duplex pair
        sim.run(until=2.5)
        assert uplink.up
        assert fabric.links_down == 0
        assert fabric.link_failures == 2
        assert fabric.link_recoveries == 2
