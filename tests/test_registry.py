"""Tests for the plugin-registry subsystem."""

import pytest

from repro.registry import (
    PLACEMENTS,
    Registry,
    RegistryError,
    SCHEMES,
    TOPOLOGIES,
    TRANSPORTS,
    WORKLOADS,
)


class TestRegistryCore:
    def test_register_and_build(self):
        reg = Registry("thing")
        reg.register("one", lambda: 1)
        assert reg.build("one") == 1
        assert "one" in reg
        assert reg.names() == ["one"]

    def test_decorator_registration(self):
        reg = Registry("thing")

        @reg.register("two", description="the number two")
        def make_two():
            return 2

        assert reg.build("two") == 2
        assert reg.get("two").description == "the number two"
        assert make_two() == 2  # the decorator returns the function unchanged

    def test_duplicate_name_raises(self):
        reg = Registry("thing")
        reg.register("dup", lambda: 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("dup", lambda: 2)
        # replace=True is the explicit escape hatch
        reg.register("dup", lambda: 3, replace=True)
        assert reg.build("dup") == 3

    def test_duplicate_alias_raises(self):
        reg = Registry("thing")
        reg.register("a", lambda: 1, aliases=("alpha",))
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("alpha", lambda: 2)
        with pytest.raises(RegistryError, match="collides"):
            reg.register("b", lambda: 2, aliases=("alpha",))

    def test_failed_registration_leaves_registry_untouched(self):
        reg = Registry("thing")
        reg.register("a", lambda: 1, aliases=("x",))
        with pytest.raises(RegistryError, match="collides"):
            reg.register("b", lambda: 2, aliases=("x",))
        assert reg.names() == ["a"]
        assert "b" not in reg
        # a corrected registration of the same name now succeeds
        reg.register("b", lambda: 2)
        assert reg.build("b") == 2

    def test_failed_bootstrap_is_retried_not_latched(self):
        calls = []

        def flaky_bootstrap():
            calls.append(1)
            if len(calls) == 1:
                raise ImportError("catalog import exploded")
            reg.register("builtin", lambda: 1)

        reg = Registry("thing", bootstrap=flaky_bootstrap)
        with pytest.raises(ImportError, match="exploded"):
            reg.names()
        # The next touch retries the bootstrap instead of reporting empty.
        assert reg.names() == ["builtin"]
        assert len(calls) == 2

    def test_register_bootstraps_builtins_first(self):
        """Import-time registrations must see the built-ins, so the duplicate
        check is meaningful and replace=True actually overrides."""
        reg = Registry("thing", bootstrap=lambda: reg.register("builtin", lambda: 1))
        with pytest.raises(RegistryError, match="already registered"):
            reg.register("builtin", lambda: 2)
        reg.register("builtin", lambda: 3, replace=True)
        assert reg.build("builtin") == 3
        assert reg.names() == ["builtin"]

    def test_replace_drops_the_old_aliases(self):
        reg = Registry("thing")
        reg.register("a", lambda: 1, aliases=("old",))
        reg.register("a", lambda: 2, replace=True)
        with pytest.raises(RegistryError, match="unknown thing 'old'"):
            reg.get("old")
        # the reclaimed alias is free for another plugin
        reg.register("fresh", lambda: 3, aliases=("old",))
        assert reg.build("old") == 3

    def test_unknown_key_lists_alternatives(self):
        reg = Registry("gadget")
        reg.register("left", lambda: 1)
        reg.register("right", lambda: 2)
        with pytest.raises(RegistryError) as excinfo:
            reg.get("middle")
        message = str(excinfo.value)
        assert "unknown gadget 'middle'" in message
        assert "available: left, right" in message

    def test_unknown_key_suggests_close_match(self):
        reg = Registry("gadget")
        reg.register("fattree", lambda: 1)
        with pytest.raises(RegistryError, match="did you mean 'fattree'"):
            reg.get("fattre")

    def test_names_are_normalised(self):
        reg = Registry("thing")
        reg.register("Fat_Tree", lambda: 1)
        assert reg.names() == ["fat-tree"]
        assert reg.get("FAT_TREE").name == "fat-tree"
        assert reg.get("fat-tree").builder() == 1

    def test_alias_resolves_to_canonical_entry(self):
        reg = Registry("thing")
        reg.register("canonical", lambda: 42, aliases=("nickname",))
        assert reg.get("nickname").name == "canonical"
        assert reg.build("nickname") == 42


class TestMakeConfig:
    def test_builds_config_dataclass(self):
        from repro.network.tree import TreeTopologyConfig

        entry = TOPOLOGIES.get("tree")
        config = entry.make_config({"num_agg": 3})
        assert isinstance(config, TreeTopologyConfig)
        assert config.num_agg == 3

    def test_unknown_parameter_lists_valid_fields(self):
        entry = TOPOLOGIES.get("fattree")
        with pytest.raises(RegistryError, match="valid fields"):
            entry.make_config({"nope": 1})

    def test_invalid_value_is_wrapped(self):
        entry = TOPOLOGIES.get("fattree")
        with pytest.raises(RegistryError, match="invalid parameters"):
            entry.make_config({"k": 3})  # odd arity rejected by FatTreeConfig

    def test_no_config_class_rejects_parameters(self):
        reg = Registry("thing")
        reg.register("bare", lambda: 1)
        assert reg.get("bare").make_config({}) is None
        with pytest.raises(RegistryError, match="takes no parameters"):
            reg.get("bare").make_config({"x": 1})


class TestBuiltinCatalogs:
    def test_topologies_registered(self):
        assert {"tree", "fattree", "vl2", "leafspine"} <= set(TOPOLOGIES.names())

    def test_workloads_registered(self):
        assert {"video", "datacenter", "pareto-poisson"} <= set(WORKLOADS.names())

    def test_schemes_registered(self):
        assert {"scda", "rand-tcp", "ideal", "vlb", "hedera"} <= set(SCHEMES.names())
        assert TRANSPORTS is SCHEMES

    def test_placements_registered(self):
        assert {"random", "round-robin", "least-loaded", "scda"} <= set(PLACEMENTS.names())

    def test_every_topology_builds(self):
        for name in ("tree", "fattree", "vl2", "leafspine"):
            entry = TOPOLOGIES.get(name)
            topo = entry.builder(entry.make_config({}))
            assert len(topo.hosts()) > 0
            assert len(topo.clients()) > 0

    def test_scheme_entries_return_frozen_specs(self):
        from repro.baselines.schemes import SchemeSpec

        for name in SCHEMES.names():
            spec = SCHEMES.build(name)
            assert isinstance(spec, SchemeSpec)

    def test_placement_context_requirements(self):
        from repro.cluster.placement import PlacementContext

        with pytest.raises(RegistryError, match="fabric"):
            PLACEMENTS.build("least-loaded", PlacementContext(seed=1))
        with pytest.raises(RegistryError, match="Controller"):
            PLACEMENTS.build("scda", PlacementContext(seed=1))
        policy = PLACEMENTS.build("random", PlacementContext(seed=1))
        assert policy.name == "random"
