"""Tests for worker discovery: parsing, precedence, health gating."""

import pytest

from repro.service.discovery import (
    HOSTS_ENV,
    HOSTS_FILE_ENV,
    WorkerEndpoint,
    configured_endpoints,
    discover_workers,
    health_check,
    parse_endpoint,
    parse_hosts,
    read_hosts_file,
)
from repro.service.worker import WorkerServer


class TestParsing:
    def test_parse_endpoint(self):
        assert parse_endpoint("10.0.0.1:8150") == WorkerEndpoint("10.0.0.1", 8150)
        assert parse_endpoint("http://node1:9000/") == WorkerEndpoint("node1", 9000)

    @pytest.mark.parametrize("bad", ["", "hostonly", "host:", ":8150", "host:abc"])
    def test_parse_endpoint_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)

    def test_endpoint_validates_port_range(self):
        with pytest.raises(ValueError, match="port out of range"):
            WorkerEndpoint("h", 70000)

    def test_parse_hosts_accepts_commas_and_whitespace(self):
        endpoints = parse_hosts("a:1, b:2\n c:3")
        assert [str(e) for e in endpoints] == ["a:1", "b:2", "c:3"]

    def test_endpoint_urls(self):
        endpoint = WorkerEndpoint("node1", 8150)
        assert endpoint.base_url == "http://node1:8150"
        assert endpoint.url("/healthz") == "http://node1:8150/healthz"

    def test_hosts_file_with_comments(self, tmp_path):
        hosts = tmp_path / "hosts"
        hosts.write_text("# fleet\na:1\n\nb:2  # second node\n")
        assert [str(e) for e in read_hosts_file(hosts)] == ["a:1", "b:2"]


class TestPrecedence:
    def test_explicit_hosts_win(self, tmp_path, monkeypatch):
        hosts_file = tmp_path / "hosts"
        hosts_file.write_text("file:2\n")
        monkeypatch.setenv(HOSTS_ENV, "env:3")
        assert [str(e) for e in configured_endpoints(hosts="flag:1")] == ["flag:1"]
        assert [str(e) for e in configured_endpoints(hosts_file=hosts_file)] == ["file:2"]

    def test_environment_fallbacks(self, tmp_path, monkeypatch):
        monkeypatch.delenv(HOSTS_ENV, raising=False)
        monkeypatch.delenv(HOSTS_FILE_ENV, raising=False)
        assert configured_endpoints() == []
        hosts_file = tmp_path / "hosts"
        hosts_file.write_text("envfile:4\n")
        monkeypatch.setenv(HOSTS_FILE_ENV, str(hosts_file))
        assert [str(e) for e in configured_endpoints()] == ["envfile:4"]
        monkeypatch.setenv(HOSTS_ENV, "env:3")
        assert [str(e) for e in configured_endpoints()] == ["env:3"]

    def test_hosts_list_may_mix_strings_and_endpoints(self):
        endpoints = configured_endpoints(hosts=["a:1", WorkerEndpoint("b", 2)])
        assert [str(e) for e in endpoints] == ["a:1", "b:2"]


class TestHealthGating:
    def test_live_worker_passes_dead_port_fails(self, tmp_path):
        with WorkerServer(port=0, shard_dir=tmp_path) as worker:
            live = WorkerEndpoint(worker.host, worker.port)
            dead = WorkerEndpoint("127.0.0.1", 1)  # nothing listens on port 1
            assert health_check(live, timeout_s=5.0)
            assert not health_check(dead, timeout_s=0.5)
            assert discover_workers([dead, live], timeout_s=5.0) == [live]

    def test_stopped_worker_fails_the_gate(self, tmp_path):
        worker = WorkerServer(port=0, shard_dir=tmp_path).start()
        endpoint = WorkerEndpoint(worker.host, worker.port)
        worker.stop()
        assert not health_check(endpoint, timeout_s=0.5)
