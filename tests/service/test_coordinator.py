"""Tests for the ``repro serve`` coordinator: submission, caching, queries."""

import pytest

from repro.exec.planner import plan_replications
from repro.exec.store import ResultStore
from repro.experiments.spec import ScenarioSpec
from repro.service import protocol
from repro.service.coordinator import CoordinatorServer


def tiny_jobs(seeds=2):
    spec = ScenarioSpec.pareto_poisson(sim_time_s=1.0, seed=3)
    return plan_replications(spec, seeds=seeds)


@pytest.fixture()
def coordinator(tmp_path):
    server = CoordinatorServer(port=0, store_path=tmp_path / "store.jsonl")
    with server:
        yield server


def url(server, path):
    return f"http://{server.host}:{server.port}{path}"


class TestSubmission:
    def test_submit_runs_and_stores(self, coordinator):
        jobs = tiny_jobs()
        answer = protocol.http_json(
            "POST", url(coordinator, protocol.JOBS_PATH),
            {"jobs": [job.to_dict() for job in jobs]},
        )
        assert answer["summary"]["computed"] == len(jobs)
        assert answer["summary"]["failed"] == 0
        assert all(status["ok"] for status in answer["jobs"])
        assert len(ResultStore(coordinator.store.path)) == len(jobs)

    def test_resubmission_is_all_cache_hits(self, coordinator):
        jobs = tiny_jobs()
        body = {"jobs": [job.to_dict() for job in jobs]}
        protocol.http_json("POST", url(coordinator, protocol.JOBS_PATH), body)
        again = protocol.http_json("POST", url(coordinator, protocol.JOBS_PATH), body)
        assert again["summary"]["computed"] == 0
        assert again["summary"]["cached"] == len(jobs)

    def test_unhydratable_payload_is_a_400(self, coordinator):
        from repro.exec.retry import ClusterTransportError

        good = tiny_jobs(seeds=1)[0]
        bad = good.to_dict()
        bad["scheme"] = "no-such-scheme"
        with pytest.raises(ClusterTransportError, match="HTTP 400"):
            protocol.http_json(
                "POST", url(coordinator, protocol.JOBS_PATH),
                {"jobs": [good.to_dict(), bad]},
            )
        # the batch was rejected atomically: nothing ran, nothing stored
        assert len(ResultStore(coordinator.store.path)) == 0

    def test_submit_accepts_a_policy(self, coordinator):
        job = tiny_jobs(seeds=1)[0]
        answer = protocol.http_json(
            "POST", url(coordinator, protocol.JOBS_PATH),
            {
                "jobs": [job.to_dict()],
                "policy": {"max_attempts": 3, "timeout_s": None},
            },
        )
        assert answer["summary"]["computed"] == 1

    def test_bad_bodies_are_400(self, coordinator):
        from repro.exec.retry import ClusterTransportError

        for body in (None, {"jobs": []}, {"nope": 1}):
            with pytest.raises(ClusterTransportError, match="HTTP 400"):
                protocol.http_json("POST", url(coordinator, protocol.JOBS_PATH), body)


class TestQueries:
    def test_results_query_filters_by_scheme(self, coordinator):
        jobs = tiny_jobs()
        protocol.http_json(
            "POST", url(coordinator, protocol.JOBS_PATH),
            {"jobs": [job.to_dict() for job in jobs]},
        )
        everything = protocol.http_json("GET", url(coordinator, protocol.RESULTS_PATH))
        assert len(everything["entries"]) == len(jobs)
        scda = protocol.http_json(
            "GET", url(coordinator, protocol.RESULTS_PATH) + "?scheme=scda"
        )
        assert {entry["scheme"] for entry in scda["entries"]} == {"scda"}

    def test_single_result_lookup(self, coordinator):
        job = tiny_jobs(seeds=1)[0]
        protocol.http_json(
            "POST", url(coordinator, protocol.JOBS_PATH), {"jobs": [job.to_dict()]}
        )
        entry = protocol.http_json(
            "GET", url(coordinator, protocol.RESULTS_PATH) + "/" + job.key
        )
        assert entry["key"] == job.key
        assert entry["result"]  # canonical result dict present

    def test_missing_key_is_404(self, coordinator):
        from repro.exec.retry import ClusterTransportError

        with pytest.raises(ClusterTransportError, match="HTTP 404"):
            protocol.http_json(
                "GET", url(coordinator, protocol.RESULTS_PATH) + "/deadbeef"
            )

    def test_healthz_and_stats(self, coordinator):
        health = protocol.http_json("GET", url(coordinator, protocol.HEALTH_PATH))
        assert health["status"] == "ok"
        jobs = tiny_jobs(seeds=1)
        protocol.http_json(
            "POST", url(coordinator, protocol.JOBS_PATH),
            {"jobs": [job.to_dict() for job in jobs]},
        )
        stats = protocol.http_json("GET", url(coordinator, protocol.STATS_PATH))
        assert stats["batches"] == 1
        assert stats["store_entries"] == len(jobs)

    def test_stats_expose_wire_and_pool_sections(self, coordinator):
        # Serial backend: the sections exist but are quiet (no pool, no
        # cross-boundary encodes) — the daemon's stats shape is stable
        # regardless of the configured backend.
        jobs = tiny_jobs(seeds=1)
        protocol.http_json(
            "POST", url(coordinator, protocol.JOBS_PATH),
            {"jobs": [job.to_dict() for job in jobs]},
        )
        stats = protocol.http_json("GET", url(coordinator, protocol.STATS_PATH))
        assert stats["wire"]["decoded_results"] == 0
        assert stats["pool"] == {}

    def test_process_backend_daemon_keeps_a_warm_pool(self, tmp_path):
        # The serve daemon's whole point of pool="keep": two submissions on
        # a process backend reuse the same workers (zero respawns) and the
        # wire totals accumulate across batches; stop() releases the pool.
        server = CoordinatorServer(
            port=0, store_path=tmp_path / "store.jsonl",
            executor="process", max_workers=2,
        )
        with server:
            first = tiny_jobs(seeds=1)
            second = tiny_jobs(seeds=2)  # superset: one batch of new keys
            protocol.http_json(
                "POST", url(server, protocol.JOBS_PATH),
                {"jobs": [job.to_dict() for job in first]},
            )
            protocol.http_json(
                "POST", url(server, protocol.JOBS_PATH),
                {"jobs": [job.to_dict() for job in second]},
            )
            stats = protocol.http_json("GET", url(server, protocol.STATS_PATH))
            assert stats["pool"]["pool_size"] > 0
            assert stats["pool"]["respawned"] == 0
            assert stats["pool"]["reused"] > 0
            assert stats["wire"]["decoded_results"] == len(set(
                job.key for job in first + second
            ))
        assert server.backend.stats()["pool_size"] == 0  # stop() closed it

    def test_stats_aggregates_kernel_counters(self, coordinator):
        """``/stats`` sums the per-run ``kernel_*`` extras across the store."""
        jobs = tiny_jobs(seeds=2)
        protocol.http_json(
            "POST", url(coordinator, protocol.JOBS_PATH),
            {"jobs": [job.to_dict() for job in jobs]},
        )
        stats = protocol.http_json("GET", url(coordinator, protocol.STATS_PATH))
        kernel = stats["kernel"]
        assert kernel["kernel_recomputes"] > 0

        entries = ResultStore(coordinator.store.path).query()
        expected = sum(e.result.extras["kernel_recomputes"] for e in entries)
        assert kernel["kernel_recomputes"] == expected
        # _max-suffixed counters aggregate as a maximum, not a sum.
        per_run_max = [
            e.result.extras[k]
            for e in entries
            for k in e.result.extras
            if k.startswith("kernel_") and k.endswith("_max")
        ]
        if per_run_max:
            key = next(
                k
                for k in entries[0].result.extras
                if k.startswith("kernel_") and k.endswith("_max")
            )
            assert kernel[key] == max(
                e.result.extras[key] for e in entries
            )
