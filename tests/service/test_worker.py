"""Tests for the worker daemon: endpoints, shard writes, failure transport."""

import json

import pytest

from repro.exec.job import ExperimentJob
from repro.exec.planner import plan_comparison
from repro.exec.store import ResultStore
from repro.experiments.spec import ScenarioSpec
from repro.service import protocol
from repro.service.worker import WorkerServer, shard_filename


def tiny_jobs(sim_time_s=1.0, seed=3):
    return plan_comparison(ScenarioSpec.pareto_poisson(sim_time_s=sim_time_s, seed=seed))


@pytest.fixture()
def worker(tmp_path):
    with WorkerServer(port=0, shard_dir=tmp_path) as server:
        yield server


class TestEndpoints:
    def test_healthz(self, worker):
        answer = protocol.http_json("GET", worker_url(worker, protocol.HEALTH_PATH))
        assert answer["status"] == "ok"
        assert answer["worker"] == f"{worker.host}:{worker.port}"

    def test_stats_counts_jobs(self, worker):
        jobs = tiny_jobs()
        protocol.http_json(
            "POST",
            worker_url(worker, protocol.JOBS_PATH),
            {"jobs": [job.to_dict() for job in jobs]},
        )
        stats = protocol.http_json("GET", worker_url(worker, protocol.STATS_PATH))
        assert stats["chunks"] == 1
        assert stats["jobs_ok"] == len(jobs)
        assert stats["shard_entries"] == len(jobs)

    def test_unknown_path_is_404(self, worker):
        from repro.exec.retry import ClusterTransportError

        with pytest.raises(ClusterTransportError, match="HTTP 404"):
            protocol.http_json("GET", worker_url(worker, "/nope"))

    def test_bad_jobs_body_is_400(self, worker):
        from repro.exec.retry import ClusterTransportError

        with pytest.raises(ClusterTransportError, match="HTTP 400"):
            protocol.http_json("POST", worker_url(worker, protocol.JOBS_PATH), {"jobs": []})


class TestJobExecution:
    def test_single_payload_runs_and_lands_in_shard(self, worker):
        job = tiny_jobs()[0]
        answer = protocol.http_json(
            "POST", worker_url(worker, protocol.JOBS_PATH), job.to_dict()
        )
        assert [o["ok"] for o in answer["outcomes"]] == [True]
        shard = ResultStore(worker.shard_path)
        assert job.key in shard

    def test_chunk_outcomes_match_serial_execution(self, worker):
        from repro.exec.executors import run_jobs
        from repro.metrics.comparison import SchemeResult

        jobs = tiny_jobs()
        serial = run_jobs(jobs, executor="serial")
        answer = protocol.http_json(
            "POST",
            worker_url(worker, protocol.JOBS_PATH),
            {"jobs": [job.to_dict() for job in jobs]},
        )
        outcomes = answer["outcomes"]
        assert len(outcomes) == len(jobs)
        for job, outcome in zip(jobs, outcomes):
            assert outcome["ok"]
            # the transported payload carries the worker's wall clock; the
            # *canonical* result must be bit-identical to the serial run
            computed = SchemeResult.from_dict(outcome["result"]).canonical_dict()
            assert computed == serial.results[job.key].canonical_dict()

    def test_job_failure_travels_in_band_with_exc_type(self, worker):
        payload = tiny_jobs()[0].to_dict()
        payload["scheme"] = "no-such-scheme"
        answer = protocol.http_json(
            "POST", worker_url(worker, protocol.JOBS_PATH), {"jobs": [payload]}
        )
        (outcome,) = answer["outcomes"]
        assert not outcome["ok"]
        assert outcome["exc_type"] == "RegistryError"
        assert "no-such-scheme" in outcome["error"]
        # failed jobs never touch the shard
        assert len(ResultStore(worker.shard_path)) == 0

    def test_duplicate_submission_is_a_free_re_put(self, worker):
        job = tiny_jobs()[0]
        for _ in range(2):
            answer = protocol.http_json(
                "POST", worker_url(worker, protocol.JOBS_PATH), {"jobs": [job.to_dict()]}
            )
            assert answer["outcomes"][0]["ok"]
        assert len(ResultStore(worker.shard_path)) == 1


class TestShard:
    def test_shard_endpoint_streams_the_file(self, worker):
        job = tiny_jobs()[0]
        protocol.http_json(
            "POST", worker_url(worker, protocol.JOBS_PATH), {"jobs": [job.to_dict()]}
        )
        text = protocol.http_text(worker_url(worker, protocol.SHARD_PATH))
        assert text == worker.shard_path.read_text(encoding="utf-8")
        entry = json.loads(text.splitlines()[0])
        assert entry["key"] == job.key

    def test_empty_shard_streams_empty(self, worker):
        assert protocol.http_text(worker_url(worker, protocol.SHARD_PATH)) == ""

    def test_shard_filename_is_deterministic_per_endpoint(self):
        assert shard_filename("127.0.0.1", 8150) == shard_filename("127.0.0.1", 8150)
        assert shard_filename("127.0.0.1", 8150) != shard_filename("127.0.0.1", 8151)

    def test_restarted_worker_reuses_its_shard(self, tmp_path):
        job = tiny_jobs()[0]
        first = WorkerServer(port=0, shard_dir=tmp_path).start()
        port = first.port
        protocol.http_json(
            "POST", worker_url(first, protocol.JOBS_PATH), {"jobs": [job.to_dict()]}
        )
        first.stop()
        second = WorkerServer(port=port, shard_dir=tmp_path).start()
        try:
            assert second.shard_path == first.shard_path
            assert job.key in ResultStore(second.shard_path)
        finally:
            second.stop()


class TestChaosEnvelope:
    def test_chaos_crash_does_not_kill_the_daemon(self, worker):
        payload = tiny_jobs()[0].to_dict()
        payload["__chaos__"] = {"mode": "crash", "delay_s": 0.0, "crash_ok": False}
        answer = protocol.http_json(
            "POST", worker_url(worker, protocol.JOBS_PATH), {"jobs": [payload]}
        )
        (outcome,) = answer["outcomes"]
        assert not outcome["ok"]
        assert outcome["exc_type"] == "ChaosCrashError"
        # the daemon survived the injected crash
        assert protocol.http_json("GET", worker_url(worker, protocol.HEALTH_PATH))[
            "status"
        ] == "ok"

    def test_corrupt_results_never_reach_the_shard(self, worker):
        payload = tiny_jobs()[0].to_dict()
        payload["__chaos__"] = {"mode": "corrupt", "delay_s": 0.0, "crash_ok": False}
        answer = protocol.http_json(
            "POST", worker_url(worker, protocol.JOBS_PATH), {"jobs": [payload]}
        )
        (outcome,) = answer["outcomes"]
        # the worker reports the (corrupt) payload as-is; the *client* is the
        # one that classifies it as CorruptResultError on hydration
        assert outcome["ok"]
        assert len(ResultStore(worker.shard_path)) == 0

    def test_chaos_envelope_does_not_change_the_job_key(self, worker):
        job = tiny_jobs()[0]
        payload = job.to_dict()
        payload["__chaos__"] = {"mode": "delay", "delay_s": 0.01, "crash_ok": False}
        protocol.http_json(
            "POST", worker_url(worker, protocol.JOBS_PATH), {"jobs": [payload]}
        )
        shard = ResultStore(worker.shard_path)
        assert job.key in shard
        assert ExperimentJob.from_dict(payload).key == job.key


class TestWireNegotiation:
    def test_columnar_request_gets_columnar_payloads(self, worker):
        from repro.exec.executors import run_jobs
        from repro.metrics.codec import decode_result, is_columnar

        jobs = tiny_jobs()
        serial = run_jobs(jobs, executor="serial")
        answer = protocol.http_json(
            "POST",
            worker_url(worker, protocol.JOBS_PATH),
            {"jobs": [job.to_dict() for job in jobs], "wire": "columnar"},
        )
        assert answer["wire"] == "columnar"
        for job, outcome in zip(jobs, answer["outcomes"]):
            assert outcome["ok"]
            assert is_columnar(outcome["result"])
            assert outcome["wire_bytes"] > 0
            decoded = decode_result(outcome["result"])
            decoded.pop("wall_clock_s", None)
            assert decoded == serial.results[job.key].canonical_dict()

    def test_request_without_wire_field_gets_plain_json(self, worker):
        from repro.metrics.codec import is_columnar

        answer = protocol.http_json(
            "POST",
            worker_url(worker, protocol.JOBS_PATH),
            {"jobs": [tiny_jobs()[0].to_dict()]},
        )
        assert answer["wire"] == "json"
        assert not is_columnar(answer["outcomes"][0]["result"])

    def test_json_only_worker_ignores_the_columnar_request(self, tmp_path):
        # The pre-codec/downgraded worker: a client asking for columnar gets
        # plain dicts back, and decoding falls through on the payload marker.
        from repro.metrics.codec import is_columnar

        with WorkerServer(port=0, shard_dir=tmp_path, wire="json") as server:
            assert server.identity()["wire"] == "json"
            answer = protocol.http_json(
                "POST",
                worker_url(server, protocol.JOBS_PATH),
                {"jobs": [tiny_jobs()[0].to_dict()], "wire": "columnar"},
            )
            assert answer["wire"] == "json"
            (outcome,) = answer["outcomes"]
            assert outcome["ok"]
            assert not is_columnar(outcome["result"])

    def test_negotiate_wire_truth_table(self, tmp_path):
        columnar = WorkerServer(port=0, shard_dir=tmp_path, wire="columnar")
        assert columnar.negotiate_wire("columnar") == "columnar"
        assert columnar.negotiate_wire(None) == "json"
        assert columnar.negotiate_wire("json") == "json"
        assert columnar.negotiate_wire("msgpack") == "json"  # unknown: plain
        json_only = WorkerServer(port=0, shard_dir=tmp_path, wire="json")
        assert json_only.negotiate_wire("columnar") == "json"

    def test_invalid_wire_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="wire must be one of"):
            WorkerServer(port=0, shard_dir=tmp_path, wire="msgpack")

    def test_corrupt_result_ships_plain_over_columnar(self, worker):
        # Chaos corruption must not be masked by the codec: the corrupt dict
        # fails strict encoding, travels as plain JSON, and the client-side
        # hydration check still catches it.
        from repro.metrics.codec import is_columnar

        payload = tiny_jobs()[0].to_dict()
        payload["__chaos__"] = {"mode": "corrupt", "delay_s": 0.0, "crash_ok": False}
        answer = protocol.http_json(
            "POST",
            worker_url(worker, protocol.JOBS_PATH),
            {"jobs": [payload], "wire": "columnar"},
        )
        assert answer["wire"] == "columnar"
        (outcome,) = answer["outcomes"]
        assert outcome["ok"]
        assert not is_columnar(outcome["result"])
        assert outcome["result"]["__chaos_corrupted__"] is True

    def test_stats_count_wire_activity(self, worker):
        jobs = tiny_jobs()
        protocol.http_json(
            "POST",
            worker_url(worker, protocol.JOBS_PATH),
            {"jobs": [job.to_dict() for job in jobs], "wire": "columnar"},
        )
        protocol.http_json(
            "POST",
            worker_url(worker, protocol.JOBS_PATH),
            {"jobs": [jobs[0].to_dict()]},  # plain chunk: no wire counters
        )
        stats = protocol.http_json("GET", worker_url(worker, protocol.STATS_PATH))
        assert stats["chunks"] == 2
        assert stats["columnar_chunks"] == 1
        assert stats["wire_results"] == len(jobs)
        assert stats["wire_bytes"] > 0
        assert stats["wire_encode_s"] >= 0.0

    def test_shard_bytes_are_wire_independent(self, tmp_path):
        # The same job through a columnar and a JSON exchange must leave
        # byte-identical shard lines (modulo the port in the meta) — the
        # codec exists on the wire only.
        job = tiny_jobs()[0]
        with WorkerServer(port=0, shard_dir=tmp_path / "a") as a:
            protocol.http_json(
                "POST", worker_url(a, protocol.JOBS_PATH),
                {"jobs": [job.to_dict()], "wire": "columnar"},
            )
            shard_a = ResultStore(a.shard_path)
        with WorkerServer(port=0, shard_dir=tmp_path / "b", wire="json") as b:
            protocol.http_json(
                "POST", worker_url(b, protocol.JOBS_PATH),
                {"jobs": [job.to_dict()], "wire": "columnar"},
            )
            shard_b = ResultStore(b.shard_path)
        assert shard_a.results_by_key() == shard_b.results_by_key()


class TestShutdown:
    def test_post_shutdown_stops_the_server(self, tmp_path):
        server = WorkerServer(port=0, shard_dir=tmp_path).start()
        answer = protocol.http_json(
            "POST", worker_url(server, protocol.SHUTDOWN_PATH), {}
        )
        assert answer["status"] == "stopping"
        server._thread.join(timeout=10.0)
        assert not server._thread.is_alive()


def worker_url(worker, path):
    return f"http://{worker.host}:{worker.port}{path}"
