"""Tests for the wire protocol: transport failures map to the retry vocabulary.

Each scenario runs against a real socket so the exact exception chain that
production sees (``urllib`` → ``http.client`` → ``socket``) is exercised — no
mocking of the network stack.
"""

import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.exec.retry import (
    ClusterTransportError,
    JobTimeoutError,
    RetryPolicy,
    WorkerCrashError,
)
from repro.service import protocol


class _MisbehavingHandler(BaseHTTPRequestHandler):
    """One endpoint per failure mode the client must classify."""

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path == "/slow":
            threading.Event().wait(2.0)
            self._json(b"{}")
        elif self.path == "/not-json":
            self._json(b"this is not json")
        elif self.path == "/teapot":
            self.send_response(418)
            self.send_header("Content-Length", "0")
            self.end_headers()
        elif self.path == "/drop":
            # Close the TCP connection without answering: the worker "died"
            # mid-exchange.
            self.connection.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, b"\x01\x00\x00\x00\x00\x00\x00\x00"
            )
            self.connection.close()
        else:
            self._json(b'{"status": "ok"}')

    def _json(self, body):
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


@pytest.fixture(scope="module")
def misbehaving_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _MisbehavingHandler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)


class TestFailureMapping:
    def test_timeout_is_a_job_timeout(self, misbehaving_server):
        with pytest.raises(JobTimeoutError, match="timed out"):
            protocol.http_json("GET", misbehaving_server + "/slow", timeout_s=0.2)

    def test_http_error_status_is_a_transport_error(self, misbehaving_server):
        with pytest.raises(ClusterTransportError, match="HTTP 418"):
            protocol.http_json("GET", misbehaving_server + "/teapot")

    def test_non_json_body_is_a_transport_error(self, misbehaving_server):
        with pytest.raises(ClusterTransportError, match="non-JSON"):
            protocol.http_json("GET", misbehaving_server + "/not-json")

    def test_dropped_connection_is_a_worker_crash(self, misbehaving_server):
        with pytest.raises(WorkerCrashError):
            protocol.http_json("GET", misbehaving_server + "/drop")

    def test_refused_connection_is_a_worker_crash(self):
        # Port 1 is never listening; the TCP connect is refused outright.
        with pytest.raises(WorkerCrashError, match="unreachable"):
            protocol.http_json("GET", "http://127.0.0.1:1/healthz", timeout_s=2.0)

    def test_http_text_maps_the_same_way(self, misbehaving_server):
        with pytest.raises(ClusterTransportError, match="HTTP 418"):
            protocol.http_text(misbehaving_server + "/teapot")
        with pytest.raises(WorkerCrashError, match="unreachable"):
            protocol.http_text("http://127.0.0.1:1/shard", timeout_s=2.0)

    def test_happy_path_still_parses(self, misbehaving_server):
        assert protocol.http_json("GET", misbehaving_server + "/ok") == {"status": "ok"}


class TestRetryVocabulary:
    """The names the transport raises are exactly what policies classify."""

    def test_every_transport_failure_is_retryable_by_default(self):
        policy = RetryPolicy(max_attempts=3)
        for exc in (JobTimeoutError, WorkerCrashError, ClusterTransportError):
            assert policy.is_retryable(exc.__name__), exc.__name__

    def test_remote_exc_type_strings_drive_classification(self):
        """A JobFailure built from an HTTP outcome carries only the *name* of
        the remote exception class — that string alone must classify."""
        policy = RetryPolicy(max_attempts=3)
        # what a dropped socket / refused connect surfaces on the wire
        for name in ("RemoteDisconnected", "ConnectionRefusedError",
                     "ConnectionAbortedError", "IncompleteRead", "URLError"):
            assert policy.is_retryable(name), name
        # deterministic remote failures must NOT be retried
        for name in ("RegistryError", "ResultStoreError", "ValueError"):
            assert not policy.is_retryable(name), name
