"""Failure injection: capacity degradation, SLA detection and mitigation.

These integration tests inject faults mid-run — a link losing most of its
capacity, a server whose disk collapses — and check that

* the RM/RA hierarchy detects the resulting SLA violations in real time,
* the violation reports point at the degraded location, and
* the ``ADD_BANDWIDTH`` mitigation (reserve links) restores performance.
"""

import pytest

from repro.core.controller import ScdaController, ScdaControllerConfig
from repro.core.rate_metric import ScdaParams
from repro.core.sla import MitigationAction
from repro.network.fabric import FabricConfig, FabricSimulator
from repro.network.flow import FlowKind, FlowState
from repro.network.transport.scda import ScdaTransport
from repro.network.tree import TreeTopologyConfig, build_tree_topology
from repro.sim.engine import Simulator

MBPS = 1e6


def build_stack(mitigation=MitigationAction.NONE, seed_capacity=100 * MBPS):
    sim = Simulator()
    topology = build_tree_topology(
        TreeTopologyConfig(
            base_bandwidth_bps=seed_capacity,
            num_agg=2,
            racks_per_agg=2,
            hosts_per_rack=2,
            num_clients=4,
            internal_delay_s=0.001,
            client_delay_s=0.005,
        )
    )
    controller = ScdaController(
        sim,
        topology,
        ScdaControllerConfig(
            params=ScdaParams(control_interval_s=0.01),
            sla_mitigation=mitigation,
            sla_bandwidth_boost=4.0,
        ),
    )
    fabric = FabricSimulator(
        sim, topology, ScdaTransport(controller), config=FabricConfig(control_interval_s=0.01)
    )
    controller.attach_fabric(fabric)
    return sim, topology, controller, fabric


def degrade_host_links(topology, controller, host, factor):
    """Cut the capacity of a host's access links by ``factor`` (fault injection)."""
    for link in (topology.uplink_of(host), topology.downlink_to(host)):
        link.capacity_bps /= factor
        calc = controller.tree._link_calc.get(link.link_id)
        if calc is not None:
            calc.capacity_bps = link.capacity_bps


class TestLinkDegradation:
    def test_degradation_slows_flows_and_triggers_violations(self):
        sim, topology, controller, fabric = build_stack()
        host = topology.hosts()[0]
        clients = topology.clients()

        # Healthy phase: two staggered writes complete quickly (staggering avoids
        # the transient over-subscription that a simultaneous burst produces
        # while the effective flow count catches up).
        healthy = [fabric.start_flow(clients[0], host, 10e6)]
        sim.run(until=1.5)
        healthy.append(fabric.start_flow(clients[1], host, 10e6))
        sim.run(until=3.0)
        assert all(f.state is FlowState.FINISHED for f in healthy)
        healthy_fct = max(f.fct for f in healthy)
        assert controller.sla_monitor.count == 0

        # Fault: the host's access links lose 90 % of their capacity while two
        # more writes (same demand) are in flight.
        degrade_host_links(topology, controller, host, factor=10.0)
        degraded = [fabric.start_flow(clients[i], host, 10e6) for i in range(2)]
        sim.run(until=30.0)
        assert all(f.state is FlowState.FINISHED for f in degraded)
        degraded_fct = max(f.fct for f in degraded)
        # Roughly 10x less capacity -> several times slower.
        assert degraded_fct > 4 * healthy_fct

    def test_violation_reports_point_at_the_degraded_host(self):
        sim, topology, controller, fabric = build_stack()
        host = topology.hosts()[0]
        clients = topology.clients()
        degrade_host_links(topology, controller, host, factor=20.0)
        # Demand that exceeds the degraded capacity: concurrent writes.
        for i in range(3):
            fabric.start_flow(clients[i], host, 5e6)
        sim.run(until=5.0)
        assert controller.sla_monitor.count > 0
        assert host.node_id in controller.sla_monitor.summary()

    def test_add_bandwidth_mitigation_restores_performance(self):
        def run(mitigation):
            sim, topology, controller, fabric = build_stack(mitigation)
            host = topology.hosts()[0]
            clients = topology.clients()
            degrade_host_links(topology, controller, host, factor=8.0)
            flows = [fabric.start_flow(clients[i], host, 8e6) for i in range(3)]
            sim.run(until=60.0)
            assert all(f.state is FlowState.FINISHED for f in flows)
            return max(f.fct for f in flows), controller

        fct_without, _ = run(MitigationAction.NONE)
        fct_with, controller_with = run(MitigationAction.ADD_BANDWIDTH)
        # The reserve-capacity boost (4x) recovers a large part of the loss.
        assert fct_with < fct_without * 0.6
        boosted = [
            v for v in controller_with.sla_monitor.violations
            if v.mitigation is MitigationAction.ADD_BANDWIDTH
        ]
        assert boosted, "mitigation was configured but never applied"


class TestServerResourceCollapse:
    def test_disk_collapse_diverts_new_placements(self):
        """A server whose disk collapses stops being selected for new writes."""
        from repro.cluster.host_resources import HostResourceProfile, HostResourceSimulator
        from repro.cluster.content import ContentClass

        sim = Simulator()
        topology = build_tree_topology(
            TreeTopologyConfig(
                base_bandwidth_bps=100 * MBPS, num_agg=1, racks_per_agg=2, hosts_per_rack=2,
                num_clients=2, internal_delay_s=0.001, client_delay_s=0.005,
            )
        )
        host_resources = HostResourceSimulator()
        controller = ScdaController(
            sim, topology, ScdaControllerConfig(), other_resources=host_resources
        )
        fabric = FabricSimulator(sim, topology, ScdaTransport(controller))
        controller.attach_fabric(fabric)
        host_resources.attach_fabric(fabric)

        sick = topology.hosts()[0]
        sim.run(until=0.05)
        # Fault: the server's disk degrades to 1 Mb/s.
        host_resources.set_profile(sick.node_id, HostResourceProfile(disk_bandwidth_bps=1 * MBPS))
        sim.run(until=0.1)

        choices = {controller.select_primary(ContentClass.LWHR) for _ in range(6)}
        assert sick.node_id not in choices
