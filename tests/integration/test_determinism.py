"""Reproducibility guarantees of the experiment pipeline."""

import pytest

from repro.baselines.schemes import RAND_TCP, SCDA_SCHEME
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import generate_workload, run_scheme


def tiny_config(seed=9):
    return ScenarioConfig.pareto_poisson(
        sim_time=2.5, seed=seed, arrival_rate_per_s=20.0
    ).with_overrides(drain_time_s=15.0)


class TestDeterminism:
    def test_identical_runs_produce_identical_fcts(self):
        cfg = tiny_config()
        first = run_scheme(cfg, SCDA_SCHEME)
        second = run_scheme(cfg, SCDA_SCHEME)
        assert [r.fct_s for r in first.records] == [r.fct_s for r in second.records]

    def test_randtcp_runs_are_also_deterministic(self):
        cfg = tiny_config()
        first = run_scheme(cfg, RAND_TCP)
        second = run_scheme(cfg, RAND_TCP)
        assert [r.fct_s for r in first.records] == [r.fct_s for r in second.records]

    def test_different_seeds_give_different_workloads(self):
        a = generate_workload(tiny_config(seed=1))
        b = generate_workload(tiny_config(seed=2))
        assert [r.size_bytes for r in a] != [r.size_bytes for r in b]

    def test_schemes_share_the_workload_but_not_the_placement_stream(self):
        """Both schemes see the same requests; RandTCP's placement randomness is
        derived from the scenario seed and the scheme name, so it is stable too."""
        cfg = tiny_config()
        workload = generate_workload(cfg)
        rand_a = run_scheme(cfg, RAND_TCP, workload)
        rand_b = run_scheme(cfg, RAND_TCP, workload)
        assert rand_a.mean_fct_s() == pytest.approx(rand_b.mean_fct_s(), rel=1e-12)

    def test_flow_records_cover_all_issued_requests(self):
        cfg = tiny_config()
        result = run_scheme(cfg, SCDA_SCHEME)
        assert result.extras["requests_completed"] == result.extras["requests_issued"]
        assert result.completed_flows == int(result.extras["requests_issued"])
