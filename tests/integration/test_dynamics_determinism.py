"""The dynamics determinism contract (ISSUE 4 acceptance criteria).

* A scripted link-failure scenario produces identical ``ResultStore``
  contents on the serial, thread and process executors.
* A no-op dynamics script is bit-identical to the same spec without
  ``dynamics``.
* Dynamics participate in job content keys, so a dynamic and a static run
  never share a cache entry.
"""

import pytest

from repro.exec import ExperimentJob, plan_comparison, run_jobs
from repro.exec.store import ResultStore
from repro.experiments.runner import run_scheme
from repro.experiments.spec import ScenarioSpec

DYNAMICS = [
    {"kind": "link-failure", "at_s": 0.4, "select": "switch-uplink", "index": 0},
    {"kind": "link-recovery", "at_s": 1.0, "select": "switch-uplink", "index": 0},
    {"kind": "block-server-churn", "at_s": 0.6, "index": 1, "rejoin_after_s": 0.8},
]


def dynamic_spec(**overrides):
    spec = ScenarioSpec(
        name="dyn-det",
        seed=3,
        sim_time_s=1.5,
        drain_time_s=12.0,
        topology="leafspine",
        workload="pareto-poisson",
        workload_params={"arrival_rate_per_s": 15.0, "num_clients": 4},
        dynamics=DYNAMICS,
    )
    return spec.with_overrides(**overrides) if overrides else spec


class TestSpecThreading:
    def test_dynamics_round_trips_through_spec_json(self):
        spec = dynamic_spec()
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.dynamics == DYNAMICS

    def test_dynamics_round_trips_through_job_json(self):
        job = ExperimentJob(spec=dynamic_spec(), scheme="scda")
        clone = ExperimentJob.from_json(job.to_json())
        assert clone == job
        assert clone.key == job.key
        assert clone.spec.dynamics == DYNAMICS

    def test_dynamics_participate_in_job_keys(self):
        dynamic = ExperimentJob(spec=dynamic_spec(), scheme="scda")
        static = ExperimentJob(spec=dynamic_spec(dynamics=[]), scheme="scda")
        assert dynamic.key != static.key

    def test_malformed_dynamics_rejected_at_spec_construction(self):
        with pytest.raises(ValueError):
            dynamic_spec(dynamics=[{"at_s": 1.0}])
        with pytest.raises(ValueError):
            dynamic_spec(dynamics={"kind": "link-failure"})

    def test_unknown_event_kind_fails_at_build(self):
        from repro.registry import RegistryError

        spec = dynamic_spec(dynamics=[{"kind": "meteor-strike", "at_s": 1.0}])
        with pytest.raises(RegistryError):
            spec.build_dynamics()


class TestExecutorEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_scripted_failure_store_matches_serial(self, backend, tmp_path):
        jobs = plan_comparison(dynamic_spec())
        serial = ResultStore(tmp_path / "serial.jsonl")
        run_jobs(jobs, executor="serial", store=serial)
        parallel = ResultStore(tmp_path / f"{backend}.jsonl")
        run_jobs(jobs, executor=backend, max_workers=2, store=parallel)
        assert serial.results_by_key() == parallel.results_by_key()
        assert len(serial) == len(jobs)

    def test_dynamic_run_actually_failed_links(self, tmp_path):
        jobs = plan_comparison(dynamic_spec())
        store = ResultStore(tmp_path / "check.jsonl")
        report = run_jobs(jobs, store=store)
        for job in jobs:
            extras = report.result_for(job).extras
            assert extras["links_failed"] == 2.0  # duplex pair
            assert extras["links_restored"] == 2.0
            assert extras["servers_departed"] == 1.0
            assert extras["servers_rejoined"] == 1.0


class TestNoopBitIdentity:
    def test_noop_script_is_bit_identical_to_no_dynamics(self):
        static = run_scheme(dynamic_spec(dynamics=[]), "scda")
        # dynamics=[] *is* "no dynamics": same default, but pin the whole
        # canonical payload against a second run to catch any hidden state.
        again = run_scheme(dynamic_spec(dynamics=[]), "scda")
        assert static.canonical_dict() == again.canonical_dict()
        # The availability series exists and is trivially all-up.
        assert static.availability.mean_availability() == 1.0
        assert static.availability.disrupted_time_s() == 0.0
        assert all(v == 0.0 for k, v in static.extras.items()
                   if k in ("links_failed", "flows_rerouted_on_failure",
                            "flows_aborted_on_failure", "servers_departed",
                            "requests_disrupted"))

    def test_dynamic_run_differs_from_static(self):
        static = run_scheme(dynamic_spec(dynamics=[]), "scda")
        dynamic = run_scheme(dynamic_spec(), "scda")
        assert dynamic.canonical_dict() != static.canonical_dict()
        assert dynamic.extras["links_failed"] == 2.0

    def test_outage_covering_a_sample_shows_in_the_availability_series(self):
        # The collector samples once per second; an outage spanning t=1.0
        # must surface as lost availability and disrupted time.
        spec = dynamic_spec(
            dynamics=[
                {"kind": "link-failure", "at_s": 0.4, "select": "switch-uplink", "index": 0},
                {"kind": "link-recovery", "at_s": 1.3, "select": "switch-uplink", "index": 0},
            ]
        )
        result = run_scheme(spec, "scda")
        assert result.availability.mean_availability() < 1.0
        assert result.availability.disrupted_time_s() > 0.0


class TestSurgeDeterminism:
    def test_surge_draws_are_pinned_by_seed(self):
        spec = dynamic_spec(
            dynamics=[{"kind": "workload-surge", "at_s": 0.3, "duration_s": 0.5,
                       "arrival_rate_per_s": 20.0}]
        )
        a = run_scheme(spec, "rand-tcp")
        b = run_scheme(spec, "rand-tcp")
        assert a.canonical_dict() == b.canonical_dict()
        base = run_scheme(spec.with_overrides(dynamics=[]), "rand-tcp")
        assert a.extras["requests_completed"] > base.extras["requests_completed"]

    def test_aggregate_surge_issues_tenant_tagged_aggregate_flows(self):
        # A flash crowd as a dynamics event: every surge request is an
        # aggregate flow of `multiplicity` sessions carrying the tenant tag.
        spec = dynamic_spec(
            dynamics=[{"kind": "workload-surge", "at_s": 0.3, "duration_s": 0.5,
                       "arrival_rate_per_s": 20.0, "multiplicity": 500,
                       "tenant": "crowd"}]
        )
        result = run_scheme(spec, "rand-tcp")
        crowd = [r for r in result.records if r.tenant == "crowd"]
        assert crowd
        assert all(r.multiplicity == 500 for r in crowd)
        assert result.extras["sessions_completed"] > result.extras["requests_completed"]
        assert result.extras["tenant:crowd:sessions"] == 500.0 * len(crowd)
