"""Section IX integration: SCDA on non-tree fabrics (fat tree, VL2, leaf-spine).

The control plane only needs per-link calculators and a routing table, so it
must run unchanged on multi-path fabrics and still beat the RandTCP baseline
there.
"""

import numpy as np
import pytest

from repro.cluster.cluster import StorageCluster, StorageClusterConfig
from repro.cluster.content import Content, ContentClass
from repro.cluster.placement import RandomPlacement, ScdaPlacement
from repro.core.controller import ScdaController, ScdaControllerConfig
from repro.network.fabric import FabricSimulator
from repro.network.fattree import build_fat_tree
from repro.network.leafspine import build_leaf_spine
from repro.network.routing import EcmpRouter
from repro.network.transport.scda import ScdaTransport
from repro.network.transport.tcp import TcpTransport
from repro.network.vl2 import build_vl2_topology
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

MB = 1024.0 * 1024.0


def run_workload(topology_factory, scheme: str, seed: int = 3, requests: int = 40):
    sim = Simulator()
    topology = topology_factory()
    if scheme == "scda":
        controller = ScdaController(sim, topology, ScdaControllerConfig())
        transport = ScdaTransport(controller)
    else:
        controller = None
        transport = TcpTransport()
    fabric = FabricSimulator(sim, topology, transport, router=EcmpRouter(topology))
    if controller is not None:
        controller.attach_fabric(fabric)
        placement = ScdaPlacement(controller)
    else:
        placement = RandomPlacement(seed=seed)
    cluster = StorageCluster(sim, topology, fabric, placement, config=StorageClusterConfig())

    rng = RandomStreams(seed).stream("workload")
    clients = topology.clients()
    t = 0.0
    for _ in range(requests):
        t += float(rng.exponential(0.1))
        client = clients[int(rng.integers(0, len(clients)))]
        size = float(min(rng.lognormal(np.log(1 * MB), 0.8), 16 * MB))
        content = Content.create(size, declared_class=ContentClass.LWHR)
        sim.call_at(t, cluster.write, client, content)
    sim.run(until=120.0)
    completed = cluster.completed_requests()
    fcts = [r.completion_time for r in completed]
    return len(completed), float(np.mean(fcts)) if fcts else float("nan")


FABRICS = {
    "fat-tree": lambda: build_fat_tree(k=4, num_clients=4),
    "vl2": lambda: build_vl2_topology(num_clients=4),
    "leaf-spine": lambda: build_leaf_spine(num_clients=4),
}


class TestGeneralTopologiesExample:
    """The shipped example is written against the registry API; running it
    here makes a broken registration fail CI, not just the example."""

    def test_example_runs_end_to_end(self, capsys):
        import importlib.util
        from pathlib import Path

        example = Path(__file__).resolve().parents[2] / "examples" / "general_topologies.py"
        module_spec = importlib.util.spec_from_file_location("general_topologies_example", example)
        module = importlib.util.module_from_spec(module_spec)
        module_spec.loader.exec_module(module)
        assert module.main(["--sim-time", "1.0"]) == 0
        out = capsys.readouterr().out
        for fabric in ("fattree", "vl2", "leafspine"):
            assert fabric in out
        for scheme in ("SCDA", "RandTCP", "Hedera"):
            assert scheme in out


class TestScdaOnGeneralFabrics:
    @pytest.mark.parametrize("fabric_name", sorted(FABRICS))
    def test_all_requests_complete_under_scda(self, fabric_name):
        completed, mean_fct = run_workload(FABRICS[fabric_name], "scda")
        assert completed == 40
        assert np.isfinite(mean_fct) and mean_fct > 0

    @pytest.mark.parametrize("fabric_name", sorted(FABRICS))
    def test_scda_beats_randtcp_on_every_fabric(self, fabric_name):
        completed_scda, fct_scda = run_workload(FABRICS[fabric_name], "scda")
        completed_rand, fct_rand = run_workload(FABRICS[fabric_name], "randtcp")
        assert completed_scda == completed_rand == 40
        assert fct_scda < fct_rand

    def test_scda_tree_builds_on_multirooted_fabrics(self):
        """The RM/RA hierarchy tolerates multiple parents / multiple roots."""
        from repro.core.maxmin import ScdaTree

        for factory in FABRICS.values():
            topology = factory()
            tree = ScdaTree(topology)
            tree.run_round({}, now=0.0)
            metrics = tree.host_metrics()
            assert len(metrics) == len(topology.hosts())
            assert all(m.up_bps > 0 and m.down_bps > 0 for m in metrics)
