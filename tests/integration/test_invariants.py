"""Cross-cutting property tests: conservation and allocation invariants.

These properties must hold for *any* workload and either scheme:

* byte conservation — the bytes recorded as delivered equal the bytes of the
  finished flows, and never exceed what was offered;
* feasibility — at no sampling instant does the sum of delivered rates on a
  link exceed its capacity (the fluid network cannot create bandwidth);
* SCDA allocation sanity — advertised per-link rates never exceed the link's
  effective capacity, and a host's whole-datacenter metric never exceeds any
  link on its path to the core.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controller import ScdaController, ScdaControllerConfig
from repro.core.maxmin import ScdaTree
from repro.core.rate_metric import ScdaParams
from repro.network.fabric import FabricSimulator
from repro.network.flow import Flow, FlowKind
from repro.network.routing import Router
from repro.network.transport.scda import ScdaTransport
from repro.network.transport.tcp import TcpTransport
from repro.network.tree import TreeTopologyConfig, build_tree_topology
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams
from repro.sim.timers import PeriodicTimer

MBPS = 1e6


def small_config():
    return TreeTopologyConfig(
        base_bandwidth_bps=100 * MBPS,
        num_agg=2,
        racks_per_agg=2,
        hosts_per_rack=2,
        num_clients=4,
        internal_delay_s=0.001,
        client_delay_s=0.005,
    )


def run_random_workload(transport_name: str, seed: int, num_flows: int):
    sim = Simulator()
    topology = build_tree_topology(small_config())
    if transport_name == "scda":
        controller = ScdaController(sim, topology, ScdaControllerConfig())
        transport = ScdaTransport(controller)
    else:
        controller = None
        transport = TcpTransport()
    fabric = FabricSimulator(sim, topology, transport)
    if controller is not None:
        controller.attach_fabric(fabric)

    rng = RandomStreams(seed).stream("flows")
    hosts, clients = topology.hosts(), topology.clients()
    offered = 0.0
    link_overload_observed = []

    def check_feasibility(now):
        loads = {}
        for flow in fabric.active_flows:
            for link in flow.path:
                loads[link.link_id] = loads.get(link.link_id, 0.0) + flow.current_rate_bps
        for link in topology.links:
            if loads.get(link.link_id, 0.0) > link.capacity_bps * 1.001:
                link_overload_observed.append((now, link.link_id))

    PeriodicTimer(sim, 0.05, check_feasibility)

    t = 0.0
    for _ in range(num_flows):
        t += float(rng.exponential(0.05))
        src = clients[int(rng.integers(0, len(clients)))]
        dst = hosts[int(rng.integers(0, len(hosts)))]
        size = float(rng.uniform(50e3, 5e6))
        offered += size
        sim.call_at(t, fabric.start_flow, src, dst, size, FlowKind.DATA)
    sim.run(until=t + 60.0)
    return fabric, offered, link_overload_observed


class TestConservation:
    @pytest.mark.parametrize("transport_name", ["scda", "tcp"])
    def test_delivered_bytes_match_offered_bytes(self, transport_name):
        fabric, offered, overloads = run_random_workload(transport_name, seed=21, num_flows=30)
        assert not fabric.active_flows, "all flows should have drained"
        finished_bytes = sum(f.size_bytes for f in fabric.finished_flows)
        assert finished_bytes == pytest.approx(offered, rel=1e-9)
        # total_bytes_delivered integrates rate*dt; completion clamps the last
        # interval, so it can only match or slightly undershoot the flow sizes.
        assert fabric.total_bytes_delivered <= offered * (1 + 1e-9)
        assert fabric.total_bytes_delivered >= offered * 0.98

    @pytest.mark.parametrize("transport_name", ["scda", "tcp"])
    def test_no_link_ever_carries_more_than_its_capacity(self, transport_name):
        _fabric, _offered, overloads = run_random_workload(transport_name, seed=22, num_flows=25)
        assert overloads == []


class TestScdaAllocationInvariants:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_advertised_rates_never_exceed_effective_capacity(self, seed):
        topology = build_tree_topology(small_config())
        tree = ScdaTree(topology, ScdaParams(alpha=0.95, beta=0.0))
        rng = RandomStreams(seed).stream("load")
        router = Router(topology)
        hosts, clients = topology.hosts(), topology.clients()
        flows = []
        for _ in range(int(rng.integers(0, 24))):
            src = clients[int(rng.integers(0, len(clients)))]
            dst = hosts[int(rng.integers(0, len(hosts)))]
            flow = Flow(src, dst, 1e9, router.path(src, dst))
            flow.current_rate_bps = float(rng.uniform(0, 100 * MBPS))
            flows.append(flow)
        link_flows = {}
        for flow in flows:
            for link in flow.path:
                link_flows.setdefault(link.link_id, []).append(flow)
        tree.run_round(link_flows, now=0.0)
        for link in topology.links:
            assert tree.link_rate_bps(link) <= 0.95 * link.capacity_bps + 1e-6

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_host_metric_bounded_by_its_access_link(self, seed):
        topology = build_tree_topology(small_config())
        tree = ScdaTree(topology, ScdaParams(alpha=0.95, beta=0.0))
        tree.run_round({}, now=0.0)
        for metric in tree.host_metrics():
            host = topology.node(metric.host_id)
            uplink = topology.uplink_of(host)
            downlink = topology.downlink_to(host)
            assert metric.up_bps <= 0.95 * uplink.capacity_bps + 1e-6
            assert metric.down_bps <= 0.95 * downlink.capacity_bps + 1e-6
