"""Tests for the energy substrate (power model, dormancy, accounting)."""

import pytest

from repro.energy.accounting import EnergyAccountant
from repro.energy.dormant import DormancyConfig, DormancyManager
from repro.energy.power_model import PowerState, ServerPowerModel, ServerPowerProfile
from repro.sim.engine import Simulator

MBPS = 1e6


class TestPowerProfile:
    def test_linear_power_model(self):
        profile = ServerPowerProfile(idle_watts=100.0, peak_watts=300.0, dormant_watts=10.0)
        assert profile.power_at(0.0, PowerState.IDLE) == 100.0
        assert profile.power_at(1.0, PowerState.ACTIVE) == 300.0
        assert profile.power_at(0.5, PowerState.ACTIVE) == 200.0

    def test_dormant_state_ignores_utilisation(self):
        profile = ServerPowerProfile(dormant_watts=12.0)
        assert profile.power_at(0.9, PowerState.DORMANT) == 12.0

    def test_utilisation_is_clamped(self):
        profile = ServerPowerProfile()
        assert profile.power_at(5.0, PowerState.ACTIVE) == profile.peak_watts

    def test_invalid_profile_raises(self):
        with pytest.raises(ValueError):
            ServerPowerProfile(idle_watts=400.0, peak_watts=300.0)
        with pytest.raises(ValueError):
            ServerPowerProfile(wake_up_latency_s=-1.0)


class TestPowerModel:
    def test_energy_integration(self):
        model = ServerPowerModel("bs-0", ServerPowerProfile(idle_watts=100.0, peak_watts=100.0))
        model.advance(10.0)
        assert model.energy_joules == pytest.approx(1000.0)

    def test_temperature_signal_is_power_times_interval(self):
        model = ServerPowerModel("bs-0", ServerPowerProfile(idle_watts=150.0, peak_watts=150.0))
        assert model.temperature_signal(0.5) == pytest.approx(75.0)
        with pytest.raises(ValueError):
            model.temperature_signal(0.0)

    def test_state_transitions_count_and_wake_time(self):
        model = ServerPowerModel("bs-0")
        model.set_state(PowerState.DORMANT, now=1.0)
        model.set_state(PowerState.DORMANT, now=2.0)  # no-op
        model.set_state(PowerState.ACTIVE, now=3.0)
        assert model.state_changes == 2
        assert model.last_wake_time_s == 3.0

    def test_average_power_tracks_recent_draw(self):
        model = ServerPowerModel("bs-0", ServerPowerProfile(idle_watts=100.0, peak_watts=300.0))
        model.set_utilisation(1.0)
        model.set_state(PowerState.ACTIVE)
        for _ in range(50):
            model.advance(1.0)
        assert model.average_power_watts == pytest.approx(300.0, rel=0.01)

    def test_negative_values_rejected(self):
        model = ServerPowerModel("bs-0")
        with pytest.raises(ValueError):
            model.advance(-1.0)
        with pytest.raises(ValueError):
            model.set_utilisation(-0.5)


class TestDormancyManager:
    def _manager(self, n=4, **cfg):
        return DormancyManager(
            [f"bs-{i}" for i in range(n)],
            DormancyConfig(scale_down_threshold_bps=50 * MBPS, max_dormant_fraction=0.5, **cfg),
        )

    def test_idle_servers_scale_down_up_to_the_fraction_limit(self):
        manager = self._manager(4)
        rates = {f"bs-{i}": 90 * MBPS for i in range(4)}  # all nearly idle
        util = {f"bs-{i}": 0.0 for i in range(4)}
        manager.update(rates, util, now=0.0)
        assert len(manager.dormant_servers()) == 2  # 50 % of 4

    def test_busy_servers_are_never_scaled_down(self):
        manager = self._manager(2)
        rates = {"bs-0": 90 * MBPS, "bs-1": 10 * MBPS}
        util = {"bs-0": 0.0, "bs-1": 0.9}
        manager.update(rates, util, now=0.0)
        assert manager.dormant_servers() == ["bs-0"]

    def test_dormant_server_wakes_when_utilised(self):
        manager = self._manager(2)
        manager.update({"bs-0": 90 * MBPS, "bs-1": 90 * MBPS}, {"bs-0": 0.0, "bs-1": 0.0}, now=0.0)
        dormant = manager.dormant_servers()[0]
        changed = manager.update(
            {dormant: 90 * MBPS}, {dormant: 0.5}, now=1.0
        )
        assert dormant in changed
        assert not manager.is_dormant(dormant)

    def test_power_lookup_for_selection(self):
        manager = self._manager(2)
        assert manager.power_of("bs-0") > 0
        assert manager.power_of("unknown-host") == 1.0

    def test_total_power_and_energy(self):
        manager = self._manager(3)
        total_before = manager.total_power_watts()
        assert total_before > 0
        joules = manager.advance(10.0)
        assert joules == pytest.approx(total_before * 10.0, rel=0.01)
        assert manager.total_energy_joules() == pytest.approx(joules)

    def test_requires_servers(self):
        with pytest.raises(ValueError):
            DormancyManager([])

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            DormancyConfig(scale_down_threshold_bps=0.0)
        with pytest.raises(ValueError):
            DormancyConfig(max_dormant_fraction=1.5)


class TestEnergyAccountant:
    def test_samples_accumulate_over_time(self):
        sim = Simulator()
        manager = DormancyManager(["bs-0", "bs-1"])
        accountant = EnergyAccountant(sim, manager, sample_interval_s=1.0)
        accountant.start()
        sim.run(until=5.0)
        accountant.stop()
        assert len(accountant.samples) >= 5
        assert accountant.total_energy_joules > 0
        assert accountant.average_power_watts() > 0

    def test_dormant_fleet_consumes_less(self):
        sim = Simulator()
        manager = DormancyManager(["bs-0", "bs-1", "bs-2", "bs-3"])
        # Mark half the fleet dormant before accounting starts.
        manager.update({f"bs-{i}": 1e9 for i in range(4)}, {f"bs-{i}": 0.0 for i in range(4)}, 0.0)
        accountant = EnergyAccountant(sim, manager, sample_interval_s=1.0)
        accountant.start()
        sim.run(until=10.0)
        accountant.stop()

        sim2 = Simulator()
        manager2 = DormancyManager(["bs-0", "bs-1", "bs-2", "bs-3"])
        accountant2 = EnergyAccountant(sim2, manager2, sample_interval_s=1.0)
        accountant2.start()
        sim2.run(until=10.0)
        accountant2.stop()

        assert accountant.total_energy_joules < accountant2.total_energy_joules
        assert accountant.average_dormant_servers() > accountant2.average_dormant_servers()

    def test_invalid_interval_raises(self):
        sim = Simulator()
        manager = DormancyManager(["bs-0"])
        with pytest.raises(ValueError):
            EnergyAccountant(sim, manager, sample_interval_s=0.0)
