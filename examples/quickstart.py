#!/usr/bin/env python3
"""Quickstart: compare SCDA against RandTCP on a small cloud datacenter.

This is the 5-minute tour of the library:

1. pick a scenario (topology + workload) from the paper's evaluation,
2. run both schemes on the *same* workload with ``run_comparison``,
3. read off the headline numbers the paper reports — how much lower the
   average content transfer time is and how much higher the average
   instantaneous throughput is under SCDA.

Run it with::

    python examples/quickstart.py [--seed N] [--sim-time SECONDS]
"""

import argparse
import sys
from pathlib import Path

# Allow running straight from a source checkout.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import ScenarioConfig, check_comparison_shape, run_comparison


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1, help="workload random seed")
    parser.add_argument(
        "--sim-time", type=float, default=10.0, help="seconds of workload to generate"
    )
    parser.add_argument(
        "--arrival-rate", type=float, default=40.0, help="flow arrivals per second"
    )
    args = parser.parse_args()

    print("Building the Pareto/Poisson scenario of Section X-B "
          f"(sim_time={args.sim_time:.0f}s, {args.arrival_rate:.0f} flows/s, seed={args.seed})")
    config = ScenarioConfig.pareto_poisson(
        sim_time=args.sim_time, seed=args.seed, arrival_rate_per_s=args.arrival_rate
    )

    print("Running SCDA and RandTCP on the identical workload ...")
    comparison = run_comparison(config)

    scda, rand = comparison.candidate, comparison.baseline
    print()
    print(f"{'':28s}{'RandTCP':>12s}{'SCDA':>12s}")
    print(f"{'completed flows':28s}{rand.completed_flows:>12d}{scda.completed_flows:>12d}")
    print(f"{'mean FCT (s)':28s}{rand.mean_fct_s():>12.3f}{scda.mean_fct_s():>12.3f}")
    print(
        f"{'median FCT (s)':28s}{rand.fct_statistics().median_s:>12.3f}"
        f"{scda.fct_statistics().median_s:>12.3f}"
    )
    print(
        f"{'p99 FCT (s)':28s}{rand.fct_statistics().p99_s:>12.3f}"
        f"{scda.fct_statistics().p99_s:>12.3f}"
    )
    print(
        f"{'avg inst. thpt (KB/s)':28s}{rand.mean_throughput_kBps():>12.1f}"
        f"{scda.mean_throughput_kBps():>12.1f}"
    )
    print(
        f"{'mean per-flow goodput (KB/s)':28s}{rand.mean_goodput_kBps():>12.1f}"
        f"{scda.mean_goodput_kBps():>12.1f}"
    )
    print()
    print(f"SCDA reduces the mean content transfer time by "
          f"{100 * comparison.fct_reduction_fraction():.0f}% "
          f"(paper reports ≈50%) and raises the mean per-flow goodput by "
          f"{comparison.goodput_gain_fraction() + 1:.1f}x (paper: throughput up to 60% higher; "
          "our flow-level TCP baseline is hit harder by the 120 ms RTT, see EXPERIMENTS.md).")

    shape = check_comparison_shape(comparison)
    print(f"Qualitative shape checks passed: {shape.all_passed}")
    return 0 if shape.all_passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
