#!/usr/bin/env python3
"""SCDA on general (non-tree) datacenter fabrics — Section IX.

SCDA's control plane only needs per-link rate computation plus a routing
table, so it runs unchanged on multi-path fabrics.  This example builds a
k=4 fat tree and a VL2-style Clos, runs the same storage workload under

* RandTCP with ECMP-style shortest-path hashing (the VL2/Hedera baseline),
* Hedera's elephant rerouting on top of RandTCP, and
* SCDA,

and prints the mean FCT per fabric and scheme, plus the bottleneck rate the
widest-path (max/min) route computation of Section IX finds for a sample pair
of servers.

Run it with::

    python examples/general_topologies.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.baselines import HederaConfig, HederaScheduler
from repro.cluster.cluster import StorageCluster, StorageClusterConfig
from repro.cluster.content import Content, ContentClass
from repro.cluster.placement import RandomPlacement, ScdaPlacement
from repro.core import ScdaController, ScdaControllerConfig
from repro.network import FabricSimulator, build_fat_tree, build_vl2_topology
from repro.network.routing import EcmpRouter, WidestPathRouter
from repro.network.transport import ScdaTransport, TcpTransport
from repro.sim import Simulator, RandomStreams

MB = 1024.0 * 1024.0
GBPS = 1e9


def run_storage_workload(topology_builder, scheme: str, seed: int = 5, hedera: bool = False):
    sim = Simulator()
    topology = topology_builder()
    controller = None
    if scheme == "scda":
        controller = ScdaController(sim, topology, ScdaControllerConfig())
        transport = ScdaTransport(controller)
    else:
        transport = TcpTransport()
    router = EcmpRouter(topology)
    fabric = FabricSimulator(sim, topology, transport, router=router)
    if controller is not None:
        controller.attach_fabric(fabric)
        placement = ScdaPlacement(controller)
    else:
        placement = RandomPlacement(seed=seed)
    cluster = StorageCluster(sim, topology, fabric, placement, config=StorageClusterConfig())

    scheduler = None
    if hedera:
        scheduler = HederaScheduler(
            fabric, router, HederaConfig(elephant_threshold_bytes=8 * MB, scheduling_interval_s=1.0)
        )
        scheduler.start()

    rng = RandomStreams(seed).stream("workload")
    clients = topology.clients()
    t = 0.0
    while t < 10.0:
        t += float(rng.exponential(0.15))
        if t >= 10.0:
            break
        client = clients[int(rng.integers(0, len(clients)))]
        size = float(min(rng.lognormal(np.log(2 * MB), 1.0), 30 * MB))
        content = Content.create(size, declared_class=ContentClass.LWHR)
        sim.call_at(t, cluster.write, client, content)

    sim.run(until=60.0)
    if scheduler is not None:
        scheduler.stop()
    fcts = [r.completion_time for r in cluster.completed_requests() if r.completion_time]
    return {
        "mean_fct": float(np.mean(fcts)) if fcts else float("nan"),
        "completed": len(fcts),
        "reroutes": scheduler.reroutes if scheduler else 0,
    }


def main() -> int:
    fabrics = {
        "fat-tree k=4": lambda: build_fat_tree(k=4, num_clients=4),
        "VL2 Clos": lambda: build_vl2_topology(num_clients=4),
    }
    for name, builder in fabrics.items():
        print(f"=== {name} " + "=" * (50 - len(name)))
        randtcp = run_storage_workload(builder, "randtcp")
        hedera = run_storage_workload(builder, "randtcp", hedera=True)
        scda = run_storage_workload(builder, "scda")
        print(f"{'scheme':24s}{'mean FCT (s)':>14s}{'completed':>12s}{'reroutes':>10s}")
        print(f"{'RandTCP (ECMP)':24s}{randtcp['mean_fct']:>14.3f}{randtcp['completed']:>12d}{'-':>10s}")
        print(f"{'RandTCP + Hedera':24s}{hedera['mean_fct']:>14.3f}{hedera['completed']:>12d}"
              f"{hedera['reroutes']:>10d}")
        print(f"{'SCDA':24s}{scda['mean_fct']:>14.3f}{scda['completed']:>12d}{'-':>10s}")

        # Section IX: widest-path (max/min) routing over the advertised rates.
        topology = builder()
        widest = WidestPathRouter(topology)
        hosts = topology.hosts()
        path, bottleneck = widest.widest_path(hosts[0], hosts[-1])
        print(f"widest path {hosts[0].node_id} -> {hosts[-1].node_id}: "
              f"{len(path)} hops, bottleneck {bottleneck / GBPS:.1f} Gb/s")
        print()
    print("SCDA's informed placement and explicit rates carry over to multi-path "
          "fabrics unchanged; Hedera only helps when elephants exceed its threshold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
