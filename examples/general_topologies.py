#!/usr/bin/env python3
"""SCDA on general (non-tree) datacenter fabrics — Section IX.

SCDA's control plane only needs per-link rate computation plus a routing
table, so it runs unchanged on multi-path fabrics.  This example is written
entirely against the registry-driven scenario API (``docs/SCENARIOS.md``):
each fabric is a string key on a declarative
:class:`~repro.experiments.spec.ScenarioSpec`, and each scheme — RandTCP
(the VL2/Hedera baseline), Hedera's elephant rerouting and SCDA — is a
scheme-registry key, so it doubles as an end-to-end exercise of the plugin
registries (it fails loudly if a registration breaks).

It prints the mean FCT per fabric and scheme, plus the bottleneck rate the
widest-path (max/min) route computation of Section IX finds for a sample
pair of servers.

Run it with::

    python examples/general_topologies.py [--sim-time SECONDS]
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.runner import generate_workload, run_scheme
from repro.experiments.spec import ScenarioSpec
from repro.network.routing import WidestPathRouter
from repro.registry import SCHEMES, TOPOLOGIES

MB = 1024.0 * 1024.0
GBPS = 1e9

FABRICS = ("fattree", "vl2", "leafspine")
SCHEME_KEYS = ("rand-tcp", "hedera", "scda")


def fabric_spec(topology: str, sim_time: float, seed: int = 5) -> ScenarioSpec:
    """A small storage workload on the given registered fabric."""
    return ScenarioSpec(
        name=f"general-{topology}",
        seed=seed,
        sim_time_s=sim_time,
        drain_time_s=50.0,
        topology=topology,
        workload="pareto-poisson",
        workload_params={
            "arrival_rate_per_s": 7.0,
            "mean_size_bytes": 2 * MB,
            "pareto_shape": 1.6,
            "cap_bytes": 30 * MB,
            "num_clients": 4,
        },
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sim-time", type=float, default=10.0,
                        help="seconds of workload per fabric and scheme")
    args = parser.parse_args(argv)

    # Resolving through the registries up front makes a broken registration
    # fail immediately (and documents that these keys are the public API).
    for key in FABRICS:
        TOPOLOGIES.get(key)
    for key in SCHEME_KEYS:
        SCHEMES.get(key)

    for topology in FABRICS:
        spec = fabric_spec(topology, args.sim_time)
        title = f"=== {topology} "
        print(title + "=" * max(0, 56 - len(title)))
        workload = generate_workload(spec)  # identical for every scheme
        print(f"{'scheme':24s}{'mean FCT (s)':>14s}{'completed':>12s}{'reroutes':>10s}")
        for scheme in SCHEME_KEYS:
            result = run_scheme(spec, scheme, workload)
            reroutes = result.extras.get("hedera_reroutes")
            reroutes_s = f"{int(reroutes):d}" if reroutes is not None else "-"
            print(f"{result.scheme:24s}{result.mean_fct_s():>14.3f}"
                  f"{result.completed_flows:>12d}{reroutes_s:>10s}")

        # Section IX: widest-path (max/min) routing over the advertised rates.
        topo = spec.build_topology()
        widest = WidestPathRouter(topo)
        hosts = topo.hosts()
        path, bottleneck = widest.widest_path(hosts[0], hosts[-1])
        print(f"widest path {hosts[0].node_id} -> {hosts[-1].node_id}: "
              f"{len(path)} hops, bottleneck {bottleneck / GBPS:.1f} Gb/s")
        print()
    print("SCDA's informed placement and explicit rates carry over to multi-path "
          "fabrics unchanged; Hedera only helps when elephants exceed its threshold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
