#!/usr/bin/env python3
"""SLA-aware operation: reservations, priorities and real-time violation detection.

This example exercises the parts of SCDA that the headline figures do not
show directly (Sections IV-A and IV-C):

* a *gold* tenant reserves a minimum rate for its uploads (``M_j``),
* short flows are boosted with shortest-job-first priority weights (``℘_j``),
* the RM/RA hierarchy detects SLA violations (demand exceeding the effective
  link capacity) within one control interval and the controller reports where
  they happened, and
* the ``ADD_BANDWIDTH`` mitigation brings reserve capacity online so the
  violations stop.

Run it with::

    python examples/sla_monitoring.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster.cluster import StorageCluster, StorageClusterConfig
from repro.cluster.content import Content, ContentClass
from repro.cluster.placement import ScdaPlacement
from repro.core import ScdaController, ScdaControllerConfig, SjfWeightPolicy, SlaPolicy
from repro.core.rate_metric import ScdaParams
from repro.core.sla import MitigationAction, check_flow_slas
from repro.network import FabricSimulator, TreeTopologyConfig, build_tree_topology
from repro.network.flow import FlowKind
from repro.network.transport import ScdaTransport
from repro.sim import Simulator

MBPS = 1e6
MB = 1024.0 * 1024.0


def build_stack(mitigation: MitigationAction):
    sim = Simulator()
    topology = build_tree_topology(
        TreeTopologyConfig(
            base_bandwidth_bps=100 * MBPS,
            num_agg=2,
            racks_per_agg=2,
            hosts_per_rack=3,
            num_clients=6,
            client_bandwidth_bps=300 * MBPS,
        )
    )
    controller = ScdaController(
        sim,
        topology,
        ScdaControllerConfig(
            params=ScdaParams(control_interval_s=0.01),
            sla_mitigation=mitigation,
            sla_bandwidth_boost=1.5,
        ),
        weight_policy=SjfWeightPolicy(reference_size_bytes=1 * MB),
    )
    fabric = FabricSimulator(sim, topology, ScdaTransport(controller))
    controller.attach_fabric(fabric)
    cluster = StorageCluster(
        sim, topology, fabric, ScdaPlacement(controller), config=StorageClusterConfig()
    )
    return sim, topology, controller, fabric, cluster


def run(mitigation: MitigationAction):
    sim, topology, controller, fabric, cluster = build_stack(mitigation)
    clients = topology.clients()
    gold_sla = SlaPolicy("gold", min_throughput_bps=20 * MBPS, max_fct_s=5.0)

    gold_requests = []
    # The gold tenant uploads steadily, with an explicit 20 Mb/s reservation.
    for i in range(8):
        content = Content.create(8 * MB, declared_class=ContentClass.LWHR, owner="gold")
        request = cluster.write(
            clients[0], content, flow_kind=FlowKind.DATA, created_at=None, reserve_bps=20 * MBPS
        )
        gold_requests.append(request)
        sim.run(until=0.5 * (i + 1))

    # Meanwhile a noisy tenant floods one rack with best-effort bulk traffic.
    for i in range(30):
        content = Content.create(12 * MB, declared_class=ContentClass.LWLR, owner="bulk")
        cluster.write(clients[1 + (i % 3)], content, flow_kind=FlowKind.DATA)
    sim.run(until=30.0)

    gold_flows = [r.flow for r in gold_requests if r.flow is not None]
    offenders = check_flow_slas(gold_flows, lambda f: gold_sla)
    return controller, gold_flows, offenders


def main() -> int:
    print("=== Without mitigation " + "=" * 40)
    controller, gold_flows, offenders = run(MitigationAction.NONE)
    print(f"gold uploads: {len(gold_flows)}, SLA offenders: {len(offenders)}")
    print(f"SLA violations detected by the RM/RA hierarchy: {controller.sla_monitor.count}")
    hot = sorted(controller.sla_monitor.summary().items(), key=lambda kv: -kv[1])[:3]
    for location, count in hot:
        print(f"  hottest detector: {location:10s} ({count} violation reports)")

    print()
    print("=== With ADD_BANDWIDTH mitigation (reserve links) " + "=" * 14)
    controller2, gold_flows2, offenders2 = run(MitigationAction.ADD_BANDWIDTH)
    print(f"gold uploads: {len(gold_flows2)}, SLA offenders: {len(offenders2)}")
    print(f"SLA violations detected: {controller2.sla_monitor.count}")
    boosted = {v.location for v in controller2.sla_monitor.violations
               if v.mitigation is MitigationAction.ADD_BANDWIDTH}
    print(f"links boosted with reserve capacity at: {sorted(boosted) if boosted else 'none'}")

    print()
    print("The reservation keeps the gold tenant's uploads at or above their "
          "minimum rate even while the bulk tenant saturates the rack; the "
          "violation reports tell the operator exactly which links ran out of "
          "capacity, and the mitigation removes the remaining offenders "
          f"({len(offenders)} -> {len(offenders2)}).")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
