#!/usr/bin/env python3
"""Video CDN scenario: YouTube-like uploads with and without control flows.

Reproduces the workload of the paper's Section X-A1 (Figures 7-12) at a
configurable scale and prints, for both scheme variants:

* the average instantaneous throughput over simulated time,
* the content upload time CDF at a few percentiles, and
* the AFCT-versus-file-size table.

Run it with::

    python examples/video_cdn_upload.py [--with-control/--no-control]
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.experiments import ScenarioConfig, run_comparison
from repro.experiments.figures import figure07, figure08, figure09, figure10, figure11, figure12

MB = 1024.0 * 1024.0


def print_figure_table(figure) -> None:
    print(f"--- {figure.figure_id}: {figure.title}")
    print(figure.as_table())
    print()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sim-time", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=7)
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--with-control", dest="control", action="store_true", default=True,
                       help="include the HTTP control flows (Figures 7-9)")
    group.add_argument("--no-control", dest="control", action="store_false",
                       help="video flows only (Figures 10-12)")
    args = parser.parse_args()

    if args.control:
        config = ScenarioConfig.video_with_control(sim_time=args.sim_time, seed=args.seed)
        throughput_fig, cdf_fig, afct_fig = figure07, figure08, figure09
    else:
        config = ScenarioConfig.video_without_control(sim_time=args.sim_time, seed=args.seed)
        throughput_fig, cdf_fig, afct_fig = figure10, figure11, figure12

    print(f"Scenario: {config.name} — X = {config.topology.base_bandwidth_bps / 1e6:.0f} Mb/s, "
          f"K = {config.topology.bandwidth_factor:g}, "
          f"{config.topology.num_hosts} block servers, {config.topology.num_clients} clients")
    comparison = run_comparison(config)

    print_figure_table(throughput_fig(comparison=comparison))
    print_figure_table(afct_fig(comparison=comparison))

    cdf = cdf_fig(comparison=comparison)
    print(f"--- {cdf.figure_id}: {cdf.title}")
    print("scheme       p50 FCT   p90 FCT   p99 FCT   (seconds)")
    for result in (comparison.baseline, comparison.candidate):
        fcts = result.fcts()
        print(f"{result.scheme:12s}{np.percentile(fcts, 50):>8.2f}"
              f"{np.percentile(fcts, 90):>10.2f}{np.percentile(fcts, 99):>10.2f}")
    print()

    print(f"SCDA upload times are {100 * comparison.fct_reduction_fraction():.0f}% lower on average; "
          f"its FCT CDF dominates RandTCP's over "
          f"{100 * comparison.cdf_dominance():.0f}% of the FCT range.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
