#!/usr/bin/env python3
"""Load sweep: does RandTCP ever catch up, and what does SCDA's control plane cost?

An extension of the paper's evaluation: sweep the offered load of the
Pareto/Poisson scenario, plot mean FCT for both schemes as an ASCII chart,
and report the estimated SCDA control-plane overhead at each load (RM/RA
reports every τ plus the per-request protocol messages of Section VIII).

Run it with::

    python examples/load_sweep_analysis.py [--rates 15 40 80]
    python examples/load_sweep_analysis.py --executor process --jobs 4 \
        --store /tmp/load_sweep.jsonl   # parallel + resumable
"""

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.ascii_plot import ascii_line_plot
from repro.core.overhead import estimate_control_overhead
from repro.experiments.sweeps import sweep_offered_load
from repro.network.tree import TreeTopologyConfig, build_tree_topology


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rates", type=float, nargs="+", default=[15.0, 40.0, 80.0],
                        help="arrival rates (flows/s) to sweep")
    parser.add_argument("--sim-time", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--executor", default="serial",
                        help="execution backend: serial, thread or process")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker count for pooled executors")
    parser.add_argument("--store", default=None,
                        help="JSONL result store enabling resume across runs")
    args = parser.parse_args()

    print(f"Sweeping offered load: {args.rates} flows/s "
          f"({args.sim_time:.0f}s of workload per point, both schemes per point, "
          f"executor={args.executor})")
    sweep = sweep_offered_load(
        sorted(args.rates), sim_time=args.sim_time, seed=args.seed,
        executor=args.executor, max_workers=args.jobs, store=args.store,
    )

    print()
    print(sweep.as_table())
    print()
    plot = ascii_line_plot(
        {
            "RandTCP": (sweep.parameters(), [p.baseline_mean_fct_s for p in sweep.points]),
            "SCDA": (sweep.parameters(), [p.candidate_mean_fct_s for p in sweep.points]),
        },
        width=60,
        height=14,
        x_label="arrival rate (flows/s)",
        y_label="mean FCT (s)",
        title="Mean FCT vs offered load",
    )
    print(plot)

    crossovers = sweep.crossover_points()
    print()
    if crossovers:
        print(f"RandTCP catches up at: {crossovers}")
    else:
        print("No crossover: SCDA's mean FCT stays below RandTCP's at every load level "
              f"(speedup {min(sweep.speedups()):.1f}x – {max(sweep.speedups()):.1f}x).")

    topology = build_tree_topology(TreeTopologyConfig())
    print()
    print("Estimated SCDA control-plane overhead (RM/RA reports every 10 ms, "
          "delta-encoded, plus request protocol messages):")
    for rate in sorted(args.rates):
        report = estimate_control_overhead(topology, 0.010, request_rate_per_s=rate)
        fraction = report.overhead_fraction_of_capacity(topology)
        print(f"  {rate:6.0f} flows/s -> {report.control_bytes_per_second_delta / 1e3:8.1f} KB/s "
              f"of control traffic ({100 * fraction:.4f}% of fabric capacity)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
