#!/usr/bin/env python3
"""Energy-aware placement: dormant servers and rate-per-watt selection.

Section VII-C/D of the paper: passive (rarely accessed) content is replicated
onto *dormant* servers — nearly idle machines kept in a low-power state —
while interactive content stays away from them, so the dormant servers stay
dormant.  Heterogeneous server power profiles additionally let SCDA pick the
most efficient server per unit of achievable rate.

The example runs the same mixed active/passive workload twice — with and
without scale-down — and reports fleet energy, the number of dormant servers
and where the passive replicas ended up.

Run it with::

    python examples/energy_aware_placement.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster.cluster import StorageCluster, StorageClusterConfig
from repro.cluster.content import Content, ContentClass
from repro.cluster.placement import ScdaPlacement
from repro.core import ScdaController, ScdaControllerConfig
from repro.energy import DormancyConfig, DormancyManager, EnergyAccountant, ServerPowerProfile
from repro.network import FabricSimulator, TreeTopologyConfig, build_tree_topology
from repro.network.transport import ScdaTransport
from repro.sim import Simulator, PeriodicTimer, RandomStreams

MBPS = 1e6
MB = 1024.0 * 1024.0


def run_scenario(enable_scale_down: bool, seed: int = 3):
    sim = Simulator()
    topology = build_tree_topology(
        TreeTopologyConfig(base_bandwidth_bps=200 * MBPS, num_agg=2, racks_per_agg=2,
                           hosts_per_rack=4, num_clients=4)
    )
    server_ids = [h.node_id for h in topology.hosts()]

    # Heterogeneous power profiles: older servers draw more power (Section VII-D).
    profiles = {}
    for index, server_id in enumerate(server_ids):
        age_penalty = 1.0 + 0.05 * (index % 4)
        profiles[server_id] = ServerPowerProfile(
            idle_watts=140.0 * age_penalty, peak_watts=280.0 * age_penalty, dormant_watts=12.0
        )
    dormancy = DormancyManager(
        server_ids,
        DormancyConfig(
            scale_down_threshold_bps=100 * MBPS,
            max_dormant_fraction=0.5 if enable_scale_down else 0.0,
        ),
        profiles=profiles,
    )

    controller = ScdaController(
        sim,
        topology,
        ScdaControllerConfig(scale_down_threshold_bps=100 * MBPS),
        power_lookup=dormancy.power_of,
        dormant_lookup=dormancy.is_dormant,
    )
    fabric = FabricSimulator(sim, topology, ScdaTransport(controller))
    controller.attach_fabric(fabric)
    cluster = StorageCluster(sim, topology, fabric, ScdaPlacement(controller),
                             config=StorageClusterConfig())
    accountant = EnergyAccountant(sim, dormancy, sample_interval_s=1.0)
    accountant.start()

    def refresh_dormancy(now):
        rates = {m.host_id: m.up_bps for m in controller.tree.host_metrics()}
        utilisation = {}
        for host_id in server_ids:
            uplink = topology.uplink_of(topology.node(host_id))
            used = sum(f.current_rate_bps for f in fabric.active_flows if f.uses_link(uplink))
            utilisation[host_id] = used / uplink.capacity_bps
        dormancy.update(rates, utilisation, now)

    PeriodicTimer(sim, 1.0, refresh_dormancy)

    # Mixed workload: 60 % interactive chatter, 40 % passive archives.
    streams = RandomStreams(seed)
    rng = streams.stream("arrivals")
    clients = topology.clients()
    passive_ids = []
    t = 0.0
    while t < 25.0:
        t += float(rng.exponential(0.35))
        if t >= 25.0:
            break
        client = clients[int(rng.integers(0, len(clients)))]
        if rng.random() < 0.4:
            content = Content.create(512 * 1024.0, declared_class=ContentClass.LWLR, prefix="archive")
            passive_ids.append(content.content_id)
        else:
            content = Content.create(3 * MB, declared_class=ContentClass.HWHR, prefix="chat")
        sim.call_at(t, cluster.write, client, content)

    sim.run(until=45.0)
    accountant.stop()

    # Where did the passive replicas land?
    passive_replica_hosts = set()
    for content_id in passive_ids:
        nns = cluster.name_node_for_content(content_id)
        if nns.knows(content_id):
            record = nns.record_of(content_id)
            for server in record.block_map.servers():
                if server != record.primary_server:
                    passive_replica_hosts.add(server)

    return {
        "energy_kj": accountant.total_energy_joules / 1e3,
        "avg_power_w": accountant.average_power_watts(),
        "avg_dormant": accountant.average_dormant_servers(),
        "dormant_now": dormancy.dormant_servers(),
        "passive_replica_hosts": passive_replica_hosts,
        "completed": len(cluster.completed_requests()),
        "issued": len(cluster.requests),
    }


def main() -> int:
    with_sd = run_scenario(enable_scale_down=True)
    without_sd = run_scenario(enable_scale_down=False)

    print(f"{'':34s}{'no scale-down':>16s}{'with scale-down':>18s}")
    print(f"{'completed / issued requests':34s}"
          f"{without_sd['completed']:>9d}/{without_sd['issued']:<6d}"
          f"{with_sd['completed']:>11d}/{with_sd['issued']:<6d}")
    print(f"{'fleet energy (kJ)':34s}{without_sd['energy_kj']:>16.1f}{with_sd['energy_kj']:>18.1f}")
    print(f"{'average fleet power (W)':34s}{without_sd['avg_power_w']:>16.1f}{with_sd['avg_power_w']:>18.1f}")
    print(f"{'average dormant servers':34s}{without_sd['avg_dormant']:>16.1f}{with_sd['avg_dormant']:>18.1f}")
    savings = 1.0 - with_sd["energy_kj"] / without_sd["energy_kj"]
    print()
    print(f"Scale-down keeps {with_sd['avg_dormant']:.1f} servers dormant on average and saves "
          f"{100 * savings:.0f}% of the fleet energy while completing the same workload.")
    overlap = with_sd["passive_replica_hosts"] & set(with_sd["dormant_now"])
    print(f"Passive replicas were steered onto {len(with_sd['passive_replica_hosts'])} servers, "
          f"{len(overlap)} of which are currently dormant — passive data lives on the sleeping "
          "part of the fleet, exactly as Section VII-C intends.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
