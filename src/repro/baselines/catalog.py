"""Built-in scheme registrations (the "transports" axis of the evaluation).

A scheme pairs a placement policy with a transport model (plus routing and
optional Hedera rerouting); the registry maps short CLI-friendly keys onto
the frozen :class:`~repro.baselines.schemes.SchemeSpec` constants, so
``run_scenario(spec, schemes=("scda", "rand-tcp"))`` and
``--candidate hedera`` resolve without touching the runner.
"""

from __future__ import annotations

from repro.baselines.schemes import (
    HEDERA_TCP,
    IDEAL_ORACLE,
    LEAST_LOADED_TCP,
    RAND_TCP,
    RANDOM_SELECT_SCDA,
    ROUND_ROBIN_TCP,
    SCDA_SCHEME,
    SCDA_SELECT_TCP,
    SCDA_SIMPLIFIED,
    SchemeSpec,
    VLB_TCP,
)
from repro.registry import SCHEMES


def _constant(spec: SchemeSpec):
    """A builder returning the predefined (frozen) scheme spec."""

    def build() -> SchemeSpec:
        return spec

    return build


SCHEMES.register(
    "scda",
    _constant(SCDA_SCHEME),
    description="the paper's system: SCDA selection + explicit-rate transport",
)

SCHEMES.register(
    "rand-tcp",
    _constant(RAND_TCP),
    description="the paper's baseline: random selection + TCP (VL2/Hedera-class)",
    aliases=("randtcp",),
)

SCHEMES.register(
    "ideal",
    _constant(IDEAL_ORACLE),
    description="upper bound: least-loaded selection + instantaneous max-min rates",
    aliases=("ideal-oracle", "oracle"),
)

SCHEMES.register(
    "vlb",
    _constant(VLB_TCP),
    description="VL2's valiant load balancing: random bounce through an intermediate",
)

SCHEMES.register(
    "hedera",
    _constant(HEDERA_TCP),
    description="hashed ECMP + central elephant-flow rerouting (NSDI 2010)",
)

SCHEMES.register(
    "scda-select-tcp",
    _constant(SCDA_SELECT_TCP),
    description="ablation: SCDA's server selection but TCP rate control",
)

SCHEMES.register(
    "random-select-scda",
    _constant(RANDOM_SELECT_SCDA),
    description="ablation: random selection but SCDA's explicit-rate transport",
)

SCHEMES.register(
    "round-robin-tcp",
    _constant(ROUND_ROBIN_TCP),
    description="engineering baseline: round-robin selection + TCP",
)

SCHEMES.register(
    "least-loaded-tcp",
    _constant(LEAST_LOADED_TCP),
    description="engineering baseline: least-loaded selection + TCP",
)

SCHEMES.register(
    "scda-simplified",
    _constant(SCDA_SIMPLIFIED),
    description="SCDA with the simplified rate metric of equation 5",
)
