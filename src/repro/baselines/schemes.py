"""Scheme specifications: (placement policy, transport model) pairs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


PLACEMENTS = ("random", "scda", "round-robin", "least-loaded")
TRANSPORTS = ("tcp", "scda", "ideal")
ROUTINGS = ("auto", "shortest", "ecmp", "vlb")


@dataclass(frozen=True)
class SchemeSpec:
    """Declarative description of a scheme; the experiment runner builds it.

    Attributes
    ----------
    name:
        Display name used in figures and reports.
    placement:
        One of ``random``, ``scda``, ``round-robin``, ``least-loaded``.
    transport:
        One of ``tcp``, ``scda``, ``ideal``.
    power_aware:
        Use the rate-per-watt selection variant (Section VII-D).
    simplified_metric:
        Use equation 5 instead of equations 2-4 in the RM/RA calculators.
    routing:
        Path selection: ``auto`` (shortest path on the tree, equal-cost
        routing on multi-path fabrics), ``shortest``, ``ecmp`` (hash each
        flow onto one of the equal-cost shortest paths) or ``vlb`` (bounce
        through a random intermediate switch, VL2-style).
    use_hedera:
        Attach a Hedera elephant-rerouting scheduler to the fabric.
    """

    name: str
    placement: str
    transport: str
    power_aware: bool = False
    simplified_metric: bool = False
    routing: str = "auto"
    use_hedera: bool = False

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r} (available: {', '.join(PLACEMENTS)})"
            )
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r} (available: {', '.join(TRANSPORTS)})"
            )
        if self.routing not in ROUTINGS:
            raise ValueError(
                f"unknown routing {self.routing!r} (available: {', '.join(ROUTINGS)})"
            )

    @property
    def needs_controller(self) -> bool:
        """True when the scheme requires an :class:`ScdaController`."""
        return self.placement == "scda" or self.transport == "scda" or self.power_aware


#: The paper's baseline: random server selection + TCP (VL2/Hedera-style).
RAND_TCP = SchemeSpec("RandTCP", placement="random", transport="tcp")

#: The paper's system: SCDA selection + SCDA explicit-rate transport.
SCDA_SCHEME = SchemeSpec("SCDA", placement="scda", transport="scda")

#: Ablation: SCDA's server selection but TCP rate control.
SCDA_SELECT_TCP = SchemeSpec("SCDA-select+TCP", placement="scda", transport="tcp")

#: Ablation: random selection but SCDA's explicit-rate transport.
RANDOM_SELECT_SCDA = SchemeSpec("Random+SCDA-rate", placement="random", transport="scda")

#: Upper bound: random selection replaced by least-loaded and an instantaneous
#: centralised max-min allocation.
IDEAL_ORACLE = SchemeSpec("Ideal-oracle", placement="least-loaded", transport="ideal")

#: Engineering baselines used in the ablation benches.
ROUND_ROBIN_TCP = SchemeSpec("RoundRobin+TCP", placement="round-robin", transport="tcp")
LEAST_LOADED_TCP = SchemeSpec("LeastLoaded+TCP", placement="least-loaded", transport="tcp")

#: SCDA with the simplified rate metric of equation 5.
SCDA_SIMPLIFIED = SchemeSpec(
    "SCDA-simplified", placement="scda", transport="scda", simplified_metric=True
)

#: VL2's valiant load balancing: random placement + TCP, each flow bounced
#: through a random intermediate switch.
VLB_TCP = SchemeSpec("VLB+TCP", placement="random", transport="tcp", routing="vlb")

#: Hedera: random placement + TCP over hashed ECMP, with the central
#: elephant-rerouting scheduler attached.
HEDERA_TCP = SchemeSpec(
    "Hedera", placement="random", transport="tcp", routing="ecmp", use_hedera=True
)


def all_schemes() -> List[SchemeSpec]:
    """Every predefined scheme (useful for sweep-style benchmarks)."""
    return [
        RAND_TCP,
        SCDA_SCHEME,
        SCDA_SELECT_TCP,
        RANDOM_SELECT_SCDA,
        IDEAL_ORACLE,
        ROUND_ROBIN_TCP,
        LEAST_LOADED_TCP,
        SCDA_SIMPLIFIED,
        VLB_TCP,
        HEDERA_TCP,
    ]
