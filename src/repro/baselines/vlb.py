"""Valiant load balancing (VLB) and ECMP path choice helpers.

VL2 forwards flows through a *random* intermediate switch (VLB) and spreads
them over equal-cost paths with ECMP; per-flow, both reduce to hashing the
flow onto one of the candidate paths, which — as the SCDA paper points out —
"can lead to persistent congestion on some links while other links are
under-utilized" for elephant-heavy traffic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.network.routing import EcmpRouter, Path
from repro.network.topology import Node


def ecmp_path_choice(router: EcmpRouter, src: Node, dst: Node, flow_id: int) -> Path:
    """ECMP: deterministic hash of the flow id onto one equal-cost path."""
    return router.path_for_flow(src, dst, flow_id)


def vlb_path_choice(
    router: EcmpRouter,
    src: Node,
    dst: Node,
    rng: np.random.Generator,
    intermediates: Optional[Sequence[Node]] = None,
) -> Path:
    """VLB: bounce through a uniformly random intermediate switch.

    When ``intermediates`` is not given, the highest-level switches of the
    topology are used (VL2 bounces off the intermediate tier).
    """
    topo = router.topology
    if intermediates is None:
        top = topo.max_level()
        intermediates = [s for s in topo.switches() if s.level == top]
    if not intermediates:
        return router.path(src, dst)
    pivot = intermediates[int(rng.integers(0, len(intermediates)))]
    first_leg = router.path(src, pivot)
    second_leg = router.path(pivot, dst)
    # Avoid degenerate bounces (pivot coincides with an endpoint) and
    # immediate hairpins: if the same link appears in both legs the direct
    # path is just as random for our purposes.
    seen = {l.link_id for l in first_leg}
    if not first_leg or not second_leg or any(l.link_id in seen for l in second_leg):
        return router.path(src, dst)
    return first_leg + second_leg


class VlbRouter(EcmpRouter):
    """Router that draws a fresh VLB route for every *new flow*.

    Used by the ``vlb`` scheme: the fabric asks
    :meth:`~repro.network.routing.Router.path_for_new_flow` exactly once per
    flow start, and each call bounces through a uniformly random
    intermediate switch (seeded, so runs stay reproducible).  ``path()``
    remains the deterministic shortest path, so estimation callers such as
    ``base_rtt`` neither consume RNG draws nor see a route the flow will
    not take.
    """

    def __init__(self, topology, seed: int = 0, max_paths: int = 8) -> None:
        super().__init__(topology, max_paths)
        self._rng = np.random.default_rng(seed)
        top = topology.max_level()
        self._intermediates = [s for s in topology.switches() if s.level == top]

    def path_for_new_flow(self, src: Node, dst: Node) -> Path:
        if src.node_id == dst.node_id:
            return []
        return vlb_path_choice(self, src, dst, self._rng, self._intermediates)
