"""Baseline schemes and scheme composition.

A *scheme* is the pair (server-selection policy, transport model).  The paper
compares

* **SCDA** — RM/RA-driven selection + explicit-rate transport, against
* **RandTCP** — random server selection + TCP, "a random server selection and
  TCP rate control approach used by well known architectures such as VL2 and
  Hedera".

The ablation benchmarks also exercise the two mixed combinations (SCDA
selection with TCP, random selection with the SCDA transport) and an
idealised centralised max-min oracle.  :mod:`~repro.baselines.hedera`
additionally models Hedera's elephant-flow rerouting for multi-path fabrics.
"""

from repro.baselines.schemes import (
    SchemeSpec,
    RAND_TCP,
    SCDA_SCHEME,
    SCDA_SELECT_TCP,
    RANDOM_SELECT_SCDA,
    IDEAL_ORACLE,
    ROUND_ROBIN_TCP,
    LEAST_LOADED_TCP,
    SCDA_SIMPLIFIED,
    VLB_TCP,
    HEDERA_TCP,
    all_schemes,
)
from repro.baselines.hedera import HederaScheduler, HederaConfig
from repro.baselines.vlb import VlbRouter, vlb_path_choice, ecmp_path_choice

__all__ = [
    "SchemeSpec",
    "RAND_TCP",
    "SCDA_SCHEME",
    "SCDA_SELECT_TCP",
    "RANDOM_SELECT_SCDA",
    "IDEAL_ORACLE",
    "ROUND_ROBIN_TCP",
    "LEAST_LOADED_TCP",
    "SCDA_SIMPLIFIED",
    "VLB_TCP",
    "HEDERA_TCP",
    "all_schemes",
    "HederaScheduler",
    "HederaConfig",
    "VlbRouter",
    "vlb_path_choice",
    "ecmp_path_choice",
]
