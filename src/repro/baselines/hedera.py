"""Hedera-style elephant-flow rerouting (Al-Fares et al., NSDI 2010).

Hedera schedules mice with ECMP and periodically moves *elephant* flows
(those that have transferred more than a threshold — 100 MB in the paper's
discussion) onto less-loaded equal-cost paths using a central scheduler.  The
SCDA paper's related-work section points out that this helps little when most
flows are below the threshold; the ablation benchmark reproduces that
observation on a multi-path fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.network.fabric import FabricSimulator
from repro.network.flow import Flow, FlowState
from repro.network.routing import EcmpRouter
from repro.sim.timers import PeriodicTimer


@dataclass
class HederaConfig:
    """Scheduler parameters."""

    elephant_threshold_bytes: float = 100 * 1024 * 1024.0
    scheduling_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.elephant_threshold_bytes <= 0:
            raise ValueError("elephant threshold must be positive")
        if self.scheduling_interval_s <= 0:
            raise ValueError("scheduling interval must be positive")


class HederaScheduler:
    """Periodically reroutes elephants onto the least-loaded equal-cost path."""

    def __init__(
        self,
        fabric: FabricSimulator,
        router: EcmpRouter,
        config: Optional[HederaConfig] = None,
    ) -> None:
        self.fabric = fabric
        self.router = router
        self.config = config or HederaConfig()
        self.reroutes = 0
        self._timer: Optional[PeriodicTimer] = None

    def start(self) -> None:
        """Begin periodic scheduling."""
        if self._timer is None:
            self._timer = PeriodicTimer(
                self.fabric.sim, self.config.scheduling_interval_s, self._schedule_round
            )

    def stop(self) -> None:
        """Stop scheduling."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def elephants(self) -> List[Flow]:
        """Active flows that have already transferred more than the threshold."""
        return [
            f
            for f in self.fabric.active_flows
            if f.transferred_bytes >= self.config.elephant_threshold_bytes
        ]

    def _path_load(self, path) -> float:
        """Total demand currently offered to the links of ``path``."""
        load = 0.0
        for link in path:
            for flow in self.fabric.active_flows:
                if flow.uses_link(link):
                    load += flow.demand_rate_bps
        return load

    def _schedule_round(self, now: float) -> None:
        for flow in self.elephants():
            if flow.state is not FlowState.ACTIVE:
                continue
            paths = self.router.equal_cost_paths(flow.src, flow.dst)
            if len(paths) <= 1:
                continue
            current_links = {l.link_id for l in flow.path}
            best_path = min(paths, key=self._path_load)
            if {l.link_id for l in best_path} != current_links:
                self.fabric.reroute_flow(flow, best_path)
                self.reroutes += 1
