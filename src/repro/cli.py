"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``
    Run two schemes (default SCDA vs RandTCP) on a scenario — one of the
    paper's named scenarios, optionally with the topology or workload swapped
    by registry key (``--topology fattree``) — and print the headline numbers.
``run``
    Run a declarative scenario file (``repro run scenario.json``) produced by
    :meth:`~repro.experiments.spec.ScenarioSpec.save`, optionally on a
    parallel executor backend with a resumable result store
    (``--executor process --jobs 4 --results out.jsonl``), with a dynamics
    script injecting faults and churn mid-run (``--dynamics script.json``;
    see ``docs/DYNAMICS.md``), and/or as an N-seed replication ensemble
    whose headline numbers carry 95 % confidence intervals (``--seeds 5``;
    see ``docs/ANALYSIS.md``).
``sweep``
    Plan a load or τ sweep into jobs and run it on an executor backend
    (``repro sweep load --points 15,40,80 --executor process --jobs 4``).
    Points already present in ``--results`` are not recomputed.
    ``--reseed`` derives a per-point seed from each point's identity
    instead of reusing the base seed everywhere.
``list-plugins``
    Show every registered topology, workload, scheme, placement, executor,
    dynamics event and analysis (``--json`` for machine-readable output).
``figure``
    Regenerate one of the paper's figures (fig07..fig18) and print it as a
    table and/or an ASCII plot; ``--seeds N`` renders the multi-seed
    ensemble with confidence bands.
``workload``
    Generate one of the synthetic workloads and write it to CSV.
``replay``
    Replay a workload CSV through both schemes and compare them.
``report``
    Run a registered analysis over a result store
    (``repro report --results store.jsonl --analysis scheme-comparison``),
    or render a markdown report from the benchmark result JSONs.
``worker``
    Run a cluster worker daemon (``repro worker --port 8150 --shard-dir
    shards/``): an HTTP job runner appending results to a local write-once
    shard.  See ``docs/CLUSTER.md``.
``serve``
    Run the coordinator daemon: HTTP job submission plus the result-store
    query API, optionally fanning out to workers (``--executor cluster
    --hosts h1:8150,h2:8150``).
``store``
    Result-store maintenance: ``store merge`` unions worker shards into one
    store (conflicts abort — cross-host nondeterminism is an error),
    ``store compact`` rewrites a store with one line per key.

The CLI only wraps the public library API, so everything it does can also be
done programmatically; it exists to make quick experiments reproducible from
a shell.  Scenario composition (topologies × workloads × schemes) is
registry-driven — see ``docs/SCENARIOS.md`` for the plugin API and the
scenario-file format.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro._version import __version__

SCENARIOS = ("video", "video-nocontrol", "datacenter-k1", "datacenter-k3", "pareto")


def _scenario_from_name(name: str, sim_time: float, seed: int):
    from repro.experiments.config import ScenarioConfig

    if name == "video":
        return ScenarioConfig.video_with_control(sim_time=sim_time, seed=seed)
    if name == "video-nocontrol":
        return ScenarioConfig.video_without_control(sim_time=sim_time, seed=seed)
    if name == "datacenter-k1":
        return ScenarioConfig.datacenter(bandwidth_factor=1.0, sim_time=sim_time, seed=seed)
    if name == "datacenter-k3":
        return ScenarioConfig.datacenter(bandwidth_factor=3.0, sim_time=sim_time, seed=seed)
    if name == "pareto":
        return ScenarioConfig.pareto_poisson(sim_time=sim_time, seed=seed)
    raise ValueError(f"unknown scenario {name!r}; expected one of {SCENARIOS}")


def _scenario_spec(args: argparse.Namespace):
    """The declarative spec for a command's scenario arguments.

    Starts from the named paper scenario and swaps the topology and/or the
    workload by registry key when ``--topology`` / ``--workload`` are given
    (resetting the respective params to the plugin's defaults).
    """
    spec = _scenario_from_name(args.scenario, args.sim_time, args.seed).to_spec()
    topology = getattr(args, "topology", None)
    workload = getattr(args, "workload", None)
    if topology:
        spec = spec.with_topology(topology).with_overrides(name=f"{spec.name}+{topology}")
    if workload:
        spec = spec.with_workload(workload).with_overrides(name=f"{spec.name}+{workload}")
    return spec


def _add_common_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", choices=SCENARIOS, default="pareto",
                        help="which of the paper's scenarios to start from")
    parser.add_argument("--sim-time", type=float, default=10.0,
                        help="seconds of workload to generate")
    parser.add_argument("--seed", type=int, default=1, help="workload random seed")
    parser.add_argument("--topology", default=None, metavar="KEY",
                        help="swap the fabric by registry key (e.g. fattree, vl2, "
                             "leafspine); see 'list-plugins'")
    parser.add_argument("--workload", default=None, metavar="KEY",
                        help="swap the workload by registry key (e.g. datacenter); "
                             "see 'list-plugins'")


def _add_scheme_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--candidate", default="scda", metavar="SCHEME",
                        help="candidate scheme registry key (default: scda)")
    parser.add_argument("--baseline", default="rand-tcp", metavar="SCHEME",
                        help="baseline scheme registry key (default: rand-tcp)")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_executor_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--executor", default="serial", metavar="KEY",
                        help="execution backend registry key (serial, thread, "
                             "process, cluster, chaos:<inner>); see "
                             "'list-plugins'")
    parser.add_argument("--jobs", type=_positive_int, default=None, metavar="N",
                        help="worker count for pooled executors (for the "
                             "cluster backend: in-flight chunk window)")
    parser.add_argument("--batch-size", type=_positive_int, default=None,
                        metavar="N",
                        help="jobs shipped per dispatch round-trip on chunked "
                             "backends (thread/process submissions, cluster "
                             "HTTP requests); amortises per-job overhead "
                             "without changing results")
    parser.add_argument("--pool", choices=("keep", "fresh"), default=None,
                        help="worker-pool lifecycle of pooled executors: "
                             "'keep' retains idle workers warm across runs "
                             "in this process, 'fresh' spawns and tears down "
                             "per run (default: the backend's setting)")
    parser.add_argument("--wire", choices=("columnar", "json"), default=None,
                        help="result transfer encoding on dispatch "
                             "boundaries: 'columnar' packs result payloads "
                             "into typed columns (smaller pipes/HTTP bodies, "
                             "identical results), 'json' ships plain dicts "
                             "(default: the backend's setting)")
    parser.add_argument("--hosts", default=None, metavar="H1:P1,H2:P2",
                        help="cluster backend worker endpoints "
                             "(alternative: REPRO_CLUSTER_HOSTS)")
    parser.add_argument("--hosts-file", default=None, metavar="PATH",
                        help="file of worker endpoints, one host:port per "
                             "line, '#' comments "
                             "(alternative: REPRO_CLUSTER_HOSTS_FILE)")
    parser.add_argument("--results", default=None, metavar="PATH",
                        help="JSONL result store: computed points are appended "
                             "as they finish, already-stored points are never "
                             "re-run")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-attempt transiently failed jobs up to N times "
                             "with deterministic exponential backoff "
                             "(default: 0, fail on the first error)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-job wall-clock budget in seconds; the process "
                             "backend kills and replaces a worker whose job "
                             "overruns it (see docs/EXECUTION.md)")
    parser.add_argument("--fallback", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="degrade cluster→process→thread→serial when a "
                             "backend fails at the batch level (--no-fallback: "
                             "let the backend error propagate)")
    parser.add_argument("--fsync", action="store_true",
                        help="fsync every result-store append (survives machine "
                             "crashes, not just process crashes)")


def _execution_options(args: argparse.Namespace) -> Dict[str, object]:
    """The run_jobs fault-tolerance kwargs encoded by the CLI flags."""
    from repro.exec.retry import RetryPolicy

    policy = None
    if args.retries > 0 or args.timeout is not None:
        policy = RetryPolicy(max_attempts=args.retries + 1, timeout_s=args.timeout)
    return {
        "policy": policy,
        "fallback": args.fallback,
        "store_fsync": args.fsync,
    }


def _apply_cluster_env(args: argparse.Namespace) -> None:
    """Publish --hosts/--hosts-file through the environment channel.

    The registry's resolution path (and wrapper syntax like
    ``chaos:cluster``) builds executors from just a key and ``max_workers``,
    so cluster endpoints travel via ``REPRO_CLUSTER_HOSTS`` /
    ``REPRO_CLUSTER_HOSTS_FILE`` — see :mod:`repro.service.discovery`.
    """
    import os

    from repro.service.discovery import HOSTS_ENV, HOSTS_FILE_ENV

    if getattr(args, "hosts", None):
        os.environ[HOSTS_ENV] = args.hosts
    if getattr(args, "hosts_file", None):
        os.environ[HOSTS_FILE_ENV] = args.hosts_file


def _cli_executor(args: argparse.Namespace):
    """The ``executor`` argument for run_jobs-style calls.

    Applies the cluster endpoint flags and, when ``--batch-size``, ``--pool``
    or ``--wire`` is given, resolves the key into a configured instance (the
    library call paths — replication, figures — take an instance without
    needing new parameters).
    """
    _apply_cluster_env(args)
    batch_size = getattr(args, "batch_size", None)
    pool = getattr(args, "pool", None)
    wire = getattr(args, "wire", None)
    if batch_size or pool or wire:
        from repro.exec.executors import resolve_executor

        return resolve_executor(
            args.executor,
            max_workers=args.jobs,
            batch_size=batch_size,
            pool=pool,
            wire=wire,
        )
    return args.executor


def _progress_printer(as_json: bool):
    """Per-job progress lines on stderr (silent in --json mode)."""
    if as_json:
        return None

    def progress(event: str, job, detail) -> None:
        if event == "submitted":
            return
        line = f"  [{event}] {job.label()}"
        if detail:
            line += f": {detail}"
        print(line, file=sys.stderr)

    return progress


def _print_comparison(scenario, comparison, shape, as_json: bool) -> None:
    summary = comparison.summary()
    if as_json:
        payload = {"scenario": scenario.name, "summary": summary, "all_passed": shape.all_passed}
        print(json.dumps(payload, indent=2, default=float))
        return
    candidate = comparison.candidate.scheme
    baseline = comparison.baseline.scheme
    print(f"scenario: {scenario.name} (topology={scenario.topology}, "
          f"workload={scenario.workload}, sim_time={scenario.sim_time_s:g}s, "
          f"seed={scenario.seed})")
    print(f"  mean FCT       {baseline} {summary['baseline_mean_fct_s']:.3f}s"
          f"   {candidate} {summary['candidate_mean_fct_s']:.3f}s"
          f"   (-{100 * summary['fct_reduction_fraction']:.0f}%)")
    print(f"  per-flow goodput  {baseline} {summary['baseline_mean_goodput_kBps']:.0f} KB/s"
          f"   {candidate} {summary['candidate_mean_goodput_kBps']:.0f} KB/s")
    print(f"  FCT CDF dominance: {100 * summary['cdf_dominance']:.0f}%"
          f"   shape checks passed: {shape.all_passed}")


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_scenario
    from repro.experiments.shapes import check_comparison_shape

    scenario = _scenario_spec(args)
    comparison = run_scenario(scenario, schemes=(args.candidate, args.baseline))
    shape = check_comparison_shape(comparison)
    _print_comparison(scenario, comparison, shape, args.json)
    return 0 if shape.all_passed else 1


def _print_replicated(scenario, ensemble, shape, as_json: bool) -> None:
    """Headline numbers of an N-seed run, every ratio carrying its CI."""
    summary = ensemble.summary()
    if as_json:
        payload = {
            "scenario": scenario.name,
            "replicates": ensemble.n_replicates,
            "seeds": list(ensemble.candidate.seeds),
            "summary": summary,
            "all_passed": shape.all_passed,
        }
        print(json.dumps(payload, indent=2, default=float))
        return
    from repro.metrics.stats import SummaryStats

    candidate = ensemble.candidate.scheme
    baseline = ensemble.baseline.scheme

    def ci(key: str, fmt: str = "{:.3f}") -> str:
        stats = SummaryStats.from_dict(summary[key])
        if stats.n <= 1:
            return fmt.format(stats.mean)
        return (f"{fmt.format(stats.mean)} "
                f"[{fmt.format(stats.ci_lower)}, {fmt.format(stats.ci_upper)}]")

    print(f"scenario: {scenario.name} (replicates={ensemble.n_replicates}, "
          f"topology={scenario.topology}, workload={scenario.workload}, "
          f"sim_time={scenario.sim_time_s:g}s, base seed={scenario.seed})")
    print(f"  mean FCT       {baseline} {ci('baseline_mean_fct_s')}s"
          f"   {candidate} {ci('candidate_mean_fct_s')}s")
    print(f"  AFCT speedup   {ci('speedup_afct', '{:.2f}')}"
          f"   FCT reduction {ci('fct_reduction_fraction', '{:.0%}')}")
    print(f"  FCT CDF dominance: {ci('cdf_dominance', '{:.0%}')}"
          f"   shape checks passed (replicate 0): {shape.all_passed}")


def cmd_run(args: argparse.Namespace) -> int:
    from repro.exec import plan_comparison, run_jobs
    from repro.experiments.shapes import check_comparison_shape
    from repro.experiments.spec import ScenarioSpec
    from repro.metrics.comparison import ComparisonResult

    try:
        scenario = ScenarioSpec.load(args.scenario_file)
    except (OSError, TypeError, ValueError) as exc:
        print(f"cannot load scenario file {args.scenario_file!r}: {exc}", file=sys.stderr)
        return 2
    if args.dynamics:
        from repro.dynamics import DynamicsScript

        try:
            script = DynamicsScript.load(args.dynamics)
        except (OSError, TypeError, ValueError, LookupError) as exc:
            # LookupError covers RegistryError on unknown event kinds.
            print(f"cannot load dynamics script {args.dynamics!r}: {exc}", file=sys.stderr)
            return 2
        scenario = scenario.with_dynamics(script)
    if args.seeds > 1:
        from repro.exec.replication import run_replicated_comparison

        ensemble = run_replicated_comparison(
            scenario,
            candidate=args.candidate,
            baseline=args.baseline,
            seeds=args.seeds,
            executor=_cli_executor(args),
            max_workers=args.jobs,
            store=args.results,
            progress=_progress_printer(args.json),
            **_execution_options(args),
        )
        shape = check_comparison_shape(ensemble.comparisons()[0])
        _print_replicated(scenario, ensemble, shape, args.json)
        return 0 if shape.all_passed else 1
    jobs = plan_comparison(scenario, candidate=args.candidate, baseline=args.baseline)
    report = run_jobs(
        jobs,
        executor=_cli_executor(args),
        max_workers=args.jobs,
        store=args.results,
        progress=_progress_printer(args.json),
        **_execution_options(args),
    )
    comparison = ComparisonResult(
        scenario=scenario.name,
        candidate=report.result_for(jobs[0]),
        baseline=report.result_for(jobs[1]),
    )
    shape = check_comparison_shape(comparison)
    _print_comparison(scenario, comparison, shape, args.json)
    return 0 if shape.all_passed else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.exec import (
        plan_control_interval_sweep,
        plan_offered_load_sweep,
        run_jobs,
    )
    from repro.experiments.sweeps import SweepResult, points_from_jobs

    try:
        points = [float(p) for p in args.points.split(",") if p.strip()]
    except ValueError:
        print(f"cannot parse --points {args.points!r}: expected comma-separated "
              "numbers, e.g. --points 15,40,80", file=sys.stderr)
        return 2
    if not points:
        print("--points must name at least one value", file=sys.stderr)
        return 2
    base = _scenario_spec(args)
    try:
        if args.axis == "load":
            if args.arrival_rate is not None:
                print("--arrival-rate only applies to tau sweeps (the load sweep's "
                      "--points are the arrival rates)", file=sys.stderr)
                return 2
            jobs = plan_offered_load_sweep(
                points, base=base, candidate=args.candidate, baseline=args.baseline,
                reseed_per_point=args.reseed,
            )
            parameter_name, short = "arrival rate (flows/s)", "rate"
        else:
            from repro.exec.planner import with_arrival_rate

            # Mirrors sweep_control_interval's rate handling: the 40 flows/s
            # pin applies only to the *default* scenario (the library's
            # "base is None" case); a customised scenario keeps its own rate
            # unless --arrival-rate overrides it.
            from repro.experiments.sweeps import DEFAULT_TAU_SWEEP_ARRIVAL_RATE

            rate = args.arrival_rate
            if rate is None and args.scenario == "pareto" and not args.workload:
                rate = DEFAULT_TAU_SWEEP_ARRIVAL_RATE
            if rate is not None:
                base = with_arrival_rate(base, rate)
            jobs = plan_control_interval_sweep(
                points, base=base, candidate=args.candidate, baseline=args.baseline,
                reseed_per_point=args.reseed,
            )
            parameter_name, short = "control interval (s)", "tau"
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_jobs(
        jobs,
        executor=_cli_executor(args),
        max_workers=args.jobs,
        store=args.results,
        progress=_progress_printer(args.json),
        **_execution_options(args),
    )
    sweep = SweepResult(
        parameter_name=parameter_name,
        points=points_from_jobs(jobs, report.results, short),
    )
    crossovers = sweep.crossover_points()
    if args.json:
        print(json.dumps(
            {
                "sweep": sweep.to_dict(),
                "execution": report.summary(),
                "crossover_points": crossovers,
            },
            indent=2, default=float,
        ))
    else:
        print(sweep.as_table())
        summary = report.summary()
        print(f"\nexecutor={summary['executor']} jobs={summary['jobs']} "
              f"computed={summary['computed']} cached={summary['cached']} "
              f"failed={summary['failed']} wall={summary['wall_clock_s']:.1f}s")
        if crossovers:
            print(f"note: baseline wins at {short}={crossovers} (exit status 1)")
        if args.results:
            print(f"results stored in {args.results}")
    return 0 if not crossovers else 1


def cmd_list_plugins(args: argparse.Namespace) -> int:
    from repro.registry import ALL_REGISTRIES

    if args.json:
        payload = {
            section: {
                entry.name: {
                    "description": entry.description,
                    "aliases": list(entry.aliases),
                    "config": entry.config_cls.__name__ if entry.config_cls else None,
                }
                for entry in registry.entries()
            }
            for section, registry in ALL_REGISTRIES
        }
        print(json.dumps(payload, indent=2))
        return 0
    for section, registry in ALL_REGISTRIES:
        print(f"{section}:")
        for entry in registry.entries():
            aliases = f" (aliases: {', '.join(entry.aliases)})" if entry.aliases else ""
            config = f" [{entry.config_cls.__name__}]" if entry.config_cls else ""
            print(f"  {entry.name:20s}{entry.description}{config}{aliases}")
        print()
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.analysis.ascii_plot import render_figure
    from repro.experiments.figures import (
        FIGURE_DEFAULT_SCENARIOS,
        FIGURE_GENERATORS,
        generate_figure,
    )

    if args.figure not in FIGURE_GENERATORS:
        print(f"unknown figure {args.figure!r}; choose from {', '.join(sorted(FIGURE_GENERATORS))}",
              file=sys.stderr)
        return 2
    # Each figure's default scenario comes from the figures module's single
    # source of truth; --scenario overrides it.
    scenario_name = args.scenario or FIGURE_DEFAULT_SCENARIOS[args.figure]
    scenario = _scenario_from_name(scenario_name, args.sim_time, args.seed)
    figure = generate_figure(
        args.figure,
        config=scenario,
        seeds=args.seeds,
        executor=_cli_executor(args),
        max_workers=args.jobs,
        store=args.results,
        **_execution_options(args),
    )
    if args.plot:
        print(render_figure(figure))
        print()
    print(figure.as_table())
    if args.out:
        payload = {
            "figure": figure.figure_id,
            "title": figure.title,
            "summary": figure.summary,
            "series": {k: [list(map(float, v[0])), list(map(float, v[1]))]
                       for k, v in figure.series.items()},
        }
        if figure.bands:
            # Multi-seed figures: persist the CI bands as (x, lower, upper);
            # absent on single-seed output so those artifacts are unchanged.
            payload["bands"] = {
                k: [list(map(float, x)), list(map(float, lo)), list(map(float, hi))]
                for k, (x, lo, hi) in figure.bands.items()
            }
        Path(args.out).write_text(json.dumps(payload, indent=2))
        print(f"\nwrote {args.out}")
    return 0


def cmd_workload(args: argparse.Namespace) -> int:
    from repro.experiments.runner import generate_workload

    scenario = _scenario_spec(args)
    workload = generate_workload(scenario)
    workload.to_csv(args.out)
    summary = workload.summary()
    print(f"wrote {len(workload)} requests to {args.out}")
    print(f"  duration {summary['duration_s']:.1f}s, mean size {summary['mean_size_bytes'] / 1024:.1f} KB, "
          f"offered load {summary['offered_load_bps'] / 1e6:.1f} Mb/s")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_scheme
    from repro.experiments.shapes import check_comparison_shape
    from repro.metrics.comparison import ComparisonResult
    from repro.workloads.traces import Workload

    workload = Workload.from_csv(args.workload)
    scenario = _scenario_spec(args)
    # The replayed trace defines the arrivals; stretch the horizon to cover it.
    scenario = scenario.with_overrides(sim_time_s=max(scenario.sim_time_s, workload.duration_s + 1.0))

    candidate = run_scheme(scenario, args.candidate, workload)
    baseline = run_scheme(scenario, args.baseline, workload)
    comparison = ComparisonResult(scenario=f"replay:{args.workload}", candidate=candidate, baseline=baseline)
    shape = check_comparison_shape(comparison)
    summary = comparison.summary()
    print(f"replayed {len(workload)} requests from {args.workload}")
    print(f"  mean FCT   {baseline.scheme} {summary['baseline_mean_fct_s']:.3f}s"
          f"   {candidate.scheme} {summary['candidate_mean_fct_s']:.3f}s"
          f"   (-{100 * summary['fct_reduction_fraction']:.0f}%)")
    print(f"  shape checks passed: {shape.all_passed}")
    return 0 if shape.all_passed else 1


def cmd_report(args: argparse.Namespace) -> int:
    if args.results:
        return _cmd_report_store(args)
    if args.analysis:
        print("--analysis requires --results <store.jsonl> (the registry-driven "
              "report pipeline reads a result store, not the benchmark JSONs)",
              file=sys.stderr)
        return 2
    from repro.analysis.report import BenchmarkReport

    try:
        report = BenchmarkReport.from_directory(args.results_dir)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    markdown = report.to_markdown()
    if args.out:
        Path(args.out).write_text(markdown)
        print(f"wrote {args.out}")
    else:
        print(markdown)
    return 0 if report.all_shapes_passed() or not report.figures() else 1


def _cmd_report_store(args: argparse.Namespace) -> int:
    """The registry-driven pipeline: ANALYSES plugins over a result store.

    ``--analysis <name>`` emits that analysis's JSON artifact; without it,
    every registered analysis runs and the composed document is emitted
    (``--markdown`` renders the human view instead).
    """
    from repro.analysis.report import (
        render_store_report_markdown,
        run_analysis,
        store_report,
    )
    from repro.exec.store import ResultStore

    import inspect

    from repro.registry import ANALYSES

    store = ResultStore(args.results)
    if not Path(args.results).exists():
        print(f"no result store at {args.results}", file=sys.stderr)
        return 2
    if args.ensemble:
        stored = sorted(store.group_by_ensemble())
        if args.ensemble not in stored:
            print(f"unknown ensemble {args.ensemble!r}; stored ensembles: "
                  f"{', '.join(stored) or '<none>'}", file=sys.stderr)
            return 2

    def ensemble_params(name: str) -> dict:
        # Pass --ensemble only to analyses whose signature accepts it, so a
        # plugin without the parameter gets a clean error, not a TypeError.
        if not args.ensemble:
            return {}
        signature = inspect.signature(ANALYSES.get(name).builder)
        if "ensemble" in signature.parameters:
            return {"ensemble": args.ensemble}
        return {}

    if args.analysis:
        if args.markdown:
            print("--markdown renders the composed report; a single --analysis "
                  "always emits its JSON artifact", file=sys.stderr)
            return 2
        params = ensemble_params(args.analysis)
        if args.ensemble and not params:
            print(f"analysis {args.analysis!r} does not take --ensemble",
                  file=sys.stderr)
            return 2
        artifact = run_analysis(store, args.analysis, **params)
        text = json.dumps(artifact, indent=2, sort_keys=True, default=float)
    else:
        names = ANALYSES.names()
        if args.ensemble:
            # An analysis that cannot restrict itself to the ensemble would
            # silently cover the whole store: leave it out, visibly.
            unaware = [n for n in names if not ensemble_params(n)]
            if unaware:
                print(f"note: skipping {', '.join(unaware)} "
                      f"(no ensemble parameter; --ensemble cannot apply)",
                      file=sys.stderr)
            names = [n for n in names if n not in unaware]
        document = store_report(
            store, analyses=names,
            params={name: ensemble_params(name) for name in names},
        )
        if args.markdown:
            text = render_store_report_markdown(document)
        else:
            text = json.dumps(document, indent=2, sort_keys=True, default=float)
    if args.out:
        Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.worker import WorkerServer

    server = WorkerServer(
        host=args.host,
        port=args.port,
        shard_dir=args.shard_dir,
        fsync=args.fsync,
        verbose=args.verbose,
        wire=args.wire,
    )
    print(
        f"repro worker listening on {server.host}:{server.port} "
        f"(shard: {server.shard_path})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.coordinator import CoordinatorServer

    _apply_cluster_env(args)
    server = CoordinatorServer(
        host=args.host,
        port=args.port,
        store_path=args.results,
        executor=args.executor,
        max_workers=args.jobs,
        batch_size=args.batch_size,
        verbose=args.verbose,
        pool=args.pool,
    )
    print(
        f"repro serve listening on {server.host}:{server.port} "
        f"(executor: {args.executor}, store: {server.store.path})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.backend.close()
    return 0


def cmd_store_merge(args: argparse.Namespace) -> int:
    from repro.exec.store import ResultStore

    shards = list(args.shards)
    fetched = []
    if args.hosts:
        import tempfile

        from repro.service import protocol
        from repro.service.discovery import parse_hosts

        for endpoint in parse_hosts(args.hosts):
            text = protocol.http_text(endpoint.url(protocol.SHARD_PATH))
            handle = tempfile.NamedTemporaryFile(
                "w", suffix=".jsonl", prefix=f"shard-{endpoint.host}-{endpoint.port}-",
                delete=False, encoding="utf-8",
            )
            with handle:
                handle.write(text)
            fetched.append(handle.name)
            shards.append(handle.name)
    if not shards:
        print("nothing to merge: name shard paths and/or --hosts", file=sys.stderr)
        return 2
    try:
        store = ResultStore(args.into)
        added = store.merge(shards)
    finally:
        for path in fetched:
            Path(path).unlink(missing_ok=True)
    print(f"merged {len(shards)} shard(s) into {args.into}: "
          f"{added} new result(s), {len(store)} total")
    return 0


def cmd_store_compact(args: argparse.Namespace) -> int:
    from repro.exec.store import ResultStore

    store = ResultStore(args.store)
    if not Path(args.store).exists():
        print(f"no result store at {args.store}", file=sys.stderr)
        return 2
    surviving = store.compact()
    print(f"compacted {args.store}: {surviving} entr(y/ies)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SCDA (HPDC 2013) reproduction — run comparisons, figures and reports.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="run two schemes on a scenario")
    _add_common_scenario_args(compare)
    _add_scheme_args(compare)
    compare.add_argument("--json", action="store_true", help="print machine-readable JSON")
    compare.set_defaults(func=cmd_compare)

    run = subparsers.add_parser("run", help="run a declarative scenario JSON file")
    run.add_argument("scenario_file", help="path to a ScenarioSpec JSON file")
    run.add_argument("--dynamics", default=None, metavar="PATH",
                     help="JSON dynamics script (event list or {\"events\": [...]}) "
                          "injecting link failures, churn and surges mid-run; "
                          "overrides the scenario file's own dynamics")
    run.add_argument("--seeds", type=_positive_int, default=1, metavar="N",
                     help="replicate the run under N derived seeds and report "
                          "mean ± 95%% CI (replicate 0 is the scenario's own "
                          "seed, so --seeds 1 is the plain single run)")
    _add_scheme_args(run)
    _add_executor_args(run)
    run.add_argument("--json", action="store_true", help="print machine-readable JSON")
    run.set_defaults(func=cmd_run)

    sweep = subparsers.add_parser(
        "sweep", help="run a load or τ sweep on an executor backend",
        description="Plan a sweep into jobs and run it on an executor backend. "
                    "Exit status: 0 when the candidate wins at every point, "
                    "1 when the baseline wins anywhere (the points are still "
                    "printed/stored), 2 on usage or execution errors.",
    )
    sweep.add_argument("axis", choices=("load", "tau"),
                       help="what to sweep: workload arrival rate, or the "
                            "control interval τ")
    sweep.add_argument("--points", required=True, metavar="P1,P2,...",
                       help="comma-separated sweep values (rates in flows/s, "
                            "or τ in seconds)")
    sweep.add_argument("--arrival-rate", type=float, default=None, metavar="R",
                       help="tau sweeps only: workload arrival rate in flows/s; "
                            "defaults to 40 for the default pareto scenario "
                            "(matching sweep_control_interval) and to the "
                            "scenario's own rate otherwise")
    sweep.add_argument("--reseed", action="store_true",
                       help="derive each point's seed from its identity "
                            "(sweep axis + value) instead of reusing the base "
                            "seed at every point; order- and "
                            "backend-independent")
    _add_common_scenario_args(sweep)
    _add_scheme_args(sweep)
    _add_executor_args(sweep)
    sweep.add_argument("--json", action="store_true", help="print machine-readable JSON")
    sweep.set_defaults(func=cmd_sweep)

    plugins = subparsers.add_parser(
        "list-plugins",
        help="list registered topologies, workloads, schemes, placements, "
             "executors and dynamics events",
    )
    plugins.add_argument("--json", action="store_true", help="print machine-readable JSON")
    plugins.set_defaults(func=cmd_list_plugins)

    figure = subparsers.add_parser("figure", help="regenerate one of the paper's figures")
    figure.add_argument("figure", help="figure id, e.g. fig09")
    figure.add_argument("--scenario", choices=SCENARIOS, default=None,
                        help="override the figure's default scenario")
    figure.add_argument("--sim-time", type=float, default=10.0)
    figure.add_argument("--seed", type=int, default=1)
    figure.add_argument("--seeds", type=_positive_int, default=1, metavar="N",
                        help="render the figure from an N-seed ensemble with "
                             "95%% confidence bands (N=1: the plain figure)")
    _add_executor_args(figure)
    figure.add_argument("--plot", action="store_true", help="also print an ASCII plot")
    figure.add_argument("--out", default=None, help="write the series to a JSON file")
    figure.set_defaults(func=cmd_figure)

    workload = subparsers.add_parser("workload", help="generate a synthetic workload CSV")
    _add_common_scenario_args(workload)
    workload.add_argument("--out", required=True, help="output CSV path")
    workload.set_defaults(func=cmd_workload)

    replay = subparsers.add_parser(
        "replay", help="replay a workload CSV through two schemes and compare"
    )
    replay.add_argument("workload", help="CSV produced by the 'workload' command (or any trace)")
    _add_common_scenario_args(replay)
    _add_scheme_args(replay)
    replay.set_defaults(func=cmd_replay)

    report = subparsers.add_parser(
        "report",
        help="run analyses over a result store, or render the benchmark report",
        description="Two modes: with --results, run ANALYSES-registry plugins "
                    "over a JSONL result store and emit their JSON artifacts "
                    "(see docs/ANALYSIS.md); without it, render the markdown "
                    "table from the benchmark result JSONs.",
    )
    report.add_argument("--results", default=None, metavar="PATH",
                        help="JSONL result store to analyse (switches to the "
                             "registry-driven report pipeline)")
    report.add_argument("--analysis", default=None, metavar="NAME",
                        help="which registered analysis to run on --results "
                             "(default: all; see 'list-plugins')")
    report.add_argument("--ensemble", default=None, metavar="LABEL",
                        help="restrict ensemble-aware analyses to one ensemble")
    report.add_argument("--markdown", action="store_true",
                        help="with --results and no --analysis: render the "
                             "composed report as markdown instead of JSON")
    report.add_argument("--results-dir", default="benchmarks/results",
                        help="directory with the benchmark JSON files")
    report.add_argument("--out", default=None, help="write output here instead of stdout")
    report.set_defaults(func=cmd_report)

    worker = subparsers.add_parser(
        "worker",
        help="run a cluster worker daemon (HTTP job runner with a local "
             "write-once result shard)",
        description="One worker per host/port: POST /jobs runs ExperimentJob "
                    "payloads through the shared execution funnel and appends "
                    "canonical results to a local JSONL shard; GET /shard "
                    "streams the shard for merging.  See docs/CLUSTER.md.",
    )
    worker.add_argument("--host", default="127.0.0.1", help="bind address")
    worker.add_argument("--port", type=int, default=8150,
                        help="bind port (0: ephemeral)")
    worker.add_argument("--shard-dir", default=".", metavar="DIR",
                        help="directory for this worker's result shard")
    worker.add_argument("--wire", choices=("columnar", "json"),
                        default="columnar",
                        help="richest result transfer encoding this worker "
                             "speaks: 'columnar' packs results into typed "
                             "columns when the client asks for it, 'json' "
                             "always answers plain dicts (emulates a "
                             "pre-codec worker)")
    worker.add_argument("--fsync", action="store_true",
                        help="fsync every shard append")
    worker.add_argument("--verbose", action="store_true",
                        help="log one line per request to stderr")
    worker.set_defaults(func=cmd_worker)

    serve = subparsers.add_parser(
        "serve",
        help="run the coordinator daemon (HTTP job submission + result-store "
             "query API)",
        description="POST /jobs submits ExperimentJob payloads (cache hits "
                    "are free), GET /results queries the store by scheme/"
                    "ensemble.  With --executor cluster and --hosts, "
                    "submissions fan out to worker daemons.  See "
                    "docs/CLUSTER.md.",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8140,
                       help="bind port (0: ephemeral)")
    serve.add_argument("--results", default="results.jsonl", metavar="PATH",
                       help="the persistent JSONL result store")
    serve.add_argument("--executor", default="serial", metavar="KEY",
                       help="backend submissions run on (serial, process, "
                            "cluster, chaos:<inner>)")
    serve.add_argument("--jobs", type=_positive_int, default=None, metavar="N",
                       help="worker count / in-flight window of the backend")
    serve.add_argument("--pool", choices=("keep", "fresh"), default="keep",
                       help="worker-pool lifecycle of the serve backend: "
                            "'keep' (default) holds pooled workers warm "
                            "across submitted batches, 'fresh' respawns "
                            "per batch")
    serve.add_argument("--batch-size", type=_positive_int, default=None,
                       metavar="N", help="jobs per dispatch round-trip")
    serve.add_argument("--hosts", default=None, metavar="H1:P1,H2:P2",
                       help="cluster worker endpoints for --executor cluster")
    serve.add_argument("--hosts-file", default=None, metavar="PATH",
                       help="file of cluster worker endpoints")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per request to stderr")
    serve.set_defaults(func=cmd_serve)

    store = subparsers.add_parser(
        "store",
        help="result-store maintenance: merge worker shards, compact",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    merge = store_sub.add_parser(
        "merge",
        help="union write-once shards into one store",
        description="Union-of-shards merge keyed by job content: duplicates "
                    "dedup when identical, conflicting results (cross-host "
                    "nondeterminism) abort the merge before anything is "
                    "written.",
    )
    merge.add_argument("shards", nargs="*", metavar="SHARD",
                       help="shard JSONL paths to merge")
    merge.add_argument("--into", required=True, metavar="PATH",
                       help="target store (may already exist; its entries "
                            "participate in conflict validation)")
    merge.add_argument("--hosts", default=None, metavar="H1:P1,H2:P2",
                       help="also fetch GET /shard from these live workers")
    merge.set_defaults(func=cmd_store_merge)
    compact = store_sub.add_parser(
        "compact",
        help="rewrite a store with one line per key (atomic)",
    )
    compact.add_argument("store", help="JSONL result store path")
    compact.set_defaults(func=cmd_store_compact)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.exec.executors import ExecutionError
    from repro.exec.store import ResultStoreError
    from repro.registry import RegistryError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (RegistryError, ExecutionError, ResultStoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
