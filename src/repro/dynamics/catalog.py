"""Registers the built-in dynamics events in the DYNAMICS registry."""

from __future__ import annotations

from repro.dynamics.events import (
    BlockServerChurnEvent,
    CapacityDegradationEvent,
    LinkFailureEvent,
    LinkRecoveryEvent,
    WorkloadSurgeEvent,
)
from repro.registry import DYNAMICS


def _event(config):
    """The event dataclass *is* its config; the builder passes it through."""
    return config


DYNAMICS.register(
    "link-failure",
    _event,
    config_cls=LinkFailureEvent,
    aliases=("link-fail",),
    description="take a link down; stranded flows reroute or abort",
)
DYNAMICS.register(
    "link-recovery",
    _event,
    config_cls=LinkRecoveryEvent,
    aliases=("link-restore",),
    description="bring a failed link back up for new flows",
)
DYNAMICS.register(
    "capacity-degradation",
    _event,
    config_cls=CapacityDegradationEvent,
    aliases=("brownout",),
    description="scale a link to factor x nominal capacity (optionally timed)",
)
DYNAMICS.register(
    "block-server-churn",
    _event,
    config_cls=BlockServerChurnEvent,
    aliases=("server-churn",),
    description="a block server leaves (re-replication) and may rejoin",
)
DYNAMICS.register(
    "workload-surge",
    _event,
    config_cls=WorkloadSurgeEvent,
    aliases=("surge",),
    description="inject a Poisson burst of extra writes mid-run",
)
