"""Declarative, timed world-mutation events.

Every event is a plain dataclass registered in the
:data:`~repro.registry.DYNAMICS` registry, so a complete fault/churn
scenario is one JSON list::

    [
      {"kind": "link-failure", "at_s": 1.0, "select": "switch-uplink", "index": 0},
      {"kind": "link-recovery", "at_s": 3.0, "select": "switch-uplink", "index": 0},
      {"kind": "block-server-churn", "at_s": 2.0, "index": 1, "rejoin_after_s": 4.0}
    ]

Events mutate the running stack through the layer-specific APIs this PR
threads them into: :class:`~repro.network.fabric.FabricSimulator`'s
``fail_link``/``restore_link``/``set_link_capacity`` and
:class:`~repro.cluster.cluster.StorageCluster`'s
``deactivate_server``/``reactivate_server``.  All randomness (arrival jitter,
surge traffic) draws from streams derived with pinned
:func:`~repro.sim.random.derive_seed` namespaces —
``derive_seed(seed, "dynamics", f"{index}:{kind}")`` — so a scripted run is
bit-identical on every executor backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, List, Optional

from repro.network.flow import FlowKind
from repro.network.topology import Link, Topology
from repro.sim.random import RandomStreams, derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dynamics.script import DynamicsRuntime


class DynamicsError(ValueError):
    """An event is malformed or cannot resolve its target at run time."""


@dataclass
class DynamicsEvent:
    """Base class: one scheduled mutation of the simulated world.

    Attributes
    ----------
    at_s:
        Simulated time at which the event fires.
    jitter_s:
        Optional uniform jitter added to ``at_s``; the draw comes from a
        stream derived from the run seed and the event's *identity* (its
        index and kind), never from execution order.
    """

    at_s: float = 0.0
    jitter_s: float = 0.0

    kind: ClassVar[str] = "base"

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise DynamicsError(f"{self.kind}: at_s must be non-negative, got {self.at_s}")
        if self.jitter_s < 0:
            raise DynamicsError(
                f"{self.kind}: jitter_s must be non-negative, got {self.jitter_s}"
            )

    def fire_time(self, seed: int, index: int) -> float:
        """The event's actual firing time under ``seed`` (jitter resolved).

        The jitter stream is namespaced by the event's identity —
        ``derive_seed(seed, "dynamics", "jitter", f"{index}:{kind}")`` — so
        the value is a pure function of (seed, script position), pinned
        across processes and platforms.
        """
        if self.jitter_s <= 0:
            return self.at_s
        streams = RandomStreams(
            derive_seed(int(seed), "dynamics", "jitter", f"{index}:{self.kind}")
        )
        return self.at_s + streams.uniform("jitter", 0.0, self.jitter_s)

    def apply(self, runtime: "DynamicsRuntime", index: int) -> None:
        """Mutate the running stack; called by the simulator at fire time."""
        raise NotImplementedError


@dataclass
class _LinkEvent(DynamicsEvent):
    """Shared link-selection fields of the link-targeting events.

    Exactly one selection mode must be set:

    * ``link_id`` — an explicit directed-link id;
    * ``src`` + ``dst`` — the directed link between two named nodes
      (both directions when ``duplex``);
    * ``select`` + ``index`` — a topology-agnostic selector:
      ``"host-uplink"`` picks the ``index``-th host's access links,
      ``"switch-uplink"`` the ``index``-th switch's first uplink (e.g. a
      leaf→spine link), without knowing the builder's node names.
    """

    link_id: Optional[str] = None
    src: Optional[str] = None
    dst: Optional[str] = None
    select: Optional[str] = None
    index: int = 0
    duplex: bool = True

    _SELECTORS: ClassVar = ("host-uplink", "switch-uplink")

    def __post_init__(self) -> None:
        super().__post_init__()
        modes = [
            self.link_id is not None,
            self.src is not None or self.dst is not None,
            self.select is not None,
        ]
        if sum(modes) != 1:
            raise DynamicsError(
                f"{self.kind}: set exactly one of link_id, src+dst, or select"
            )
        if (self.src is None) != (self.dst is None):
            raise DynamicsError(f"{self.kind}: src and dst must be given together")
        if self.select is not None and self.select not in self._SELECTORS:
            raise DynamicsError(
                f"{self.kind}: unknown selector {self.select!r} "
                f"(available: {', '.join(self._SELECTORS)})"
            )
        if self.index < 0:
            raise DynamicsError(f"{self.kind}: index must be non-negative")

    def resolve_links(self, topology: Topology) -> List[Link]:
        """The directed links this event targets in ``topology``."""
        if self.link_id is not None:
            links = [l for l in topology.links if l.link_id == self.link_id]
            if not links:
                raise DynamicsError(f"{self.kind}: no link with id {self.link_id!r}")
            return links
        if self.src is not None and self.dst is not None:
            try:
                a, b = topology.node(self.src), topology.node(self.dst)
                links = [topology.find_link(a, b)]
            except KeyError as exc:
                raise DynamicsError(
                    f"{self.kind}: no link {self.src!r} -> {self.dst!r} "
                    f"in this topology ({exc})"
                ) from None
            if self.duplex:
                try:
                    links.append(topology.find_link(b, a))
                except KeyError:
                    pass
            return links
        if self.select == "host-uplink":
            pool = topology.hosts()
        else:
            # Only switches that have an uplink qualify (top-tier spines and
            # cores do not), so the index is stable across fabric families.
            pool = [s for s in topology.switches() if topology.uplink_of(s) is not None]
        if not pool:
            raise DynamicsError(f"{self.kind}: topology has no {self.select} candidates")
        node = pool[self.index % len(pool)]
        uplink = topology.uplink_of(node)
        if uplink is None:
            raise DynamicsError(
                f"{self.kind}: {node.node_id} has no uplink to select"
            )
        links = [uplink]
        if self.duplex:
            try:
                links.append(topology.find_link(uplink.dst, uplink.src))
            except KeyError:
                pass
        return links


@dataclass
class LinkFailureEvent(_LinkEvent):
    """Take the selected link(s) down; stranded flows reroute or abort."""

    kind: ClassVar[str] = "link-failure"

    def apply(self, runtime: "DynamicsRuntime", index: int) -> None:
        for link in self.resolve_links(runtime.topology):
            runtime.fabric.fail_link(link)


@dataclass
class LinkRecoveryEvent(_LinkEvent):
    """Bring the selected link(s) back up; new flows see them again."""

    kind: ClassVar[str] = "link-recovery"

    def apply(self, runtime: "DynamicsRuntime", index: int) -> None:
        for link in self.resolve_links(runtime.topology):
            runtime.fabric.restore_link(link)


@dataclass
class CapacityDegradationEvent(_LinkEvent):
    """Scale the selected link(s) to ``factor`` × nominal capacity.

    With ``duration_s`` set, nominal capacity is restored that many seconds
    after the degradation takes effect (a brown-out); without it the
    degradation persists until another event changes the capacity again.
    """

    factor: float = 0.5
    duration_s: Optional[float] = None

    kind: ClassVar[str] = "capacity-degradation"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 0:
            raise DynamicsError(f"{self.kind}: factor must be positive")
        if self.duration_s is not None and self.duration_s <= 0:
            raise DynamicsError(f"{self.kind}: duration_s must be positive when set")

    def apply(self, runtime: "DynamicsRuntime", index: int) -> None:
        links = self.resolve_links(runtime.topology)
        degraded = [
            (link, link.nominal_capacity_bps * self.factor) for link in links
        ]
        for link, capacity in degraded:
            runtime.fabric.set_link_capacity(link, capacity)
        if self.duration_s is not None:
            runtime.sim.call_in(self.duration_s, self._restore, runtime, degraded)

    @staticmethod
    def _restore(runtime: "DynamicsRuntime", degraded) -> None:
        for link, capacity in degraded:
            # Restore only what this event set: if another event changed the
            # capacity in the meantime, its intent wins over our expiry.
            if link.capacity_bps == capacity:
                runtime.fabric.set_link_capacity(link, link.nominal_capacity_bps)


@dataclass
class BlockServerChurnEvent(DynamicsEvent):
    """A block server leaves the cluster (and optionally rejoins later).

    On departure the cluster aborts transfers touching the server, removes
    its replicas from the name-node metadata and re-replicates content left
    under its replica target (see
    :meth:`~repro.cluster.cluster.StorageCluster.deactivate_server`).  The
    server is named explicitly (``server``) or picked topology-agnostically
    as the ``index``-th block server.
    """

    server: Optional[str] = None
    index: int = 0
    action: str = "leave"
    rejoin_after_s: Optional[float] = None

    kind: ClassVar[str] = "block-server-churn"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.action not in ("leave", "rejoin"):
            raise DynamicsError(
                f"{self.kind}: action must be 'leave' or 'rejoin', got {self.action!r}"
            )
        if self.rejoin_after_s is not None:
            if self.action != "leave":
                raise DynamicsError(f"{self.kind}: rejoin_after_s requires action='leave'")
            if self.rejoin_after_s <= 0:
                raise DynamicsError(f"{self.kind}: rejoin_after_s must be positive")
        if self.index < 0:
            raise DynamicsError(f"{self.kind}: index must be non-negative")

    def _server_id(self, runtime: "DynamicsRuntime") -> str:
        cluster = runtime.cluster
        if cluster is None:
            raise DynamicsError(f"{self.kind}: the runtime has no storage cluster")
        if self.server is not None:
            if self.server not in cluster.block_servers:
                raise DynamicsError(f"{self.kind}: unknown block server {self.server!r}")
            return self.server
        ids = cluster.all_server_ids()
        return ids[self.index % len(ids)]

    def apply(self, runtime: "DynamicsRuntime", index: int) -> None:
        server_id = self._server_id(runtime)
        cluster = runtime.cluster
        if self.action == "rejoin":
            cluster.reactivate_server(server_id)
            return
        cluster.deactivate_server(server_id)
        if self.rejoin_after_s is not None:
            runtime.sim.call_in(
                self.rejoin_after_s, cluster.reactivate_server, server_id
            )


@dataclass
class WorkloadSurgeEvent(DynamicsEvent):
    """Inject a burst of extra write requests on top of the base workload.

    Arrivals are Poisson at ``arrival_rate_per_s`` over ``duration_s`` with
    exponentially distributed sizes around ``mean_size_bytes``, issued from
    uniformly drawn clients.  All draws come from a stream namespaced by the
    run seed and the event's identity, so the surge is identical across
    executor backends.

    ``multiplicity`` > 1 makes every surge request an aggregate flow of that
    many sessions — a flash crowd of 50k viewers is one event with
    ``arrival_rate_per_s`` flow objects per second, each standing in for
    ``multiplicity`` concurrent sessions.  ``tenant`` tags the surge traffic
    for per-tenant metrics.
    """

    duration_s: float = 1.0
    arrival_rate_per_s: float = 50.0
    mean_size_bytes: float = 500 * 1024.0
    flow_kind: str = "data"
    multiplicity: int = 1
    tenant: str = ""

    kind: ClassVar[str] = "workload-surge"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration_s <= 0:
            raise DynamicsError(f"{self.kind}: duration_s must be positive")
        if self.arrival_rate_per_s <= 0:
            raise DynamicsError(f"{self.kind}: arrival_rate_per_s must be positive")
        if self.mean_size_bytes <= 0:
            raise DynamicsError(f"{self.kind}: mean_size_bytes must be positive")
        if int(self.multiplicity) != self.multiplicity or self.multiplicity < 1:
            raise DynamicsError(
                f"{self.kind}: multiplicity must be a positive integer"
            )
        try:
            FlowKind(self.flow_kind)
        except ValueError:
            raise DynamicsError(
                f"{self.kind}: unknown flow_kind {self.flow_kind!r}"
            ) from None

    def apply(self, runtime: "DynamicsRuntime", index: int) -> None:
        if runtime.issue_write is None:
            raise DynamicsError(
                f"{self.kind}: the runtime cannot issue workload requests"
            )
        streams = RandomStreams(
            derive_seed(int(runtime.seed), "dynamics", f"{index}:{self.kind}")
        )
        num_clients = max(1, len(runtime.topology.clients()))
        kind = FlowKind(self.flow_kind)
        offset = streams.exponential("arrivals", 1.0 / self.arrival_rate_per_s)
        while offset < self.duration_s:
            size = max(1.0, streams.exponential("sizes", self.mean_size_bytes))
            client_index = streams.integers("clients", 0, num_clients)
            if self.multiplicity == 1 and not self.tenant:
                # Historical 3-argument call, so pre-aggregate issue_write
                # callables (and their byte-identical results) keep working.
                runtime.sim.call_in(
                    offset, runtime.issue_write, client_index, size, kind
                )
            else:
                runtime.sim.call_in(
                    offset,
                    runtime.issue_write,
                    client_index,
                    size,
                    kind,
                    self.multiplicity,
                    self.tenant,
                )
            offset += streams.exponential("arrivals", 1.0 / self.arrival_rate_per_s)


#: Built-in event classes in registration order (used by the catalog).
BUILTIN_EVENTS = (
    LinkFailureEvent,
    LinkRecoveryEvent,
    CapacityDegradationEvent,
    BlockServerChurnEvent,
    WorkloadSurgeEvent,
)
