"""Dynamics scripts: ordered event lists scheduled on the simulator clock.

A :class:`DynamicsScript` is the serialisable unit the rest of the system
threads around: :attr:`ScenarioSpec.dynamics
<repro.experiments.spec.ScenarioSpec.dynamics>` stores its plain-list form
(so it flows through :class:`~repro.exec.job.ExperimentJob` content keys,
the planners, every executor backend and the
:class:`~repro.exec.store.ResultStore` untouched), the runner builds the
events back through the :data:`~repro.registry.DYNAMICS` registry and
:meth:`DynamicsScript.arm` schedules them deterministically on the
:class:`~repro.sim.engine.Simulator` clock.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields as dataclass_fields
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.dynamics.events import DynamicsError, DynamicsEvent
from repro.registry import DYNAMICS


@dataclass
class DynamicsRuntime:
    """The live handles a firing event mutates.

    Built by the experiment runner for each scheme run; ``issue_write`` is a
    callback issuing one extra write request (client index, size, flow kind)
    so workload-surge events reuse the runner's content-id and request
    plumbing without the dynamics layer importing it.
    """

    sim: Any
    topology: Any
    fabric: Any
    cluster: Any = None
    seed: int = 0
    issue_write: Optional[Callable[..., None]] = None


def build_event(data: Mapping[str, Any]) -> DynamicsEvent:
    """One event from its ``{"kind": ..., **params}`` dict form.

    The kind resolves through the :data:`~repro.registry.DYNAMICS` registry
    (with its did-you-mean error on typos) and the remaining keys must match
    the event dataclass's fields, so malformed scripts fail at build time
    with the valid field names — not mid-run.
    """
    if not isinstance(data, Mapping):
        raise DynamicsError(f"a dynamics event must be a JSON object, got {data!r}")
    params = dict(data)
    kind = params.pop("kind", None)
    if not kind:
        raise DynamicsError(f"dynamics event is missing its 'kind': {dict(data)!r}")
    entry = DYNAMICS.get(str(kind))
    return entry.builder(entry.make_config(params))


def event_to_dict(event: DynamicsEvent) -> Dict[str, Any]:
    """An event's plain ``{"kind": ..., **params}`` form (lossless)."""
    from repro.experiments.spec import _jsonify

    payload: Dict[str, Any] = {"kind": event.kind}
    for f in dataclass_fields(event):
        payload[f.name] = _jsonify(getattr(event, f.name))
    return payload


class DynamicsScript:
    """An ordered list of :class:`~repro.dynamics.events.DynamicsEvent`.

    Scripts round-trip losslessly through JSON; ``from_json`` accepts either
    a bare event list or an ``{"events": [...]}`` object (the ``save``
    format, which leaves room for future metadata).
    """

    def __init__(self, events: Sequence[DynamicsEvent] = ()) -> None:
        self.events: List[DynamicsEvent] = list(events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def is_noop(self) -> bool:
        """True when the script schedules nothing (the static-world default)."""
        return not self.events

    # -- serialisation -----------------------------------------------------------------
    @classmethod
    def from_list(cls, items: Sequence[Mapping[str, Any]]) -> "DynamicsScript":
        """Build a script from a list of event dicts (the spec's form)."""
        if isinstance(items, Mapping):
            raise DynamicsError("a dynamics script must be a list of event objects")
        return cls([build_event(item) for item in items])

    def to_list(self) -> List[Dict[str, Any]]:
        """The plain-list form stored on :attr:`ScenarioSpec.dynamics`."""
        return [event_to_dict(event) for event in self.events]

    @classmethod
    def from_json(cls, text: str) -> "DynamicsScript":
        """Parse a script from JSON (bare list or ``{"events": [...]}``)."""
        data = json.loads(text)
        if isinstance(data, Mapping):
            data = data.get("events", None)
            if data is None:
                raise DynamicsError(
                    "a dynamics script object must hold an 'events' list"
                )
        return cls.from_list(data)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The script as a JSON document (``{"events": [...]}``)."""
        return json.dumps({"events": self.to_list()}, indent=indent)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "DynamicsScript":
        """Read a script from a JSON file."""
        return cls.from_json(Path(path).read_text())

    def save(self, path: Union[str, Path]) -> Path:
        """Write the script to ``path`` as JSON; returns the path."""
        out = Path(path)
        out.write_text(self.to_json() + "\n")
        return out

    # -- scheduling --------------------------------------------------------------------
    def arm(self, runtime: DynamicsRuntime) -> int:
        """Schedule every event on the runtime's simulator clock.

        Firing times resolve per-event jitter through pinned
        :func:`~repro.sim.random.derive_seed` namespaces (see
        :meth:`~repro.dynamics.events.DynamicsEvent.fire_time`), so the
        schedule depends only on (seed, script), never on execution order.
        Returns the number of events armed.
        """
        for index, event in enumerate(self.events):
            fire_at = event.fire_time(runtime.seed, index)
            runtime.sim.call_at(fire_at, event.apply, runtime, index)
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(e.kind for e in self.events) or "no-op"
        return f"<DynamicsScript {len(self.events)} events: {kinds}>"
