"""The dynamics layer: fault injection, churn and topology mutation.

The paper's story is a centralised controller keeping content delivery
efficient *as conditions change*; this package makes the simulated world
dynamic.  Timed, declarative events — link failures and recoveries, capacity
brown-outs, block-server churn with re-replication, workload surges — are
plugins in the :data:`~repro.registry.DYNAMICS` registry, composed into a
:class:`DynamicsScript` that a :class:`~repro.experiments.spec.ScenarioSpec`
carries in its serialisable ``dynamics`` field and the runner schedules on
the simulator clock.  See ``docs/DYNAMICS.md``.
"""

from repro.dynamics.events import (
    BlockServerChurnEvent,
    CapacityDegradationEvent,
    DynamicsError,
    DynamicsEvent,
    LinkFailureEvent,
    LinkRecoveryEvent,
    WorkloadSurgeEvent,
)
from repro.dynamics.script import DynamicsRuntime, DynamicsScript, build_event

__all__ = [
    "BlockServerChurnEvent",
    "CapacityDegradationEvent",
    "DynamicsError",
    "DynamicsEvent",
    "DynamicsRuntime",
    "DynamicsScript",
    "LinkFailureEvent",
    "LinkRecoveryEvent",
    "WorkloadSurgeEvent",
    "build_event",
]
