"""Aggregate (multiplicity-weighted) workloads: million-session populations.

A CDN edge does not see one fluid flow per viewer — it sees a handful of
*populations*, each of which is thousands of near-identical sessions pulling
the same content over the same edge.  These generators exploit the
:attr:`~repro.workloads.traces.FlowRequest.multiplicity` field: one request
(and hence one fluid flow object in the fabric) stands in for N concurrent
sessions, so a 10^6-session scenario costs a few thousand flow objects.

Three shapes:

* :func:`generate_diurnal_workload` — a day/night sinusoidal load curve,
  binned into aggregate flows (the steady-state CDN picture);
* :func:`generate_flash_crowd_workload` — a modest baseline plus a sudden
  viewer spike; composes with the ``workload-surge`` dynamics event (which
  also accepts a ``multiplicity``) for mid-run crowds;
* :func:`generate_multi_tenant_workload` — several tenants sharing the
  fabric, every request tagged so the experiment runner emits per-tenant
  fairness extras (Jain index over the tenants' mean goodputs).

All draws come from :class:`~repro.sim.random.RandomStreams` namespaced by
the seed, so a workload is identical across executor backends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.content import ContentClass
from repro.network.flow import FlowKind
from repro.sim.random import RandomStreams
from repro.workloads.distributions import LognormalSize
from repro.workloads.traces import FlowRequest, Operation, Workload

MB = 1024.0 * 1024.0


def _draw_size(sizes: LognormalSize, rng: np.random.Generator, floor: float) -> float:
    return float(max(sizes.sample(rng), floor))


# --------------------------------------------------------------------------------------
# Diurnal
# --------------------------------------------------------------------------------------
@dataclass
class DiurnalConfig:
    """A sinusoidal day/night session population, binned into aggregate flows.

    ``sessions_total`` sessions arrive over ``duration_s`` following
    ``1 + (peak_to_trough - 1)/2 · (1 + sin)`` with period ``day_length_s``;
    each ``bin_s`` window per drawn client becomes ONE aggregate request
    whose multiplicity is the (Poisson-sampled) session count of that
    window, so a million sessions cost on the order of
    ``duration_s / bin_s × clients_per_bin`` flow objects.
    """

    duration_s: float = 120.0
    day_length_s: float = 120.0          #: one full diurnal cycle
    bin_s: float = 5.0                   #: aggregation window per flow object
    sessions_total: int = 100_000
    peak_to_trough: float = 4.0
    mean_size_bytes: float = 2.0 * MB    #: median of the lognormal video size
    size_sigma: float = 0.7
    size_cap_bytes: float = 30.0 * MB
    num_clients: int = 8
    clients_per_bin: int = 4             #: distinct client edges drawn per window
    tenant: str = ""                     #: optional tenant tag on every request

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.day_length_s <= 0 or self.bin_s <= 0:
            raise ValueError("duration, day length and bin must be positive")
        if self.sessions_total < 1:
            raise ValueError("need at least one session")
        if self.peak_to_trough < 1.0:
            raise ValueError("peak_to_trough must be >= 1")
        if self.mean_size_bytes <= 0 or self.size_cap_bytes <= self.mean_size_bytes:
            raise ValueError("need 0 < median < cap for sizes")
        if self.num_clients < 1 or self.clients_per_bin < 1:
            raise ValueError("need at least one client (and one per bin)")


def generate_diurnal_workload(
    config: Optional[DiurnalConfig] = None, seed: int = 0
) -> Workload:
    """Generate the diurnal aggregate workload."""
    cfg = config or DiurnalConfig()
    streams = RandomStreams(seed).spawn("diurnal")
    count_rng = streams.stream("counts")
    size_rng = streams.stream("sizes")
    client_rng = streams.stream("clients")

    sizes = LognormalSize(
        median_bytes=cfg.mean_size_bytes,
        sigma=cfg.size_sigma,
        cap_bytes=cfg.size_cap_bytes,
    )

    num_bins = max(1, int(math.ceil(cfg.duration_s / cfg.bin_s)))
    amplitude = (cfg.peak_to_trough - 1.0) / 2.0
    weights = np.array(
        [
            1.0 + amplitude * (1.0 + math.sin(2.0 * math.pi * (b * cfg.bin_s) / cfg.day_length_s))
            for b in range(num_bins)
        ],
        dtype=float,
    )
    per_bin_mean = weights * (cfg.sessions_total / float(weights.sum()))

    fanout = min(cfg.clients_per_bin, cfg.num_clients)
    requests: List[FlowRequest] = []
    for b in range(num_bins):
        t = min(b * cfg.bin_s, cfg.duration_s)
        clients = client_rng.choice(cfg.num_clients, size=fanout, replace=False)
        for client in clients:
            sessions = int(count_rng.poisson(per_bin_mean[b] / fanout))
            if sessions < 1:
                continue
            requests.append(
                FlowRequest(
                    arrival_time_s=float(t),
                    size_bytes=_draw_size(sizes, size_rng, 1024.0),
                    client_index=int(client),
                    operation=Operation.WRITE,
                    flow_kind=FlowKind.VIDEO,
                    content_class=ContentClass.LWHR,
                    multiplicity=sessions,
                    tenant=cfg.tenant,
                    meta={"bin": b},
                )
            )
    return Workload(requests, name="diurnal")


# --------------------------------------------------------------------------------------
# Flash crowd
# --------------------------------------------------------------------------------------
@dataclass
class FlashCrowdConfig:
    """A modest baseline population with a sudden viewer spike.

    The baseline issues Poisson aggregate requests of ``baseline_multiplicity``
    sessions each; at ``crowd_at_s`` an extra ``crowd_sessions`` sessions
    arrive within ``crowd_duration_s``, carried by ``crowd_fanout`` aggregate
    flow objects.  For a *mid-run* crowd driven by the dynamics engine
    instead, put a ``workload-surge`` event with a ``multiplicity`` in the
    scenario's dynamics script — the two compose (both go through the same
    cluster write path).
    """

    duration_s: float = 60.0
    baseline_rate_per_s: float = 2.0     #: aggregate flow objects per second
    baseline_multiplicity: int = 20
    crowd_at_s: float = 20.0
    crowd_duration_s: float = 5.0
    crowd_sessions: int = 50_000
    crowd_fanout: int = 50               #: flow objects carrying the spike
    mean_size_bytes: float = 4.0 * MB
    size_sigma: float = 0.6
    size_cap_bytes: float = 30.0 * MB
    num_clients: int = 8
    baseline_tenant: str = "steady"
    crowd_tenant: str = "crowd"

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.crowd_duration_s <= 0:
            raise ValueError("durations must be positive")
        if not (0.0 <= self.crowd_at_s < self.duration_s):
            raise ValueError("crowd_at_s must fall inside the run")
        if self.baseline_rate_per_s <= 0:
            raise ValueError("baseline rate must be positive")
        if self.baseline_multiplicity < 1 or self.crowd_fanout < 1:
            raise ValueError("multiplicity and fanout must be positive")
        if self.crowd_sessions < self.crowd_fanout:
            raise ValueError("crowd_sessions must be at least crowd_fanout")
        if self.mean_size_bytes <= 0 or self.size_cap_bytes <= self.mean_size_bytes:
            raise ValueError("need 0 < median < cap for sizes")
        if self.num_clients < 1:
            raise ValueError("need at least one client")


def generate_flash_crowd_workload(
    config: Optional[FlashCrowdConfig] = None, seed: int = 0
) -> Workload:
    """Generate the flash-crowd aggregate workload."""
    cfg = config or FlashCrowdConfig()
    streams = RandomStreams(seed).spawn("flash-crowd")
    arrival_rng = streams.stream("arrivals")
    size_rng = streams.stream("sizes")
    client_rng = streams.stream("clients")

    sizes = LognormalSize(
        median_bytes=cfg.mean_size_bytes,
        sigma=cfg.size_sigma,
        cap_bytes=cfg.size_cap_bytes,
    )

    requests: List[FlowRequest] = []
    # Baseline: Poisson aggregate arrivals for the whole run.
    t = float(arrival_rng.exponential(1.0 / cfg.baseline_rate_per_s))
    while t < cfg.duration_s:
        requests.append(
            FlowRequest(
                arrival_time_s=t,
                size_bytes=_draw_size(sizes, size_rng, 1024.0),
                client_index=int(client_rng.integers(0, cfg.num_clients)),
                operation=Operation.WRITE,
                flow_kind=FlowKind.VIDEO,
                content_class=ContentClass.LWHR,
                multiplicity=cfg.baseline_multiplicity,
                tenant=cfg.baseline_tenant,
            )
        )
        t += float(arrival_rng.exponential(1.0 / cfg.baseline_rate_per_s))

    # The crowd: crowd_sessions split as evenly as integers allow across
    # crowd_fanout aggregate flows, uniformly spread over the spike window.
    base, leftover = divmod(cfg.crowd_sessions, cfg.crowd_fanout)
    for i in range(cfg.crowd_fanout):
        at = cfg.crowd_at_s + (i / cfg.crowd_fanout) * cfg.crowd_duration_s
        requests.append(
            FlowRequest(
                arrival_time_s=min(at, cfg.duration_s),
                size_bytes=_draw_size(sizes, size_rng, 1024.0),
                client_index=int(client_rng.integers(0, cfg.num_clients)),
                operation=Operation.WRITE,
                flow_kind=FlowKind.VIDEO,
                content_class=ContentClass.LWHR,
                multiplicity=base + (1 if i < leftover else 0),
                tenant=cfg.crowd_tenant,
                meta={"crowd_index": i},
            )
        )
    return Workload(requests, name="flash-crowd")


# --------------------------------------------------------------------------------------
# Multi-tenant
# --------------------------------------------------------------------------------------
@dataclass
class MultiTenantConfig:
    """Several tenants sharing the fabric with per-tenant session budgets.

    Tenant *i* drives ``sessions_per_tenant[i]`` sessions as Poisson
    aggregate arrivals at ``arrival_rate_per_s`` flow objects per second.
    Every request carries the tenant's tag, so the experiment runner emits
    ``tenant:<name>:*`` extras and a Jain fairness index across the tenants'
    session-weighted mean goodputs.
    """

    duration_s: float = 60.0
    tenants: Tuple[str, ...] = ("gold", "silver", "bronze")
    sessions_per_tenant: Tuple[int, ...] = (40_000, 20_000, 10_000)
    arrival_rate_per_s: float = 2.0      #: aggregate flow objects per tenant per second
    mean_size_bytes: float = 2.0 * MB
    size_sigma: float = 0.7
    size_cap_bytes: float = 30.0 * MB
    num_clients: int = 8

    def __post_init__(self) -> None:
        self.tenants = tuple(self.tenants)
        self.sessions_per_tenant = tuple(int(s) for s in self.sessions_per_tenant)
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if not self.tenants:
            raise ValueError("need at least one tenant")
        if len(set(self.tenants)) != len(self.tenants):
            raise ValueError("tenant names must be unique")
        if any(not t for t in self.tenants):
            raise ValueError("tenant names must be non-empty")
        if len(self.sessions_per_tenant) != len(self.tenants):
            raise ValueError("sessions_per_tenant must match tenants")
        if any(s < 1 for s in self.sessions_per_tenant):
            raise ValueError("every tenant needs at least one session")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.mean_size_bytes <= 0 or self.size_cap_bytes <= self.mean_size_bytes:
            raise ValueError("need 0 < median < cap for sizes")
        if self.num_clients < 1:
            raise ValueError("need at least one client")


def generate_multi_tenant_workload(
    config: Optional[MultiTenantConfig] = None, seed: int = 0
) -> Workload:
    """Generate the multi-tenant aggregate workload."""
    cfg = config or MultiTenantConfig()
    streams = RandomStreams(seed).spawn("multi-tenant")

    sizes = LognormalSize(
        median_bytes=cfg.mean_size_bytes,
        sigma=cfg.size_sigma,
        cap_bytes=cfg.size_cap_bytes,
    )

    requests: List[FlowRequest] = []
    for tenant, sessions_budget in zip(cfg.tenants, cfg.sessions_per_tenant):
        # Per-tenant streams: adding a tenant never perturbs another's draws.
        tstreams = streams.spawn(f"tenant:{tenant}")
        arrival_rng = tstreams.stream("arrivals")
        size_rng = tstreams.stream("sizes")
        client_rng = tstreams.stream("clients")

        arrivals: List[float] = []
        t = float(arrival_rng.exponential(1.0 / cfg.arrival_rate_per_s))
        while t < cfg.duration_s:
            arrivals.append(t)
            t += float(arrival_rng.exponential(1.0 / cfg.arrival_rate_per_s))
        if not arrivals:
            arrivals = [0.0]

        base, leftover = divmod(sessions_budget, len(arrivals))
        for i, at in enumerate(arrivals):
            multiplicity = base + (1 if i < leftover else 0)
            if multiplicity < 1:
                continue
            requests.append(
                FlowRequest(
                    arrival_time_s=at,
                    size_bytes=_draw_size(sizes, size_rng, 1024.0),
                    client_index=int(client_rng.integers(0, cfg.num_clients)),
                    operation=Operation.WRITE,
                    flow_kind=FlowKind.DATA,
                    content_class=ContentClass.LWHR,
                    multiplicity=multiplicity,
                    tenant=tenant,
                )
            )
    return Workload(requests, name="multi-tenant")


__all__ = [
    "DiurnalConfig",
    "FlashCrowdConfig",
    "MultiTenantConfig",
    "generate_diurnal_workload",
    "generate_flash_crowd_workload",
    "generate_multi_tenant_workload",
]
