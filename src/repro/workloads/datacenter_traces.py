"""Synthetic general-datacenter workload (Section X-A2).

The paper uses file sizes from the VL2 measurement study and flow
inter-arrival times from Benson et al. ("Network traffic characteristics of
data centers in the wild").  The published characterisations are:

* sizes are strongly bimodal — the vast majority of flows are *mice*
  (a few KB to a few hundred KB) while a small fraction are larger transfers
  of a few MB (the paper's AFCT plots span 0-7000 KB);
* arrivals at a ToR are bursty, with lognormal-like inter-arrival times.

This generator reproduces that shape with a two-component mixture and a
lognormal renewal arrival process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cluster.content import ContentClass
from repro.network.flow import FlowKind
from repro.sim.random import RandomStreams
from repro.workloads.distributions import (
    BoundedParetoSize,
    LognormalArrivals,
    LognormalSize,
    MixtureSize,
)
from repro.workloads.traces import FlowRequest, Operation, Workload

KB = 1024.0
MB = 1024.0 * 1024.0


@dataclass
class DatacenterTraceConfig:
    """Parameters of the synthetic datacenter workload."""

    duration_s: float = 100.0
    arrival_rate_per_s: float = 30.0
    burstiness_sigma: float = 1.2       #: lognormal sigma of inter-arrivals (bursty > 1)
    mice_fraction: float = 0.8          #: fraction of flows that are mice
    mice_median_bytes: float = 60.0 * KB
    mice_sigma: float = 1.0
    elephant_min_bytes: float = 0.5 * MB
    elephant_max_bytes: float = 7.0 * MB  #: the 7 MB upper end of Figures 13-16
    elephant_shape: float = 1.2
    num_clients: int = 8
    read_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if not (0.0 <= self.mice_fraction <= 1.0):
            raise ValueError("mice_fraction must be in [0, 1]")
        if self.num_clients < 1:
            raise ValueError("need at least one client")
        if not (0.0 <= self.read_fraction <= 1.0):
            raise ValueError("read_fraction must be in [0, 1]")


def generate_datacenter_workload(
    config: Optional[DatacenterTraceConfig] = None, seed: int = 0
) -> Workload:
    """Generate the general-datacenter workload."""
    cfg = config or DatacenterTraceConfig()
    streams = RandomStreams(seed).spawn("datacenter-trace")
    arrival_rng = streams.stream("arrivals")
    size_rng = streams.stream("sizes")
    client_rng = streams.stream("clients")

    sizes = MixtureSize(
        components=[
            LognormalSize(median_bytes=cfg.mice_median_bytes, sigma=cfg.mice_sigma,
                          cap_bytes=cfg.elephant_min_bytes),
            BoundedParetoSize(cfg.elephant_min_bytes, cfg.elephant_max_bytes, cfg.elephant_shape),
        ],
        weights=[cfg.mice_fraction, 1.0 - cfg.mice_fraction],
    )
    arrivals = LognormalArrivals(
        mean_interarrival_s=1.0 / cfg.arrival_rate_per_s, sigma=cfg.burstiness_sigma
    )

    requests: List[FlowRequest] = []
    written = 0
    for t in arrivals.arrival_times(arrival_rng, cfg.duration_s):
        client = int(client_rng.integers(0, cfg.num_clients))
        size = sizes.sample(size_rng)
        is_read = cfg.read_fraction > 0 and written > 0 and client_rng.random() < cfg.read_fraction
        content_ref = f"dc-{int(client_rng.integers(0, written))}" if is_read else ""
        requests.append(
            FlowRequest(
                arrival_time_s=float(t),
                size_bytes=float(size),
                client_index=client,
                operation=Operation.READ if is_read else Operation.WRITE,
                flow_kind=FlowKind.DATA,
                content_class=ContentClass.LWHR if size > 1 * MB else ContentClass.HWLR,
                content_ref=content_ref,
            )
        )
        if not is_read:
            written += 1
    return Workload(requests, name="datacenter-traces")
