"""Built-in workload registrations.

Every builder follows the generator convention ``builder(config, seed=0) ->
Workload`` so the experiment layer can drive any of them from string keys
plus plain parameters.
"""

from __future__ import annotations

from repro.registry import WORKLOADS
from repro.workloads.datacenter_traces import (
    DatacenterTraceConfig,
    generate_datacenter_workload,
)
from repro.workloads.pareto_poisson import (
    ParetoPoissonConfig,
    generate_pareto_poisson_workload,
)
from repro.workloads.video_traces import VideoTraceConfig, generate_video_workload

WORKLOADS.register(
    "video",
    generate_video_workload,
    config_cls=VideoTraceConfig,
    description="YouTube-CDN-like traces, optional control flows (Section X-A1)",
    aliases=("youtube",),
)

WORKLOADS.register(
    "datacenter",
    generate_datacenter_workload,
    config_cls=DatacenterTraceConfig,
    description="bimodal mice/elephant datacenter traces (Section X-A2)",
    aliases=("dc",),
)

WORKLOADS.register(
    "pareto-poisson",
    generate_pareto_poisson_workload,
    config_cls=ParetoPoissonConfig,
    description="Pareto sizes, Poisson arrivals (Section X-B)",
    aliases=("pareto",),
)
