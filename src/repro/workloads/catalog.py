"""Built-in workload registrations.

Every builder follows the generator convention ``builder(config, seed=0) ->
Workload`` so the experiment layer can drive any of them from string keys
plus plain parameters.
"""

from __future__ import annotations

from repro.registry import WORKLOADS
from repro.workloads.aggregate import (
    DiurnalConfig,
    FlashCrowdConfig,
    MultiTenantConfig,
    generate_diurnal_workload,
    generate_flash_crowd_workload,
    generate_multi_tenant_workload,
)
from repro.workloads.datacenter_traces import (
    DatacenterTraceConfig,
    generate_datacenter_workload,
)
from repro.workloads.pareto_poisson import (
    ParetoPoissonConfig,
    generate_pareto_poisson_workload,
)
from repro.workloads.video_traces import VideoTraceConfig, generate_video_workload

WORKLOADS.register(
    "video",
    generate_video_workload,
    config_cls=VideoTraceConfig,
    description="YouTube-CDN-like traces, optional control flows (Section X-A1)",
    aliases=("youtube",),
)

WORKLOADS.register(
    "datacenter",
    generate_datacenter_workload,
    config_cls=DatacenterTraceConfig,
    description="bimodal mice/elephant datacenter traces (Section X-A2)",
    aliases=("dc",),
)

WORKLOADS.register(
    "pareto-poisson",
    generate_pareto_poisson_workload,
    config_cls=ParetoPoissonConfig,
    description="Pareto sizes, Poisson arrivals (Section X-B)",
    aliases=("pareto",),
)

WORKLOADS.register(
    "diurnal",
    generate_diurnal_workload,
    config_cls=DiurnalConfig,
    description="day/night CDN session population as aggregate flows",
)

WORKLOADS.register(
    "flash-crowd",
    generate_flash_crowd_workload,
    config_cls=FlashCrowdConfig,
    description="baseline population plus a sudden aggregate viewer spike",
    aliases=("crowd",),
)

WORKLOADS.register(
    "multi-tenant",
    generate_multi_tenant_workload,
    config_cls=MultiTenantConfig,
    description="tenant-tagged aggregate populations with fairness extras",
    aliases=("tenants",),
)
