"""Workload generation.

The paper evaluates SCDA with three workloads; the original traces are not
redistributable, so this package generates synthetic equivalents that match
the published characteristics (see DESIGN.md for the substitution argument):

* :mod:`~repro.workloads.video_traces` — YouTube-CDN-like traffic: small HTTP
  control flows (< 5 KB) plus heavy-tailed video flows capped around 30 MB,
  with arrival rates scaled to 20 servers (Section X-A1).
* :mod:`~repro.workloads.datacenter_traces` — general datacenter traffic:
  a mice/elephant size mix up to ~7 MB with bursty arrivals (Section X-A2).
* :mod:`~repro.workloads.distributions` — the Pareto file-size / Poisson
  arrival generators of Section X-B, plus the building-block distributions
  used by the trace generators.
* :mod:`~repro.workloads.traces` — the :class:`Workload` container: a list of
  timestamped flow requests with summary statistics and CSV round-tripping.
"""

from repro.workloads.distributions import (
    SizeDistribution,
    ConstantSize,
    UniformSize,
    ParetoSize,
    BoundedParetoSize,
    LognormalSize,
    MixtureSize,
    EmpiricalSize,
    ArrivalProcess,
    PoissonArrivals,
    LognormalArrivals,
    OnOffArrivals,
)
from repro.workloads.traces import FlowRequest, Workload, Operation
from repro.workloads.video_traces import VideoTraceConfig, generate_video_workload
from repro.workloads.datacenter_traces import (
    DatacenterTraceConfig,
    generate_datacenter_workload,
)
from repro.workloads.pareto_poisson import ParetoPoissonConfig, generate_pareto_poisson_workload

__all__ = [
    "SizeDistribution",
    "ConstantSize",
    "UniformSize",
    "ParetoSize",
    "BoundedParetoSize",
    "LognormalSize",
    "MixtureSize",
    "EmpiricalSize",
    "ArrivalProcess",
    "PoissonArrivals",
    "LognormalArrivals",
    "OnOffArrivals",
    "FlowRequest",
    "Workload",
    "Operation",
    "VideoTraceConfig",
    "generate_video_workload",
    "DatacenterTraceConfig",
    "generate_datacenter_workload",
    "ParetoPoissonConfig",
    "generate_pareto_poisson_workload",
]
