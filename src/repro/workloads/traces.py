"""The :class:`Workload` container: timestamped flow requests plus statistics."""

from __future__ import annotations

import csv
import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.cluster.content import ContentClass
from repro.network.flow import FlowKind


class Operation(enum.Enum):
    """What the request asks the cloud to do."""

    WRITE = "write"
    READ = "read"


@dataclass
class FlowRequest:
    """One workload item: a client asking to store or retrieve content."""

    arrival_time_s: float
    size_bytes: float
    client_index: int = 0
    operation: Operation = Operation.WRITE
    flow_kind: FlowKind = FlowKind.DATA
    content_class: ContentClass = ContentClass.LWHR
    #: id of previously written content (reads only); empty for writes
    content_ref: str = ""
    #: number of identical concurrent sessions this request stands in for;
    #: > 1 makes the resulting transfer an aggregate fluid flow
    multiplicity: int = 1
    #: opaque tenant label for per-tenant metrics ("" = untagged)
    tenant: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.arrival_time_s < 0:
            raise ValueError("arrival time must be non-negative")
        if self.size_bytes <= 0:
            raise ValueError("size must be positive")
        if self.client_index < 0:
            raise ValueError("client index must be non-negative")
        if int(self.multiplicity) != self.multiplicity or self.multiplicity < 1:
            raise ValueError("multiplicity must be a positive integer")


class Workload:
    """An ordered collection of :class:`FlowRequest`."""

    def __init__(self, requests: Iterable[FlowRequest] = (), name: str = "workload") -> None:
        self.name = name
        self.requests: List[FlowRequest] = sorted(requests, key=lambda r: r.arrival_time_s)

    # -- container protocol --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[FlowRequest]:
        return iter(self.requests)

    def __getitem__(self, index):
        return self.requests[index]

    def add(self, request: FlowRequest) -> None:
        """Insert a request, keeping arrival order."""
        self.requests.append(request)
        self.requests.sort(key=lambda r: r.arrival_time_s)

    def merge(self, other: "Workload", name: Optional[str] = None) -> "Workload":
        """A new workload containing the requests of both (re-sorted)."""
        return Workload(list(self.requests) + list(other.requests), name or self.name)

    def filtered(self, predicate) -> "Workload":
        """A new workload with only the requests matching ``predicate``."""
        return Workload([r for r in self.requests if predicate(r)], self.name)

    # -- statistics -------------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        """Time of the last arrival."""
        return self.requests[-1].arrival_time_s if self.requests else 0.0

    @property
    def total_bytes(self) -> float:
        """Sum of request sizes."""
        return float(sum(r.size_bytes for r in self.requests))

    @property
    def total_sessions(self) -> int:
        """Σ multiplicity — user sessions the workload drives.

        Equals ``len(self)`` until a request has multiplicity > 1; a
        million-session aggregate workload may drive 10^6 sessions through a
        few thousand flow objects.
        """
        return int(sum(r.multiplicity for r in self.requests))

    def sizes(self) -> np.ndarray:
        """Array of request sizes in bytes."""
        return np.array([r.size_bytes for r in self.requests], dtype=float)

    def arrival_times(self) -> np.ndarray:
        """Array of arrival times in seconds."""
        return np.array([r.arrival_time_s for r in self.requests], dtype=float)

    def mean_size_bytes(self) -> float:
        """Average request size."""
        return float(self.sizes().mean()) if self.requests else 0.0

    def arrival_rate_per_s(self) -> float:
        """Average arrival rate over the workload duration."""
        if len(self.requests) < 2 or self.duration_s <= 0:
            return float(len(self.requests))
        return len(self.requests) / self.duration_s

    def offered_load_bps(self) -> float:
        """Average offered load in bits/s."""
        if self.duration_s <= 0:
            return 0.0
        return self.total_bytes * 8.0 / self.duration_s

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of requests per flow kind."""
        counts: Dict[str, int] = {}
        for request in self.requests:
            counts[request.flow_kind.value] = counts.get(request.flow_kind.value, 0) + 1
        return counts

    def summary(self) -> Dict[str, float]:
        """A dict of headline statistics (useful for logging / EXPERIMENTS.md)."""
        sizes = self.sizes()
        return {
            "requests": float(len(self.requests)),
            "sessions": float(self.total_sessions),
            "duration_s": self.duration_s,
            "total_bytes": self.total_bytes,
            "mean_size_bytes": float(sizes.mean()) if sizes.size else 0.0,
            "p50_size_bytes": float(np.percentile(sizes, 50)) if sizes.size else 0.0,
            "p99_size_bytes": float(np.percentile(sizes, 99)) if sizes.size else 0.0,
            "max_size_bytes": float(sizes.max()) if sizes.size else 0.0,
            "arrival_rate_per_s": self.arrival_rate_per_s(),
            "offered_load_bps": self.offered_load_bps(),
        }

    # -- persistence ------------------------------------------------------------------------------
    _CSV_FIELDS = (
        "arrival_time_s",
        "size_bytes",
        "client_index",
        "operation",
        "flow_kind",
        "content_class",
        "content_ref",
        "multiplicity",
        "tenant",
    )

    def to_csv(self, path) -> None:
        """Write the workload to a CSV file (round-trips with :meth:`from_csv`)."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._CSV_FIELDS)
            for r in self.requests:
                writer.writerow(
                    [
                        f"{r.arrival_time_s:.9f}",
                        f"{r.size_bytes:.3f}",
                        r.client_index,
                        r.operation.value,
                        r.flow_kind.value,
                        r.content_class.value,
                        r.content_ref,
                        r.multiplicity,
                        r.tenant,
                    ]
                )

    @classmethod
    def from_csv(cls, path, name: Optional[str] = None) -> "Workload":
        """Load a workload previously written with :meth:`to_csv`."""
        path = Path(path)
        requests: List[FlowRequest] = []
        with path.open(newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                requests.append(
                    FlowRequest(
                        arrival_time_s=float(row["arrival_time_s"]),
                        size_bytes=float(row["size_bytes"]),
                        client_index=int(row["client_index"]),
                        operation=Operation(row["operation"]),
                        flow_kind=FlowKind(row["flow_kind"]),
                        content_class=ContentClass(row["content_class"]),
                        content_ref=row.get("content_ref", ""),
                        # Absent in CSVs written before aggregate flows existed.
                        multiplicity=int(row.get("multiplicity") or 1),
                        tenant=row.get("tenant") or "",
                    )
                )
        return cls(requests, name or path.stem)

    def to_json(self, path) -> None:
        """Write the workload summary and requests to JSON."""
        payload = {
            "name": self.name,
            "summary": self.summary(),
            "requests": [
                {
                    "arrival_time_s": r.arrival_time_s,
                    "size_bytes": r.size_bytes,
                    "client_index": r.client_index,
                    "operation": r.operation.value,
                    "flow_kind": r.flow_kind.value,
                    "content_class": r.content_class.value,
                    "content_ref": r.content_ref,
                    "multiplicity": r.multiplicity,
                    "tenant": r.tenant,
                }
                for r in self.requests
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2))
