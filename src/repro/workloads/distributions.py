"""Size distributions and arrival processes used by the workload generators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


# --------------------------------------------------------------------------------------
# Size distributions
# --------------------------------------------------------------------------------------
class SizeDistribution:
    """Interface: draw file/content sizes in bytes."""

    def sample(self, rng: np.random.Generator) -> float:
        """One size draw."""
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` size draws (default implementation loops over :meth:`sample`)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)

    def mean(self) -> float:
        """Analytic mean if known, else NaN."""
        return float("nan")


@dataclass
class ConstantSize(SizeDistribution):
    """Every draw is the same size."""

    size_bytes: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("size must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.size_bytes)

    def mean(self) -> float:
        return float(self.size_bytes)


@dataclass
class UniformSize(SizeDistribution):
    """Uniform in ``[low, high]``."""

    low_bytes: float
    high_bytes: float

    def __post_init__(self) -> None:
        if not (0 < self.low_bytes <= self.high_bytes):
            raise ValueError("need 0 < low <= high")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low_bytes, self.high_bytes))

    def mean(self) -> float:
        return (self.low_bytes + self.high_bytes) / 2.0


@dataclass
class ParetoSize(SizeDistribution):
    """Pareto with the NS-2 parametrisation: given ``mean`` and ``shape``.

    For shape ``a > 1`` the minimum (scale) is ``mean·(a−1)/a`` so the
    expectation equals ``mean``.  This is the distribution of the paper's
    Section X-B (mean 500 KB, shape 1.6).
    """

    mean_bytes: float
    shape: float

    def __post_init__(self) -> None:
        if self.mean_bytes <= 0:
            raise ValueError("mean must be positive")
        if self.shape <= 1.0:
            raise ValueError("shape must be > 1 for a finite mean")

    @property
    def scale_bytes(self) -> float:
        """The minimum value of the distribution."""
        return self.mean_bytes * (self.shape - 1.0) / self.shape

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        return float(self.scale_bytes / (1.0 - u) ** (1.0 / self.shape))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        u = rng.random(n)
        return self.scale_bytes / (1.0 - u) ** (1.0 / self.shape)

    def mean(self) -> float:
        return float(self.mean_bytes)


@dataclass
class BoundedParetoSize(SizeDistribution):
    """Pareto truncated to ``[low, high]`` by inverse-CDF sampling."""

    low_bytes: float
    high_bytes: float
    shape: float

    def __post_init__(self) -> None:
        if not (0 < self.low_bytes < self.high_bytes):
            raise ValueError("need 0 < low < high")
        if self.shape <= 0:
            raise ValueError("shape must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_many(rng, 1)[0])

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        a = self.shape
        l, h = self.low_bytes, self.high_bytes
        u = rng.random(n)
        # Inverse CDF of the bounded Pareto.
        ratio = (h / l) ** a
        x = (-(u * (ratio - 1.0) - ratio) / ratio) ** (-1.0 / a) * l
        return np.clip(x, l, h)

    def mean(self) -> float:
        a = self.shape
        l, h = self.low_bytes, self.high_bytes
        if abs(a - 1.0) < 1e-12:
            return float(l * h / (h - l) * np.log(h / l))
        return float((l ** a) / (1 - (l / h) ** a) * (a / (a - 1)) * (1 / l ** (a - 1) - 1 / h ** (a - 1)))


@dataclass
class LognormalSize(SizeDistribution):
    """Lognormal given the median and the log-space sigma."""

    median_bytes: float
    sigma: float
    cap_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if self.median_bytes <= 0:
            raise ValueError("median must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.cap_bytes is not None and self.cap_bytes < self.median_bytes:
            raise ValueError("cap must be at least the median")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.sample_many(rng, 1)[0])

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        draws = rng.lognormal(mean=np.log(self.median_bytes), sigma=self.sigma, size=n)
        if self.cap_bytes is not None:
            draws = np.minimum(draws, self.cap_bytes)
        return draws

    def mean(self) -> float:
        raw = self.median_bytes * np.exp(self.sigma ** 2 / 2.0)
        return float(min(raw, self.cap_bytes) if self.cap_bytes is not None else raw)


@dataclass
class MixtureSize(SizeDistribution):
    """A finite mixture of size distributions with given weights."""

    components: Sequence[SizeDistribution]
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.components) == 0:
            raise ValueError("mixture needs at least one component")
        if len(self.components) != len(self.weights):
            raise ValueError("components and weights must have the same length")
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("weights must be non-negative and sum to a positive value")

    def _probabilities(self) -> np.ndarray:
        w = np.asarray(self.weights, dtype=float)
        return w / w.sum()

    def sample(self, rng: np.random.Generator) -> float:
        idx = int(rng.choice(len(self.components), p=self._probabilities()))
        return self.components[idx].sample(rng)

    def mean(self) -> float:
        p = self._probabilities()
        return float(sum(pi * c.mean() for pi, c in zip(p, self.components)))


@dataclass
class EmpiricalSize(SizeDistribution):
    """Resample (with replacement) from an observed list of sizes."""

    samples_bytes: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.samples_bytes) == 0:
            raise ValueError("need at least one sample")
        if any(s <= 0 for s in self.samples_bytes):
            raise ValueError("all samples must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.samples_bytes[int(rng.integers(0, len(self.samples_bytes)))])

    def mean(self) -> float:
        return float(np.mean(self.samples_bytes))


# --------------------------------------------------------------------------------------
# Arrival processes
# --------------------------------------------------------------------------------------
class ArrivalProcess:
    """Interface: generate arrival timestamps over ``[0, duration)``."""

    def arrival_times(self, rng: np.random.Generator, duration_s: float) -> np.ndarray:
        """Sorted arrival times in seconds."""
        raise NotImplementedError


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process with the given rate."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate must be positive")

    def arrival_times(self, rng: np.random.Generator, duration_s: float) -> np.ndarray:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        # Draw slightly more than expected and trim; repeat if unlucky.
        times: List[float] = []
        t = 0.0
        while t < duration_s:
            t += rng.exponential(1.0 / self.rate_per_s)
            if t < duration_s:
                times.append(t)
        return np.array(times, dtype=float)


@dataclass
class LognormalArrivals(ArrivalProcess):
    """Renewal process with lognormal inter-arrival times (bursty).

    Benson et al. observed lognormal-like inter-arrivals at datacenter ToR
    switches; ``sigma`` controls burstiness.
    """

    mean_interarrival_s: float
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_interarrival_s <= 0:
            raise ValueError("mean inter-arrival must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")

    def arrival_times(self, rng: np.random.Generator, duration_s: float) -> np.ndarray:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        # For a lognormal with log-space mean mu and sigma s, the mean is
        # exp(mu + s^2/2); solve mu so the configured mean holds.
        mu = np.log(self.mean_interarrival_s) - self.sigma ** 2 / 2.0
        times: List[float] = []
        t = 0.0
        while t < duration_s:
            t += float(rng.lognormal(mu, self.sigma))
            if t < duration_s:
                times.append(t)
        return np.array(times, dtype=float)


@dataclass
class OnOffArrivals(ArrivalProcess):
    """Bursty ON/OFF arrivals: Poisson bursts separated by idle gaps."""

    on_rate_per_s: float
    mean_on_s: float
    mean_off_s: float

    def __post_init__(self) -> None:
        if self.on_rate_per_s <= 0 or self.mean_on_s <= 0 or self.mean_off_s < 0:
            raise ValueError("invalid ON/OFF parameters")

    def arrival_times(self, rng: np.random.Generator, duration_s: float) -> np.ndarray:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        times: List[float] = []
        t = 0.0
        while t < duration_s:
            on_end = t + rng.exponential(self.mean_on_s)
            while t < min(on_end, duration_s):
                t += rng.exponential(1.0 / self.on_rate_per_s)
                if t < min(on_end, duration_s):
                    times.append(t)
            t = on_end + rng.exponential(self.mean_off_s) if self.mean_off_s > 0 else on_end
        return np.array(sorted(times), dtype=float)
