"""Synthetic YouTube-CDN-like workload (Section X-A1).

The paper drives its first experiments with YouTube traces from Torres et al.
(file sizes) and Mori et al. (flow arrival rates), scaled down to 20 of the
2138 YouTube cache servers.  The traces themselves are not redistributable;
this generator reproduces the published characteristics:

* **control flows** — HTTP exchanges between the Flash plugin and a content
  server before each video starts; all smaller than 5 KB;
* **video flows** — heavy-tailed sizes with a hard cap around 30 MB (Torres
  et al. and Cheng et al. both report ~30 MB as the practical maximum for the
  vast majority of YouTube videos);
* arrivals form a Poisson process whose rate is chosen relative to the number
  of simulated servers (20) out of the full fleet (2138).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.cluster.content import ContentClass
from repro.network.flow import FlowKind
from repro.sim.random import RandomStreams
from repro.workloads.distributions import (
    LognormalSize,
    PoissonArrivals,
    UniformSize,
)
from repro.workloads.traces import FlowRequest, Operation, Workload

KB = 1024.0
MB = 1024.0 * 1024.0


@dataclass
class VideoTraceConfig:
    """Parameters of the synthetic YouTube workload.

    The defaults follow the published statistics: video sizes are lognormal
    with a ~6 MB median capped at 30 MB (control threshold 5 KB), and each
    video is preceded by a couple of short control flows when
    ``include_control_flows`` is set, as in Figures 7-9 (versus 10-12 without).
    """

    duration_s: float = 100.0
    #: aggregate video arrival rate (flows/s) across the whole cluster
    video_arrival_rate_per_s: float = 12.0
    include_control_flows: bool = True
    control_flows_per_video: float = 2.0     #: mean number of control exchanges per video
    control_size_min_bytes: float = 0.2 * KB
    control_size_max_bytes: float = 5.0 * KB  #: the trace's 5 KB control/video boundary
    video_median_bytes: float = 6.0 * MB
    video_sigma: float = 0.9
    video_cap_bytes: float = 30.0 * MB        #: the ~30 MB YouTube cap
    video_min_bytes: float = 5.0 * KB         #: videos are >= 5 KB by definition
    num_clients: int = 8
    #: scale context recorded in the workload metadata (20 of 2138 servers)
    simulated_servers: int = 20
    total_trace_servers: int = 2138
    read_fraction: float = 0.0                #: fraction of video requests that are reads

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.video_arrival_rate_per_s <= 0:
            raise ValueError("video arrival rate must be positive")
        if self.control_flows_per_video < 0:
            raise ValueError("control_flows_per_video must be non-negative")
        if not (0 < self.control_size_min_bytes <= self.control_size_max_bytes):
            raise ValueError("invalid control-flow size range")
        if self.video_min_bytes < self.control_size_max_bytes:
            raise ValueError("video_min_bytes must be at least the control/video boundary")
        if self.video_cap_bytes <= self.video_median_bytes:
            raise ValueError("video cap must exceed the median")
        if self.num_clients < 1:
            raise ValueError("need at least one client")
        if not (0.0 <= self.read_fraction <= 1.0):
            raise ValueError("read_fraction must be in [0, 1]")


def generate_video_workload(
    config: Optional[VideoTraceConfig] = None, seed: int = 0
) -> Workload:
    """Generate the YouTube-like workload.

    Video uploads dominate (the figures are "content upload time" CDFs); a
    configurable fraction can be turned into reads of earlier uploads for
    mixed read/write studies.
    """
    cfg = config or VideoTraceConfig()
    streams = RandomStreams(seed).spawn("video-trace")
    arrival_rng = streams.stream("arrivals")
    size_rng = streams.stream("sizes")
    client_rng = streams.stream("clients")
    control_rng = streams.stream("control")

    video_sizes = LognormalSize(
        median_bytes=cfg.video_median_bytes,
        sigma=cfg.video_sigma,
        cap_bytes=cfg.video_cap_bytes,
    )
    control_sizes = UniformSize(cfg.control_size_min_bytes, cfg.control_size_max_bytes)
    arrivals = PoissonArrivals(cfg.video_arrival_rate_per_s)

    requests: List[FlowRequest] = []
    video_index = 0
    for t in arrivals.arrival_times(arrival_rng, cfg.duration_s):
        client = int(client_rng.integers(0, cfg.num_clients))
        size = max(video_sizes.sample(size_rng), cfg.video_min_bytes)
        is_read = cfg.read_fraction > 0 and client_rng.random() < cfg.read_fraction and video_index > 0
        operation = Operation.READ if is_read else Operation.WRITE
        content_ref = f"video-{int(client_rng.integers(0, video_index))}" if is_read else ""
        requests.append(
            FlowRequest(
                arrival_time_s=float(t),
                size_bytes=float(size),
                client_index=client,
                operation=operation,
                flow_kind=FlowKind.VIDEO,
                content_class=ContentClass.LWHR,
                content_ref=content_ref,
                meta={"video_index": video_index},
            )
        )
        if not is_read:
            video_index += 1

        if cfg.include_control_flows and cfg.control_flows_per_video > 0:
            n_control = int(control_rng.poisson(cfg.control_flows_per_video))
            for k in range(n_control):
                # Control exchanges happen just before the video flow starts.
                offset = float(control_rng.uniform(0.0, 0.2))
                requests.append(
                    FlowRequest(
                        arrival_time_s=max(0.0, float(t) - offset),
                        size_bytes=float(control_sizes.sample(size_rng)),
                        client_index=client,
                        operation=Operation.WRITE,
                        flow_kind=FlowKind.CONTROL,
                        content_class=ContentClass.HWHR,
                        meta={"video_index": video_index - (0 if is_read else 1), "control_seq": k},
                    )
                )

    workload = Workload(requests, name="youtube-video" + ("+control" if cfg.include_control_flows else ""))
    return workload
