"""The Pareto-size / Poisson-arrival workload of Section X-B.

"File sizes are Pareto distributed with mean 500 KB and shape parameter of
1.6.  Flow arrival rates are Poisson distributed with mean 200 flows/sec."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.content import ContentClass
from repro.network.flow import FlowKind
from repro.sim.random import RandomStreams
from repro.workloads.distributions import ParetoSize, PoissonArrivals
from repro.workloads.traces import FlowRequest, Operation, Workload

KB = 1024.0


@dataclass
class ParetoPoissonConfig:
    """Parameters of the distribution-driven workload (paper defaults)."""

    duration_s: float = 100.0
    arrival_rate_per_s: float = 200.0
    mean_size_bytes: float = 500.0 * KB
    pareto_shape: float = 1.6
    num_clients: int = 8
    #: optional hard cap to keep a single tail draw from dominating short runs
    cap_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival rate must be positive")
        if self.mean_size_bytes <= 0:
            raise ValueError("mean size must be positive")
        if self.pareto_shape <= 1.0:
            raise ValueError("shape must exceed 1")
        if self.num_clients < 1:
            raise ValueError("need at least one client")
        if self.cap_bytes is not None and self.cap_bytes <= 0:
            raise ValueError("cap must be positive when given")


def generate_pareto_poisson_workload(
    config: Optional[ParetoPoissonConfig] = None, seed: int = 0
) -> Workload:
    """Generate the Pareto/Poisson workload of Section X-B."""
    cfg = config or ParetoPoissonConfig()
    streams = RandomStreams(seed).spawn("pareto-poisson")
    arrival_rng = streams.stream("arrivals")
    size_rng = streams.stream("sizes")
    client_rng = streams.stream("clients")

    sizes = ParetoSize(mean_bytes=cfg.mean_size_bytes, shape=cfg.pareto_shape)
    arrivals = PoissonArrivals(cfg.arrival_rate_per_s)

    requests: List[FlowRequest] = []
    for t in arrivals.arrival_times(arrival_rng, cfg.duration_s):
        size = sizes.sample(size_rng)
        if cfg.cap_bytes is not None:
            size = min(size, cfg.cap_bytes)
        requests.append(
            FlowRequest(
                arrival_time_s=float(t),
                size_bytes=float(size),
                client_index=int(client_rng.integers(0, cfg.num_clients)),
                operation=Operation.WRITE,
                flow_kind=FlowKind.DATA,
                content_class=ContentClass.LWHR,
            )
        )
    return Workload(requests, name="pareto-poisson")
