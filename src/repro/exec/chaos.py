"""Chaos injection: a wrapper executor that makes jobs fail on purpose.

``chaos:<inner>`` (e.g. ``chaos:process``) wraps any registered backend and
injects seeded faults — worker crashes, raised exceptions, delays, corrupt
result payloads — into the jobs it runs.  It exists to *exercise* the
fault-tolerance layer (retries, crash recovery, timeouts, fallback; see
:mod:`repro.exec.retry`) in tests and CI, where real crashes are too rare to
rely on.

Injection decisions are deterministic: whether (and how) attempt ``a`` of a
job is sabotaged is drawn from a generator seeded with
``derive_seed(config.seed, "chaos", job.key, str(a))`` — same config, same
jobs, same faults, on every machine.  By default faults hit only each job's
*first* attempt (``first_attempt_only=True``), so any policy with
``max_attempts >= 2`` is guaranteed to converge and the recovered run's
results are byte-identical to an undisturbed serial run — which is exactly
the contract the CI chaos smoke test asserts.

The chaos config travels to workers inside the job's *payload dict* under
the reserved ``"__chaos__"`` key — never in the job's tags — so it is
invisible to the content key, the result store, and anything else that
round-trips the job itself.  :func:`~repro.exec.executors.execute_job_payload`
pops the envelope worker-side and applies it there, which is what makes an
injected "crash" genuinely kill the worker *process* the job runs in.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.exec.executors import Executor, resolve_executor
from repro.exec.job import ExperimentJob
from repro.registry import EXECUTORS, RegistryError
from repro.sim.random import derive_seed

#: Reserved payload key carrying the injection envelope across the worker
#: boundary.  Stripped (and applied) by ``execute_job_payload`` before the
#: job is hydrated, so it never reaches ``ExperimentJob.from_dict``.
CHAOS_PAYLOAD_KEY = "__chaos__"

#: Exit code of an injected worker crash (mirrors SIGKILL's 128 + 9, the
#: signature of an OOM-killed worker).
CHAOS_CRASH_EXIT_CODE = 137


class ChaosError(RuntimeError):
    """An injected (deliberate) job failure; classified as retryable."""


class ChaosCrashError(ChaosError):
    """An injected crash on a backend whose workers cannot be killed.

    Raised instead of ``os._exit`` when the inner backend runs jobs in the
    caller's own process (serial, thread) — actually exiting there would
    take the whole run down rather than simulate a worker loss.
    """


@dataclass(frozen=True)
class ChaosConfig:
    """What fraction of job attempts get which fault.

    The four rates partition ``[0, 1)``: a uniform draw per ``(job, attempt)``
    lands in the ``crash`` band, then ``error``, ``delay``, ``corrupt``, or —
    past their sum — no injection.  Rates must therefore sum to at most 1.

    Attributes
    ----------
    crash_rate:
        Kill the worker process mid-job (``os._exit``) on process backends;
        raise :class:`ChaosCrashError` on in-process backends.
    error_rate:
        Raise :class:`ChaosError` from inside the job.
    delay_rate:
        Sleep ``delay_s`` before running the job (the job still succeeds —
        use with ``timeout_s`` to exercise hung-worker detection).
    corrupt_rate:
        Let the job succeed, then mangle its result payload so hydration
        fails (exercises ``CorruptResultError`` detection).
    delay_s:
        Length of an injected delay.
    first_attempt_only:
        Inject only on each job's first attempt.  Keeps every fault
        recoverable: with ``max_attempts >= 2`` the retry is undisturbed,
        so a chaos run converges to exactly the fault-free results.
    seed:
        Root of the injection derivation; independent of the jobs' seeds.
    """

    crash_rate: float = 0.25
    error_rate: float = 0.25
    delay_rate: float = 0.2
    corrupt_rate: float = 0.15
    delay_s: float = 0.05
    first_attempt_only: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "error_rate", "delay_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        total = self.crash_rate + self.error_rate + self.delay_rate + self.corrupt_rate
        if total > 1.0 + 1e-9:
            raise ValueError(f"injection rates must sum to <= 1, got {total:g}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")
        object.__setattr__(self, "seed", int(self.seed))

    def injection_for(self, job_key: str, attempt: int) -> Optional[str]:
        """The fault injected into this attempt, if any.

        Pure function of ``(config, job_key, attempt)``: the uniform draw
        comes from ``derive_seed(seed, "chaos", job_key, str(attempt))``, so
        a chaos run is exactly reproducible.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        if self.first_attempt_only and attempt > 1:
            return None
        rng = np.random.default_rng(
            derive_seed(self.seed, "chaos", job_key, str(attempt))
        )
        u = float(rng.random())
        edge = 0.0
        for mode, rate in (
            ("crash", self.crash_rate),
            ("error", self.error_rate),
            ("delay", self.delay_rate),
            ("corrupt", self.corrupt_rate),
        ):
            edge += rate
            if u < edge:
                return mode
        return None

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict; :meth:`from_dict` round-trips losslessly."""
        return {
            "crash_rate": float(self.crash_rate),
            "error_rate": float(self.error_rate),
            "delay_rate": float(self.delay_rate),
            "corrupt_rate": float(self.corrupt_rate),
            "delay_s": float(self.delay_s),
            "first_attempt_only": bool(self.first_attempt_only),
            "seed": int(self.seed),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(**dict(data))


#: Only injection on process workers may really exit the process; everything
#: in-process must raise instead (see :class:`ChaosCrashError`).
_CRASH_OK_BACKENDS = ("process",)


def apply_chaos_before(envelope: Mapping[str, Any]) -> None:
    """Apply a pre-run injection worker-side (delay, error, crash)."""
    mode = envelope.get("mode")
    if mode == "delay":
        time.sleep(float(envelope.get("delay_s", 0.0)))
    elif mode == "error":
        raise ChaosError("injected failure (chaos error mode)")
    elif mode == "crash":
        if envelope.get("crash_ok"):
            os._exit(CHAOS_CRASH_EXIT_CODE)
        raise ChaosCrashError(
            "injected crash (in-process backend: raising instead of exiting)"
        )


def apply_chaos_after(
    envelope: Mapping[str, Any], result: Dict[str, Any]
) -> Dict[str, Any]:
    """Apply a post-run injection worker-side (result corruption)."""
    if envelope.get("mode") != "corrupt":
        return result
    corrupted = dict(result)
    # Remove the one field SchemeResult.from_dict cannot survive without,
    # so the parent's hydration check trips and classifies the payload as
    # a (retryable) CorruptResultError.
    corrupted.pop("scheme", None)
    corrupted["__chaos_corrupted__"] = True
    return corrupted


class ChaosExecutor(Executor):
    """Wrap an inner backend and sabotage a seeded fraction of attempts.

    Registered as ``chaos``; resolved via the wrapper syntax
    ``chaos:<inner>`` (``resolve_executor("chaos:process")``).  Delegates
    all actual execution — and therefore all retry/timeout/recovery
    machinery — to the inner backend; its only contribution is attaching
    the injection envelope to each dispatched payload.
    """

    def __init__(
        self,
        inner: Union[str, Executor] = "serial",
        max_workers: Optional[int] = None,
        config: Optional[ChaosConfig] = None,
    ) -> None:
        super().__init__(max_workers)
        backend = resolve_executor(inner, max_workers=max_workers)
        if isinstance(backend, ChaosExecutor):
            raise RegistryError("chaos executors cannot wrap each other")
        self.inner = backend
        self.config = config or ChaosConfig()
        self.name = f"chaos:{backend.name}"

    @property
    def supports_timeout(self) -> bool:  # type: ignore[override]
        return self.inner.supports_timeout

    # The pool lifecycle and wire format belong to the *inner* backend (the
    # execute() copy shares its in-place pool state), so the knobs delegate:
    # resolve_executor("chaos:process", pool="keep") warms the real pool.
    @property
    def pool(self) -> str:  # type: ignore[override]
        return self.inner.pool

    @pool.setter
    def pool(self, value: str) -> None:
        self.inner.pool = value

    @property
    def wire_format(self) -> str:  # type: ignore[override]
        return self.inner.wire_format

    @wire_format.setter
    def wire_format(self, value: str) -> None:
        self.inner.wire_format = value

    def close(self) -> None:
        self.inner.close()

    def stats(self):
        inner_stats = getattr(self.inner, "stats", None)
        return inner_stats() if callable(inner_stats) else {}

    def effective_workers(self, n_jobs: int) -> int:
        return self.inner.effective_workers(n_jobs)

    def fallback_backend(self) -> Optional[Executor]:
        # Degrading out of chaos means dropping the injection entirely: the
        # plain inner backend re-runs the unfinished jobs undisturbed.
        return copy.copy(self.inner)

    def _transform(self, payload: Dict[str, Any], attempt: int) -> Dict[str, Any]:
        job = ExperimentJob.from_dict(payload)
        mode = self.config.injection_for(job.key, attempt)
        if mode is None:
            return payload
        payload = dict(payload)
        payload[CHAOS_PAYLOAD_KEY] = {
            "mode": mode,
            "delay_s": self.config.delay_s,
            "crash_ok": self.inner.name in _CRASH_OK_BACKENDS,
        }
        return payload

    def execute(self, jobs, progress=None, on_outcome=None, policy=None):
        # Run on a shallow copy of the inner backend so attaching the
        # transform never mutates a caller-owned executor instance.
        runner = copy.copy(self.inner)
        runner.payload_transform = self._transform
        if self.batch_size != 1:
            runner.batch_size = self.batch_size
        return runner.execute(jobs, progress=progress, on_outcome=on_outcome, policy=policy)


EXECUTORS.register(
    "chaos",
    ChaosExecutor,
    description="wrapper injecting seeded crashes/errors/delays/corruption "
    "into an inner backend (use as chaos:<inner>, e.g. chaos:process)",
)


__all__ = [
    "CHAOS_CRASH_EXIT_CODE",
    "CHAOS_PAYLOAD_KEY",
    "ChaosConfig",
    "ChaosCrashError",
    "ChaosError",
    "ChaosExecutor",
    "apply_chaos_after",
    "apply_chaos_before",
]
