"""Multi-seed replication through the job/executor/store machinery.

:func:`run_replications` fans one scenario out over N replicate seeds
(planned by :func:`~repro.exec.planner.plan_replications`, executed by any
:data:`~repro.registry.EXECUTORS` backend, cached in a
:class:`~repro.exec.store.ResultStore`) and folds the flat results back into
:class:`~repro.metrics.replication.ReplicatedResult` ensembles;
:func:`run_replicated_comparison` is the two-scheme convenience returning a
CI-carrying :class:`~repro.metrics.replication.ReplicatedComparison`.

Because replicate seeds derive from the replicate's *identity* and jobs are
content-addressed, an ensemble is serial ≡ thread ≡ process bit-identical
through the store, and :func:`ensemble_from_store` can rebuild it later from
the JSONL alone — which is how the :data:`~repro.registry.ANALYSES` plugins
read ensembles without re-running anything.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.exec.executors import Executor, ProgressCallback, run_jobs
from repro.exec.planner import SchemeLike, plan_replications, replicate_seed
from repro.exec.retry import RetryPolicy
from repro.exec.store import ResultStore, ResultStoreError, StoredEntry
from repro.experiments.spec import as_spec
from repro.metrics.replication import ReplicatedComparison, ReplicatedResult


def run_replications(
    scenario,
    schemes: Sequence[SchemeLike] = ("scda", "rand-tcp"),
    seeds: int = 1,
    ensemble: Optional[str] = None,
    executor: Union[str, Executor] = "serial",
    max_workers: Optional[int] = None,
    store: Optional[Union[str, ResultStore]] = None,
    progress: Optional[ProgressCallback] = None,
    policy: Optional[RetryPolicy] = None,
    fallback: bool = True,
    store_fsync: Optional[bool] = None,
) -> List[ReplicatedResult]:
    """Run an N-seed ensemble of every scheme; one ensemble per scheme.

    Returns the ensembles in ``schemes`` order, each with its replicates in
    replicate order (replicate 0 under the scenario's own seed).  Jobs go
    through :func:`~repro.exec.executors.run_jobs`, so already-stored
    replicates are never recomputed; ``policy``/``fallback``/``store_fsync``
    pass through to it (retries, graceful degradation, durable appends).
    """
    spec = as_spec(scenario)
    jobs = plan_replications(spec, schemes=schemes, seeds=seeds, ensemble=ensemble)
    report = run_jobs(
        jobs,
        executor=executor,
        max_workers=max_workers,
        store=store,
        progress=progress,
        policy=policy,
        fallback=fallback,
        store_fsync=store_fsync,
    )
    ensembles: List[ReplicatedResult] = []
    n_schemes = len(list(schemes))
    for scheme_index in range(n_schemes):
        scheme_jobs = [jobs[i * n_schemes + scheme_index] for i in range(seeds)]
        results = [report.result_for(job) for job in scheme_jobs]
        ensembles.append(
            ReplicatedResult(
                scheme=results[0].scheme,
                seeds=[job.seed for job in scheme_jobs],
                results=results,
            )
        )
    return ensembles


def run_replicated_comparison(
    scenario,
    candidate: SchemeLike = "scda",
    baseline: SchemeLike = "rand-tcp",
    seeds: int = 1,
    ensemble: Optional[str] = None,
    executor: Union[str, Executor] = "serial",
    max_workers: Optional[int] = None,
    store: Optional[Union[str, ResultStore]] = None,
    progress: Optional[ProgressCallback] = None,
    policy: Optional[RetryPolicy] = None,
    fallback: bool = True,
    store_fsync: Optional[bool] = None,
) -> ReplicatedComparison:
    """Candidate vs baseline across N replicate seeds, with CIs.

    The N=1 ensemble contains exactly the historical single-seed comparison
    (replicate 0 runs under the scenario's own seed and shares its cache
    entry with the plain :func:`~repro.exec.planner.plan_comparison` jobs).
    """
    spec = as_spec(scenario)
    candidate_rep, baseline_rep = run_replications(
        spec,
        schemes=(candidate, baseline),
        seeds=seeds,
        ensemble=ensemble,
        executor=executor,
        max_workers=max_workers,
        store=store,
        progress=progress,
        policy=policy,
        fallback=fallback,
        store_fsync=store_fsync,
    )
    return ReplicatedComparison(
        scenario=spec.name, candidate=candidate_rep, baseline=baseline_rep
    )


def replicated_results_from_entries(
    entries: Sequence[StoredEntry],
) -> Dict[str, ReplicatedResult]:
    """Fold stored entries into one :class:`ReplicatedResult` per scheme.

    Entries group by scheme name and order by replicate index (ties broken
    by job key, so the fold is deterministic for any store enumeration).
    The returned dict is keyed by scheme *registry key* (``"scda"``), not
    display name, and its insertion order follows the sorted keys.
    """
    by_scheme: Dict[str, List[StoredEntry]] = {}
    for entry in entries:
        by_scheme.setdefault(entry.scheme_name, []).append(entry)
    ensembles: Dict[str, ReplicatedResult] = {}
    for scheme_key in sorted(by_scheme):
        group = sorted(by_scheme[scheme_key], key=lambda e: (e.replicate, e.key))
        ensembles[scheme_key] = ReplicatedResult(
            scheme=group[0].result.scheme,
            seeds=[entry.job.seed for entry in group],
            results=[entry.result for entry in group],
        )
    return ensembles


def ensemble_from_store(
    store: Union[str, ResultStore],
    ensemble: Optional[str] = None,
    candidate: Optional[str] = None,
    baseline: Optional[str] = None,
) -> ReplicatedComparison:
    """Rebuild a :class:`ReplicatedComparison` from a result store.

    ``ensemble`` selects the ensemble label (mandatory when the store holds
    more than one); the candidate/baseline schemes default to the ``role``
    tags :func:`~repro.exec.planner.plan_replications` attached, with
    explicit scheme keys as the override for stores produced another way.
    """
    store = ResultStore(store) if not isinstance(store, ResultStore) else store
    groups = store.group_by_ensemble()
    if not groups:
        raise ResultStoreError(f"result store {store.path} holds no entries")
    if ensemble is None:
        if len(groups) > 1:
            raise ResultStoreError(
                f"store holds {len(groups)} ensembles "
                f"({sorted(groups)}); pass ensemble=<label> to pick one"
            )
        ensemble = next(iter(groups))
    if ensemble not in groups:
        raise ResultStoreError(
            f"unknown ensemble {ensemble!r}; stored ensembles: {sorted(groups)}"
        )
    entries = groups[ensemble]

    def _fold_role(role: str, scheme: Optional[str]) -> ReplicatedResult:
        if scheme is not None:
            chosen = [e for e in entries if e.scheme_name == scheme]
        else:
            chosen = [e for e in entries if e.tags.get("role") == role]
        if not chosen:
            raise ResultStoreError(
                f"ensemble {ensemble!r} has no {role} entries "
                f"(schemes present: {sorted({e.scheme_name for e in entries})}); "
                f"pass {role}=<scheme key> explicitly"
            )
        # One fold implementation for every consumer: the shared helper owns
        # the replicate ordering and seed extraction conventions.
        return replicated_results_from_entries(chosen)[chosen[0].scheme_name]

    return ReplicatedComparison(
        scenario=str(ensemble),
        candidate=_fold_role("candidate", candidate),
        baseline=_fold_role("baseline", baseline),
    )


__all__ = [
    "ensemble_from_store",
    "replicate_seed",
    "replicated_results_from_entries",
    "run_replicated_comparison",
    "run_replications",
]
