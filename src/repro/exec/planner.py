"""Planners: expand comparisons, matrices and sweeps into job lists.

A planner is a pure function from a declarative description of an experiment
family to a list of :class:`~repro.exec.job.ExperimentJob` s.  Planning is
separate from execution so the same job list can be printed, counted, stored,
or handed to any :mod:`~repro.exec.executors` backend — and so job identity
(and therefore each job's seed) is fixed *before* anything runs, which is
what makes parallel execution order-independent.

Tags attached here (``parameter``, ``role``) are presentation-only: they let
the sweep layer reassemble per-point :class:`ComparisonResult` s out of the
flat result map without affecting the content-addressed job keys.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Any, List, Optional, Sequence, Union

from repro.baselines.schemes import SchemeSpec
from repro.exec.job import ExperimentJob
from repro.experiments.spec import ScenarioSpec, as_spec
from repro.sim.random import derive_seed

#: A scheme as accepted by the planners: registry key or full spec.
SchemeLike = Union[str, SchemeSpec]


def with_arrival_rate(spec: ScenarioSpec, rate: float) -> ScenarioSpec:
    """Override the workload's arrival rate, whatever its config calls it."""
    from repro.registry import WORKLOADS

    entry = WORKLOADS.get(spec.workload)
    field_names = (
        {f.name for f in dataclass_fields(entry.config_cls)}
        if entry.config_cls is not None
        else set()
    )
    for candidate_field in ("arrival_rate_per_s", "video_arrival_rate_per_s"):
        if candidate_field in field_names:
            return spec.with_overrides(
                workload_params={**spec.workload_params, candidate_field: float(rate)}
            )
    raise ValueError(
        f"workload {spec.workload!r} has no arrival-rate parameter to sweep "
        f"(config {entry.config_cls.__name__ if entry.config_cls else None!r})"
    )


def _point_seed(
    spec: ScenarioSpec, reseed: bool, sweep_name: str, point_label: str
) -> int:
    """The seed a sweep point runs under.

    By default every point reuses the base seed (the historical behaviour:
    points differ only in the swept parameter).  With ``reseed`` the seed is
    derived hierarchically from the point's *identity* — never from
    execution order — so parallel runs stay bit-identical to serial ones.
    """
    if not reseed:
        return spec.seed
    return derive_seed(spec.seed, "sweep", sweep_name, point_label)


def replicate_seed(base_seed: int, index: int) -> int:
    """The master seed replicate ``index`` of an ensemble runs under.

    Replicate 0 *is* the base seed — which is what makes an N=1 ensemble
    bit-identical to the historical single-seed run — and every further
    replicate derives hierarchically from its index alone
    (``derive_seed(seed, "replicate", str(i))``), so the value depends only
    on the replicate's identity, never on execution order or backend.
    """
    if index < 0:
        raise ValueError(f"replicate index must be >= 0, got {index}")
    if index == 0:
        return int(base_seed)
    return derive_seed(int(base_seed), "replicate", str(index))


def plan_replications(
    scenario: Any,
    schemes: Sequence[SchemeLike] = ("scda", "rand-tcp"),
    seeds: int = 1,
    ensemble: Optional[str] = None,
) -> List[ExperimentJob]:
    """Jobs for a multi-seed ensemble: every scheme at every replicate seed.

    Each job is tagged with its ensemble identity — ``ensemble`` (a label,
    defaulting to the scenario's name), ``replicate`` (its index) and
    ``replicates`` (the planned ensemble size) — plus its ``role``
    (``candidate``/``baseline`` for the two-scheme case, ``scheme-<j>``
    otherwise), so the :class:`~repro.exec.store.ResultStore` query API and
    the :data:`~repro.registry.ANALYSES` plugins can reassemble the
    ensemble from a flat store.  Tags never enter the content key: a
    replicate-0 job is the *same cache entry* as the plain single-seed run.

    Jobs are ordered replicate-major (all schemes of replicate 0 first), so
    an interrupted run leaves complete low-index replicates behind.
    """
    spec = as_spec(scenario)
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    if not schemes:
        raise ValueError("need at least one scheme")
    label = spec.name if ensemble is None else str(ensemble)
    if len(schemes) == 2:
        roles = ["candidate", "baseline"]
    else:
        roles = [f"scheme-{j}" for j in range(len(schemes))]
    jobs: List[ExperimentJob] = []
    for index in range(seeds):
        seed = replicate_seed(spec.seed, index)
        for role, scheme in zip(roles, schemes):
            jobs.append(
                ExperimentJob(
                    spec=spec,
                    scheme=scheme,
                    seed=seed,
                    tags={
                        "ensemble": label,
                        "replicate": index,
                        "replicates": int(seeds),
                        "role": role,
                    },
                )
            )
    return jobs


def plan_comparison(
    scenario: Any,
    candidate: SchemeLike = "scda",
    baseline: SchemeLike = "rand-tcp",
) -> List[ExperimentJob]:
    """Two jobs — candidate and baseline — on the same scenario."""
    spec = as_spec(scenario)
    return [
        ExperimentJob(spec=spec, scheme=candidate, tags={"role": "candidate"}),
        ExperimentJob(spec=spec, scheme=baseline, tags={"role": "baseline"}),
    ]


def plan_matrix(
    scenarios: Sequence[Any],
    schemes: Sequence[SchemeLike],
) -> List[ExperimentJob]:
    """The full scenarios × schemes cross-product as a job list."""
    specs = [as_spec(scenario) for scenario in scenarios]
    if not specs:
        raise ValueError("need at least one scenario")
    if not schemes:
        raise ValueError("need at least one scheme")
    jobs: List[ExperimentJob] = []
    for index, spec in enumerate(specs):
        for scheme in schemes:
            jobs.append(
                ExperimentJob(
                    spec=spec,
                    scheme=scheme,
                    tags={"scenario_index": index, "scenario": spec.name},
                )
            )
    return jobs


def plan_offered_load_sweep(
    arrival_rates_per_s: Sequence[float],
    base: ScenarioSpec,
    candidate: SchemeLike = "scda",
    baseline: SchemeLike = "rand-tcp",
    reseed_per_point: bool = False,
) -> List[ExperimentJob]:
    """Jobs for a load sweep: (candidate, baseline) at every arrival rate.

    Each job is tagged with its ``parameter`` (the rate) and ``role`` so the
    sweep layer can fold the flat results back into per-point comparisons.
    """
    if not arrival_rates_per_s:
        raise ValueError("need at least one arrival rate")
    jobs: List[ExperimentJob] = []
    for rate in arrival_rates_per_s:
        if rate <= 0:
            raise ValueError("arrival rates must be positive")
        point = with_arrival_rate(base, float(rate))
        seed = _point_seed(base, reseed_per_point, "offered-load", f"rate={float(rate):g}")
        for role, scheme in (("candidate", candidate), ("baseline", baseline)):
            jobs.append(
                ExperimentJob(
                    spec=point,
                    scheme=scheme,
                    seed=seed,
                    tags={"parameter": float(rate), "role": role},
                )
            )
    return jobs


def plan_failure_sweep(
    outage_durations_s: Sequence[float],
    base: ScenarioSpec,
    candidate: SchemeLike = "scda",
    baseline: SchemeLike = "rand-tcp",
    fail_at_s: Optional[float] = None,
    select: str = "switch-uplink",
    link_index: int = 0,
    reseed_per_point: bool = False,
) -> List[ExperimentJob]:
    """Jobs for a fault-recovery sweep: (candidate, baseline) per outage length.

    Each point runs ``base`` with a scripted link failure at ``fail_at_s``
    (default: a quarter into the workload) and the matching recovery one
    outage duration later; the failed link is chosen topology-agnostically
    through the dynamics layer's selectors (default: the first switch's
    uplink, e.g. a leaf→spine link on multi-path fabrics).  Jobs carry the
    outage duration as the ``parameter`` tag.
    """
    if not outage_durations_s:
        raise ValueError("need at least one outage duration")
    fail_at = base.sim_time_s * 0.25 if fail_at_s is None else float(fail_at_s)
    if fail_at < 0:
        raise ValueError("fail_at_s must be non-negative")
    jobs: List[ExperimentJob] = []
    for duration in outage_durations_s:
        if duration <= 0:
            raise ValueError("outage durations must be positive")
        target = {"select": select, "index": int(link_index)}
        point = base.with_overrides(
            dynamics=[
                {"kind": "link-failure", "at_s": fail_at, **target},
                {"kind": "link-recovery", "at_s": fail_at + float(duration), **target},
            ]
        )
        seed = _point_seed(
            base, reseed_per_point, "failure", f"outage={float(duration):g}"
        )
        for role, scheme in (("candidate", candidate), ("baseline", baseline)):
            jobs.append(
                ExperimentJob(
                    spec=point,
                    scheme=scheme,
                    seed=seed,
                    tags={"parameter": float(duration), "role": role},
                )
            )
    return jobs


def plan_control_interval_sweep(
    control_intervals_s: Sequence[float],
    base: ScenarioSpec,
    candidate: SchemeLike = "scda",
    baseline: SchemeLike = "rand-tcp",
    reseed_per_point: bool = False,
) -> List[ExperimentJob]:
    """Jobs for a τ sweep: (candidate, baseline) at every control interval.

    τ is the *fabric* recompute tick, so it shapes the baseline's TCP
    dynamics too — both schemes are planned per point (matching the
    historical serial sweep bit-for-bit).  Each job carries its τ as the
    ``parameter`` tag.
    """
    if not control_intervals_s:
        raise ValueError("need at least one control interval")
    jobs: List[ExperimentJob] = []
    for tau in control_intervals_s:
        if tau <= 0:
            raise ValueError("control intervals must be positive")
        point = base.with_overrides(control_interval_s=float(tau))
        seed = _point_seed(base, reseed_per_point, "control-interval", f"tau={float(tau):g}")
        for role, scheme in (("candidate", candidate), ("baseline", baseline)):
            jobs.append(
                ExperimentJob(
                    spec=point,
                    scheme=scheme,
                    seed=seed,
                    tags={"parameter": float(tau), "role": role},
                )
            )
    return jobs
