"""Executor backends: run job lists serially, on threads, or on processes.

Every backend funnels each job through the same module-level payload
function (:func:`execute_job_payload`): the job crosses the boundary as its
plain :meth:`~repro.exec.job.ExperimentJob.to_dict` form and the result comes
back as its :meth:`~repro.metrics.comparison.SchemeResult.to_dict` form.
Serialising on *every* backend — including ``serial`` — keeps the three
paths structurally identical, so "parallel equals serial" reduces to the
simulator's own determinism (which the per-run id counters and the
hierarchical seed derivation guarantee; see ``docs/EXECUTION.md``).

Backends are plugins in the :data:`repro.registry.EXECUTORS` registry::

    from repro.registry import EXECUTORS

    @EXECUTORS.register("my-cluster", description="submit jobs to slurm")
    class SlurmExecutor(Executor):
        ...

after which ``repro sweep --executor my-cluster`` and
:func:`run_jobs(..., executor="my-cluster") <run_jobs>` pick it up.
``<wrapper>:<inner>`` keys (``chaos:process``) resolve the wrapper and hand
it the inner backend key — see :mod:`repro.exec.chaos`.

Fault tolerance (see ``docs/EXECUTION.md`` § Failure semantics):

* every backend re-attempts transiently failed jobs under a
  :class:`~repro.exec.retry.RetryPolicy` with deterministic per-job backoff;
* the process backend manages its own worker pool: a killed/OOMed worker is
  detected, its in-flight job rescheduled and a replacement spawned, and a
  job that exceeds ``policy.timeout_s`` gets its worker killed
  (hung-worker detection) instead of stalling the batch;
* :func:`run_jobs` degrades gracefully — when a backend fails at the *batch*
  level it falls back ``process → thread → serial``, recording the downgrade
  in the :class:`ExecutionReport`, and re-runs only the unfinished jobs
  (everything already computed was checkpointed through ``on_outcome``).
"""

from __future__ import annotations

import copy
import heapq
import multiprocessing
import os
import time
import traceback
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exec.job import ExperimentJob
from repro.exec.retry import (
    NO_RETRY,
    ExecutorDegradedError,
    RetryPolicy,
)
from repro.exec.store import ResultStore
from repro.metrics.codec import (
    WIRE_COLUMNAR,
    WIRE_COUNTERS,
    WIRE_FORMATS,
    WIRE_JSON,
    CodecError,
    decode_result,
    encode_wire_outcome,
    is_columnar,
)
from repro.metrics.comparison import SchemeResult
from repro.registry import EXECUTORS, RegistryError

#: Lifetime of an idle warm-pool worker before it is reaped (see
#: :class:`ProcessExecutor`); generous because a warm worker's whole point is
#: surviving the gap between consecutive ``run_jobs`` calls.
DEFAULT_IDLE_TIMEOUT_S = 300.0

#: Valid values of the ``pool=`` lifecycle knob of pooled backends.
POOL_MODES = ("fresh", "keep")

#: ``progress(event, job, detail)`` with event one of ``submitted``,
#: ``cached``, ``finished``, ``failed``, ``retry``, ``degraded``.  ``detail``
#: is the error string for ``failed``, the schedule line for ``retry``, the
#: downgrade description for ``degraded``, and ``None`` otherwise.
ProgressCallback = Callable[[str, ExperimentJob, Optional[str]], None]

#: ``on_outcome(job, outcome)`` invoked (on the caller's thread) as soon as
#: each job's *final* outcome is known — the hook :func:`run_jobs` uses to
#: persist results incrementally, so an interrupted run keeps what it
#: computed.  Intermediate failed attempts that will be retried are not
#: delivered here (they surface as ``retry`` progress events instead).
OutcomeCallback = Callable[[ExperimentJob, "JobOutcome"], None]


def execute_job_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one serialised job and return the serialised result.

    This is the function worker processes import and call; it must stay
    module-level (picklable by reference) and must take/return only plain
    JSON-safe dicts so a spawn-started interpreter can execute it without
    any parent state.

    A ``"__chaos__"`` envelope (attached by
    :class:`~repro.exec.chaos.ChaosExecutor`, never part of the job's
    content key) is interpreted here, *inside the worker*, so injected
    crashes really kill the worker process the job runs in.
    """
    from repro.experiments.runner import run_job

    payload = dict(payload)
    chaos = payload.pop("__chaos__", None)
    if chaos is not None:
        from repro.exec.chaos import apply_chaos_before

        apply_chaos_before(chaos)
    job = ExperimentJob.from_dict(payload)
    result = run_job(job).to_dict()
    if chaos is not None:
        from repro.exec.chaos import apply_chaos_after

        result = apply_chaos_after(chaos, result)
    return result


def _success_outcome(result: Dict[str, Any], wire: str) -> Dict[str, Any]:
    """The ``{"ok": True}`` outcome for ``result`` in the requested wire format.

    With ``wire="columnar"`` the result ships column-packed (see
    :mod:`repro.metrics.codec`) with an ``"encoding"`` marker plus the
    encoder-side perf counters; anything the strict codec rejects — a
    chaos-corrupted payload, an unexpected shape — falls back to the plain
    dict, so the columnar path can only ever shrink bytes, never change
    semantics.
    """
    if wire == WIRE_COLUMNAR:
        try:
            return encode_wire_outcome(result)
        except CodecError:
            pass
    return {"ok": True, "result": result}


def execute_job_chunk(
    payloads: Sequence[Dict[str, Any]], wire: str = WIRE_JSON
) -> List[Dict[str, Any]]:
    """Run a chunk of serialised jobs; one outcome dict per payload, in order.

    This is the unit the chunked dispatch paths (pooled backends with
    ``batch_size > 1``, the HTTP worker daemon's ``POST /jobs``) ship per
    round-trip.  Each outcome is either ``{"ok": True, "result": <dict>}`` or
    ``{"ok": False, "error", "exc_type", "traceback"}`` — the exception is
    captured *per job*, so one bad job never poisons its chunk-mates, and the
    class name crosses any boundary as a string for
    :class:`~repro.exec.retry.RetryPolicy` classification.  Only
    ``BaseException`` (``KeyboardInterrupt``, ``SystemExit``, an injected
    ``os._exit``) escapes, taking the rest of the chunk with it — exactly the
    semantics of losing the worker mid-chunk.

    ``wire`` selects the transfer encoding of successful results (see
    :func:`_success_outcome`); failures always travel as plain dicts.
    """
    outcomes: List[Dict[str, Any]] = []
    for payload in payloads:
        try:
            result = execute_job_payload(payload)
        except Exception as exc:  # noqa: BLE001 - serialised for the dispatcher
            outcomes.append(
                {
                    "ok": False,
                    "error": repr(exc),
                    "exc_type": type(exc).__name__,
                    "traceback": traceback.format_exc(),
                }
            )
        else:
            outcomes.append(_success_outcome(result, wire))
    return outcomes


@dataclass
class JobFailure:
    """One job that raised (or crashed, or timed out) instead of returning.

    Structured for post-mortems: the exception class name drives retry
    classification (see :class:`~repro.exec.retry.RetryPolicy`), ``attempts``
    counts every try the backend made for this job, and ``elapsed_s`` is the
    wall clock of the final attempt.
    """

    job: ExperimentJob
    error: str
    traceback: str = ""
    exc_type: str = ""
    attempts: int = 1
    elapsed_s: float = 0.0

    def __str__(self) -> str:
        suffix = f" (after {self.attempts} attempts)" if self.attempts > 1 else ""
        return f"{self.job.label()}: {self.error}{suffix}"

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict; :meth:`from_dict` round-trips losslessly."""
        return {
            "job": self.job.to_dict(),
            "error": self.error,
            "traceback": self.traceback,
            "exc_type": self.exc_type,
            "attempts": int(self.attempts),
            "elapsed_s": float(self.elapsed_s),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobFailure":
        """Rebuild a failure from :meth:`to_dict` output."""
        return cls(
            job=ExperimentJob.from_dict(data["job"]),
            error=str(data["error"]),
            traceback=str(data.get("traceback", "")),
            exc_type=str(data.get("exc_type", "")),
            attempts=int(data.get("attempts", 1)),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


#: What a backend hands back per job: the result dict, or a failure.
JobOutcome = Union[Dict[str, Any], JobFailure]


class _BatchState:
    """Shared attempt/retry bookkeeping for one ``execute`` call.

    Owns the per-job attempt counters, the queue of indices ready to
    (re)dispatch, the deterministic-backoff retry heap, and the final
    outcome slots.  Every backend drives its scheduling loop through this
    object so retry semantics (classification, backoff, progress events,
    final-outcome delivery) are identical on serial, thread and process
    paths.
    """

    def __init__(
        self,
        jobs: Sequence[ExperimentJob],
        policy: RetryPolicy,
        progress: Optional[ProgressCallback],
        on_outcome: Optional[OutcomeCallback],
    ) -> None:
        self.jobs = list(jobs)
        self.policy = policy
        self.progress = progress
        self.on_outcome = on_outcome
        self.outcomes: List[Optional[JobOutcome]] = [None] * len(self.jobs)
        self.attempts = [0] * len(self.jobs)
        #: indices ready to be dispatched right now (initially: every job)
        self.ready: deque = deque(range(len(self.jobs)))
        #: ``(monotonic_due_time, index)`` of scheduled retries
        self.retry_heap: List[Tuple[float, int]] = []
        self._completed = 0

    # -- lifecycle ---------------------------------------------------------------------
    def finished(self) -> bool:
        return self._completed == len(self.jobs)

    def begin(self, index: int) -> int:
        """Start the next attempt of job ``index``; returns the attempt number."""
        self.attempts[index] += 1
        if self.attempts[index] == 1:
            Executor._emit(self.progress, "submitted", self.jobs[index])
        return self.attempts[index]

    def unbegin(self, index: int) -> None:
        """Roll back :meth:`begin` for a dispatch that never reached a worker."""
        self.attempts[index] -= 1
        self.ready.append(index)

    def next_chunk(self, batch_size: int) -> Tuple[List[int], List[int]]:
        """Pop and begin up to ``batch_size`` ready jobs: (indices, attempts)."""
        chunk: List[int] = []
        while self.ready and len(chunk) < batch_size:
            chunk.append(self.ready.popleft())
        return chunk, [self.begin(index) for index in chunk]

    def apply_outcome(
        self, index: int, outcome: Mapping[str, Any], elapsed_s: float = 0.0
    ) -> None:
        """Record one :func:`execute_job_chunk`-style outcome dict.

        This is the single funnel every dispatch path (thread futures,
        process pipe, cluster HTTP) feeds outcomes through, so it is where
        columnar payloads are decoded back to plain dicts — detected by the
        payload marker, not the ``"encoding"`` field, so a response from any
        worker version does the right thing.  An encoded payload that fails
        to decode is a corrupt transfer: it fails as a retryable
        ``CorruptResultError`` exactly like a payload that fails hydration.
        """
        if outcome.get("ok"):
            payload = outcome["result"]
            if is_columnar(payload):
                started = time.perf_counter()
                try:
                    payload = decode_result(payload)
                except CodecError as exc:
                    self.fail(
                        index,
                        error=f"undecodable columnar result payload: {exc}",
                        exc_type="CorruptResultError",
                        elapsed_s=elapsed_s,
                    )
                    return
                WIRE_COUNTERS.add(
                    decoded_results=1,
                    decode_s=time.perf_counter() - started,
                    encoded_results=1,
                    encode_s=float(outcome.get("encode_s", 0.0)),
                    encoded_bytes=float(outcome.get("wire_bytes", 0)),
                )
            self.succeed(index, payload)
        else:
            self.fail(
                index,
                error=str(outcome.get("error", "unknown worker error")),
                exc_type=str(outcome.get("exc_type", "")),
                tb=str(outcome.get("traceback", "")),
                elapsed_s=elapsed_s,
            )

    def succeed(self, index: int, payload: Dict[str, Any]) -> None:
        """Record a returned result dict — after validating it hydrates.

        A payload that cannot rebuild a
        :class:`~repro.metrics.comparison.SchemeResult` (a worker returned
        garbage — e.g. injected corruption, or a partially transferred
        object) is converted into a retryable ``CorruptResultError`` failure
        instead of poisoning the store.
        """
        try:
            SchemeResult.from_dict(payload)
        except Exception as exc:  # noqa: BLE001 - any hydration error is corruption
            self.fail(
                index,
                error=f"corrupt result payload: {exc!r}",
                exc_type="CorruptResultError",
            )
            return
        job = self.jobs[index]
        self.outcomes[index] = payload
        self._completed += 1
        Executor._emit(self.progress, "finished", job)
        if self.on_outcome is not None:
            self.on_outcome(job, payload)

    def fail(
        self,
        index: int,
        error: str,
        exc_type: str,
        tb: str = "",
        elapsed_s: float = 0.0,
    ) -> Optional[float]:
        """Record a failed attempt; schedule a retry or finalise the failure.

        Returns the backoff delay when a retry was scheduled, ``None`` when
        the failure is final (non-retryable class, or attempts exhausted).
        """
        job = self.jobs[index]
        attempt = self.attempts[index]
        if self.policy.is_retryable(exc_type) and attempt < self.policy.max_attempts:
            delay = self.policy.backoff_s(job.seed, job.key, attempt)
            heapq.heappush(self.retry_heap, (time.monotonic() + delay, index))
            Executor._emit(
                self.progress,
                "retry",
                job,
                f"attempt {attempt}/{self.policy.max_attempts} failed "
                f"({exc_type or 'Exception'}: {error}); retrying in {delay:.3f}s",
            )
            return delay
        failure = JobFailure(
            job=job,
            error=error,
            traceback=tb,
            exc_type=exc_type,
            attempts=attempt,
            elapsed_s=elapsed_s,
        )
        self.outcomes[index] = failure
        self._completed += 1
        Executor._emit(self.progress, "failed", job, failure.error)
        if self.on_outcome is not None:
            self.on_outcome(job, failure)
        return None

    def fail_exception(
        self, index: int, exc: BaseException, elapsed_s: float = 0.0
    ) -> Optional[float]:
        """:meth:`fail` from a live exception (captures type and traceback)."""
        return self.fail(
            index,
            error=repr(exc),
            exc_type=type(exc).__name__,
            tb=traceback.format_exc(),
            elapsed_s=elapsed_s,
        )

    # -- retry scheduling --------------------------------------------------------------
    def release_due_retries(self) -> None:
        """Move every retry whose backoff has elapsed onto the ready queue."""
        now = time.monotonic()
        while self.retry_heap and self.retry_heap[0][0] <= now:
            _, index = heapq.heappop(self.retry_heap)
            self.ready.append(index)

    def seconds_until_next_retry(self) -> Optional[float]:
        """Time until the earliest scheduled retry is due (``None``: none)."""
        if not self.retry_heap:
            return None
        return max(0.0, self.retry_heap[0][0] - time.monotonic())

    def results(self) -> List[JobOutcome]:
        """The final outcome list; every slot must be filled by now."""
        # Every index ends in exactly one of succeed()/fail()-final, so a
        # None here is a scheduler bug that must surface, not be filtered.
        assert all(outcome is not None for outcome in self.outcomes)
        return self.outcomes  # type: ignore[return-value]


class Executor:
    """Base class of execution backends.

    Subclasses implement :meth:`execute`, mapping a job list to one outcome
    per job (same order as the input).  ``max_workers`` is advisory — the
    serial backend ignores it.
    """

    name = "base"
    #: whether this backend can *enforce* ``policy.timeout_s`` by preempting
    #: a running job (only preemptible backends — the process pool — can)
    supports_timeout = False
    #: how many jobs ship per dispatch round-trip.  ``1`` is the historical
    #: behaviour; pooled backends amortise per-job submit/pickle overhead (and
    #: the cluster backend its per-request HTTP overhead) by sending chunks.
    #: The serial backend has no round-trip and ignores it.  Chunking never
    #: changes results — jobs stay independently retried/classified — but a
    #: ``timeout_s`` budget covers a whole chunk (scaled by its length).
    batch_size = 1
    #: optional hook rewriting each job's payload dict per attempt; used by
    #: the chaos wrapper to attach its injection envelope.  Runs in the
    #: caller's process — only its *output* crosses to workers.
    payload_transform: Optional[Callable[[Dict[str, Any], int], Dict[str, Any]]] = None
    #: transfer encoding of successful results on this backend's dispatch
    #: path (see :mod:`repro.metrics.codec`).  ``"json"`` ships the plain
    #: dict; backends whose results cross a process or network boundary
    #: default to ``"columnar"``.  Never changes result bytes — only how
    #: they travel.
    wire_format = WIRE_JSON
    #: worker-pool lifecycle of pooled backends: ``"fresh"`` tears workers
    #: down after every ``execute`` call (the historical behaviour),
    #: ``"keep"`` retains idle workers across calls (warm pool; see
    #: :class:`ProcessExecutor`).  Backends without persistent workers
    #: ignore it.
    pool = "fresh"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def close(self) -> None:
        """Release any persistent resources (warm workers).  Idempotent.

        Backends without persistent state inherit this no-op; the process
        backend shuts its warm pool down here.  Executors are context
        managers (``with ProcessExecutor(pool="keep") as ex: ...``) closing
        on exit.
        """

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def effective_workers(self, n_jobs: int) -> int:
        """The worker count actually used for ``n_jobs`` jobs."""
        default = os.cpu_count() or 1
        return max(1, min(self.max_workers or default, n_jobs or 1))

    def execute(
        self,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback] = None,
        on_outcome: Optional[OutcomeCallback] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        """Run every job; one outcome per job, in input order.

        ``on_outcome`` is invoked on the caller's thread as each job's final
        outcome becomes known (completion order, not input order), before
        the method returns — backends must call it so callers can persist
        partial progress even when the batch is interrupted later.
        ``policy`` governs retries and timeouts (``None``: one attempt).
        """
        raise NotImplementedError

    def fallback_backend(self) -> Optional["Executor"]:
        """The next-simpler backend :func:`run_jobs` degrades to, if any.

        The built-in chain is ``process → thread → serial → (none)``; the
        chaos wrapper degrades to its inner backend (dropping injection).
        """
        return None

    # -- shared helpers ----------------------------------------------------------------
    @staticmethod
    def _emit(
        progress: Optional[ProgressCallback],
        event: str,
        job: ExperimentJob,
        detail: Optional[str] = None,
    ) -> None:
        if progress is not None:
            progress(event, job, detail)

    def _job_payload(self, job: ExperimentJob, attempt: int) -> Dict[str, Any]:
        """The dict submitted for one attempt of ``job``."""
        payload = job.to_dict()
        if self.payload_transform is not None:
            payload = self.payload_transform(payload, attempt)
        return payload

    def _chunk_payloads(
        self, state: "_BatchState", chunk: Sequence[int], attempts: Sequence[int]
    ) -> List[Dict[str, Any]]:
        """The payload dicts for one dispatched chunk of job indices."""
        return [
            self._job_payload(state.jobs[index], attempt)
            for index, attempt in zip(chunk, attempts)
        ]

    def _execute_on_pool(
        self,
        pool,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback],
        on_outcome: Optional[OutcomeCallback],
        policy: RetryPolicy,
    ) -> List[JobOutcome]:
        """Fan jobs out on a ``concurrent.futures`` pool, in-order results.

        Jobs are submitted as their plain dict payloads, so pools only ever
        pickle JSON-safe values plus a module-level function.  ``on_outcome``
        fires here, in the caller's thread, as each future completes.
        Transient failures are resubmitted once their deterministic backoff
        elapses; the wait loop wakes for whichever comes first — a completed
        future or a due retry.  With ``batch_size > 1`` each submission
        carries a chunk of jobs through :func:`execute_job_chunk`; outcomes
        stay per-job (one succeed/fail each), only the round-trips are
        amortised.
        """
        state = _BatchState(jobs, policy, progress, on_outcome)
        future_to_chunk: Dict[Any, List[int]] = {}
        submitted_at: Dict[Any, float] = {}
        batch_size = max(1, int(self.batch_size))
        while not state.finished():
            state.release_due_retries()
            while state.ready:
                chunk, attempts = state.next_chunk(batch_size)
                future = pool.submit(
                    execute_job_chunk,
                    self._chunk_payloads(state, chunk, attempts),
                    self.wire_format,
                )
                future_to_chunk[future] = chunk
                submitted_at[future] = time.monotonic()
            if not future_to_chunk:
                delay = state.seconds_until_next_retry()
                if delay is None:  # pragma: no cover - defensive
                    break
                time.sleep(delay)
                continue
            done, _ = wait(
                set(future_to_chunk),
                timeout=state.seconds_until_next_retry(),
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                chunk = future_to_chunk.pop(future)
                elapsed = time.monotonic() - submitted_at.pop(future)
                try:
                    outcomes = future.result()
                except Exception as exc:  # noqa: BLE001 - reported, not swallowed
                    # The chunk runner itself failed (it captures per-job
                    # exceptions, so this is catastrophic): every job of the
                    # chunk shares the failure.
                    for index in chunk:
                        state.fail_exception(index, exc, elapsed_s=elapsed)
                else:
                    for index, outcome in zip(chunk, outcomes):
                        state.apply_outcome(index, outcome, elapsed_s=elapsed)
        return state.results()


class SerialExecutor(Executor):
    """Run jobs one after another in the current interpreter."""

    name = "serial"

    def execute(
        self,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback] = None,
        on_outcome: Optional[OutcomeCallback] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        state = _BatchState(jobs, policy or NO_RETRY, progress, on_outcome)
        for index, job in enumerate(jobs):
            while state.outcomes[index] is None:
                attempt = state.begin(index)
                started = time.perf_counter()
                try:
                    payload = execute_job_payload(self._job_payload(job, attempt))
                except Exception as exc:  # noqa: BLE001 - reported, not swallowed
                    delay = state.fail_exception(
                        index, exc, elapsed_s=time.perf_counter() - started
                    )
                    if delay is not None:
                        time.sleep(delay)
                        state.release_due_retries()
                        state.ready.clear()  # serial re-runs in place, not via queue
                else:
                    state.succeed(index, payload)
        return state.results()


class ThreadExecutor(Executor):
    """Run jobs on a thread pool.

    Each job builds its own simulator/fabric/cluster stack, so jobs share no
    mutable state; the GIL limits the speed-up for pure-python scenarios but
    numpy-heavy allocation rounds release it.
    """

    name = "thread"

    def fallback_backend(self) -> Optional[Executor]:
        return SerialExecutor()

    def execute(
        self,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback] = None,
        on_outcome: Optional[OutcomeCallback] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        if not jobs:
            return []
        with ThreadPoolExecutor(max_workers=self.effective_workers(len(jobs))) as pool:
            return self._execute_on_pool(pool, jobs, progress, on_outcome, policy or NO_RETRY)


# --------------------------------------------------------------------------------------
# The crash-tolerant process pool
# --------------------------------------------------------------------------------------


def _process_worker_main(conn) -> None:
    """Loop of one worker process: receive job chunks, send back outcomes.

    Protocol (all messages are plain picklable tuples over the pipe):

    * parent → worker: ``(task_id, [payload_dict, ...], wire)`` — ``wire``
      names the result transfer encoding (older two-element messages imply
      plain JSON) — or ``None`` (shut down);
    * worker → parent: ``("started", task_id)`` the moment work begins —
      the parent starts the chunk's timeout clock on this, so worker spawn
      and import time never count against the jobs — then
      ``("done", task_id, ok, payload)`` where ``ok`` carries the
      per-job outcome list of :func:`execute_job_chunk` and ``not ok`` a
      single ``{error, exc_type, traceback}`` dict for a failure that took
      the whole chunk (``KeyboardInterrupt``/``SystemExit``).

    Must stay module-level: spawn pickles it by reference and the child
    imports this module fresh.
    """
    try:
        # Pay the heavy simulator import once at spawn, not inside the first
        # job's timing window — this is most of what makes a *warm* worker
        # warm.
        import repro.experiments.runner  # noqa: F401
    except Exception:  # noqa: BLE001 - surfaces per-job if genuinely broken
        pass
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        task_id, payloads = message[0], message[1]
        wire = message[2] if len(message) > 2 else WIRE_JSON
        try:
            conn.send(("started", task_id))
            outcomes = execute_job_chunk(payloads, wire=wire)
        except BaseException as exc:  # noqa: BLE001 - serialised for the parent
            try:
                conn.send(
                    (
                        "done",
                        task_id,
                        False,
                        {
                            "error": repr(exc),
                            "exc_type": type(exc).__name__,
                            "traceback": traceback.format_exc(),
                        },
                    )
                )
            except (BrokenPipeError, OSError):
                return
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                return
        else:
            try:
                conn.send(("done", task_id, True, outcomes))
            except (BrokenPipeError, OSError):
                return


class _InFlight:
    """What one busy worker is doing: the chunk's job indices plus timing."""

    __slots__ = ("task_id", "indexes", "sent_at", "started_at", "deadline")

    def __init__(self, task_id: int, indexes: Sequence[int]) -> None:
        self.task_id = task_id
        self.indexes = list(indexes)
        self.sent_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.deadline: Optional[float] = None


class _PoolWorker:
    """One spawn-started worker process plus its parent-side pipe."""

    def __init__(self, context) -> None:
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_process_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.task: Optional[_InFlight] = None
        self.doomed = False  # terminated on purpose; never dispatch to it again
        self.idle_since = time.monotonic()  # last moment this worker went idle

    def dispatch(
        self,
        task_id: int,
        indexes: Sequence[int],
        payloads: List[Dict[str, Any]],
        wire: str = WIRE_JSON,
    ) -> bool:
        """Send one job chunk; ``False`` when the pipe is already broken."""
        try:
            self.conn.send((task_id, payloads, wire))
        except (BrokenPipeError, OSError):
            return False
        self.task = _InFlight(task_id, indexes)
        return True

    def alive(self) -> bool:
        return self.process.is_alive()

    def shutdown(self, kill: bool = False) -> None:
        """Stop the worker; escalates politely (message → terminate → kill)."""
        if not kill:
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        try:
            self.conn.close()
        except OSError:
            pass
        if kill and self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=5.0)


class ProcessExecutor(Executor):
    """Run jobs on a self-managed, crash-tolerant spawn process pool.

    Spawn (not fork) is used on every platform: workers import the package
    fresh and receive the job as a plain dict, so no live simulator state —
    and none of the parent's global counters — ever crosses the boundary.

    Unlike ``concurrent.futures.ProcessPoolExecutor`` (whose pool breaks for
    good when any worker dies), this pool tracks which job each worker is
    running, so a killed/OOMed worker is *recovered from*: the dead worker
    is reaped, its in-flight job is rescheduled (a retryable
    ``WorkerCrashError``), and a replacement is spawned.  With
    ``policy.timeout_s`` set, a job that overruns its budget gets its worker
    killed the same way (hung-worker detection) instead of stalling the
    batch forever.  After ``max_respawns`` replacements the pool declares
    itself degraded (:class:`~repro.exec.retry.ExecutorDegradedError`) so
    :func:`run_jobs` can fall back to a simpler backend.

    Warm pools (``pool="keep"``): with the default ``pool="fresh"`` every
    ``execute`` call spawns its workers and tears them down afterwards —
    correct, but the spawn+import cost (a fresh interpreter importing the
    whole simulator) is paid per call and dominates short batches.
    ``pool="keep"`` retains idle, healthy workers on the executor instance
    across calls: consecutive ``run_jobs`` calls on the same executor reuse
    them with zero respawns.  The retained pool is mutated strictly in
    place, so the shallow copies taken by :func:`resolve_executor` overrides
    and the chaos wrapper all share (and warm) the same workers.  Lifecycle:
    :meth:`close` (or the inherited context manager) shuts the pool down;
    workers idle longer than ``idle_timeout_s`` are reaped at the start of
    the next call; any batch that ends in an error tears the pool down
    wholesale — only a cleanly finished batch leaves warm workers behind.
    Every fault-tolerance invariant is lifecycle-independent: warm workers
    still count against the same respawn budget, timeout kills still retire
    the worker, and results are bit-identical either way.
    """

    name = "process"
    supports_timeout = True
    wire_format = WIRE_COLUMNAR

    def __init__(
        self,
        max_workers: Optional[int] = None,
        max_respawns: Optional[int] = None,
        pool: str = "fresh",
        idle_timeout_s: float = DEFAULT_IDLE_TIMEOUT_S,
    ) -> None:
        super().__init__(max_workers)
        if max_respawns is not None and max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if pool not in POOL_MODES:
            raise ValueError(f"pool must be one of {POOL_MODES}, got {pool!r}")
        if idle_timeout_s <= 0:
            raise ValueError(f"idle_timeout_s must be > 0, got {idle_timeout_s}")
        self.max_respawns = max_respawns
        self.pool = pool
        self.idle_timeout_s = float(idle_timeout_s)
        #: the retained worker pool — mutated in place only (never rebound),
        #: so shallow copies of this executor share one pool
        self._pool_workers: List[_PoolWorker] = []
        #: lifetime counters, shared across copies the same way
        self._pool_counters: Dict[str, int] = {
            "spawned": 0,
            "respawned": 0,
            "reused": 0,
            "idle_reaped": 0,
            "task_id": 0,
        }
        #: only the original instance finalizes the pool on collection;
        #: shallow copies (resolve_executor overrides, the chaos wrapper's
        #: per-call runner) share the pool and must not destroy it when
        #: they go out of scope.
        self._owns_pool = True

    def __copy__(self) -> "ProcessExecutor":
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        clone._owns_pool = False
        return clone

    def fallback_backend(self) -> Optional[Executor]:
        return ThreadExecutor(max_workers=self.max_workers)

    # -- pool lifecycle ----------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Lifetime pool counters plus the current warm-pool size."""
        return {
            **{k: v for k, v in self._pool_counters.items() if k != "task_id"},
            "pool_size": len(self._pool_workers),
        }

    def close(self) -> None:
        """Shut down every retained worker (idle politely, busy by kill)."""
        while self._pool_workers:
            worker = self._pool_workers.pop()
            worker.shutdown(kill=worker.task is not None or worker.doomed)

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            if getattr(self, "_owns_pool", False):
                self.close()
        except Exception:  # noqa: BLE001 - never raise from a finalizer
            pass

    def _prune_pool(self) -> None:
        """Entry housekeeping: drop dead idle workers, reap idle timeouts."""
        now = time.monotonic()
        for worker in list(self._pool_workers):
            if worker.doomed or not worker.alive():
                # Died (or was killed) between batches: nothing was in
                # flight, so this costs nothing against any respawn budget.
                self._pool_workers.remove(worker)
                worker.shutdown(kill=True)
            elif now - worker.idle_since >= self.idle_timeout_s:
                self._pool_workers.remove(worker)
                worker.shutdown()
                self._pool_counters["idle_reaped"] += 1

    def execute(
        self,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback] = None,
        on_outcome: Optional[OutcomeCallback] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        if not jobs:
            return []
        policy = policy or NO_RETRY
        state = _BatchState(jobs, policy, progress, on_outcome)
        context = multiprocessing.get_context("spawn")
        n_workers = self.effective_workers(len(jobs))
        respawn_budget = (
            self.max_respawns
            if self.max_respawns is not None
            else max(4, 2 * len(jobs))
        )
        keep = self.pool == "keep"
        workers = self._pool_workers
        self._prune_pool()
        self._pool_counters["reused"] += len(workers)
        # Warm workers count toward the initial allotment (clamped to this
        # call's target size), so the replacement arithmetic below charges
        # the respawn budget identically for warm and cold pools.
        spawn_state = {"initial": min(len(workers), n_workers), "spawned": 0}
        completed = False
        try:
            while not state.finished():
                state.release_due_retries()
                self._reap_and_respawn(
                    workers, context, n_workers, state, spawn_state, respawn_budget
                )
                self._dispatch_ready(workers, state)
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    delay = state.seconds_until_next_retry()
                    if delay is None:
                        if state.ready:
                            continue  # dispatch failed; reap loop will respawn
                        break  # pragma: no cover - defensive
                    time.sleep(delay)
                    continue
                self._wait_and_collect(busy, state)
            results = state.results()
            completed = True
            return results
        finally:
            if keep and completed:
                # Retain only healthy, idle workers; anything busy, doomed
                # or dead is retired so the next call starts from a clean
                # warm pool.
                now = time.monotonic()
                for worker in list(workers):
                    if worker.task is not None or worker.doomed or not worker.alive():
                        workers.remove(worker)
                        worker.shutdown(kill=True)
                    else:
                        worker.idle_since = now
            else:
                self.close()

    # -- scheduler pieces --------------------------------------------------------------
    def _reap_and_respawn(
        self,
        workers: List[_PoolWorker],
        context,
        n_workers: int,
        state: _BatchState,
        spawn_state: Dict[str, int],
        respawn_budget: int,
    ) -> None:
        """Remove dead workers (failing their jobs) and top the pool back up."""
        for worker in list(workers):
            if worker.doomed:
                # Terminated for a timeout: its signal may not have landed
                # yet, and dispatching to a dying worker would turn the next
                # attempt into a spurious WorkerCrashError.  Retire it now.
                workers.remove(worker)
                worker.shutdown(kill=True)
                continue
            if worker.alive():
                continue
            self._drain(worker, state)  # a finished result may still be buffered
            if worker.task is not None:
                self._crash(worker, state)
            workers.remove(worker)
            worker.shutdown(kill=True)
        batch_size = max(1, int(self.batch_size))
        outstanding = (
            -(-len(state.ready) // batch_size)  # chunks the ready queue will fill
            + len(state.retry_heap)
            + sum(1 for w in workers if w.task is not None)
        )
        want = min(n_workers, outstanding)
        while len(workers) < want:
            # Everything beyond the initial allotment (warm pool + first
            # cold spawns up to the target size) is a *replacement* — a
            # worker respawned after a crash, kill or timeout.
            replacements = max(
                0, spawn_state["initial"] + spawn_state["spawned"] + 1 - n_workers
            )
            if replacements > respawn_budget:
                raise ExecutorDegradedError(
                    f"process pool exceeded its respawn budget "
                    f"({respawn_budget} replacement workers after crashes/timeouts); "
                    f"giving up on the process backend"
                )
            workers.append(_PoolWorker(context))
            spawn_state["spawned"] += 1
            self._pool_counters["spawned"] += 1
            if replacements > 0:
                self._pool_counters["respawned"] += 1

    def _dispatch_ready(self, workers: List[_PoolWorker], state: _BatchState) -> None:
        batch_size = max(1, int(self.batch_size))
        for worker in workers:
            if worker.task is not None or worker.doomed or not state.ready:
                continue
            chunk, attempts = state.next_chunk(batch_size)
            payloads = self._chunk_payloads(state, chunk, attempts)
            self._pool_counters["task_id"] += 1
            if not worker.dispatch(
                self._pool_counters["task_id"], chunk, payloads, self.wire_format
            ):
                # The pipe broke before the chunk left: roll the attempts
                # back; the next reap pass retires this worker and respawns.
                for index in chunk:
                    state.unbegin(index)

    def _wait_and_collect(self, busy: List[_PoolWorker], state: _BatchState) -> None:
        from multiprocessing import connection

        timeout = state.seconds_until_next_retry()
        now = time.monotonic()
        for worker in busy:
            task = worker.task
            if task is not None and task.deadline is not None:
                until = max(0.0, task.deadline - now)
                timeout = until if timeout is None else min(timeout, until)
        handles = [w.conn for w in busy] + [w.process.sentinel for w in busy]
        connection.wait(handles, timeout=timeout)
        now = time.monotonic()
        for worker in busy:
            crashed = not self._drain(worker, state)
            task = worker.task
            if task is None:
                continue
            if crashed or not worker.alive():
                self._crash(worker, state)
            elif task.deadline is not None and now >= task.deadline:
                self._timeout(worker, state)

    def _drain(self, worker: _PoolWorker, state: _BatchState) -> bool:
        """Consume every buffered message; ``False`` when the pipe is dead."""
        try:
            while worker.conn.poll():
                message = worker.conn.recv()
                kind = message[0]
                task = worker.task
                if kind == "started":
                    _, task_id = message
                    if task is not None and task.task_id == task_id:
                        task.started_at = time.monotonic()
                        if state.policy.timeout_s is not None:
                            # The budget covers the whole chunk: scale it by
                            # the number of jobs sharing the round-trip.
                            task.deadline = task.started_at + (
                                state.policy.timeout_s * len(task.indexes)
                            )
                    continue
                _, task_id, ok, payload = message
                if task is None or task.task_id != task_id:
                    continue  # stale reply from a pre-timeout attempt
                elapsed = time.monotonic() - (task.started_at or task.sent_at)
                worker.task = None
                worker.idle_since = time.monotonic()
                if ok:
                    for index, outcome in zip(task.indexes, payload):
                        state.apply_outcome(index, outcome, elapsed_s=elapsed)
                else:
                    for index in task.indexes:
                        state.fail(
                            index,
                            error=str(payload["error"]),
                            exc_type=str(payload.get("exc_type", "")),
                            tb=str(payload.get("traceback", "")),
                            elapsed_s=elapsed,
                        )
        except (EOFError, OSError):
            return False
        return True

    def _crash(self, worker: _PoolWorker, state: _BatchState) -> None:
        """A worker died with a chunk in flight: reschedule its jobs."""
        task = worker.task
        assert task is not None
        worker.task = None
        exitcode = worker.process.exitcode
        elapsed = time.monotonic() - (task.started_at or task.sent_at)
        for index in task.indexes:
            state.fail(
                index,
                error=(
                    f"worker process died while running the job "
                    f"(exit code {exitcode})"
                ),
                exc_type="WorkerCrashError",
                elapsed_s=elapsed,
            )

    def _timeout(self, worker: _PoolWorker, state: _BatchState) -> None:
        """A chunk overran its wall-clock budget: kill its (hung) worker."""
        task = worker.task
        assert task is not None
        worker.task = None
        worker.doomed = True
        worker.process.terminate()
        elapsed = time.monotonic() - (task.started_at or task.sent_at)
        budget = state.policy.timeout_s * len(task.indexes)
        for index in task.indexes:
            state.fail(
                index,
                error=(
                    f"job exceeded its chunk's {budget:g}s wall-clock budget; "
                    f"worker killed"
                ),
                exc_type="JobTimeoutError",
                elapsed_s=elapsed,
            )


EXECUTORS.register(
    "serial",
    SerialExecutor,
    description="one job after another in this interpreter",
)
EXECUTORS.register(
    "thread",
    ThreadExecutor,
    aliases=("threads",),
    description="thread pool; shared interpreter, isolated per-job stacks",
)
EXECUTORS.register(
    "process",
    ProcessExecutor,
    aliases=("processes", "multiprocessing"),
    description="crash-tolerant spawn process pool; recovers killed workers, "
    "enforces per-job timeouts",
)


class ExecutionError(RuntimeError):
    """Raised by :func:`run_jobs` when jobs failed and errors are fatal."""

    def __init__(self, failures: Sequence[JobFailure]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} job(s) failed:"]
        lines += [f"  - {failure}" for failure in self.failures]
        super().__init__("\n".join(lines))


@dataclass
class ExecutionReport:
    """Everything :func:`run_jobs` did: results, cache hits, failures, retries."""

    jobs: List[ExperimentJob]
    results: Dict[str, SchemeResult]
    computed_keys: List[str] = field(default_factory=list)
    cached_keys: List[str] = field(default_factory=list)
    failures: List[JobFailure] = field(default_factory=list)
    executor: str = "serial"
    wall_clock_s: float = 0.0
    #: total retry attempts scheduled beyond each job's first try
    retried: int = 0
    #: one ``{"from", "to", "error", "jobs"}`` record per backend downgrade
    fallbacks: List[Dict[str, Any]] = field(default_factory=list)
    #: serialization perf counters of this run (delta of
    #: :data:`~repro.metrics.codec.WIRE_COUNTERS` across the execute loop):
    #: results encoded/decoded columnar, encode/decode seconds, wire bytes
    wire: Dict[str, float] = field(default_factory=dict)

    @property
    def computed(self) -> int:
        """Number of jobs actually executed this run."""
        return len(self.computed_keys)

    @property
    def cached(self) -> int:
        """Number of jobs satisfied from the result store."""
        return len(self.cached_keys)

    def result_for(self, job: ExperimentJob) -> SchemeResult:
        """The result of ``job`` (raises ``KeyError`` if it failed)."""
        return self.results[job.key]

    def summary(self) -> Dict[str, Any]:
        """Machine-readable run summary (printed by ``repro sweep --json``)."""
        return {
            "executor": self.executor,
            "jobs": len(self.jobs),
            "unique_jobs": len({job.key for job in self.jobs}),
            "computed": self.computed,
            "cached": self.cached,
            "failed": len(self.failures),
            "retried": self.retried,
            "fallbacks": len(self.fallbacks),
            "wall_clock_s": self.wall_clock_s,
            "wire": dict(self.wire),
        }


def resolve_executor(
    executor: Union[str, Executor],
    max_workers: Optional[int] = None,
    batch_size: Optional[int] = None,
    pool: Optional[str] = None,
    wire: Optional[str] = None,
) -> Executor:
    """An :class:`Executor` instance from a registry key (or pass through).

    ``"<wrapper>:<inner>"`` keys resolve the wrapper entry and pass the
    inner key through (``"chaos:process"`` builds a
    :class:`~repro.exec.chaos.ChaosExecutor` around the process backend).
    A passed-in instance is treated as read-only: a ``max_workers``,
    ``batch_size``, ``pool`` or ``wire`` override applies to a shallow copy,
    never to the caller's object.  (A copy shares the original's warm pool —
    pool state is mutated in place, see :class:`ProcessExecutor` — so
    overriding, say, ``batch_size`` between calls does not cost the warm
    workers.)

    ``pool`` selects the worker-pool lifecycle (``"fresh"``/``"keep"``) and
    ``wire`` the result transfer encoding (``"json"``/``"columnar"``); both
    are advisory attribute sets that backends without pools/wire simply
    ignore.
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError("max_workers must be >= 1")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if pool is not None and pool not in POOL_MODES:
        raise ValueError(f"pool must be one of {POOL_MODES}, got {pool!r}")
    if wire is not None and wire not in WIRE_FORMATS:
        raise ValueError(f"wire must be one of {WIRE_FORMATS}, got {wire!r}")
    if isinstance(executor, Executor):
        overrides: Dict[str, Any] = {}
        if max_workers is not None and max_workers != executor.max_workers:
            overrides["max_workers"] = max_workers
        if batch_size is not None and batch_size != executor.batch_size:
            overrides["batch_size"] = batch_size
        if pool is not None and pool != executor.pool:
            overrides["pool"] = pool
        if wire is not None and wire != executor.wire_format:
            overrides["wire_format"] = wire
        if overrides:
            executor = copy.copy(executor)
            for name, value in overrides.items():
                setattr(executor, name, value)
        return executor
    key = str(executor)
    if ":" in key:
        wrapper, _, inner = key.partition(":")
        entry = EXECUTORS.get(wrapper)
        try:
            built = entry.builder(inner=inner, max_workers=max_workers)
        except TypeError as exc:
            raise RegistryError(
                f"executor {entry.name!r} does not wrap an inner backend, so "
                f"{key!r} is invalid ({exc})"
            ) from exc
    else:
        built = EXECUTORS.build(key, max_workers=max_workers)
    if not isinstance(built, Executor):
        raise RegistryError(
            f"executor {executor!r} built {type(built).__name__}, "
            "expected an Executor subclass"
        )
    if batch_size is not None:
        built.batch_size = batch_size
    if pool is not None:
        built.pool = pool
    if wire is not None:
        built.wire_format = wire
    return built


def run_jobs(
    jobs: Sequence[ExperimentJob],
    executor: Union[str, Executor] = "serial",
    max_workers: Optional[int] = None,
    store: Optional[Union[str, ResultStore]] = None,
    progress: Optional[ProgressCallback] = None,
    raise_on_error: bool = True,
    policy: Optional[RetryPolicy] = None,
    fallback: bool = True,
    store_fsync: Optional[bool] = None,
    batch_size: Optional[int] = None,
    pool: Optional[str] = None,
    wire: Optional[str] = None,
) -> ExecutionReport:
    """Run a job list on a backend, with caching, retries and degradation.

    Parameters
    ----------
    jobs:
        The planned jobs (see :mod:`repro.exec.planner`).  Jobs sharing a
        content key are computed once.
    executor:
        Registry key (``serial``, ``thread``, ``process``,
        ``chaos:<inner>``) or an :class:`Executor` instance.
    max_workers:
        Worker count for pooled backends.
    store:
        A :class:`~repro.exec.store.ResultStore` (or its path).  Jobs whose
        key is already present are *not* re-run; newly computed results are
        appended as they finish (incremental checkpointing), so an
        interrupted run resumes with zero recomputation.
    progress:
        Optional ``(event, job, detail)`` callback.
    raise_on_error:
        Raise :class:`ExecutionError` after the run if any job failed
        (results of successful jobs are still stored first).
    policy:
        A :class:`~repro.exec.retry.RetryPolicy` governing per-job retries
        with deterministic backoff and the per-job timeout.  ``None``: one
        attempt, no timeout (the historical behaviour).
    fallback:
        When the backend fails at the *batch* level (cannot spawn workers,
        pool degraded beyond its respawn budget, an unexpected scheduler
        error), degrade along ``process → thread → serial`` and re-run only
        the jobs without a finished outcome.  Each downgrade is recorded in
        ``report.fallbacks`` and emitted as a ``degraded`` progress event.
        With ``fallback=False`` the backend's exception propagates.
    store_fsync:
        When ``store`` is given as a path, open it with
        ``fsync``-per-append durability (see
        :meth:`~repro.exec.store.ResultStore.put`).  Ignored for
        already-constructed stores (configure those directly).
    batch_size:
        Ship N jobs per dispatch round-trip on chunked backends (thread /
        process submissions, cluster HTTP requests) to amortise per-job
        spawn, pickle and network overhead.  Jobs keep per-job outcomes and
        retries; results are unchanged.  Default (``None``): the backend's
        own setting (1 unless configured otherwise).
    pool:
        Worker-pool lifecycle of pooled backends: ``"keep"`` retains idle
        workers on the executor instance across calls (warm pool — pass an
        executor *instance* to benefit across ``run_jobs`` calls),
        ``"fresh"`` tears them down per call.  Default (``None``): the
        backend's own setting.
    wire:
        Result transfer encoding on dispatch boundaries: ``"columnar"``
        column-packs result payloads (see :mod:`repro.metrics.codec`),
        ``"json"`` ships plain dicts.  Never changes result bytes; the
        per-run serialization counters land in ``report.summary()["wire"]``.
        Default (``None``): the backend's own setting.
    """
    jobs = list(jobs)
    backend = resolve_executor(
        executor,
        max_workers=max_workers,
        batch_size=batch_size,
        pool=pool,
        wire=wire,
    )
    if isinstance(store, (str, os.PathLike)):
        result_store: Optional[ResultStore] = ResultStore(
            store, fsync=bool(store_fsync)
        )
    else:
        result_store = store

    if (
        policy is not None
        and policy.timeout_s is not None
        and not backend.supports_timeout
    ):
        warnings.warn(
            f"executor {backend.name!r} cannot preempt running jobs; "
            f"timeout_s={policy.timeout_s:g} will not be enforced "
            f"(use the process backend for hard timeouts)",
            stacklevel=2,
        )

    report = ExecutionReport(jobs=jobs, results={}, executor=backend.name)
    started = time.perf_counter()

    # Partition into cached and to-compute, deduplicating by content key.
    to_run: List[ExperimentJob] = []
    seen: set = set()
    for job in jobs:
        key = job.key
        if key in seen:
            continue
        cached = result_store.get(key) if result_store is not None else None
        if cached is not None:
            report.results[key] = cached
            report.cached_keys.append(key)
            Executor._emit(progress, "cached", job)
            seen.add(key)
            continue
        seen.add(key)
        to_run.append(job)

    retry_counts: Dict[str, int] = {}
    backend_cell = {"name": backend.name}

    def wrapped_progress(event: str, job: ExperimentJob, detail: Optional[str]) -> None:
        if event == "retry":
            retry_counts[job.key] = retry_counts.get(job.key, 0) + 1
            report.retried += 1
        if progress is not None:
            progress(event, job, detail)

    def record_outcome(job: ExperimentJob, outcome: JobOutcome) -> None:
        # Invoked as each job finishes (completion order): results reach the
        # store immediately — the incremental checkpoint that lets an
        # interrupted batch keep everything it computed and a restarted run
        # resume from there with zero recomputation.
        if isinstance(outcome, JobFailure):
            report.failures.append(outcome)
            return
        result = SchemeResult.from_dict(outcome)
        key = job.key
        report.results[key] = result
        report.computed_keys.append(key)
        if result_store is not None:
            # The outcome dict *is* the canonical encoding (plus wall clock)
            # — it was validated by hydration in succeed() and again just
            # above — so hand it to the store directly instead of paying a
            # third serialisation via result.canonical_dict().
            result_store.put(
                job,
                outcome,
                meta={
                    "executor": backend_cell["name"],
                    "attempts": retry_counts.get(key, 0) + 1,
                },
            )

    current = backend
    remaining = to_run
    wire_before = WIRE_COUNTERS.snapshot()
    while remaining:
        try:
            current.execute(
                remaining,
                progress=wrapped_progress,
                on_outcome=record_outcome,
                policy=policy,
            )
            break
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # noqa: BLE001 - backend-level failure
            # Everything with a *successful* result was checkpointed via
            # on_outcome; re-run the rest (including jobs that finally
            # failed on the broken backend — their failures may well have
            # been the backend's fault).
            remaining = [job for job in remaining if job.key not in report.results]
            rerun_keys = {job.key for job in remaining}
            next_backend = current.fallback_backend() if fallback else None
            if next_backend is None or not remaining:
                if remaining:
                    raise
                break
            if current.batch_size != 1 and next_backend.batch_size == 1:
                # Degrading drops the backend, not the chunking request.
                next_backend.batch_size = current.batch_size
            report.failures = [
                f for f in report.failures if f.job.key not in rerun_keys
            ]
            report.fallbacks.append(
                {
                    "from": current.name,
                    "to": next_backend.name,
                    "error": repr(exc),
                    "jobs": len(remaining),
                }
            )
            Executor._emit(
                wrapped_progress,
                "degraded",
                remaining[0],
                f"backend {current.name!r} failed ({exc!r}); "
                f"falling back to {next_backend.name!r} for "
                f"{len(remaining)} unfinished job(s)",
            )
            current = next_backend
            backend_cell["name"] = current.name

    report.wire = WIRE_COUNTERS.delta_since(wire_before)
    report.wall_clock_s = time.perf_counter() - started
    if report.failures and raise_on_error:
        raise ExecutionError(report.failures)
    return report
