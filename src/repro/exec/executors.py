"""Executor backends: run job lists serially, on threads, or on processes.

Every backend funnels each job through the same module-level payload
function (:func:`execute_job_payload`): the job crosses the boundary as its
plain :meth:`~repro.exec.job.ExperimentJob.to_dict` form and the result comes
back as its :meth:`~repro.metrics.comparison.SchemeResult.to_dict` form.
Serialising on *every* backend — including ``serial`` — keeps the three
paths structurally identical, so "parallel equals serial" reduces to the
simulator's own determinism (which the per-run id counters and the
hierarchical seed derivation guarantee; see ``docs/EXECUTION.md``).

Backends are plugins in the :data:`repro.registry.EXECUTORS` registry::

    from repro.registry import EXECUTORS

    @EXECUTORS.register("my-cluster", description="submit jobs to slurm")
    class SlurmExecutor(Executor):
        ...

after which ``repro sweep --executor my-cluster`` and
:func:`run_jobs(..., executor="my-cluster") <run_jobs>` pick it up.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exec.job import ExperimentJob
from repro.exec.store import ResultStore
from repro.metrics.comparison import SchemeResult
from repro.registry import EXECUTORS, RegistryError

#: ``progress(event, job, detail)`` with event one of ``submitted``,
#: ``cached``, ``finished``, ``failed``.  ``detail`` is the error string for
#: ``failed`` lines and ``None`` otherwise.
ProgressCallback = Callable[[str, ExperimentJob, Optional[str]], None]

#: ``on_outcome(job, outcome)`` invoked (on the caller's thread) as soon as
#: each job's outcome is known — the hook :func:`run_jobs` uses to persist
#: results incrementally, so an interrupted run keeps what it computed.
OutcomeCallback = Callable[[ExperimentJob, "JobOutcome"], None]


def execute_job_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one serialised job and return the serialised result.

    This is the function worker processes import and call; it must stay
    module-level (picklable by reference) and must take/return only plain
    JSON-safe dicts so a spawn-started interpreter can execute it without
    any parent state.
    """
    from repro.experiments.runner import run_job

    job = ExperimentJob.from_dict(payload)
    return run_job(job).to_dict()


@dataclass
class JobFailure:
    """One job that raised instead of returning a result."""

    job: ExperimentJob
    error: str
    traceback: str = ""

    def __str__(self) -> str:
        return f"{self.job.label()}: {self.error}"


#: What a backend hands back per job: the result dict, or a failure.
JobOutcome = Union[Dict[str, Any], JobFailure]


class Executor:
    """Base class of execution backends.

    Subclasses implement :meth:`execute`, mapping a job list to one outcome
    per job (same order as the input).  ``max_workers`` is advisory — the
    serial backend ignores it.
    """

    name = "base"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def effective_workers(self, n_jobs: int) -> int:
        """The worker count actually used for ``n_jobs`` jobs."""
        default = os.cpu_count() or 1
        return max(1, min(self.max_workers or default, n_jobs or 1))

    def execute(
        self,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback] = None,
        on_outcome: Optional[OutcomeCallback] = None,
    ) -> List[JobOutcome]:
        """Run every job; one outcome per job, in input order.

        ``on_outcome`` is invoked on the caller's thread as each job's
        outcome becomes known (completion order, not input order), before
        the method returns — backends must call it so callers can persist
        partial progress even when the batch is interrupted later.
        """
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------------------
    @staticmethod
    def _emit(
        progress: Optional[ProgressCallback],
        event: str,
        job: ExperimentJob,
        detail: Optional[str] = None,
    ) -> None:
        if progress is not None:
            progress(event, job, detail)

    @staticmethod
    def _run_one(
        job: ExperimentJob, progress: Optional[ProgressCallback]
    ) -> JobOutcome:
        try:
            result = execute_job_payload(job.to_dict())
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            failure = JobFailure(job=job, error=repr(exc), traceback=traceback.format_exc())
            Executor._emit(progress, "failed", job, failure.error)
            return failure
        Executor._emit(progress, "finished", job)
        return result

    def _execute_on_pool(
        self,
        pool,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback],
        on_outcome: Optional[OutcomeCallback],
    ) -> List[JobOutcome]:
        """Fan jobs out on a ``concurrent.futures`` pool, in-order results.

        Jobs are submitted as their plain dict payloads, so process pools
        only ever pickle JSON-safe values plus a module-level function.
        ``on_outcome`` fires here, in the caller's thread, as each future
        completes.
        """
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
        future_to_index = {}
        for index, job in enumerate(jobs):
            self._emit(progress, "submitted", job)
            future = pool.submit(execute_job_payload, job.to_dict())
            future_to_index[future] = index
        pending = set(future_to_index)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = future_to_index[future]
                job = jobs[index]
                try:
                    outcome: JobOutcome = future.result()
                except Exception as exc:  # noqa: BLE001 - reported, not swallowed
                    outcome = JobFailure(
                        job=job, error=repr(exc), traceback=traceback.format_exc()
                    )
                    self._emit(progress, "failed", job, outcome.error)
                else:
                    self._emit(progress, "finished", job)
                outcomes[index] = outcome
                if on_outcome is not None:
                    on_outcome(job, outcome)
        # Every future was indexed, so every slot is filled; returning the
        # raw list keeps result→job alignment an invariant the caller can
        # rely on (a None here would mean a bug, and should surface, not be
        # silently filtered away).
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]


class SerialExecutor(Executor):
    """Run jobs one after another in the current interpreter."""

    name = "serial"

    def execute(
        self,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback] = None,
        on_outcome: Optional[OutcomeCallback] = None,
    ) -> List[JobOutcome]:
        outcomes: List[JobOutcome] = []
        for job in jobs:
            self._emit(progress, "submitted", job)
            outcome = self._run_one(job, progress)
            outcomes.append(outcome)
            if on_outcome is not None:
                on_outcome(job, outcome)
        return outcomes


class ThreadExecutor(Executor):
    """Run jobs on a thread pool.

    Each job builds its own simulator/fabric/cluster stack, so jobs share no
    mutable state; the GIL limits the speed-up for pure-python scenarios but
    numpy-heavy allocation rounds release it.
    """

    name = "thread"

    def execute(
        self,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback] = None,
        on_outcome: Optional[OutcomeCallback] = None,
    ) -> List[JobOutcome]:
        if not jobs:
            return []
        with ThreadPoolExecutor(max_workers=self.effective_workers(len(jobs))) as pool:
            return self._execute_on_pool(pool, jobs, progress, on_outcome)


class ProcessExecutor(Executor):
    """Run jobs on a spawn-started process pool.

    Spawn (not fork) is used on every platform: workers import the package
    fresh and receive the job as a plain dict, so no live simulator state —
    and none of the parent's global counters — ever crosses the boundary.
    """

    name = "process"

    def execute(
        self,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback] = None,
        on_outcome: Optional[OutcomeCallback] = None,
    ) -> List[JobOutcome]:
        if not jobs:
            return []
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=self.effective_workers(len(jobs)), mp_context=context
        ) as pool:
            return self._execute_on_pool(pool, jobs, progress, on_outcome)


EXECUTORS.register(
    "serial",
    SerialExecutor,
    description="one job after another in this interpreter",
)
EXECUTORS.register(
    "thread",
    ThreadExecutor,
    aliases=("threads",),
    description="thread pool; shared interpreter, isolated per-job stacks",
)
EXECUTORS.register(
    "process",
    ProcessExecutor,
    aliases=("processes", "multiprocessing"),
    description="spawn-started process pool; jobs cross as JSON payloads",
)


class ExecutionError(RuntimeError):
    """Raised by :func:`run_jobs` when jobs failed and errors are fatal."""

    def __init__(self, failures: Sequence[JobFailure]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} job(s) failed:"]
        lines += [f"  - {failure}" for failure in self.failures]
        super().__init__("\n".join(lines))


@dataclass
class ExecutionReport:
    """Everything :func:`run_jobs` did: results, cache hits, failures."""

    jobs: List[ExperimentJob]
    results: Dict[str, SchemeResult]
    computed_keys: List[str] = field(default_factory=list)
    cached_keys: List[str] = field(default_factory=list)
    failures: List[JobFailure] = field(default_factory=list)
    executor: str = "serial"
    wall_clock_s: float = 0.0

    @property
    def computed(self) -> int:
        """Number of jobs actually executed this run."""
        return len(self.computed_keys)

    @property
    def cached(self) -> int:
        """Number of jobs satisfied from the result store."""
        return len(self.cached_keys)

    def result_for(self, job: ExperimentJob) -> SchemeResult:
        """The result of ``job`` (raises ``KeyError`` if it failed)."""
        return self.results[job.key]

    def summary(self) -> Dict[str, Any]:
        """Machine-readable run summary (printed by ``repro sweep --json``)."""
        return {
            "executor": self.executor,
            "jobs": len(self.jobs),
            "unique_jobs": len({job.key for job in self.jobs}),
            "computed": self.computed,
            "cached": self.cached,
            "failed": len(self.failures),
            "wall_clock_s": self.wall_clock_s,
        }


def resolve_executor(
    executor: Union[str, Executor], max_workers: Optional[int] = None
) -> Executor:
    """An :class:`Executor` instance from a registry key (or pass through).

    A passed-in instance is treated as read-only: a ``max_workers`` override
    applies to a shallow copy, never to the caller's object.
    """
    if isinstance(executor, Executor):
        if max_workers is not None and max_workers != executor.max_workers:
            if max_workers < 1:
                raise ValueError("max_workers must be >= 1")
            executor = copy.copy(executor)
            executor.max_workers = max_workers
        return executor
    built = EXECUTORS.build(executor, max_workers=max_workers)
    if not isinstance(built, Executor):
        raise RegistryError(
            f"executor {executor!r} built {type(built).__name__}, "
            "expected an Executor subclass"
        )
    return built


def run_jobs(
    jobs: Sequence[ExperimentJob],
    executor: Union[str, Executor] = "serial",
    max_workers: Optional[int] = None,
    store: Optional[Union[str, ResultStore]] = None,
    progress: Optional[ProgressCallback] = None,
    raise_on_error: bool = True,
) -> ExecutionReport:
    """Run a job list on a backend, with optional caching/resume.

    Parameters
    ----------
    jobs:
        The planned jobs (see :mod:`repro.exec.planner`).  Jobs sharing a
        content key are computed once.
    executor:
        Registry key (``serial``, ``thread``, ``process``) or an
        :class:`Executor` instance.
    max_workers:
        Worker count for pooled backends.
    store:
        A :class:`~repro.exec.store.ResultStore` (or its path).  Jobs whose
        key is already present are *not* re-run; newly computed results are
        appended as they finish, so an interrupted run resumes cleanly.
    progress:
        Optional ``(event, job, detail)`` callback.
    raise_on_error:
        Raise :class:`ExecutionError` after the run if any job failed
        (results of successful jobs are still stored first).
    """
    jobs = list(jobs)
    backend = resolve_executor(executor, max_workers=max_workers)
    result_store = ResultStore(store) if isinstance(store, (str, os.PathLike)) else store

    report = ExecutionReport(jobs=jobs, results={}, executor=backend.name)
    started = time.perf_counter()

    # Partition into cached and to-compute, deduplicating by content key.
    to_run: List[ExperimentJob] = []
    seen: set = set()
    for job in jobs:
        key = job.key
        if key in seen:
            continue
        cached = result_store.get(key) if result_store is not None else None
        if cached is not None:
            report.results[key] = cached
            report.cached_keys.append(key)
            Executor._emit(progress, "cached", job)
            seen.add(key)
            continue
        seen.add(key)
        to_run.append(job)

    def record_outcome(job: ExperimentJob, outcome: JobOutcome) -> None:
        # Invoked as each job finishes (completion order): results reach the
        # store immediately, so an interrupted batch keeps everything it
        # computed and the restarted run resumes from there.
        if isinstance(outcome, JobFailure):
            report.failures.append(outcome)
            return
        result = SchemeResult.from_dict(outcome)
        key = job.key
        report.results[key] = result
        report.computed_keys.append(key)
        if result_store is not None:
            result_store.put(job, result, meta={"executor": backend.name})

    if to_run:
        backend.execute(to_run, progress=progress, on_outcome=record_outcome)

    report.wall_clock_s = time.perf_counter() - started
    if report.failures and raise_on_error:
        raise ExecutionError(report.failures)
    return report
