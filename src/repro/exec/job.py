"""Serialisable experiment jobs.

An :class:`ExperimentJob` is the unit of parallel work: one scenario run by
one scheme under one seed.  It is a *pure value* — a
:class:`~repro.experiments.spec.ScenarioSpec` plus a scheme (registry key or
inline :class:`~repro.baselines.schemes.SchemeSpec` fields) plus the seed the
run uses — with a lossless JSON round-trip, so a job can be pickled to a
spawn-started worker process, written to disk, or replayed later.

Jobs are content-addressed: :attr:`ExperimentJob.key` is a SHA-256 over the
canonical JSON of everything that *determines the numbers* (spec, scheme,
seed).  The presentation-only :attr:`tags` (which sweep point a job belongs
to, whether it is the candidate or the baseline, ...) are excluded, so two
jobs that would compute the same thing share a key — which is exactly what
lets the :class:`~repro.exec.store.ResultStore` cache and resume across
sweeps that overlap.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from repro.baselines.schemes import SchemeSpec
from repro.experiments.spec import ScenarioSpec, _jsonify, as_spec


#: Reverse map of built scheme specs to registry keys, rebuilt whenever the
#: scheme registry's size changes (e.g. a plugin registered later).
_scheme_key_cache: Dict[str, Any] = {"size": -1, "map": {}}


def _canonical_scheme_key(scheme: SchemeSpec) -> Optional[str]:
    """The registry key whose built spec equals ``scheme``, if any."""
    from repro.registry import SCHEMES

    size = len(SCHEMES)
    if _scheme_key_cache["size"] != size:
        reverse: Dict[SchemeSpec, str] = {}
        for entry in SCHEMES.entries():
            try:
                built = entry.builder()
            except Exception:  # pragma: no cover - defensive against odd plugins
                continue
            if isinstance(built, SchemeSpec):
                reverse.setdefault(built, entry.name)
        _scheme_key_cache["map"] = reverse
        _scheme_key_cache["size"] = size
    return _scheme_key_cache["map"].get(scheme)


def _scheme_payload(scheme: Union[str, SchemeSpec, Mapping[str, Any]]) -> Union[str, Dict[str, Any]]:
    """Normalise a scheme to its JSON form: a registry key or a field dict.

    Validation is eager in both forms so a malformed job fails at
    construction, not on a worker three minutes into a sweep: inline dicts
    must build a :class:`SchemeSpec`, and string keys must resolve in the
    scheme registry (with its did-you-mean error on typos).

    Everything is stored *canonically*: aliases resolve to the canonical
    registry key, and a :class:`SchemeSpec` equal to a registered one folds
    back to its key.  A job planned from ``SCDA_SCHEME`` therefore shares
    its content key with one planned from ``"scda"`` — without this, the
    CLI (string keys) and the Python API (often spec objects) would cache
    the same computation under different :class:`ResultStore` keys.  Only a
    genuinely unregistered ad-hoc spec is stored as an inline field dict.
    """
    if isinstance(scheme, Mapping) and not isinstance(scheme, SchemeSpec):
        scheme = SchemeSpec(**dict(scheme))
    if isinstance(scheme, SchemeSpec):
        key = _canonical_scheme_key(scheme)
        return key if key is not None else asdict(scheme)
    from repro.registry import SCHEMES

    return SCHEMES.get(str(scheme)).name


@dataclass(frozen=True)
class ExperimentJob:
    """One (scenario, scheme, seed) point of the evaluation cross-product.

    Attributes
    ----------
    spec:
        The declarative scenario.  The job's :attr:`seed` overrides the
        spec's own seed at execution time (they are equal for jobs built by
        the planner's default, order-independent derivation).
    scheme:
        A scheme registry key (``"scda"``) or a dict of
        :class:`~repro.baselines.schemes.SchemeSpec` fields for ad-hoc
        schemes that are not registered.
    seed:
        The master seed of the run.  Defaults to the spec's seed; planners
        deriving per-point seeds use
        :func:`repro.sim.random.derive_seed`'s hierarchical form so the value
        depends only on the job's identity, never on execution order.
    tags:
        Presentation-only labels (sweep parameter, candidate/baseline role,
        ...).  Excluded from :attr:`key`.
    """

    spec: ScenarioSpec
    scheme: Union[str, Dict[str, Any]]
    seed: Optional[int] = None
    tags: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Accept anything scenario-like (spec, legacy config, spec dict).
        object.__setattr__(self, "spec", as_spec(self.spec))
        object.__setattr__(self, "scheme", _scheme_payload(self.scheme))
        object.__setattr__(
            self, "seed", int(self.spec.seed if self.seed is None else self.seed)
        )
        object.__setattr__(self, "tags", _jsonify(dict(self.tags)))

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the dict-valued
        # fields; hashing the content key is consistent with field equality
        # (equal jobs serialise identically, hence share a key).
        return hash(self.key)

    # -- identity ----------------------------------------------------------------------
    @property
    def key(self) -> str:
        """Content-addressed job key: SHA-256 of the canonical job JSON.

        Stable across processes, platforms and interpreter restarts, and
        independent of everything presentation-only — :attr:`tags` and the
        spec's display ``name`` (two specs differing only in name compute
        identical numbers, so they must share cache entries); this is the
        key the :class:`~repro.exec.store.ResultStore` caches results under.
        """
        cached = self.__dict__.get("_key")
        if cached is not None:
            return cached
        spec_payload = self.resolved_spec().to_dict()
        del spec_payload["name"]
        payload = {
            "spec": spec_payload,
            "scheme": self.scheme,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        key = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        # Frozen dataclass: stash the lazily computed key without making it
        # a field (it would pollute eq/repr and the serialised form).
        object.__setattr__(self, "_key", key)
        return key

    @property
    def scheme_name(self) -> str:
        """The scheme's display-friendly name (key or inline spec name)."""
        if isinstance(self.scheme, str):
            return self.scheme
        return str(self.scheme.get("name", "<scheme>"))

    def label(self) -> str:
        """A short human-readable description for progress reporting."""
        return f"{self.spec.name} × {self.scheme_name} (seed {self.seed})"

    # -- resolution --------------------------------------------------------------------
    def resolved_spec(self) -> ScenarioSpec:
        """The scenario this job actually runs: the spec under the job seed."""
        if self.seed == self.spec.seed:
            return self.spec
        return self.spec.with_overrides(seed=self.seed)

    def resolved_scheme(self) -> SchemeSpec:
        """The full scheme spec (registry keys are looked up lazily)."""
        if isinstance(self.scheme, str):
            from repro.registry import SCHEMES

            return SCHEMES.build(self.scheme)
        return SchemeSpec(**self.scheme)

    # -- serialisation -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict; ``from_dict`` round-trips losslessly."""
        return {
            "spec": self.spec.to_dict(),
            "scheme": self.scheme,
            "seed": self.seed,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentJob":
        """Rebuild a job from :meth:`to_dict` output.

        Dunder-prefixed keys — both top-level payload envelopes (the
        executors' ``"__chaos__"`` injection channel) and ``"__..."`` tags —
        are runtime-only transport, never part of the job's identity, and
        are dropped here so a payload that carried one hydrates back to the
        exact job (same content key) it was serialised from.
        """
        tags = {
            name: value
            for name, value in dict(data.get("tags", {})).items()
            if not str(name).startswith("__")
        }
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            scheme=data["scheme"],
            seed=data.get("seed"),
            tags=tags,
        )

    def to_json(self) -> str:
        """The job as a compact JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentJob":
        """Parse a job from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def with_tags(self, **tags: Any) -> "ExperimentJob":
        """A copy of this job with extra presentation tags merged in."""
        return ExperimentJob(
            spec=self.spec, scheme=self.scheme, seed=self.seed, tags={**self.tags, **tags}
        )
