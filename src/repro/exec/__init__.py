"""Job-based parallel execution of experiments.

The paper's evaluation is a cross-product (schemes × topologies × workloads ×
loads × τ); this package turns every point of that product into a
self-contained, serialisable unit of work and runs the resulting job lists on
pluggable backends:

* :class:`~repro.exec.job.ExperimentJob` — one (scenario, scheme, seed)
  point with a lossless JSON round-trip and a content-addressed key;
* :mod:`~repro.exec.planner` — expands comparisons, matrices and sweeps into
  job lists;
* :mod:`~repro.exec.executors` — the :data:`~repro.registry.EXECUTORS`
  registry with ``serial``, ``thread`` and ``process`` backends plus the
  :func:`~repro.exec.executors.run_jobs` orchestrator;
* :class:`~repro.exec.store.ResultStore` — an append-only JSONL store keyed
  by job content, enabling resume (already-computed points are never re-run).

Determinism contract: running the same job under any backend — or in any
order relative to other jobs — produces a bit-identical
:class:`~repro.metrics.comparison.SchemeResult` (modulo the wall-clock
field).  See ``docs/EXECUTION.md``.
"""

from repro.exec.job import ExperimentJob
from repro.exec.planner import (
    plan_comparison,
    plan_control_interval_sweep,
    plan_failure_sweep,
    plan_matrix,
    plan_offered_load_sweep,
)
from repro.exec.executors import (
    Executor,
    ExecutionReport,
    JobFailure,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    run_jobs,
)
from repro.exec.store import ResultStore

__all__ = [
    "ExperimentJob",
    "Executor",
    "ExecutionReport",
    "JobFailure",
    "ProcessExecutor",
    "ResultStore",
    "SerialExecutor",
    "ThreadExecutor",
    "plan_comparison",
    "plan_control_interval_sweep",
    "plan_failure_sweep",
    "plan_matrix",
    "plan_offered_load_sweep",
    "run_jobs",
]
