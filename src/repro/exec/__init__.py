"""Job-based parallel execution of experiments.

The paper's evaluation is a cross-product (schemes × topologies × workloads ×
loads × τ); this package turns every point of that product into a
self-contained, serialisable unit of work and runs the resulting job lists on
pluggable backends:

* :class:`~repro.exec.job.ExperimentJob` — one (scenario, scheme, seed)
  point with a lossless JSON round-trip and a content-addressed key;
* :mod:`~repro.exec.planner` — expands comparisons, matrices and sweeps into
  job lists;
* :mod:`~repro.exec.executors` — the :data:`~repro.registry.EXECUTORS`
  registry with ``serial``, ``thread`` and ``process`` backends plus the
  :func:`~repro.exec.executors.run_jobs` orchestrator;
* :class:`~repro.exec.store.ResultStore` — an append-only JSONL store keyed
  by job content, enabling resume (already-computed points are never re-run)
  and a typed query API (filter by scheme/tags/spec fields, group by
  ensemble) so analyses read from disk instead of re-running;
* :mod:`~repro.exec.replication` — multi-seed ensembles: plan N replicate
  seeds per scheme, run them on any backend, fold the results into
  CI-carrying :class:`~repro.metrics.replication.ReplicatedComparison` s.

Determinism contract: running the same job under any backend — or in any
order relative to other jobs — produces a bit-identical
:class:`~repro.metrics.comparison.SchemeResult` (modulo the wall-clock
field).  See ``docs/EXECUTION.md``.

Dispatch-path performance knobs (see ``docs/PERFORMANCE.md``): pooled
backends take ``pool="keep"`` to retain warm workers across ``run_jobs``
calls, and process/cluster dispatch column-packs result payloads with the
lossless codec in :mod:`repro.metrics.codec` (``wire="columnar"``, the
default there).  Neither knob changes a single result byte.
"""

from repro.exec.chaos import ChaosConfig, ChaosError, ChaosExecutor
from repro.exec.cluster import ClusterExecutor
from repro.exec.job import ExperimentJob
from repro.exec.planner import (
    plan_comparison,
    plan_control_interval_sweep,
    plan_failure_sweep,
    plan_matrix,
    plan_offered_load_sweep,
    plan_replications,
    replicate_seed,
)
from repro.exec.executors import (
    Executor,
    ExecutionReport,
    JobFailure,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
    run_jobs,
)
from repro.exec.retry import (
    ClusterTransportError,
    CorruptResultError,
    ExecutorDegradedError,
    JobTimeoutError,
    RetryPolicy,
    WorkerCrashError,
)
from repro.exec.store import ResultStore, StoredEntry
from repro.exec.replication import (
    ensemble_from_store,
    run_replicated_comparison,
    run_replications,
)

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "ChaosExecutor",
    "ClusterExecutor",
    "ClusterTransportError",
    "CorruptResultError",
    "ExperimentJob",
    "Executor",
    "ExecutionReport",
    "ExecutorDegradedError",
    "JobFailure",
    "JobTimeoutError",
    "ProcessExecutor",
    "ResultStore",
    "RetryPolicy",
    "SerialExecutor",
    "StoredEntry",
    "ThreadExecutor",
    "WorkerCrashError",
    "ensemble_from_store",
    "resolve_executor",
    "plan_comparison",
    "plan_control_interval_sweep",
    "plan_failure_sweep",
    "plan_matrix",
    "plan_offered_load_sweep",
    "plan_replications",
    "replicate_seed",
    "run_jobs",
    "run_replicated_comparison",
    "run_replications",
]
