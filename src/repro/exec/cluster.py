"""The ``cluster`` backend: dispatch jobs to HTTP worker daemons.

Fourth entry in the ``EXECUTORS`` registry (after ``serial`` / ``thread`` /
``process``), composable with wrapper syntax (``chaos:cluster``).  The
executor is a *client*: workers are long-lived `repro worker` daemons (see
:mod:`repro.service.worker`), discovered from static configuration with
health-check gating (:mod:`repro.service.discovery`), each owning a local
write-once result shard that :meth:`repro.exec.store.ResultStore.merge`
unions after the run.

Scheduling drives the same :class:`~repro.exec.executors._BatchState`
retry machine as every other backend:

* chunks of ``batch_size`` jobs ship per ``POST /jobs`` round-trip;
* the target worker is chosen by **fewest outstanding chunks**, ties broken
  by **earliest last dispatch** (the PYME "earliest write time" rule), then
  configuration order;
* transport failures classify into the existing retry vocabulary — socket
  timeout → ``JobTimeoutError`` (the policy's ``timeout_s`` is enforced as
  the HTTP read timeout, scaled by chunk length), connection refused/lost →
  ``WorkerCrashError`` (the worker leaves the rotation), anything else →
  ``ClusterTransportError`` — all retryable, with the usual deterministic
  backoff;
* when every worker has left the rotation (or none was configured), the
  executor raises :class:`~repro.exec.retry.ExecutorDegradedError` and
  :func:`~repro.exec.executors.run_jobs` degrades
  ``cluster → process → thread → serial``, re-running only unfinished jobs.

Because jobs are content-addressed and deterministic, none of this can
change results: the merged cluster store is line-for-line identical (after
keying) to a serial run's store, even under chaos injection.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exec.executors import Executor, JobOutcome, ProcessExecutor, _BatchState
from repro.metrics.codec import WIRE_COLUMNAR
from repro.exec.job import ExperimentJob
from repro.exec.retry import (
    NO_RETRY,
    ClusterTransportError,
    ExecutorDegradedError,
    JobTimeoutError,
    RetryPolicy,
    WorkerCrashError,
)
from repro.registry import EXECUTORS
from repro.service import protocol
from repro.service.discovery import (
    WorkerEndpoint,
    configured_endpoints,
    discover_workers,
)

#: Fallback per-job transport budget when the policy sets no ``timeout_s``:
#: bounds how long a request to a live-but-hung worker can stall the run.
DEFAULT_REQUEST_TIMEOUT_S = 600.0


class _WorkerSlot:
    """Per-worker dispatch bookkeeping (mutated only on the scheduler thread)."""

    __slots__ = ("endpoint", "order", "outstanding", "last_dispatch", "alive")

    def __init__(self, endpoint: WorkerEndpoint, order: int) -> None:
        self.endpoint = endpoint
        self.order = order
        self.outstanding = 0
        self.last_dispatch = 0.0
        self.alive = True

    def sort_key(self) -> Tuple[int, float, int]:
        return (self.outstanding, self.last_dispatch, self.order)


class ClusterExecutor(Executor):
    """Run jobs on remote HTTP workers (see module docstring).

    Parameters
    ----------
    max_workers:
        Total in-flight chunks across the cluster (the dispatch window).
        Default: two per configured worker — enough to keep every worker's
        request pipeline full without flooding small daemons.
    hosts / hosts_file:
        Worker endpoints, as a ``host:port`` list/string or a hosts file.
        When neither is given the environment is consulted
        (``REPRO_CLUSTER_HOSTS`` / ``REPRO_CLUSTER_HOSTS_FILE``) — that is
        the channel the CLI and wrapper syntax (``chaos:cluster``) use.
    health_timeout_s:
        Budget of the pre-dispatch ``GET /healthz`` gate per endpoint.
    """

    name = "cluster"
    supports_timeout = True  # enforced as the HTTP read timeout per chunk
    #: Ask workers for column-packed result payloads (see
    #: :mod:`repro.metrics.codec`).  Negotiated, not assumed: the request
    #: carries ``"wire": "columnar"``, a worker that understands it answers
    #: marked encoded payloads, and an older JSON-only worker ignores the
    #: unknown field and answers plain dicts — the decode funnel handles
    #: both per outcome, so mixed-version clusters just work.
    wire_format = WIRE_COLUMNAR

    def __init__(
        self,
        max_workers: Optional[int] = None,
        hosts: Optional[Union[str, Sequence[Union[str, WorkerEndpoint]]]] = None,
        hosts_file: Optional[str] = None,
        health_timeout_s: float = protocol.CONTROL_TIMEOUT_S,
    ) -> None:
        super().__init__(max_workers=max_workers)
        self.hosts = hosts
        self.hosts_file = hosts_file
        self.health_timeout_s = float(health_timeout_s)

    def fallback_backend(self) -> Optional[Executor]:
        return ProcessExecutor(max_workers=self.max_workers)

    # -- endpoint resolution -----------------------------------------------------------
    def live_workers(self) -> List[WorkerEndpoint]:
        """The configured endpoints that pass the health gate right now.

        Raises :class:`ExecutorDegradedError` when nothing is configured or
        nothing answers — the signal ``run_jobs`` turns into a degradation
        to the local process backend.
        """
        configured = configured_endpoints(hosts=self.hosts, hosts_file=self.hosts_file)
        if not configured:
            raise ExecutorDegradedError(
                "cluster backend has no workers configured: pass --hosts / "
                "--hosts-file or set REPRO_CLUSTER_HOSTS"
            )
        live = discover_workers(configured, timeout_s=self.health_timeout_s)
        if not live:
            raise ExecutorDegradedError(
                f"none of the {len(configured)} configured cluster worker(s) "
                f"answered the health check: "
                f"{', '.join(str(e) for e in configured)}"
            )
        return live

    # -- scheduling --------------------------------------------------------------------
    def execute(
        self,
        jobs: Sequence[ExperimentJob],
        progress=None,
        on_outcome=None,
        policy: Optional[RetryPolicy] = None,
    ) -> List[JobOutcome]:
        if not jobs:
            return []
        policy = policy or NO_RETRY
        slots = [
            _WorkerSlot(endpoint, order)
            for order, endpoint in enumerate(self.live_workers())
        ]
        window = self.max_workers or 2 * len(slots)
        state = _BatchState(jobs, policy, progress, on_outcome)
        batch_size = max(1, int(self.batch_size))
        pool = ThreadPoolExecutor(
            max_workers=window, thread_name_prefix="repro-cluster"
        )
        in_flight: Dict[Any, Tuple[List[int], _WorkerSlot, float]] = {}
        try:
            while not state.finished():
                state.release_due_retries()
                live = [slot for slot in slots if slot.alive]
                if not live:
                    raise ExecutorDegradedError(
                        f"cluster backend lost all {len(slots)} worker(s) "
                        f"mid-batch"
                    )
                while state.ready and len(in_flight) < window:
                    chunk, attempts = state.next_chunk(batch_size)
                    slot = min(live, key=_WorkerSlot.sort_key)
                    payloads = self._chunk_payloads(state, chunk, attempts)
                    body: Dict[str, Any] = {"jobs": payloads}
                    if self.wire_format == WIRE_COLUMNAR:
                        body["wire"] = WIRE_COLUMNAR
                    timeout_s = (
                        policy.timeout_s * len(chunk)
                        if policy.timeout_s is not None
                        else DEFAULT_REQUEST_TIMEOUT_S * len(chunk)
                    )
                    future = pool.submit(
                        protocol.http_json,
                        "POST",
                        slot.endpoint.url(protocol.JOBS_PATH),
                        body,
                        timeout_s,
                    )
                    slot.outstanding += 1
                    slot.last_dispatch = time.monotonic()
                    in_flight[future] = (chunk, slot, time.monotonic())
                if not in_flight:
                    delay = state.seconds_until_next_retry()
                    if delay is None:  # pragma: no cover - defensive
                        break
                    time.sleep(delay)
                    continue
                done, _ = wait(
                    set(in_flight),
                    timeout=state.seconds_until_next_retry(),
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    chunk, slot, sent_at = in_flight.pop(future)
                    slot.outstanding -= 1
                    elapsed = time.monotonic() - sent_at
                    self._collect(state, chunk, slot, future, elapsed, policy)
            return state.results()
        finally:
            # Never block the scheduler on in-flight requests to dead or
            # hung workers; daemonised threads drain on their own.
            pool.shutdown(wait=False)

    def _collect(
        self,
        state: _BatchState,
        chunk: List[int],
        slot: _WorkerSlot,
        future: Any,
        elapsed: float,
        policy: RetryPolicy,
    ) -> None:
        """Fold one finished HTTP round-trip back into the batch state."""
        try:
            response = future.result()
        except JobTimeoutError as exc:
            budget = (
                policy.timeout_s * len(chunk)
                if policy.timeout_s is not None
                else DEFAULT_REQUEST_TIMEOUT_S * len(chunk)
            )
            for index in chunk:
                state.fail(
                    index,
                    error=(
                        f"chunk of {len(chunk)} exceeded its {budget:g}s "
                        f"transport budget on {slot.endpoint} ({exc})"
                    ),
                    exc_type="JobTimeoutError",
                    elapsed_s=elapsed,
                )
            return
        except WorkerCrashError as exc:
            # The worker is gone: out of the rotation, jobs retried elsewhere.
            slot.alive = False
            for index in chunk:
                state.fail(
                    index,
                    error=f"worker {slot.endpoint} died mid-chunk ({exc})",
                    exc_type="WorkerCrashError",
                    elapsed_s=elapsed,
                )
            return
        except Exception as exc:  # noqa: BLE001 - classified by name
            for index in chunk:
                state.fail(
                    index,
                    error=repr(exc),
                    exc_type=type(exc).__name__,
                    elapsed_s=elapsed,
                )
            return
        outcomes = response.get("outcomes") if isinstance(response, dict) else None
        if not isinstance(outcomes, list) or len(outcomes) != len(chunk):
            got = len(outcomes) if isinstance(outcomes, list) else "none"
            for index in chunk:
                state.fail(
                    index,
                    error=(
                        f"worker {slot.endpoint} answered {got} outcome(s) "
                        f"for a chunk of {len(chunk)}"
                    ),
                    exc_type="ClusterTransportError",
                    elapsed_s=elapsed,
                )
            return
        for index, outcome in zip(chunk, outcomes):
            if isinstance(outcome, dict):
                state.apply_outcome(index, outcome, elapsed_s=elapsed)
            else:
                state.fail(
                    index,
                    error=f"worker {slot.endpoint} returned a malformed outcome",
                    exc_type="ClusterTransportError",
                    elapsed_s=elapsed,
                )


EXECUTORS.register(
    "cluster",
    ClusterExecutor,
    description="dispatch to HTTP worker daemons (repro worker) with "
    "write-once result shards; degrades to the local process pool",
)


__all__ = ["ClusterExecutor", "ClusterTransportError", "DEFAULT_REQUEST_TIMEOUT_S"]
