"""Retry policies: bounded attempts, deterministic backoff, failure classes.

The executor layer re-runs transiently failed jobs (worker crashes, injected
chaos, corrupt result payloads, timeouts) under a :class:`RetryPolicy`.  Two
properties make retries safe here where they would be reckless elsewhere:

* **Idempotence** — jobs are content-addressed pure values
  (:class:`~repro.exec.job.ExperimentJob`) and ``run_job`` rebuilds the whole
  simulator stack from the job alone, so attempt N computes exactly the bytes
  attempt 1 would have; retrying can never change a successful result.
* **Determinism** — the backoff schedule is *derived*, not drawn from global
  randomness: the jitter for attempt ``a`` of a job comes from
  ``derive_seed(job.seed, "retry", job.key, str(a))``, so the same job under
  the same policy sleeps the same schedule on every machine, backend and
  interpreter restart — scheduling noise never becomes a hidden source of
  nondeterminism, and tests can pin exact schedules.

Classification is by exception *class name* (failures cross process
boundaries as strings): infrastructure failures (worker crashes, timeouts,
chaos injections, OS-level errors) are retryable, while deterministic errors
(bad registry keys, invalid parameters) are not — re-running those would
fail identically and only waste the attempt budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.sim.random import derive_seed


class JobTimeoutError(RuntimeError):
    """A job exceeded its per-job wall-clock budget and was killed."""


class WorkerCrashError(RuntimeError):
    """A worker process died (killed, OOMed, crashed) while running a job."""


class CorruptResultError(RuntimeError):
    """A worker returned a result payload that does not hydrate."""


class ClusterTransportError(RuntimeError):
    """An HTTP exchange with a cluster worker failed at the transport level.

    Covers everything between "the worker process died" (that is
    :class:`WorkerCrashError`) and "the job itself raised": unreachable
    hosts, malformed or non-JSON responses, unexpected HTTP status codes.
    Transport failures are transient by construction — the job never ran, or
    its result never arrived — so the class is in :data:`DEFAULT_RETRYABLE`.
    """


class ExecutorDegradedError(RuntimeError):
    """A backend gave up on itself (e.g. too many worker respawns).

    Raised *after* every already-finished outcome has been delivered through
    ``on_outcome``, so :func:`~repro.exec.executors.run_jobs` can catch it,
    fall back to a simpler backend and re-run only the unfinished jobs.
    """


#: Exception class names treated as transient (hence retryable) by default.
#: Everything else — ``RegistryError``, ``ValueError``, a scheme that cannot
#: build — is deterministic: retrying would fail identically.
DEFAULT_RETRYABLE: Tuple[str, ...] = (
    "WorkerCrashError",
    "JobTimeoutError",
    "CorruptResultError",
    "ChaosError",
    "ChaosCrashError",
    "BrokenProcessPool",
    "BrokenPipeError",
    "ConnectionError",
    "ConnectionResetError",
    "EOFError",
    "InterruptedError",
    "MemoryError",
    "OSError",
    "TimeoutError",
    # HTTP transport failures from the cluster backend (repro.service):
    # classification is by *name*, and these are the names a failed exchange
    # with a remote worker can surface under.
    "ClusterTransportError",
    "ConnectionAbortedError",
    "ConnectionRefusedError",
    "IncompleteRead",
    "RemoteDisconnected",
    "URLError",
)


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) failed jobs are re-attempted.

    The default policy is the historical behaviour: one attempt, no timeout.

    Attributes
    ----------
    max_attempts:
        Total attempts per job, including the first (``1`` = never retry).
    timeout_s:
        Per-job wall-clock budget.  Enforced by preemptible backends (the
        process pool kills and replaces the hung worker); advisory elsewhere
        — ``run_jobs`` warns when a non-enforcing backend gets a timeout.
    base_delay_s / backoff_factor / max_delay_s:
        Exponential backoff: the nominal delay before attempt ``a + 1`` is
        ``base_delay_s * backoff_factor**(a - 1)``, capped at ``max_delay_s``.
    jitter_fraction:
        Each delay is scaled by a factor drawn uniformly from
        ``[1 - jitter, 1 + jitter]`` — deterministically per
        ``(job.seed, job.key, attempt)``, see :meth:`backoff_s`.
    retryable:
        Exception class names classified as transient.  ``("*",)`` retries
        everything.
    """

    max_attempts: int = 1
    timeout_s: Optional[float] = None
    base_delay_s: float = 0.05
    backoff_factor: float = 2.0
    max_delay_s: float = 2.0
    jitter_fraction: float = 0.25
    retryable: Tuple[str, ...] = field(default=DEFAULT_RETRYABLE)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.base_delay_s < 0:
            raise ValueError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {self.max_delay_s}")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1), got {self.jitter_fraction}"
            )
        object.__setattr__(self, "retryable", tuple(self.retryable))

    # -- classification ----------------------------------------------------------------
    def is_retryable(self, exc_type: str) -> bool:
        """Whether a failure of exception class ``exc_type`` is transient."""
        return "*" in self.retryable or exc_type in self.retryable

    # -- deterministic backoff ---------------------------------------------------------
    def backoff_s(self, job_seed: int, job_key: str, attempt: int) -> float:
        """The delay before re-running a job whose attempt ``attempt`` failed.

        Pure function of ``(policy, job_seed, job_key, attempt)``: the jitter
        multiplier comes from a generator seeded with
        ``derive_seed(job_seed, "retry", job_key, str(attempt))``, so the
        schedule is identical across backends, processes and platforms —
        same seed, same backoff schedule, always.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        nominal = min(
            self.base_delay_s * self.backoff_factor ** (attempt - 1), self.max_delay_s
        )
        if nominal <= 0.0 or self.jitter_fraction == 0.0:
            return float(nominal)
        rng = np.random.default_rng(
            derive_seed(int(job_seed), "retry", job_key, str(attempt))
        )
        scale = 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return float(nominal * scale)

    def schedule(self, job_seed: int, job_key: str) -> List[float]:
        """The full backoff schedule of a job: one delay per possible retry."""
        return [
            self.backoff_s(job_seed, job_key, attempt)
            for attempt in range(1, self.max_attempts)
        ]

    # -- serialisation -----------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict; :meth:`from_dict` round-trips losslessly."""
        return {
            "max_attempts": int(self.max_attempts),
            "timeout_s": None if self.timeout_s is None else float(self.timeout_s),
            "base_delay_s": float(self.base_delay_s),
            "backoff_factor": float(self.backoff_factor),
            "max_delay_s": float(self.max_delay_s),
            "jitter_fraction": float(self.jitter_fraction),
            "retryable": list(self.retryable),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RetryPolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        payload = dict(data)
        if "retryable" in payload:
            payload["retryable"] = tuple(payload["retryable"])
        return cls(**payload)

    def describe(self) -> str:
        """A one-line human-readable summary for progress/log lines."""
        parts = [f"attempts={self.max_attempts}"]
        if self.timeout_s is not None:
            parts.append(f"timeout={self.timeout_s:g}s")
        if self.max_attempts > 1:
            parts.append(
                f"backoff={self.base_delay_s:g}s×{self.backoff_factor:g}"
                f"≤{self.max_delay_s:g}s±{self.jitter_fraction:.0%}"
            )
        return ", ".join(parts)


#: The do-nothing policy: one attempt, no timeout (historical behaviour).
NO_RETRY = RetryPolicy()


__all__ = [
    "ClusterTransportError",
    "CorruptResultError",
    "DEFAULT_RETRYABLE",
    "ExecutorDegradedError",
    "JobTimeoutError",
    "NO_RETRY",
    "RetryPolicy",
    "WorkerCrashError",
]
